// Package llmq is a Go reproduction of "Efficient Scalable Accurate
// Regression Queries in In-DBMS Analytics" (Anagnostopoulos & Triantafillou,
// ICDE 2017): a query-driven Local Linear Mapping (LLM) model that learns
// from executed mean-value and regression analytics queries and then answers
// unseen queries — and describes the local linear structure of the data —
// without accessing the underlying DBMS.
//
// The implementation lives under internal/: the core model in internal/core,
// the in-memory DBMS substrate in internal/engine + internal/index +
// internal/exec, the SQL-like front-end in internal/sqlfront, the REG/PLR
// baselines in internal/linalg and internal/plr, the workload and evaluation
// harness in internal/workload, and the paper's figures in
// internal/experiments. The runnable entry points are cmd/llmq,
// cmd/llmq-experiments and the programs under examples/.
//
// # Serving performance
//
// The model's read path is built for heavy concurrent traffic: all
// prototypes live in one contiguous struct-of-arrays matrix scanned by
// allocation-free unrolled kernels (internal/vector), the winner search of
// Eq. (5) is accelerated by an incremental uniform grid in low-dimensional
// query spaces and by a sorted projection spine in wide ones (both exact),
// and the model is safe for concurrent use — prediction methods share a
// read lock while Observe/Train write under exclusion. PredictBatch and
// TrainBatch, the executor's MeanBatch/RegressionBatch, the HTTP
// /query/batch endpoint and the llmq batch subcommand fan work out over
// bounded worker pools. PERFORMANCE.md documents the layout, the exactness
// arguments and the measured speedups; scripts/bench.sh records the
// trajectory in BENCH_<n>.json.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation at a reduced scale; run them with
//
//	go test -bench=. -benchmem
package llmq
