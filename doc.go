// Package llmq is a Go reproduction of "Efficient Scalable Accurate
// Regression Queries in In-DBMS Analytics" (Anagnostopoulos & Triantafillou,
// ICDE 2017): a query-driven Local Linear Mapping (LLM) model that learns
// from executed mean-value and regression analytics queries and then answers
// unseen queries — and describes the local linear structure of the data —
// without accessing the underlying DBMS.
//
// The implementation lives under internal/: the core model in internal/core,
// the in-memory DBMS substrate in internal/engine + internal/index +
// internal/exec, the SQL-like front-end in internal/sqlfront, the REG/PLR
// baselines in internal/linalg and internal/plr, the workload and evaluation
// harness in internal/workload, and the paper's figures in
// internal/experiments. The runnable entry points are cmd/llmq,
// cmd/llmq-experiments and the programs under examples/.
//
// # Serving performance
//
// The model's read path is built for heavy concurrent traffic: all
// prototypes and LLM coefficients live in contiguous struct-of-arrays
// matrices scanned by allocation-free unrolled kernels (internal/vector),
// and both the winner search of Eq. (5) and the overlap set W(q) of
// Eq. (10) — hence whole predictions, not just one subroutine — run as
// exact sub-O(K) searches: a uniform grid answers nearest and radius
// queries in low-dimensional query spaces, a bulk-built implicit-layout
// k-d tree in wide ones, with prototype drift between index rebuilds
// covered by a verified slack budget. Reads are lock-free: training publishes
// immutable copy-on-write snapshots through an atomic pointer, every
// prediction answers from one consistent published version with zero
// locking, and Model.View pins a version across calls — the zero-downtime
// retrain/model-swap primitive. The store is chunked: versions share
// unchanged 256-row chunks by pointer and a write copies only the chunk
// it dirties, so publishing after one training pair costs O(touched rows)
// rather than O(K) — a live stream publishes every pair even at K=100k
// while concurrent reads stay at idle latency. PredictBatch and TrainBatch, the
// executor's MeanBatch/RegressionBatch, the streaming NDJSON /query/batch
// endpoint and the llmq batch subcommand fan work out over bounded worker
// pools; the llmq serve subcommand stands the HTTP service up directly,
// and its -batch-window flag arms a micro-batcher that coalesces
// concurrent /query requests into shared sheets with bit-identical
// duplicate collapse (docs/ARCHITECTURE.md, "The batching lifecycle").
//
// # Streaming training
//
// Production deployments serving non-stationary workloads cap the model
// with Config.MaxPrototypes: when a spawn exceeds the capacity, the
// lowest-scoring prototypes under a pluggable eviction policy (win-count
// decay or recency) are tombstoned in place — or merged into their nearest
// survivor — and their slots reused, so serving cost stays flat no matter
// how far past the capacity the training stream runs. Eviction is
// published like any other version: snapshots pinned before it keep
// serving their own rows exactly.
//
// docs/ARCHITECTURE.md is the guided tour of the read path, the write
// path and the eviction lifecycle, with file pointers and the exactness
// invariant each layer maintains. PERFORMANCE.md documents the layout,
// the exactness arguments and the measured speedups; scripts/bench.sh
// records the trajectory in BENCH_<n>.json.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation at a reduced scale; run them with
//
//	go test -bench=. -benchmem
package llmq
