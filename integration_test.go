package llmq_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/experiments"
	"llmq/internal/sqlfront"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

// TestEndToEndSQLPipeline drives the full stack the way cmd/llmq does:
// synthetic data → engine → exact execution → model training → SQL-routed
// answers, and checks the model's APPROX answers agree with the exact ones
// within a tolerance on the output scale.
func TestEndToEndSQLPipeline(t *testing.T) {
	pts, err := synth.Generate(synth.R1Config(12000, 2, 99))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("r1", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	tab, err := cat.LoadDataset("r1", ds)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.GenConfig{
		Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.12, ThetaStdDev: 0.02, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := workload.NewHarness(ex, gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.08
	model, _, _, err := h.TrainModel(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}

	// Output scale for tolerance.
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	outScale := bounds.OutputMax - bounds.OutputMin

	stmts := []string{
		"SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.4, 0.6)",
		"SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.7, 0.3)",
		"SELECT AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)",
	}
	for _, text := range stmts {
		stmt, err := sqlfront.Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		exact, err := ex.Mean(exec.RadiusQuery{Center: stmt.Center, Theta: stmt.Theta, P: stmt.Norm})
		if err != nil {
			t.Fatalf("exact %q: %v", text, err)
		}
		q, err := core.NewQuery(stmt.Center, stmt.Theta)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := model.PredictMean(q)
		if err != nil {
			t.Fatalf("approx %q: %v", text, err)
		}
		if relErr := math.Abs(approx-exact.Mean) / outScale; relErr > 0.1 {
			t.Errorf("%s: approx %v vs exact %v (relative error %.3f of the output range)",
				text, approx, exact.Mean, relErr)
		}
	}

	// The Q2 SQL path: the model's local models must describe the subspace at
	// least as well as the global linear fit does.
	stmt, err := sqlfront.Parse("SELECT REGRESSION(u ON x1, x2) FROM r1 WITHIN 0.2 OF (0.5, 0.5)")
	if err != nil {
		t.Fatal(err)
	}
	rq := exec.RadiusQuery{Center: stmt.Center, Theta: stmt.Theta}
	global, err := ex.GlobalRegression()
	if err != nil {
		t.Fatal(err)
	}
	globalFit, err := ex.GoodnessOverSubspace(rq, global.Predict)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := core.NewQuery(stmt.Center, stmt.Theta)
	locals, err := model.Regression(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(locals) == 0 {
		t.Fatal("no local models returned")
	}
	// Piecewise prediction with the local models.
	llmFit, err := ex.GoodnessOverSubspace(rq, func(x []float64) float64 {
		best, bestDist := 0, math.Inf(1)
		for k, lm := range locals {
			var s float64
			for j := range x {
				d := x[j] - lm.Center[j]
				s += d * d
			}
			if s < bestDist {
				best, bestDist = k, s
			}
		}
		return locals[best].Predict(x)
	})
	if err != nil {
		t.Fatal(err)
	}
	if llmFit.FVU >= globalFit.FVU {
		t.Errorf("LLM piecewise FVU %v should beat the global fit %v over the queried subspace", llmFit.FVU, globalFit.FVU)
	}
}

// TestModelPersistsAcrossTheFullPipeline trains a model, saves it, reloads it
// and verifies it serves the same predictions — the deployment flow where the
// model is trained next to the DBMS and shipped to query routers.
func TestModelPersistsAcrossTheFullPipeline(t *testing.T) {
	env, err := experiments.NewEnv(experiments.R1, 2, 6000, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, _, err := env.TrainDefault(0.1, 2500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	queries := env.Harness.Gen.Queries(200)
	for _, q := range queries {
		a, err1 := model.PredictMean(q)
		b, err2 := reloaded.PredictMean(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("prediction errors: %v / %v", err1, err2)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("reloaded model diverges: %v vs %v", a, b)
		}
	}
	// And it still evaluates acceptably against the exact executor.
	eval, err := env.Harness.EvaluateQ1(reloaded, queries)
	if err != nil && !errors.Is(err, workload.ErrNoUsableQueries) {
		t.Fatal(err)
	}
	if err == nil && (eval.RMSE <= 0 || math.IsNaN(eval.RMSE)) {
		t.Errorf("reloaded model RMSE = %v", eval.RMSE)
	}
}

// TestScalabilityInvariant verifies the paper's headline claim end to end:
// the model's per-query cost does not grow with the dataset while the exact
// executor's does.
func TestScalabilityInvariant(t *testing.T) {
	type point struct {
		n            int
		model, exact float64 // microseconds per query
	}
	var pts []point
	for _, n := range []int{4000, 32000} {
		env, err := experiments.NewEnv(experiments.R2, 2, n, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		model, _, _, err := env.TrainDefault(0.1, 1200)
		if err != nil {
			t.Fatal(err)
		}
		eval, err := env.Harness.EvaluateQ1(model, env.Harness.Gen.Queries(200))
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{
			n:     n,
			model: float64(eval.ModelTime.Nanoseconds()) / 1e3,
			exact: float64(eval.ExactTime.Nanoseconds()) / 1e3,
		})
	}
	small, large := pts[0], pts[1]
	if large.exact <= small.exact {
		t.Errorf("exact execution should slow down with data: %.1fµs -> %.1fµs", small.exact, large.exact)
	}
	// The model must not slow down anywhere near proportionally to the 8x
	// data growth (allow generous jitter for timer noise).
	if large.model > small.model*4+5 {
		t.Errorf("model latency grew with the data: %.1fµs -> %.1fµs", small.model, large.model)
	}
	if large.model >= large.exact {
		t.Errorf("model (%.1fµs) should be faster than exact execution (%.1fµs) at the larger size", large.model, large.exact)
	}
}
