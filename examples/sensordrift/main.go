// Sensor-drift analytics: a higher-dimensional scenario in the spirit of the
// paper's R1 gas-sensor dataset.
//
// A relation holds 5 sensor-array attributes plus a calibration response.
// The example trains the LLM model from a query workload, then compares the
// three methods of the paper's Section VI over unseen regression queries:
//
//   - LLM: the trained model's local linear models (no data access),
//   - REG: a single global linear regression evaluated inside each subspace,
//   - PLR: multivariate adaptive piecewise linear regression fitted per
//     subspace with full data access,
//
// reporting goodness of fit (FVU, CoD), data-value prediction error and
// per-query latency.
//
// Run with:
//
//	go run ./examples/sensordrift
package main

import (
	"fmt"
	"log"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/plr"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const dim = 5
	pts, err := synth.Generate(synth.R1Config(30000, dim, 21))
	if err != nil {
		return err
	}
	ds, err := dataset.FromPoints("sensors", pts.Xs, pts.Us)
	if err != nil {
		return err
	}
	ds.InputNames = []string{"s1", "s2", "s3", "s4", "s5"}
	ds.OutputName = "response"
	catalog := engine.NewCatalog()
	table, err := catalog.LoadDataset("sensors", ds)
	if err != nil {
		return err
	}
	executor, err := exec.NewExecutorWithGrid(table, ds.InputNames, ds.OutputName, 0.2)
	if err != nil {
		return err
	}
	fmt.Printf("sensor relation: %d tuples, %d attributes + response\n", table.Len(), dim)

	generator, err := workload.NewGenerator(workload.GenConfig{
		Dim: dim, CenterLo: 0, CenterHi: 1, ThetaMean: 0.35, ThetaStdDev: 0.05, Seed: 3,
	})
	if err != nil {
		return err
	}
	harness, err := workload.NewHarness(executor, generator)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(dim)
	cfg.ResolutionA = 0.15
	model, result, pairs, err := harness.TrainModel(cfg, 6000)
	if err != nil {
		return err
	}
	fmt.Printf("trained from %d executed queries: K=%d local models, converged=%v\n\n",
		len(pairs), model.K(), result.Converged)

	// Q1 accuracy and latency on unseen queries.
	q1, err := harness.EvaluateQ1(model, harness.Gen.Queries(500))
	if err != nil {
		return err
	}
	fmt.Printf("Q1 (mean-value) over %d unseen queries:\n", q1.N)
	fmt.Printf("  RMSE            %.4f\n", q1.RMSE)
	fmt.Printf("  model latency   %v/query (no data access)\n", q1.ModelTime)
	fmt.Printf("  exact latency   %v/query\n\n", q1.ExactTime)

	// Q2 goodness of fit against REG and PLR over the same subspaces.
	q2, err := harness.EvaluateQ2(model, harness.Gen.Queries(40), workload.Q2Options{
		PLR: plr.Options{MaxBasis: 12},
	})
	if err != nil {
		return err
	}
	fmt.Printf("Q2 (regression) over %d unseen subspaces:\n", q2.N)
	fmt.Printf("  %-28s FVU=%.3f  CoD=%.3f   (avg |S| = %.1f local models/query, %v/query)\n",
		"LLM (model, no data access)", q2.LLMFVU, q2.LLMCoD, q2.MeanModels, q2.LLMTime)
	fmt.Printf("  %-28s FVU=%.3f  CoD=%.3f\n", "REG (global linear fit)", q2.REGFVU, q2.REGCoD)
	fmt.Printf("  %-28s FVU=%.3f  CoD=%.3f   (%v/query)\n", "REG-local (per-subspace OLS)", q2.REGLocalFVU, q2.REGLocalCoD, q2.REGTime)
	fmt.Printf("  %-28s FVU=%.3f  CoD=%.3f   (%v/query)\n\n", "PLR (per-subspace splines)", q2.PLRFVU, q2.PLRCoD, q2.PLRTime)

	// Data-value prediction accuracy (metric A2).
	dv, err := harness.EvaluateDataValue(model, harness.Gen.Queries(40), workload.Q2Options{
		PLR: plr.Options{MaxBasis: 12},
	}, 5, 77)
	if err != nil {
		return err
	}
	fmt.Printf("data-value prediction over %d sampled points:\n", dv.N)
	fmt.Printf("  LLM RMSE %.4f   REG RMSE %.4f   PLR RMSE %.4f\n", dv.LLMRMSE, dv.REGRMSE, dv.PLRRMSE)

	return driftPhase(executor)
}

// driftPhase is the concept-drift scenario the paper's adaptivity
// discussion anticipates: the analysts' interest moves through the sensor
// space, so the query stream is non-stationary. A bounded model
// (MaxPrototypes + win-decay eviction with merge) tracks the moving window
// at a fixed memory budget, while an unbounded twin accretes prototypes for
// every region the stream has ever visited. Both are scored on the stream's
// CURRENT window at checkpoints.
func driftPhase(executor *exec.Executor) error {
	const dim = 5
	fmt.Printf("\n--- non-stationary workload (concept drift) ---\n")
	gen, err := workload.NewDriftingGenerator(workload.GenConfig{
		Dim: dim, CenterLo: 0, CenterHi: 1, ThetaMean: 0.3, ThetaStdDev: 0.04, Seed: 13,
	}, workload.DriftConfig{Window: 0.35, Velocity: 2e-4})
	if err != nil {
		return err
	}
	harness, err := workload.NewHarness(executor, gen)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig(dim)
	cfg.Vigilance = 0.12
	cfg.Gamma = 1e-12 // track the stream forever: never freeze
	cfg.MinGammaSteps = 1 << 30
	capped := cfg
	capped.MaxPrototypes = 120
	capped.Eviction = core.WinDecay{}
	capped.MergeOnEvict = true
	mCapped, err := core.NewModel(capped)
	if err != nil {
		return err
	}
	mFree, err := core.NewModel(cfg)
	if err != nil {
		return err
	}

	const legs, pairsPerLeg = 4, 1200
	fmt.Printf("streaming %d pairs from a window sliding across the sensor space "+
		"(capacity %d, win-decay eviction + merge):\n", legs*pairsPerLeg, capped.MaxPrototypes)
	for leg := 1; leg <= legs; leg++ {
		pairs, err := harness.TrainingPairs(pairsPerLeg)
		if err != nil {
			return err
		}
		evicted := 0
		for _, p := range pairs {
			info, err := mCapped.Observe(p.Query, p.Answer)
			if err != nil {
				return err
			}
			evicted += info.Evicted
			if _, err := mFree.Observe(p.Query, p.Answer); err != nil {
				return err
			}
		}
		// Score both models on the CURRENT window (the region analysts are
		// querying right now), not on history.
		probe := gen.Queries(150)
		evalCapped, err := harness.EvaluateQ1(mCapped, probe)
		if err != nil {
			return err
		}
		evalFree, err := harness.EvaluateQ1(mFree, probe)
		if err != nil {
			return err
		}
		fmt.Printf("  leg %d (window at %.2f): capped K=%-4d RMSE=%.4f (evicted %d)  |  unbounded K=%-4d RMSE=%.4f\n",
			leg, gen.Position(), mCapped.K(), evalCapped.RMSE, evicted, mFree.K(), evalFree.RMSE)
	}
	fmt.Printf("the bounded model holds a fixed serving budget (K ≤ %d) and stays accurate on the live window;\n"+
		"the unbounded one keeps paying memory and rebuild cost for every region the stream has left behind.\n",
		capped.MaxPrototypes)
	return nil
}
