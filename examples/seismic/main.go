// Seismic analytics: the paper's motivating scenario (Section I, Figure 1).
//
// A relation holds seismic P-wave speed measurements u over surface
// coordinates (longitude, latitude). Seismologists issue mean-value queries
// ("average P-wave speed within a radius of a point") and geophysicists issue
// regression queries ("how does the speed depend on longitude/latitude in
// this region"). This example expresses those queries in the library's SQL
// dialect, serves them exactly from the in-memory DBMS while the model
// trains, and then serves the same statements from the trained model with no
// data access.
//
// Run with:
//
//	go run ./examples/seismic
package main

import (
	"fmt"
	"log"
	"math"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/sqlfront"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

// pWaveField is the synthetic "true" seismic field: a smooth regional trend
// with a fault line across which the velocity gradient changes abruptly —
// precisely the locally-linear-but-globally-non-linear structure that local
// regression queries are meant to reveal.
func pWaveField(x []float64) float64 {
	lon, lat := x[0], x[1]
	base := 5.8 + 0.4*lon - 0.25*lat
	fault := 1.2 * math.Abs(lon-0.55+0.2*lat) // kink along a tilted fault line
	basin := 0.5 * math.Exp(-((lon-0.2)*(lon-0.2)+(lat-0.75)*(lat-0.75))/0.02)
	return base + fault - basin
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Load the survey measurements (longitude, latitude, pwave).
	pts, err := synth.Generate(synth.Config{
		Name: "survey", N: 30000, Dim: 2, Lo: 0, Hi: 1,
		Func: pWaveField, NoiseStdDev: 0.02, Seed: 11,
	})
	if err != nil {
		return err
	}
	ds, err := dataset.FromPoints("survey", pts.Xs, pts.Us)
	if err != nil {
		return err
	}
	ds.InputNames = []string{"lon", "lat"}
	ds.OutputName = "pwave"
	catalog := engine.NewCatalog()
	table, err := catalog.LoadDataset("survey", ds)
	if err != nil {
		return err
	}
	executor, err := exec.NewExecutorWithGrid(table, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		return err
	}
	fmt.Printf("seismic survey loaded: %d stations\n\n", table.Len())

	// Train the model from a stream of analyst queries.
	generator, err := workload.NewGenerator(workload.GenConfig{
		Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.1, ThetaStdDev: 0.02, Seed: 5,
	})
	if err != nil {
		return err
	}
	harness, err := workload.NewHarness(executor, generator)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.12
	model, _, pairs, err := harness.TrainModel(cfg, 5000)
	if err != nil {
		return err
	}
	fmt.Printf("model trained from %d past analyst queries (K=%d local models)\n\n", len(pairs), model.K())

	// The analyst's statements, in the SQL dialect.
	statements := []string{
		"SELECT AVG(pwave) FROM survey WITHIN 0.15 OF (0.6, 0.4)",
		"SELECT APPROX AVG(pwave) FROM survey WITHIN 0.15 OF (0.6, 0.4)",
		"SELECT REGRESSION(pwave ON lon, lat) FROM survey WITHIN 0.15 OF (0.6, 0.4)",
		"SELECT APPROX REGRESSION(pwave ON lon, lat) FROM survey WITHIN 0.15 OF (0.6, 0.4)",
		"SELECT APPROX VALUE(pwave) FROM survey AT (0.58, 0.42) WITHIN 0.15 OF (0.6, 0.4)",
	}
	for _, stmtText := range statements {
		fmt.Printf("sql> %s\n", stmtText)
		stmt, err := sqlfront.Parse(stmtText)
		if err != nil {
			return err
		}
		if err := answer(stmt, executor, model); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func answer(stmt *sqlfront.Statement, executor *exec.Executor, model *core.Model) error {
	rq := exec.RadiusQuery{Center: stmt.Center, Theta: stmt.Theta, P: stmt.Norm}
	switch stmt.Kind {
	case sqlfront.StmtMean:
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return err
			}
			yhat, err := model.PredictMean(q)
			if err != nil {
				return err
			}
			fmt.Printf("  ≈ %.4f km/s (model, no data access)\n", yhat)
			return nil
		}
		res, err := executor.Mean(rq)
		if err != nil {
			return err
		}
		fmt.Printf("  = %.4f km/s (exact, %d stations, %v)\n", res.Mean, res.Count, res.Elapsed)
	case sqlfront.StmtRegression:
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return err
			}
			locals, err := model.Regression(q)
			if err != nil {
				return err
			}
			fmt.Printf("  %d local model(s) describing the region:\n", len(locals))
			for _, lm := range locals {
				fmt.Printf("    weight %.2f: %s\n", lm.Weight, lm)
			}
			return nil
		}
		res, err := executor.Regression(rq)
		if err != nil {
			return err
		}
		fmt.Printf("  global-in-region plane: pwave ≈ %.3f %+.3f·lon %+.3f·lat  (R²=%.3f over %d stations)\n",
			res.Intercept, res.Slope[0], res.Slope[1], res.CoD, res.Count)
	case sqlfront.StmtValue:
		q, err := core.NewQuery(stmt.Center, stmt.Theta)
		if err != nil {
			return err
		}
		uhat, err := model.PredictValue(q, stmt.At)
		if err != nil {
			return err
		}
		fmt.Printf("  ≈ %.4f km/s at %v (true field value %.4f)\n", uhat, stmt.At, pWaveField(stmt.At))
	}
	return nil
}
