// Quickstart: the minimal end-to-end use of the library.
//
// It builds a small synthetic relation in the in-memory engine, executes a
// random query workload against it to obtain (query, answer) pairs, trains
// the query-driven LLM model, and then answers an unseen mean-value (Q1) and
// linear-regression (Q2) query from the model alone — no data access —
// comparing both with the exact answers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Create a synthetic 2-attribute dataset with a non-linear response
	//    and load it into the in-memory DBMS substrate.
	pts, err := synth.Generate(synth.R1Config(20000, 2, 42))
	if err != nil {
		return err
	}
	ds, err := dataset.FromPoints("sensors", pts.Xs, pts.Us)
	if err != nil {
		return err
	}
	catalog := engine.NewCatalog()
	table, err := catalog.LoadDataset("sensors", ds)
	if err != nil {
		return err
	}
	fmt.Printf("loaded relation %q with %d tuples (%d input attributes)\n", table.Name(), table.Len(), ds.Dim())

	// 2. Build the exact executor (grid-indexed radius selection) and a
	//    random query workload generator.
	executor, err := exec.NewExecutorWithGrid(table, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		return err
	}
	generator, err := workload.NewGenerator(workload.GenConfig{
		Dim: 2, CenterLo: 0, CenterHi: 1,
		ThetaMean: 0.1, ThetaStdDev: 0.02, Seed: 7,
	})
	if err != nil {
		return err
	}
	harness, err := workload.NewHarness(executor, generator)
	if err != nil {
		return err
	}

	// 3. Train the LLM model from executed queries (Algorithm 1).
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.08
	model, result, pairs, err := harness.TrainModel(cfg, 4000)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d query/answer pairs: K=%d local linear mappings, converged=%v\n",
		len(pairs), model.K(), result.Converged)

	// 4. Answer an unseen Q1 query from the model and compare with the exact
	//    in-DBMS answer.
	q, err := core.NewQuery([]float64{0.4, 0.6}, 0.12)
	if err != nil {
		return err
	}
	predicted, err := model.PredictMean(q)
	if err != nil {
		return err
	}
	exact, err := executor.Mean(exec.RadiusQuery{Center: q.Center, Theta: q.Theta})
	if err != nil {
		return err
	}
	fmt.Printf("\nQ1 over %s:\n  predicted mean  %.5f   (no data access)\n  exact mean      %.5f   (%d tuples, %v)\n",
		q, predicted, exact.Mean, exact.Count, exact.Elapsed)

	// 5. Answer the corresponding Q2 query: the list of local linear models.
	locals, err := model.Regression(q)
	if err != nil {
		return err
	}
	fmt.Printf("\nQ2 over %s: %d local linear model(s)\n", q, len(locals))
	for i, lm := range locals {
		fmt.Printf("  S[%d] weight %.3f: %s\n", i, lm.Weight, lm)
	}
	reg, err := executor.Regression(exec.RadiusQuery{Center: q.Center, Theta: q.Theta})
	if err != nil {
		return err
	}
	fmt.Printf("  exact per-subspace OLS: intercept=%.4f slope=%v (R²=%.3f, %v)\n",
		reg.Intercept, reg.Slope, reg.CoD, reg.Elapsed)

	// 6. Predict an individual data value.
	uhat, err := model.PredictValue(q, []float64{0.42, 0.58})
	if err != nil {
		return err
	}
	fmt.Printf("\npredicted u at (0.42, 0.58): %.5f (actual data function value %.5f)\n",
		uhat, synth.SensorSurrogate([]float64{0.42, 0.58}))
	return nil
}
