// Scalability: how query latency behaves as the relation grows.
//
// The paper's headline efficiency result (Figure 12) is that after training,
// the model answers Q1/Q2 queries in sub-millisecond time regardless of the
// dataset size, while exact in-DBMS execution grows with the data. This
// example sweeps the dataset size on the Rosenbrock (R2) workload and prints
// the per-query latency of both paths.
//
// Run with:
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const dim = 2
	fmt.Printf("%-12s  %-14s  %-14s  %-10s\n", "#tuples", "LLM (per Q1)", "exact (per Q1)", "speedup")
	for _, n := range []int{20000, 80000, 320000} {
		pts, err := synth.Generate(synth.R2Config(n, dim, 5))
		if err != nil {
			return err
		}
		ds, err := dataset.FromPoints("rosenbrock", pts.Xs, pts.Us)
		if err != nil {
			return err
		}
		catalog := engine.NewCatalog()
		table, err := catalog.LoadDataset("rosenbrock", ds)
		if err != nil {
			return err
		}
		executor, err := exec.NewExecutorWithGrid(table, ds.InputNames, ds.OutputName, 1.0)
		if err != nil {
			return err
		}
		generator, err := workload.NewGenerator(workload.GenConfig{
			Dim: dim, CenterLo: -10, CenterHi: 10, ThetaMean: 1.5, ThetaStdDev: 0.25, Seed: 9,
		})
		if err != nil {
			return err
		}
		harness, err := workload.NewHarness(executor, generator)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(dim)
		cfg.Vigilance = 0.25 * (20*1.42 + 3) // a = 0.25 scaled to the [-10,10] attribute range
		model, _, _, err := harness.TrainModel(cfg, 2500)
		if err != nil {
			return err
		}
		eval, err := harness.EvaluateQ1(model, harness.Gen.Queries(200))
		if err != nil {
			return err
		}
		speedup := float64(eval.ExactTime) / float64(eval.ModelTime)
		fmt.Printf("%-12d  %-14v  %-14v  %.0fx\n", n, eval.ModelTime, eval.ExactTime, speedup)
	}
	fmt.Println("\nthe model's latency stays flat while exact execution grows with the relation size")
	return nil
}
