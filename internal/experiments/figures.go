package experiments

import (
	"fmt"
	"math"
	"time"

	"llmq/internal/core"
	"llmq/internal/exec"
	"llmq/internal/plr"
	"llmq/internal/stats"
	"llmq/internal/workload"
)

// defaultA is the operating resolution used by the figures that keep a
// fixed: the paper's default a = 0.25 yields K ≈ 450 prototypes on its
// 15M-tuple workload, and at this library's in-memory scales the equivalent
// operating point (K of the order of tens of prototypes) is a ≈ 0.1.
const defaultA = 0.1

func f(v float64) string { return fmt.Sprintf("%.4g", v) }

func dur(d time.Duration) string {
	return fmt.Sprintf("%.4g", float64(d.Nanoseconds())/1e6) // milliseconds
}

// Fig06Training reproduces Figure 6: the termination criterion
// Γ = max(Γ^J, Γ^H) versus the number of consumed training pairs, for R1 and
// R2 and d ∈ Dims, at the default resolution a = 0.25.
func Fig06Training(s Scale) ([]*Table, error) {
	var tables []*Table
	for _, kind := range []DatasetKind{R1, R2} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 6 (%s): termination criterion Γ vs. training pairs |T|", kind),
			Columns: []string{"dim", "|T| consumed", "K", "converged", "final Γ", "Γ@25%", "Γ@50%", "Γ@75%"},
			Notes: []string{
				"paper shape: Γ decreases with |T| and crosses γ=0.01 after a few thousand pairs",
			},
		}
		for _, dim := range s.Dims {
			env, err := NewEnv(kind, dim, s.DatasetN, s.Seed, 0)
			if err != nil {
				return nil, err
			}
			_, res, _, err := env.TrainDefault(defaultA, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			q := func(frac float64) string {
				if len(res.GammaTrace) == 0 {
					return "-"
				}
				idx := int(frac * float64(len(res.GammaTrace)-1))
				v := res.GammaTrace[idx]
				if math.IsInf(v, 1) {
					return "inf"
				}
				return f(v)
			}
			t.AddRow(fmt.Sprintf("%d", dim), fmt.Sprintf("%d", res.Steps), fmt.Sprintf("%d", res.K),
				fmt.Sprintf("%v", res.Converged), f(res.FinalGamma), q(0.25), q(0.5), q(0.75))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig07RMSEvsA reproduces Figure 7: the Q1 prediction RMSE as a function of
// the quantization coefficient a, per dataset and dimensionality.
func Fig07RMSEvsA(s Scale) ([]*Table, error) {
	as := []float64{0.05, 0.1, 0.25, 0.5, 0.9}
	var tables []*Table
	for _, kind := range []DatasetKind{R1, R2} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 7 (%s): Q1 RMSE vs. coefficient a", kind),
			Columns: append([]string{"dim"}, mapStrings(as, func(a float64) string { return "a=" + f(a) })...),
			Notes:   []string{"paper shape: RMSE grows as a → 1 (coarser quantization)"},
		}
		for _, dim := range s.Dims {
			env, err := NewEnv(kind, dim, s.DatasetN, s.Seed, 0)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%d", dim)}
			test := env.Harness.Gen.Queries(s.TestQueries)
			for _, a := range as {
				m, _, _, err := env.TrainDefault(a, s.TrainPairs)
				if err != nil {
					return nil, err
				}
				eval, err := env.Harness.EvaluateQ1(m, test)
				if err != nil {
					return nil, err
				}
				row = append(row, f(eval.RMSE))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig08RMSEvsTestSize reproduces Figure 8: the Q1 RMSE as a function of the
// testing-set size |V| at the default resolution a = 0.25.
func Fig08RMSEvsTestSize(s Scale) ([]*Table, error) {
	sizes := []int{s.TestQueries / 4, s.TestQueries / 2, s.TestQueries, s.TestQueries * 2}
	var tables []*Table
	for _, kind := range []DatasetKind{R1, R2} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 8 (%s): Q1 RMSE vs. testing-set size |V| (a=0.1)", kind),
			Columns: append([]string{"dim"}, mapStrings(sizes, func(n int) string { return fmt.Sprintf("|V|=%d", n) })...),
			Notes:   []string{"paper shape: RMSE is flat in |V| (the trained model is stable)"},
		}
		for _, dim := range s.Dims {
			env, err := NewEnv(kind, dim, s.DatasetN, s.Seed, 0)
			if err != nil {
				return nil, err
			}
			m, _, _, err := env.TrainDefault(defaultA, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%d", dim)}
			for _, n := range sizes {
				eval, err := env.Harness.EvaluateQ1(m, env.Harness.Gen.Queries(n))
				if err != nil {
					return nil, err
				}
				row = append(row, f(eval.RMSE))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig09FVU reproduces Figure 9: the Q2 goodness-of-fit (FVU) of LLM, REG and
// PLR versus the coefficient a. REG is the paper's baseline behaviour (a
// single global linear model evaluated inside each subspace); the
// per-subspace OLS is reported as an extra column.
func Fig09FVU(s Scale) ([]*Table, error) {
	as := []float64{0.05, 0.1, 0.25, 0.5, 1.0}
	var tables []*Table
	for _, kind := range []DatasetKind{R1, R2} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 9 (%s): Q2 FVU of LLM / REG / PLR vs. coefficient a", kind),
			Columns: []string{"dim", "a", "K", "FVU LLM", "FVU REG", "FVU REG-local", "FVU PLR", "mean |S|"},
			Notes: []string{
				"paper shape: FVU(PLR) <= FVU(LLM) < 1 <= FVU(REG); LLM approaches REG as a → 1",
				"REG-local (per-subspace OLS) is this library's stronger exact baseline, not in the paper",
			},
		}
		for _, dim := range s.Dims {
			env, err := NewEnv(kind, dim, s.DatasetN, s.Seed, 0)
			if err != nil {
				return nil, err
			}
			test := env.Harness.Gen.Queries(s.Q2Queries)
			for _, a := range as {
				m, _, _, err := env.TrainDefault(a, s.TrainPairs)
				if err != nil {
					return nil, err
				}
				eval, err := env.Harness.EvaluateQ2(m, test, workload.Q2Options{
					PLR: plr.Options{MaxBasis: maxBasisFor(m.K())},
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%d", dim), f(a), fmt.Sprintf("%d", m.K()),
					f(eval.LLMFVU), f(eval.REGFVU), f(eval.REGLocalFVU), f(eval.PLRFVU), f(eval.MeanModels))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig10CoD reproduces Figure 10: (left) the CoD R² of LLM, REG and PLR as a
// function of the number of prototypes K, and (right) the number of
// prototypes K as a function of the coefficient a, over R1.
func Fig10CoD(s Scale) ([]*Table, error) {
	as := []float64{0.05, 0.1, 0.17, 0.25, 0.5, 0.75, 0.9}
	left := &Table{
		Title:   "Figure 10 (left, R1): CoD R² of LLM / REG / PLR vs. prototypes K",
		Columns: []string{"dim", "a", "K", "CoD LLM", "CoD REG", "CoD REG-local", "CoD PLR"},
		Notes: []string{
			"paper shape: CoD(LLM) is positive and grows with K; CoD(REG) is low or negative",
		},
	}
	right := &Table{
		Title:   "Figure 10 (right, R1): prototypes K vs. coefficient a",
		Columns: append([]string{"dim"}, mapStrings(as, func(a float64) string { return "a=" + f(a) })...),
		Notes:   []string{"paper shape: K decreases monotonically as a grows"},
	}
	for _, dim := range s.Dims {
		env, err := NewEnv(R1, dim, s.DatasetN, s.Seed, 0)
		if err != nil {
			return nil, err
		}
		test := env.Harness.Gen.Queries(s.Q2Queries)
		kRow := []string{fmt.Sprintf("%d", dim)}
		for _, a := range as {
			m, _, _, err := env.TrainDefault(a, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			kRow = append(kRow, fmt.Sprintf("%d", m.K()))
			eval, err := env.Harness.EvaluateQ2(m, test, workload.Q2Options{
				PLR: plr.Options{MaxBasis: maxBasisFor(m.K())},
			})
			if err != nil {
				return nil, err
			}
			left.AddRow(fmt.Sprintf("%d", dim), f(a), fmt.Sprintf("%d", m.K()),
				f(eval.LLMCoD), f(eval.REGCoD), f(eval.REGLocalCoD), f(eval.PLRCoD))
		}
		right.AddRow(kRow...)
	}
	return []*Table{left, right}, nil
}

// Fig11DataValue reproduces Figure 11: the data-value prediction RMSE
// (metric A2) of LLM, REG and PLR versus the testing-set size.
func Fig11DataValue(s Scale) ([]*Table, error) {
	sizes := []int{s.Q2Queries / 2, s.Q2Queries, s.Q2Queries * 2}
	var tables []*Table
	for _, kind := range []DatasetKind{R1, R2} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 11 (%s): data-value RMSE v of LLM / REG / PLR vs. #test queries (a=0.1)", kind),
			Columns: []string{"dim", "#queries", "RMSE LLM", "RMSE REG", "RMSE PLR"},
			Notes: []string{
				"paper shape: LLM is comparable to REG (sometimes better); PLR is the most accurate; all flat in |V|",
			},
		}
		for _, dim := range s.Dims {
			env, err := NewEnv(kind, dim, s.DatasetN, s.Seed, 0)
			if err != nil {
				return nil, err
			}
			m, _, _, err := env.TrainDefault(defaultA, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			for _, n := range sizes {
				eval, err := env.Harness.EvaluateDataValue(m, env.Harness.Gen.Queries(n), workload.Q2Options{
					PLR: plr.Options{MaxBasis: maxBasisFor(m.K())},
				}, 5, s.Seed+101)
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%d", dim), fmt.Sprintf("%d", n),
					f(eval.LLMRMSE), f(eval.REGRMSE), f(eval.PLRRMSE))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12Scalability reproduces Figure 12: the Q1 and Q2 execution times of the
// LLM model versus the exact REG (and PLR for Q2) as the dataset grows. The
// paper sweeps 10⁷…10¹⁰ tuples on a PostgreSQL server; here the sweep is
// scaled to in-memory sizes, which preserves the shape: exact execution cost
// grows with the data size while the LLM's prediction cost is flat.
func Fig12Scalability(s Scale) ([]*Table, error) {
	sizes := []int{s.DatasetN / 4, s.DatasetN, s.DatasetN * 4}
	q1 := &Table{
		Title:   "Figure 12 (left, R2): Q1 execution time (ms/query) vs. dataset size",
		Columns: []string{"dim", "#points", "LLM (ms)", "exact Q1 (ms)", "speedup"},
		Notes:   []string{"paper shape: LLM flat and orders of magnitude below the exact executor"},
	}
	q2 := &Table{
		Title:   "Figure 12 (right, R2): Q2 execution time (ms/query) vs. dataset size",
		Columns: []string{"dim", "#points", "LLM (ms)", "REG (ms)", "PLR (ms)"},
		Notes:   []string{"paper shape: LLM flat; REG and PLR grow with the dataset"},
	}
	for _, dim := range s.Dims {
		for _, n := range sizes {
			// A wider radius keeps subspaces populated even at the smallest
			// sweep size, so the timing comparison always has work to do.
			env, err := NewEnv(R2, dim, n, s.Seed, 3)
			if err != nil {
				return nil, err
			}
			m, _, _, err := env.TrainDefault(defaultA, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			evalQ1, err := env.Harness.EvaluateQ1(m, env.Harness.Gen.Queries(s.TestQueries/2))
			if err != nil {
				return nil, err
			}
			speedup := float64(evalQ1.ExactTime) / float64(evalQ1.ModelTime)
			q1.AddRow(fmt.Sprintf("%d", dim), fmt.Sprintf("%d", n),
				dur(evalQ1.ModelTime), dur(evalQ1.ExactTime), f(speedup))
			evalQ2, err := env.Harness.EvaluateQ2(m, env.Harness.Gen.Queries(s.Q2Queries), workload.Q2Options{
				PLR:         plr.Options{MaxBasis: maxBasisFor(m.K())},
				MinSubspace: dim + 2,
			})
			if err != nil {
				return nil, err
			}
			q2.AddRow(fmt.Sprintf("%d", dim), fmt.Sprintf("%d", n),
				dur(evalQ2.LLMTime), dur(evalQ2.REGTime), dur(evalQ2.PLRTime))
		}
	}
	return []*Table{q1, q2}, nil
}

// Fig13RadiusImpact reproduces Figure 13: (left) the Q1 RMSE versus the mean
// radius µθ and (right) the number of training pairs required versus the
// resulting CoD, over R1.
func Fig13RadiusImpact(s Scale) ([]*Table, error) {
	thetas := []float64{0.05, 0.1, 0.2, 0.4, 0.7, 0.99}
	left := &Table{
		Title:   "Figure 13 (left, R1): Q1 RMSE vs. mean radius µθ (a=0.1)",
		Columns: append([]string{"dim"}, mapStrings(thetas, func(v float64) string { return "µθ=" + f(v) })...),
		Notes:   []string{"paper shape: RMSE decreases as µθ grows (answers tend to the global mean)"},
	}
	right := &Table{
		Title:   "Figure 13 (right, R1): training size |T| and CoD vs. µθ (a=0.1)",
		Columns: []string{"dim", "µθ", "|T| used", "K", "CoD LLM"},
		Notes:   []string{"paper shape: small µθ needs many pairs and keeps CoD high; large µθ converges fast but CoD collapses"},
	}
	for _, dim := range s.Dims {
		rmseRow := []string{fmt.Sprintf("%d", dim)}
		for _, theta := range thetas {
			env, err := NewEnv(R1, dim, s.DatasetN, s.Seed, theta)
			if err != nil {
				return nil, err
			}
			m, res, _, err := env.TrainDefault(defaultA, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			evalQ1, err := env.Harness.EvaluateQ1(m, env.Harness.Gen.Queries(s.TestQueries/2))
			if err != nil {
				return nil, err
			}
			rmseRow = append(rmseRow, f(evalQ1.RMSE))
			evalQ2, err := env.Harness.EvaluateQ2(m, env.Harness.Gen.Queries(s.Q2Queries/2+1), workload.Q2Options{SkipPLR: true})
			if err != nil {
				return nil, err
			}
			right.AddRow(fmt.Sprintf("%d", dim), f(theta), fmt.Sprintf("%d", res.Steps),
				fmt.Sprintf("%d", m.K()), f(evalQ2.LLMCoD))
		}
		left.AddRow(rmseRow...)
	}
	return []*Table{left, right}, nil
}

// Fig14RadiusTrajectory reproduces Figure 14: the joint trajectory of
// (|T|, RMSE, CoD) as µθ sweeps from small to large, per dimensionality,
// over R1.
func Fig14RadiusTrajectory(s Scale) ([]*Table, error) {
	thetas := []float64{0.05, 0.1, 0.2, 0.4, 0.7, 0.99}
	t := &Table{
		Title:   "Figure 14 (R1): trajectory of (|T|, RMSE, CoD) as µθ grows (a=0.1)",
		Columns: []string{"dim", "µθ", "|T| used", "RMSE e", "CoD R²"},
		Notes: []string{
			"paper shape: growing µθ shrinks |T| and RMSE while CoD degrades toward 0 or below",
		},
	}
	for _, dim := range s.Dims {
		for _, theta := range thetas {
			env, err := NewEnv(R1, dim, s.DatasetN, s.Seed, theta)
			if err != nil {
				return nil, err
			}
			m, res, _, err := env.TrainDefault(defaultA, s.TrainPairs)
			if err != nil {
				return nil, err
			}
			evalQ1, err := env.Harness.EvaluateQ1(m, env.Harness.Gen.Queries(s.TestQueries/2))
			if err != nil {
				return nil, err
			}
			evalQ2, err := env.Harness.EvaluateQ2(m, env.Harness.Gen.Queries(s.Q2Queries/2+1), workload.Q2Options{SkipPLR: true})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", dim), f(theta), fmt.Sprintf("%d", res.Steps), f(evalQ1.RMSE), f(evalQ2.LLMCoD))
		}
	}
	return []*Table{t}, nil
}

// AblationLearning compares the solver and learning-rate choices called out
// in DESIGN.md: RLS vs. the paper's SGD rule, and hyperbolic vs. constant
// learning rates for the prototype updates.
func AblationLearning(s Scale) ([]*Table, error) {
	t := &Table{
		Title:   "Ablation (R1, d=2): coefficient solver and learning-rate schedule",
		Columns: []string{"variant", "K", "|T| used", "Q1 RMSE", "FVU LLM"},
		Notes:   []string{"RLS tightens both Q1 RMSE and Q2 FVU relative to the first-order SGD rule"},
	}
	env, err := NewEnv(R1, 2, s.DatasetN, s.Seed, 0)
	if err != nil {
		return nil, err
	}
	test := env.Harness.Gen.Queries(s.TestQueries)
	q2test := env.Harness.Gen.Queries(s.Q2Queries)
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"rls + hyperbolic (default)", func(c *core.Config) {}},
		{"sgd (paper Theorem 4)", func(c *core.Config) { c.CoefficientSolver = core.SolverSGD }},
		{"rls + constant rate 0.05", func(c *core.Config) { c.Schedule = core.Constant{Eta: 0.05} }},
		{"rls + global-step rate", func(c *core.Config) { c.RateByPrototype = false }},
	}
	for _, v := range variants {
		cfg := env.ModelConfig(0.1)
		v.mut(&cfg)
		m, err := core.NewModel(cfg)
		if err != nil {
			return nil, err
		}
		pairs, err := env.Harness.TrainingPairs(s.TrainPairs)
		if err != nil {
			return nil, err
		}
		res, err := m.TrainBatch(pairs)
		if err != nil {
			return nil, err
		}
		evalQ1, err := env.Harness.EvaluateQ1(m, test)
		if err != nil {
			return nil, err
		}
		evalQ2, err := env.Harness.EvaluateQ2(m, q2test, workload.Q2Options{SkipPLR: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmt.Sprintf("%d", m.K()), fmt.Sprintf("%d", res.Steps), f(evalQ1.RMSE), f(evalQ2.LLMFVU))
	}
	return []*Table{t}, nil
}

// GlobalFitBaseline reports the whole-dataset FVU of a single global linear
// model for R1 and R2, the figure the paper quotes to motivate local models
// (FVU 4.68 for R1 and 12.45 for R2 in the paper's datasets).
func GlobalFitBaseline(s Scale) ([]*Table, error) {
	t := &Table{
		Title:   "Global linear fit over the whole dataset (Section VI-A motivation)",
		Columns: []string{"dataset", "dim", "#points", "FVU(global OLS evaluated per subspace, mean)", "in-sample FVU"},
		Notes:   []string{"paper: a single global linear fit does not explain R1/R2 (their quoted FVUs are 4.68 and 12.45)"},
	}
	for _, kind := range []DatasetKind{R1, R2} {
		for _, dim := range s.Dims {
			env, err := NewEnv(kind, dim, s.DatasetN, s.Seed, 0)
			if err != nil {
				return nil, err
			}
			global, err := env.Harness.Exec.GlobalRegression()
			if err != nil {
				return nil, err
			}
			// Average the global model's FVU over random subspaces.
			var acc stats.Running
			for _, q := range env.Harness.Gen.Queries(s.Q2Queries) {
				g, err := env.Harness.Exec.GoodnessOverSubspace(
					toRadiusQuery(q), global.Predict)
				if err != nil {
					continue
				}
				if !math.IsInf(g.FVU, 0) && !math.IsNaN(g.FVU) {
					acc.Add(g.FVU)
				}
			}
			t.AddRow(string(kind), fmt.Sprintf("%d", dim), fmt.Sprintf("%d", env.Dataset.Len()),
				f(acc.Mean()), f(global.FVU))
		}
	}
	return []*Table{t}, nil
}

func mapStrings[T any](in []T, fn func(T) string) []string {
	out := make([]string, len(in))
	for i, v := range in {
		out[i] = fn(v)
	}
	return out
}

func maxBasisFor(k int) int {
	if k < 4 {
		return 4
	}
	if k > 20 {
		return 20
	}
	return k
}

func toRadiusQuery(q core.Query) exec.RadiusQuery {
	return exec.RadiusQuery{Center: q.Center, Theta: q.Theta}
}
