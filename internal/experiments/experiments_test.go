package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny is a minimal scale so the whole experiment suite stays fast in unit
// tests; the shape assertions live in the targeted tests below.
var tiny = Scale{
	Name:        "tiny",
	DatasetN:    2500,
	TrainPairs:  1200,
	TestQueries: 120,
	Q2Queries:   16,
	Dims:        []int{2},
	Seed:        7,
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv("bogus", 2, 100, 1, 0); err == nil {
		t.Error("unknown dataset kind accepted")
	}
	env, err := NewEnv(R1, 2, 1000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if env.Dim != 2 || env.Dataset.Len() != 1000 || env.ThetaMean != 0.1 {
		t.Errorf("env = %+v", env)
	}
	// Radius override.
	env2, err := NewEnv(R1, 2, 1000, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if env2.ThetaMean != 0.3 {
		t.Errorf("override ThetaMean = %v", env2.ThetaMean)
	}
	// R2 uses its own ranges.
	env3, err := NewEnv(R2, 2, 1000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if env3.ThetaMean != 1 {
		t.Errorf("R2 ThetaMean = %v", env3.ThetaMean)
	}
}

func TestModelConfigVigilanceScaling(t *testing.T) {
	envR1, _ := NewEnv(R1, 2, 1000, 1, 0)
	envR2, _ := NewEnv(R2, 2, 1000, 1, 0)
	c1 := envR1.ModelConfig(0.25)
	c2 := envR2.ModelConfig(0.25)
	if c2.Vigilance <= c1.Vigilance {
		t.Errorf("R2 vigilance %v must exceed R1 vigilance %v (wider attribute ranges)", c2.Vigilance, c1.Vigilance)
	}
	// a=0 keeps the default resolution.
	def := envR1.ModelConfig(0)
	if def.ResolutionA != 0.25 {
		t.Errorf("default resolution = %v", def.ResolutionA)
	}
}

func TestRegistryAndFind(t *testing.T) {
	reg := Registry()
	if len(reg) < 10 {
		t.Fatalf("registry has only %d experiments", len(reg))
	}
	ids := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14"} {
		if _, ok := Find(want); !ok {
			t.Errorf("experiment %q not registered", want)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find should fail for unknown ids")
	}
}

func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestFig06TrainingShape(t *testing.T) {
	tables, err := Fig06Training(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("expected tables for R1 and R2, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != len(tiny.Dims) {
			t.Errorf("%s: %d rows", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			steps := parse(t, row[1])
			k := parse(t, row[2])
			if steps <= 0 || k <= 0 {
				t.Errorf("%s: row %v", tab.Title, row)
			}
		}
	}
}

func TestFig07RMSEIncreasesWithA(t *testing.T) {
	tables, err := Fig07RMSEvsA(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			finest := parse(t, row[1])            // a = 0.05
			coarsest := parse(t, row[len(row)-1]) // a = 0.9
			if finest >= coarsest {
				t.Errorf("%s: RMSE at a=0.05 (%v) should be below RMSE at a=0.9 (%v)", tab.Title, finest, coarsest)
			}
		}
	}
}

func TestFig09FVUShape(t *testing.T) {
	tables, err := Fig09FVU(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		if !strings.Contains(tab.Title, "R1") {
			continue
		}
		// At the finest resolution (first row per dim): LLM < REG(global)
		// and PLR <= REG.
		row := tab.Rows[0]
		llm, reg, regLocal, plr := parse(t, row[3]), parse(t, row[4]), parse(t, row[5]), parse(t, row[6])
		if llm >= reg {
			t.Errorf("%s: FVU LLM %v should be below REG %v at the finest a", tab.Title, llm, reg)
		}
		if plr > reg {
			t.Errorf("%s: FVU PLR %v should not exceed REG %v", tab.Title, plr, reg)
		}
		if regLocal > reg {
			t.Errorf("%s: FVU REG-local %v should not exceed global REG %v", tab.Title, regLocal, reg)
		}
		// FVU of LLM grows as a → 1 (compare first and last rows).
		last := tab.Rows[len(tab.Rows)-1]
		if parse(t, last[3]) < llm {
			t.Errorf("%s: FVU LLM should not shrink as a → 1 (%v vs %v)", tab.Title, parse(t, last[3]), llm)
		}
	}
}

func TestFig10PrototypesDecreaseWithA(t *testing.T) {
	tables, err := Fig10CoD(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("expected two panels, got %d", len(tables))
	}
	right := tables[1]
	for _, row := range right.Rows {
		first := parse(t, row[1])
		last := parse(t, row[len(row)-1])
		if first <= last {
			t.Errorf("K at a=0.05 (%v) should exceed K at a=0.9 (%v)", first, last)
		}
	}
	// Left panel: LLM CoD at the finest resolution exceeds the global REG CoD.
	left := tables[0]
	row := left.Rows[0]
	if parse(t, row[3]) <= parse(t, row[4]) {
		t.Errorf("CoD LLM %v should exceed CoD REG %v at finest a", parse(t, row[3]), parse(t, row[4]))
	}
}

func TestFig12ScalabilityShape(t *testing.T) {
	// Timing-based shape check: use a larger dataset sweep than the tiny
	// scale so the exact executor's per-query cost is dominated by the
	// selection size rather than fixed overhead, which keeps the assertion
	// stable even when the test machine is loaded.
	scale := tiny
	scale.DatasetN = 12000
	scale.TrainPairs = 800
	scale.TestQueries = 100
	scale.Q2Queries = 8
	tables, err := Fig12Scalability(scale)
	if err != nil {
		t.Fatal(err)
	}
	q1 := tables[0]
	// The exact executor must slow down as the dataset grows (16x more
	// tuples between the first and last rows) while the LLM stays within a
	// small constant band; compare smallest and largest sizes.
	first := q1.Rows[0]
	last := q1.Rows[len(q1.Rows)-1]
	exactFirst, exactLast := parse(t, first[3]), parse(t, last[3])
	llmFirst, llmLast := parse(t, first[2]), parse(t, last[2])
	if exactLast <= exactFirst {
		t.Errorf("exact Q1 time should grow with dataset size: %v -> %v", exactFirst, exactLast)
	}
	if llmLast > llmFirst*20+0.05 {
		t.Errorf("LLM Q1 time should stay roughly flat: %v -> %v ms", llmFirst, llmLast)
	}
	// Speedup over the exact executor at the largest size.
	if parse(t, last[4]) < 2 {
		t.Errorf("LLM should be at least 2x faster than exact execution at the largest size, got %vx", parse(t, last[4]))
	}
}

func TestFig13And14RadiusImpact(t *testing.T) {
	tables, err := Fig13RadiusImpact(tiny)
	if err != nil {
		t.Fatal(err)
	}
	left := tables[0]
	for _, row := range left.Rows {
		small := parse(t, row[1])          // µθ = 0.05
		large := parse(t, row[len(row)-1]) // µθ = 0.99
		if large >= small {
			t.Errorf("RMSE at µθ=0.99 (%v) should be below RMSE at µθ=0.05 (%v)", large, small)
		}
	}
	right := tables[1]
	// Training effort shrinks as µθ grows: compare first and last rows per dim.
	firstSteps := parse(t, right.Rows[0][2])
	lastSteps := parse(t, right.Rows[len(right.Rows)-1][2])
	if lastSteps > firstSteps {
		t.Errorf("|T| at large µθ (%v) should not exceed |T| at small µθ (%v)", lastSteps, firstSteps)
	}
	traj, err := Fig14RadiusTrajectory(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj[0].Rows) != len(tiny.Dims)*6 {
		t.Errorf("trajectory rows = %d", len(traj[0].Rows))
	}
}

func TestAblationAndGlobalFit(t *testing.T) {
	tables, err := AblationLearning(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 4 {
		t.Fatalf("ablation rows = %d", len(tables[0].Rows))
	}
	// The default (RLS) must not be less accurate than the paper's SGD rule.
	def := parse(t, tables[0].Rows[0][3])
	sgd := parse(t, tables[0].Rows[1][3])
	if def > sgd {
		t.Errorf("default solver RMSE %v should be <= SGD RMSE %v", def, sgd)
	}
	gl, err := GlobalFitBaseline(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range gl[0].Rows {
		if parse(t, row[4]) <= 0 {
			t.Errorf("in-sample global FVU should be positive: %v", row)
		}
	}
}

func TestRunAndRenderAllQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run skipped in -short mode")
	}
	// Smallest possible scale: every experiment must run end to end and
	// produce non-empty output.
	micro := tiny
	micro.DatasetN = 1500
	micro.TrainPairs = 600
	micro.TestQueries = 60
	micro.Q2Queries = 8
	for _, e := range Registry() {
		var buf bytes.Buffer
		if err := RunAndRender(e, micro, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}
