package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a named, runnable reproduction of one paper figure (or one
// ablation).
type Experiment struct {
	// ID is the short identifier used on the command line (e.g. "fig06").
	ID string
	// Description summarizes what the experiment reproduces.
	Description string
	// Run executes the experiment at the given scale.
	Run func(Scale) ([]*Table, error)
}

// Registry returns every available experiment, sorted by ID.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "fig06", Description: "termination criterion Γ vs. training pairs (R1, R2)", Run: Fig06Training},
		{ID: "fig07", Description: "Q1 RMSE vs. quantization coefficient a (R1, R2)", Run: Fig07RMSEvsA},
		{ID: "fig08", Description: "Q1 RMSE vs. testing-set size |V| (R1, R2)", Run: Fig08RMSEvsTestSize},
		{ID: "fig09", Description: "Q2 FVU of LLM/REG/PLR vs. coefficient a (R1, R2)", Run: Fig09FVU},
		{ID: "fig10", Description: "CoD vs. prototypes K and K vs. a (R1)", Run: Fig10CoD},
		{ID: "fig11", Description: "data-value RMSE of LLM/REG/PLR (R1, R2)", Run: Fig11DataValue},
		{ID: "fig12", Description: "Q1/Q2 execution time vs. dataset size (R2)", Run: Fig12Scalability},
		{ID: "fig13", Description: "impact of mean radius µθ on RMSE, |T| and CoD (R1)", Run: Fig13RadiusImpact},
		{ID: "fig14", Description: "trajectory of (|T|, RMSE, CoD) over µθ (R1)", Run: Fig14RadiusTrajectory},
		{ID: "ablation", Description: "solver and learning-rate ablation (R1)", Run: AblationLearning},
		{ID: "globalfit", Description: "global linear fit motivation numbers (R1, R2)", Run: GlobalFitBaseline},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender runs an experiment and renders its tables to w.
func RunAndRender(e Experiment, s Scale, w io.Writer) error {
	tables, err := e.Run(s)
	if err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
