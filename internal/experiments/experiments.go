// Package experiments reproduces every figure of the paper's evaluation
// (Section VI) on the library's own substrates: synthetic R1/R2 datasets,
// the in-memory DBMS with exact Q1/Q2 execution, the REG and PLR baselines
// and the query-driven LLM model. Each experiment returns one or more Tables
// whose rows correspond to the series plotted in the paper, so the command
// `llmq-experiments` (and the root benchmarks) can regenerate the paper's
// results at a configurable scale.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

// Scale controls dataset and workload sizes so experiments can run both as
// fast smoke benchmarks and as fuller reproductions.
type Scale struct {
	// Name labels the scale in output.
	Name string
	// DatasetN is the number of tuples loaded per dataset.
	DatasetN int
	// TrainPairs caps the number of training (query, answer) pairs.
	TrainPairs int
	// TestQueries is the size of the evaluation query set V.
	TestQueries int
	// Q2Queries is the number of queries scored for goodness-of-fit
	// (each requires a per-subspace PLR fit, so it is kept smaller).
	Q2Queries int
	// Dims lists the input dimensionalities evaluated.
	Dims []int
	// Seed seeds every generator.
	Seed int64
}

// Quick is a smoke-test scale: seconds per experiment.
var Quick = Scale{
	Name:        "quick",
	DatasetN:    4000,
	TrainPairs:  2500,
	TestQueries: 300,
	Q2Queries:   30,
	Dims:        []int{2},
	Seed:        1,
}

// Full is the reproduction scale used for EXPERIMENTS.md: minutes per
// experiment on a laptop.
var Full = Scale{
	Name:        "full",
	DatasetN:    40000,
	TrainPairs:  6000,
	TestQueries: 2000,
	Q2Queries:   80,
	Dims:        []int{2, 3, 5},
	Seed:        1,
}

// Table is a rendered experiment result: one table per figure (or per panel).
type Table struct {
	// Title identifies the figure/panel being reproduced.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes records the expected shape from the paper and any deviations.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as fixed-width text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

// DatasetKind selects between the two evaluation datasets.
type DatasetKind string

// The two datasets of the paper's evaluation.
const (
	// R1 is the gas-sensor surrogate: d-dim inputs in [0,1], strongly
	// non-linear response, mild noise.
	R1 DatasetKind = "R1"
	// R2 is the Rosenbrock benchmark: d-dim inputs in [-10,10], N(0,1) noise.
	R2 DatasetKind = "R2"
)

// Env bundles everything one experiment needs for one (dataset, dim) pair.
type Env struct {
	Kind    DatasetKind
	Dim     int
	Dataset *dataset.Dataset
	Harness *workload.Harness
	// ThetaMean is the µθ of the query radius distribution in the dataset's
	// native units.
	ThetaMean float64
}

// NewEnv builds the environment for a dataset kind and dimensionality. The
// query radius distribution follows the paper: θ ~ N(0.1, 0.01) for R1 and
// θ ~ N(1, 0.25) for R2 (≈20% of each attribute range). thetaMeanOverride
// replaces µθ when positive (used by the radius-impact experiments).
func NewEnv(kind DatasetKind, dim, n int, seed int64, thetaMeanOverride float64) (*Env, error) {
	var cfg synth.Config
	var thetaMean, thetaStd float64
	var lo, hi float64
	switch kind {
	case R1:
		cfg = synth.R1Config(n, dim, seed)
		// The paper uses θ ~ N(0.1, 0.01), i.e. ~20% of each attribute range,
		// over 15·10⁶ tuples. At this library's in-memory scales a radius-0.1
		// L2 ball in d > 2 dimensions selects almost no tuples, so the mean
		// radius grows with the dimension to keep subspaces populated (the
		// substitution is recorded in DESIGN.md / EXPERIMENTS.md).
		thetaMean = 0.1 * math.Pow(1.9, float64(dim-2))
		if thetaMean > 0.4 {
			thetaMean = 0.4
		}
		thetaStd = thetaMean
		lo, hi = 0, 1
	case R2:
		cfg = synth.R2Config(n, dim, seed)
		// Same adjustment for the Rosenbrock domain [-10, 10]^d (paper: θ ~ N(1, 0.25)).
		thetaMean = math.Pow(2, float64(dim-2))
		if thetaMean > 4 {
			thetaMean = 4
		}
		thetaStd = thetaMean / 2
		lo, hi = -10, 10
	default:
		return nil, fmt.Errorf("experiments: unknown dataset kind %q", kind)
	}
	if thetaMeanOverride > 0 {
		thetaMean = thetaMeanOverride
	}
	pts, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if kind == R2 {
		// The Rosenbrock output spans roughly [0, 1.2e6] over [-10,10]^d; the
		// paper presents R2 accuracy on a unit scale (its RMSE plots range
		// over fractions of one), so the output attribute is min–max scaled
		// to [0,1]. Inputs keep their native [-10,10] domain.
		lo, hi := pts.Us[0], pts.Us[0]
		for _, u := range pts.Us {
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if hi > lo {
			for i, u := range pts.Us {
				pts.Us[i] = (u - lo) / (hi - lo)
			}
		}
	}
	ds, err := dataset.FromPoints(string(kind), pts.Xs, pts.Us)
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	tab, err := cat.LoadDataset(string(kind), ds)
	if err != nil {
		return nil, err
	}
	ex, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, thetaMean)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.GenConfig{
		Dim:         dim,
		CenterLo:    lo,
		CenterHi:    hi,
		ThetaMean:   thetaMean,
		ThetaStdDev: thetaStd / 2,
		Seed:        seed + 17,
	})
	if err != nil {
		return nil, err
	}
	h, err := workload.NewHarness(ex, gen)
	if err != nil {
		return nil, err
	}
	return &Env{Kind: kind, Dim: dim, Dataset: ds, Harness: h, ThetaMean: thetaMean}, nil
}

// ModelConfig returns the default model configuration for the environment's
// dimensionality with the given resolution coefficient a.
//
// The paper expresses the vigilance through percentages of the value range of
// each dimension: ρ = ||[a·r1, ..., a·rd]||₂ + a·rθ. For R1 all ranges are 1,
// which reduces to the paper's ρ = a(√d + 1); for R2 the attribute range is
// 20 ([-10, 10]) and the radius range is of the order of a few θ.
func (e *Env) ModelConfig(a float64) core.Config {
	cfg := core.DefaultConfig(e.Dim)
	if a > 0 {
		cfg.ResolutionA = a
	}
	rangeX, rangeTheta := 1.0, 1.0
	if e.Kind == R2 {
		rangeX, rangeTheta = 20, 2*e.ThetaMean
	}
	cfg.Vigilance = cfg.ResolutionA * (rangeX*math.Sqrt(float64(e.Dim)) + rangeTheta)
	return cfg
}

// TrainDefault trains a model at resolution a over the environment.
func (e *Env) TrainDefault(a float64, maxPairs int) (*core.Model, core.TrainingResult, []core.TrainingPair, error) {
	return e.Harness.TrainModel(e.ModelConfig(a), maxPairs)
}
