// Package synth generates the synthetic datasets used for evaluation.
//
// The paper evaluates on two datasets:
//
//   - R1: a real 6-attribute gas-sensor calibration dataset (Rodriguez-Lujan
//     et al.) extended with Gaussian noise to 15·10⁶ vectors, scaled to [0,1],
//     with strong non-linear dependencies (global-fit FVU ≈ 4.68). We do not
//     have the proprietary file, so SensorSurrogate provides a highly
//     non-linear multi-attribute response surface with the same qualitative
//     properties (real-valued inputs in [0,1], FVU of a single global linear
//     fit well above 1).
//   - R2: the Rosenbrock benchmark function over [-10,10]^d with N(0,1) noise.
//
// All generators are deterministic given a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// DataFunc is an underlying data function u = g(x).
type DataFunc func(x []float64) float64

// Rosenbrock returns the d-dimensional Rosenbrock function
// g(x) = Σ_{i=1}^{d-1} 100(x_{i+1} - x_i²)² + (1 - x_i)², the R2 benchmark.
// For d == 1 it degenerates to (1-x)².
func Rosenbrock(x []float64) float64 {
	if len(x) == 1 {
		d := 1 - x[0]
		return d * d
	}
	var s float64
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

// SensorSurrogate returns a highly non-linear response surface standing in
// for the gas-sensor dataset R1. Inputs are expected in [0,1]^d; the output
// mixes piecewise trends (absolute-value kinks at attribute-specific break
// points), sensor-like saturation, pairwise interactions and a smooth
// periodic drift, so that
//
//   - a single linear model over a broad subspace explains little (the trend
//     changes inside the subspace, as in Figure 1 (right) of the paper), while
//   - piecewise local linear models capture the per-region trends well —
//
// exactly the regime the paper's R1 evaluation exercises.
func SensorSurrogate(x []float64) float64 {
	var s float64
	for i, xi := range x {
		// Trend change: a kink whose location and direction vary by attribute.
		breakpoint := 0.3 + 0.35*float64(i%3)/2 // 0.3, 0.475, 0.65, 0.3, ...
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		s += sign * 2.5 * math.Abs(xi-breakpoint)
		// Sensor saturation/drift.
		s += 0.5 / (1 + math.Exp(-10*(xi-0.5)))
		// Pairwise interaction between neighbouring attributes.
		if i+1 < len(x) {
			s += 1.5 * xi * x[i+1]
		}
	}
	// Smooth periodic drift on the first attribute (one period per range).
	s += 0.3 * math.Sin(2*math.Pi*x[0])
	return s
}

// Paraboloid returns Σ x_i², a simple convex test function used by unit
// tests where the exact local linear behaviour is easy to reason about.
func Paraboloid(x []float64) float64 {
	var s float64
	for _, xi := range x {
		s += xi * xi
	}
	return s
}

// Plane returns a linear data function b0 + b·x. Useful for tests: every
// local linear model should recover b exactly.
func Plane(b0 float64, b []float64) DataFunc {
	coef := append([]float64(nil), b...)
	return func(x []float64) float64 {
		s := b0
		for i, bi := range coef {
			s += bi * x[i]
		}
		return s
	}
}

// Saddle is the 2-D data function u = x1·(x2+1) used in the paper's
// Examples 2 & 3 (Figure 4). For d > 2 the extra coordinates are ignored;
// it panics for d < 2.
func Saddle(x []float64) float64 {
	if len(x) < 2 {
		panic("synth: Saddle requires at least 2 dimensions")
	}
	return x[0] * (x[1] + 1)
}

// Config describes a synthetic dataset to generate.
type Config struct {
	// Name identifies the dataset (e.g. "R1", "R2").
	Name string
	// N is the number of points to generate.
	N int
	// Dim is the input dimensionality d.
	Dim int
	// Lo and Hi bound each input attribute (points are uniform in [Lo,Hi]^d).
	Lo, Hi float64
	// Func is the underlying data function u = g(x).
	Func DataFunc
	// NoiseStdDev is the standard deviation of additive Gaussian output noise.
	NoiseStdDev float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("synth: N must be positive, got %d", c.N)
	}
	if c.Dim <= 0 {
		return fmt.Errorf("synth: Dim must be positive, got %d", c.Dim)
	}
	if !(c.Hi > c.Lo) {
		return fmt.Errorf("synth: need Hi > Lo, got [%v,%v]", c.Lo, c.Hi)
	}
	if c.Func == nil {
		return fmt.Errorf("synth: Func must not be nil")
	}
	if c.NoiseStdDev < 0 {
		return fmt.Errorf("synth: negative noise std dev %v", c.NoiseStdDev)
	}
	return nil
}

// Points holds generated inputs and outputs: Us[i] = Func(Xs[i]) + noise.
type Points struct {
	Name string
	Dim  int
	Xs   [][]float64
	Us   []float64
}

// Generate produces N points according to the configuration.
func Generate(c Config) (*Points, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	p := &Points{Name: c.Name, Dim: c.Dim, Xs: make([][]float64, c.N), Us: make([]float64, c.N)}
	span := c.Hi - c.Lo
	for i := 0; i < c.N; i++ {
		x := make([]float64, c.Dim)
		for j := range x {
			x[j] = c.Lo + span*rng.Float64()
		}
		u := c.Func(x)
		if c.NoiseStdDev > 0 {
			u += rng.NormFloat64() * c.NoiseStdDev
		}
		p.Xs[i] = x
		p.Us[i] = u
	}
	return p, nil
}

// R1Config returns the default configuration of the R1 surrogate: dim-d
// inputs in [0,1], the SensorSurrogate response with mild noise.
func R1Config(n, dim int, seed int64) Config {
	return Config{
		Name:        "R1",
		N:           n,
		Dim:         dim,
		Lo:          0,
		Hi:          1,
		Func:        SensorSurrogate,
		NoiseStdDev: 0.05,
		Seed:        seed,
	}
}

// R2Config returns the default configuration of the R2 Rosenbrock dataset:
// dim-d inputs in [-10,10], Rosenbrock response with N(0,1) noise, as in the
// paper.
func R2Config(n, dim int, seed int64) Config {
	return Config{
		Name:        "R2",
		N:           n,
		Dim:         dim,
		Lo:          -10,
		Hi:          10,
		Func:        Rosenbrock,
		NoiseStdDev: 1,
		Seed:        seed,
	}
}
