package synth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRosenbrockGlobalMinimum(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 8} {
		x := make([]float64, d)
		for i := range x {
			x[i] = 1
		}
		if got := Rosenbrock(x); got != 0 {
			t.Errorf("d=%d: Rosenbrock(1,...,1) = %v, want 0", d, got)
		}
	}
}

func TestRosenbrockKnownValues(t *testing.T) {
	// d=2: f(0,0) = 100*(0-0)^2 + (1-0)^2 = 1.
	if got := Rosenbrock([]float64{0, 0}); got != 1 {
		t.Errorf("f(0,0) = %v, want 1", got)
	}
	// d=2: f(1,2) = 100*(2-1)^2 + 0 = 100.
	if got := Rosenbrock([]float64{1, 2}); got != 100 {
		t.Errorf("f(1,2) = %v, want 100", got)
	}
	// d=1 degenerate: (1-x)^2.
	if got := Rosenbrock([]float64{3}); got != 4 {
		t.Errorf("f(3) = %v, want 4", got)
	}
}

func TestRosenbrockNonNegative(t *testing.T) {
	f := func(a, b, c float64) bool {
		x := []float64{math.Mod(a, 10), math.Mod(b, 10), math.Mod(c, 10)}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				x[i] = 0
			}
		}
		return Rosenbrock(x) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSensorSurrogateFiniteAndNonLinear(t *testing.T) {
	// Finite on the unit cube.
	p, err := Generate(Config{Name: "t", N: 500, Dim: 6, Lo: 0, Hi: 1, Func: SensorSurrogate, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range p.Us {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			t.Fatalf("point %d: non-finite output %v", i, u)
		}
	}
	// Non-linearity: the function value at the midpoint of two inputs must
	// differ from the midpoint of the values for at least some pairs.
	nonlinear := false
	for i := 0; i+1 < 100; i += 2 {
		a, b := p.Xs[i], p.Xs[i+1]
		mid := make([]float64, len(a))
		for j := range a {
			mid[j] = (a[j] + b[j]) / 2
		}
		lhs := SensorSurrogate(mid)
		rhs := (SensorSurrogate(a) + SensorSurrogate(b)) / 2
		if math.Abs(lhs-rhs) > 1e-3 {
			nonlinear = true
			break
		}
	}
	if !nonlinear {
		t.Error("SensorSurrogate appears linear; it must be non-linear for the R1 surrogate")
	}
}

func TestParaboloidAndSaddle(t *testing.T) {
	if Paraboloid([]float64{3, 4}) != 25 {
		t.Error("Paraboloid(3,4) != 25")
	}
	if Paraboloid(nil) != 0 {
		t.Error("Paraboloid() != 0")
	}
	if Saddle([]float64{2, 3}) != 8 {
		t.Error("Saddle(2,3) != 8")
	}
	if Saddle([]float64{2, 3, 9}) != 8 {
		t.Error("Saddle must ignore extra coordinates")
	}
	defer func() {
		if recover() == nil {
			t.Error("Saddle with d<2 should panic")
		}
	}()
	Saddle([]float64{1})
}

func TestPlane(t *testing.T) {
	g := Plane(1, []float64{2, -3})
	if g([]float64{1, 1}) != 0 {
		t.Errorf("Plane = %v, want 0", g([]float64{1, 1}))
	}
	// Plane must copy the coefficient slice.
	b := []float64{1}
	g2 := Plane(0, b)
	b[0] = 100
	if g2([]float64{1}) != 1 {
		t.Error("Plane must not alias the caller's slice")
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Name: "x", N: 10, Dim: 2, Lo: 0, Hi: 1, Func: Paraboloid}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []Config{
		{N: 0, Dim: 2, Lo: 0, Hi: 1, Func: Paraboloid},
		{N: 10, Dim: 0, Lo: 0, Hi: 1, Func: Paraboloid},
		{N: 10, Dim: 2, Lo: 1, Hi: 1, Func: Paraboloid},
		{N: 10, Dim: 2, Lo: 0, Hi: 1, Func: nil},
		{N: 10, Dim: 2, Lo: 0, Hi: 1, Func: Paraboloid, NoiseStdDev: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateDeterministicAndInRange(t *testing.T) {
	cfg := R1Config(1000, 3, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Xs) != 1000 || len(a.Us) != 1000 || a.Dim != 3 {
		t.Fatalf("unexpected sizes: %d %d %d", len(a.Xs), len(a.Us), a.Dim)
	}
	for i := range a.Xs {
		for j := range a.Xs[i] {
			if a.Xs[i][j] != b.Xs[i][j] {
				t.Fatal("generation is not deterministic for equal seeds")
			}
			if a.Xs[i][j] < 0 || a.Xs[i][j] > 1 {
				t.Fatalf("point %d outside [0,1]: %v", i, a.Xs[i])
			}
		}
		if a.Us[i] != b.Us[i] {
			t.Fatal("outputs not deterministic")
		}
	}
	// Different seed gives different data.
	c, _ := Generate(R1Config(1000, 3, 43))
	same := true
	for i := range a.Us {
		if a.Us[i] != c.Us[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical outputs")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestR2ConfigRanges(t *testing.T) {
	p, err := Generate(R2Config(500, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range p.Xs {
		for _, v := range x {
			if v < -10 || v > 10 {
				t.Fatalf("R2 point out of range: %v", x)
			}
		}
	}
	if p.Name != "R2" {
		t.Errorf("name = %q", p.Name)
	}
}

func TestNoiseChangesOutputs(t *testing.T) {
	base := Config{Name: "clean", N: 200, Dim: 2, Lo: 0, Hi: 1, Func: Paraboloid, Seed: 5}
	noisy := base
	noisy.NoiseStdDev = 0.5
	a, _ := Generate(base)
	b, _ := Generate(noisy)
	diff := 0
	for i := range a.Us {
		if a.Us[i] != b.Us[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("noise had no effect on outputs")
	}
	// Clean outputs equal the function exactly.
	for i := range a.Us {
		if a.Us[i] != Paraboloid(a.Xs[i]) {
			t.Fatal("noise-free generation must equal the data function")
		}
	}
}

func BenchmarkGenerateR2_10k(b *testing.B) {
	cfg := R2Config(10000, 5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
