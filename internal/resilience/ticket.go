package resilience

import (
	"context"
	"sync/atomic"
)

// Ticket is one admission grant whose weight can be returned at most once:
// Release is idempotent, so a handler that wants to free capacity early on
// one path (a streaming response whose client hung up mid-body) can still
// keep an unconditional deferred Release on the normal path without
// double-releasing the semaphore. A plain Acquire/Release pair cannot
// express that — the second Release would panic.
type Ticket struct {
	sem      *Semaphore
	n        int64
	released atomic.Bool
}

// Release returns the ticket's weight to the semaphore. Only the first call
// does anything; later calls (including concurrent ones) are no-ops, and a
// nil ticket is safe to release.
func (t *Ticket) Release() {
	if t == nil || !t.released.CompareAndSwap(false, true) {
		return
	}
	t.sem.Release(t.n)
}

// Weight reports the admitted weight the ticket holds (after clamping).
func (t *Ticket) Weight() int64 { return t.n }

// AcquireTicket is Acquire returning an idempotently releasable grant; the
// admission semantics (FIFO queue, wait budget, ErrOverloaded) are exactly
// Acquire's. On error the ticket is nil and nothing is held.
func (s *Semaphore) AcquireTicket(ctx context.Context, n int64) (*Ticket, error) {
	n = s.clamp(n)
	if err := s.Acquire(ctx, n); err != nil {
		return nil, err
	}
	return &Ticket{sem: s, n: n}, nil
}
