package resilience

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTicketReleaseIsIdempotent(t *testing.T) {
	s := NewSemaphore(4, time.Second)
	tk, err := s.AcquireTicket(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tk.Weight(); got != 3 {
		t.Fatalf("Weight() = %d, want 3", got)
	}
	if inflight, _, _ := s.Stats(); inflight != 3 {
		t.Fatalf("inflight after acquire = %d, want 3", inflight)
	}
	tk.Release()
	tk.Release() // a second release must be a no-op, not a panic or a double-credit
	tk.Release()
	if inflight, _, _ := s.Stats(); inflight != 0 {
		t.Fatalf("inflight after releases = %d, want 0", inflight)
	}
	// The semaphore's own over-release guard still fires for raw misuse,
	// proving the ticket is what absorbed the duplicates above.
	defer func() {
		if recover() == nil {
			t.Error("raw over-release did not panic")
		}
	}()
	s.Release(1)
}

// TestTicketConcurrentRelease hammers Release from many goroutines: exactly
// one must win, so the semaphore never underflows. The /query/batch handler
// depends on this — the deferred release and the client-gone early release
// race by design.
func TestTicketConcurrentRelease(t *testing.T) {
	s := NewSemaphore(8, time.Second)
	for round := 0; round < 100; round++ {
		tk, err := s.AcquireTicket(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tk.Release()
			}()
		}
		wg.Wait()
		if inflight, _, _ := s.Stats(); inflight != 0 {
			t.Fatalf("round %d: inflight = %d, want 0", round, inflight)
		}
	}
}

func TestTicketClampsLikeAcquire(t *testing.T) {
	s := NewSemaphore(2, time.Second)
	tk, err := s.AcquireTicket(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// An oversized request is clamped to capacity (same contract as
	// Acquire); the ticket must remember the clamped weight or its release
	// would underflow.
	if got := tk.Weight(); got != 2 {
		t.Fatalf("clamped Weight() = %d, want 2", got)
	}
	tk.Release()
	if inflight, _, _ := s.Stats(); inflight != 0 {
		t.Fatalf("inflight = %d, want 0", inflight)
	}
}

func TestTicketAcquireFailure(t *testing.T) {
	s := NewSemaphore(1, time.Millisecond)
	held, err := s.AcquireTicket(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireTicket(context.Background(), 1); err == nil {
		t.Fatal("second acquire should time out against a full semaphore")
	}
	held.Release()
	// A nil ticket (the error path) tolerates Release.
	var nilTk *Ticket
	nilTk.Release()
}
