package resilience

import (
	"context"
	"net/http"
	"time"
)

// WithTimeout wraps a handler so every request's context carries a
// deadline d from the moment the handler is entered: work that honors
// ctx (the exec.*Ctx plumbing, the batch worker pools) stops at the
// deadline instead of running on for a client that has given up. d ≤ 0
// returns h unchanged.
func WithTimeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ServerTimeouts bounds how long one connection may hold server resources
// in each phase of its life; zero fields take the defaults noted. These
// are the slow-client (slow-loris) defenses: without them a client that
// trickles its request header, stalls mid-body or never reads the
// response pins a goroutine and a connection forever.
type ServerTimeouts struct {
	// ReadHeader bounds reading the request line and header. Default 10s.
	ReadHeader time.Duration
	// Read bounds reading the whole request including the body. Default 30s.
	Read time.Duration
	// Write bounds writing the response, counted from the end of the
	// header read. It must exceed the longest admitted request deadline or
	// the server truncates its own slow answers. Default 90s.
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests. Default 120s.
	Idle time.Duration
}

func (t ServerTimeouts) withDefaults() ServerTimeouts {
	if t.ReadHeader <= 0 {
		t.ReadHeader = 10 * time.Second
	}
	if t.Read <= 0 {
		t.Read = 30 * time.Second
	}
	if t.Write <= 0 {
		t.Write = 90 * time.Second
	}
	if t.Idle <= 0 {
		t.Idle = 120 * time.Second
	}
	return t
}

// NewHTTPServer builds an http.Server over h with the phase timeouts
// applied — the one constructor both cmd/llmq serve and the chaos harness
// use, so the production listener and the one under attack in tests share
// the same defenses.
func NewHTTPServer(h http.Handler, t ServerTimeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
