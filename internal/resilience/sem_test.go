package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreAdmitsUpToCapacity(t *testing.T) {
	s := NewSemaphore(4, 0)
	for i := 0; i < 4; i++ {
		if err := s.Acquire(context.Background(), 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire past capacity with zero budget: err = %v, want ErrOverloaded", err)
	}
	s.Release(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestSemaphoreWeightedAndClamped(t *testing.T) {
	s := NewSemaphore(8, 0)
	if err := s.Acquire(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	// 5 + 4 > 8: must shed.
	if err := s.Acquire(context.Background(), 4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overweight acquire: err = %v", err)
	}
	s.Release(5)
	// Heavier than the whole capacity: clamped, runs alone.
	if err := s.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("clamped acquire: %v", err)
	}
	if s.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded while a clamped full-capacity holder is in")
	}
	s.Release(100)
	if !s.TryAcquire(1) {
		t.Fatal("TryAcquire failed on an empty semaphore")
	}
}

func TestSemaphoreWaitBudget(t *testing.T) {
	s := NewSemaphore(1, 50*time.Millisecond)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Released within the budget: the waiter is admitted.
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Release(1)
	}()
	start := time.Now()
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire within budget: %v", err)
	}
	if time.Since(start) > 45*time.Millisecond {
		t.Errorf("admission took %v, release was after 10ms", time.Since(start))
	}
	// Never released: the budget elapses and the request is shed.
	start = time.Now()
	if err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("budget-exhausted acquire: err = %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("shed after %v, budget is 50ms", d)
	}
	_, _, shed := s.Stats()
	if shed == 0 {
		t.Error("shed counter did not advance")
	}
	s.Release(1)
}

func TestSemaphoreContextCancel(t *testing.T) {
	s := NewSemaphore(1, time.Minute)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := s.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: err = %v", err)
	}
	// The cancelled waiter must have left the queue: a release admits
	// nobody and the slot is free again.
	s.Release(1)
	if !s.TryAcquire(1) {
		t.Fatal("slot not free after cancelled waiter + release")
	}
	s.Release(1)
}

func TestSemaphoreFIFONoStarvation(t *testing.T) {
	s := NewSemaphore(4, time.Second)
	if err := s.Acquire(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// A heavy waiter queues first, then light ones; FIFO means the heavy
	// one is admitted first even though the light ones would fit sooner.
	ready := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(ready)
		if err := s.Acquire(context.Background(), 4); err != nil {
			t.Errorf("heavy acquire: %v", err)
			return
		}
		mu.Lock()
		order = append(order, 4)
		mu.Unlock()
		s.Release(4)
	}()
	<-ready
	time.Sleep(20 * time.Millisecond) // let the heavy waiter enqueue
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background(), 1); err != nil {
				t.Errorf("light acquire: %v", err)
				return
			}
			mu.Lock()
			order = append(order, 1)
			mu.Unlock()
			s.Release(1)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Release(4)
	wg.Wait()
	if len(order) != 3 || order[0] != 4 {
		t.Errorf("admission order %v, want the heavy (4) waiter first", order)
	}
}

func TestSemaphoreSaturatedSignal(t *testing.T) {
	s := NewSemaphore(2, 500*time.Millisecond)
	if err := s.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if s.Saturated() {
		t.Fatal("saturated with an empty queue")
	}
	var started sync.WaitGroup
	var done sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			started.Done()
			if err := s.Acquire(context.Background(), 1); err == nil {
				s.Release(1)
			}
		}()
	}
	started.Wait()
	deadline := time.Now().Add(time.Second)
	for !s.Saturated() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !s.Saturated() {
		t.Fatal("queue holding a full capacity of weight not reported saturated")
	}
	if ra := s.RetryAfter(); ra < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", ra)
	}
	s.Release(2)
	done.Wait()
}

// TestSemaphoreFloodRace hammers one small semaphore from many goroutines
// under -race: the admitted weight must never exceed capacity and every
// admission must be released.
func TestSemaphoreFloodRace(t *testing.T) {
	s := NewSemaphore(3, time.Millisecond)
	var peak atomic.Int64
	var inflight atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := int64(1 + (g+i)%3)
				if err := s.Acquire(context.Background(), w); err != nil {
					continue
				}
				cur := inflight.Add(w)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inflight.Add(-w)
				s.Release(w)
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Errorf("admitted weight peaked at %d, capacity is 3", p)
	}
	if cur, waiting, _ := s.Stats(); cur != 0 || waiting != 0 {
		t.Errorf("semaphore not drained: inflight=%d waiting=%d", cur, waiting)
	}
}
