// Package resilience holds the overload-protection primitives of the
// serving tier: a weighted admission semaphore with a bounded wait budget
// (load shedding), a jittered-exponential-backoff HTTP retry loop that
// honors Retry-After, a per-request deadline middleware, and a hardened
// http.Server factory with the slow-client timeouts every production
// listener needs. internal/serve composes them into admission control,
// brownout and fail-safe behaviour; cmd/llmq wires them to flags.
//
// The design principle throughout is that overload must produce a cheap,
// well-formed refusal — a 429 with a Retry-After the client's backoff loop
// understands — rather than an ever-growing queue of goroutines: the
// refusal path allocates nothing per request beyond the response itself,
// and every bound (concurrency, wait budget, deadline) is explicit.
package resilience

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned by Semaphore.Acquire when the wait budget is
// exhausted before capacity frees up: the caller should shed the request
// (HTTP 429) rather than queue it further.
var ErrOverloaded = errors.New("resilience: overloaded, admission wait budget exhausted")

// Semaphore is a weighted admission semaphore with a bounded wait budget.
// Each admitted request holds weight units of the capacity until Release;
// an Acquire that cannot be admitted within the wait budget fails with
// ErrOverloaded instead of queueing unboundedly — the semaphore is a load
// shedder, not a queue. Waiters are served FIFO, so a stream of light
// requests cannot starve a heavy one already waiting (and vice versa: the
// heavy sheet ahead in line blocks lighter arrivals behind it, which is
// what bounds its own wait).
type Semaphore struct {
	capacity int64
	budget   time.Duration

	mu      sync.Mutex
	cur     int64      // admitted weight
	waiting int64      // queued weight (waiters not yet admitted)
	shed    int64      // cumulative requests refused (monitoring)
	q       *list.List // of *waiter, FIFO
}

// waiter is one queued Acquire; ready is closed under the mutex exactly
// when the grant is accounted, so a racing timeout can detect it.
type waiter struct {
	n       int64
	ready   chan struct{}
	granted bool
}

// NewSemaphore creates a semaphore admitting at most capacity units of
// weight concurrently, with each Acquire willing to wait at most budget
// for admission (≤ 0 means shed immediately when full). capacity must be
// positive.
func NewSemaphore(capacity int64, budget time.Duration) *Semaphore {
	if capacity <= 0 {
		panic("resilience: semaphore capacity must be positive")
	}
	return &Semaphore{capacity: capacity, budget: budget, q: list.New()}
}

// Capacity returns the admission capacity in weight units.
func (s *Semaphore) Capacity() int64 { return s.capacity }

// clamp bounds a request weight to the full capacity: a request heavier
// than the whole budget (a maximal batch sheet against a small cap) is
// admitted at full capacity — it simply runs alone — instead of never.
func (s *Semaphore) clamp(n int64) int64 {
	if n < 1 {
		return 1
	}
	if n > s.capacity {
		return s.capacity
	}
	return n
}

// Acquire admits n units of weight, waiting at most the configured budget
// for capacity. It returns nil on admission (the caller must Release the
// same weight), ErrOverloaded when the budget elapses first, and ctx.Err()
// when the context is done first. n is clamped to [1, capacity].
func (s *Semaphore) Acquire(ctx context.Context, n int64) error {
	n = s.clamp(n)
	s.mu.Lock()
	if s.q.Len() == 0 && s.cur+n <= s.capacity {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	if s.budget <= 0 {
		s.shed++
		s.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.q.PushBack(w)
	s.waiting += n
	s.mu.Unlock()

	timer := time.NewTimer(s.budget)
	defer timer.Stop()
	var cause error
	select {
	case <-w.ready:
		return nil
	case <-timer.C:
		cause = ErrOverloaded
	case <-ctx.Done():
		cause = ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.granted {
		// The grant raced the timeout: keep the admission (the caller
		// sees nil and proceeds) rather than bounce capacity around.
		return nil
	}
	s.q.Remove(elem)
	s.waiting -= n
	if errors.Is(cause, ErrOverloaded) {
		s.shed++
	}
	return cause
}

// TryAcquire admits n units only if that needs no waiting at all.
func (s *Semaphore) TryAcquire(n int64) bool {
	n = s.clamp(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.q.Len() == 0 && s.cur+n <= s.capacity {
		s.cur += n
		return true
	}
	return false
}

// Release returns n units of weight and admits as many queued waiters, in
// FIFO order, as now fit. n must match the weight passed to the Acquire
// being released (it is clamped identically).
func (s *Semaphore) Release(n int64) {
	n = s.clamp(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur -= n
	if s.cur < 0 {
		panic("resilience: semaphore released more than acquired")
	}
	for e := s.q.Front(); e != nil; e = s.q.Front() {
		w := e.Value.(*waiter)
		if s.cur+w.n > s.capacity {
			break
		}
		s.q.Remove(e)
		s.waiting -= w.n
		s.cur += w.n
		w.granted = true
		close(w.ready)
	}
}

// Saturated reports whether the admission queue holds at least a full
// capacity's worth of waiting weight — the signal the serving tier uses to
// enter brownout: the line is already one whole server deep, so expensive
// work should be shed before cheap work is.
func (s *Semaphore) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting >= s.capacity
}

// Stats returns the instantaneous admitted weight, waiting weight and the
// cumulative shed count, for /readyz and metrics.
func (s *Semaphore) Stats() (inflight, waiting, shed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.waiting, s.shed
}

// RetryAfter suggests how long a shed client should back off before
// retrying, scaled by how deep the waiting line is relative to capacity
// and capped at 30 seconds. The serving tier emits it as the Retry-After
// header (integer seconds, minimum 1) on 429/503 responses.
func (s *Semaphore) RetryAfter() time.Duration {
	s.mu.Lock()
	waiting := s.waiting
	s.mu.Unlock()
	d := time.Duration(1+waiting/s.capacity) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
