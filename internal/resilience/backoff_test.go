package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndJitter(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.2}
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		want := b.Base << uint(attempt)
		if want > b.Max {
			want = b.Max
		}
		lo := time.Duration(float64(want) * 0.75)
		hi := time.Duration(float64(want) * 1.25)
		for i := 0; i < 20; i++ {
			d := b.Delay(attempt)
			if d < lo || d > hi {
				t.Fatalf("Delay(%d) = %v outside jitter band [%v, %v]", attempt, d, lo, hi)
			}
		}
		if want > prevMax {
			prevMax = want
		}
	}
	if prevMax != b.Max {
		t.Fatalf("delays never reached the cap %v", b.Max)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("7"); !ok || d != 7*time.Second {
		t.Errorf("seconds form: %v %v", d, ok)
	}
	if _, ok := ParseRetryAfter(""); ok {
		t.Error("empty header parsed")
	}
	if _, ok := ParseRetryAfter("soon"); ok {
		t.Error("garbage header parsed")
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(future); !ok || d <= 0 || d > 3*time.Second {
		t.Errorf("http-date form: %v %v", d, ok)
	}
}

// TestDoRetriesUntilAdmitted sheds the first two attempts with 429 +
// Retry-After and admits the third; Do must return the 200 and must have
// waited at least the hinted second.
func TestDoRetriesUntilAdmitted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	b := Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Tries: 5}
	resp, err := Do(context.Background(), ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}
}

// TestDoHonorsRetryAfterHint verifies the server's Retry-After stretches
// the sleep beyond the computed backoff (capped at Max).
func TestDoHonorsRetryAfterHint(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Second, Tries: 3, Jitter: -1}
	start := time.Now()
	resp, err := Do(context.Background(), ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retried after %v, Retry-After hinted 1s", elapsed)
	}
}

// TestDoGivesUpAfterTries returns the final shed response to the caller
// when every attempt is refused.
func TestDoGivesUpAfterTries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	b := Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Tries: 3}
	resp, err := Do(context.Background(), ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("final status = %d, want the last 429 handed back", resp.StatusCode)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}
}

func TestDoContextCancelStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	b := Backoff{Base: time.Millisecond, Max: time.Minute, Tries: 10}
	start := time.Now()
	_, err := Do(ctx, ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	}, b)
	if err == nil {
		t.Fatal("cancelled Do returned nil error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Do ignored the context for %v", time.Since(start))
	}
}

func TestWithTimeoutAttachesDeadline(t *testing.T) {
	var sawDeadline atomic.Bool
	h := WithTimeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		sawDeadline.Store(ok)
	}), 50*time.Millisecond)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if !sawDeadline.Load() {
		t.Fatal("handler context carries no deadline")
	}
	// d <= 0 is the identity.
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := WithTimeout(base, 0); got == nil {
		t.Fatal("WithTimeout(0) returned nil")
	}
}
