package resilience

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Backoff configures the client-side retry loop: jittered exponential
// delays between attempts, with server-supplied Retry-After hints taking
// precedence over the computed delay. The zero value takes the defaults
// noted on each field.
type Backoff struct {
	// Base is the first retry delay; each further retry doubles it.
	// Default 100ms.
	Base time.Duration
	// Max caps the computed delay and any Retry-After hint. Default 5s.
	Max time.Duration
	// Tries is the total number of attempts (the first try included).
	// Default 5.
	Tries int
	// Jitter spreads each delay uniformly over ±Jitter of itself, so a
	// shed fleet of clients does not retry in lockstep against the same
	// admission window. Default 0.2; negative disables jitter.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Tries <= 0 {
		b.Tries = 5
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	return b
}

// backoffRNG jitters retry delays; protected because one client may retry
// from many goroutines.
var (
	backoffMu  sync.Mutex
	backoffRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Delay returns the jittered delay before retry attempt (0-based: the
// delay between the first failure and the second try is Delay(0)).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := b.Base << uint(attempt)
	if d <= 0 || d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		backoffMu.Lock()
		f := 1 + b.Jitter*(2*backoffRNG.Float64()-1)
		backoffMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// ParseRetryAfter parses a Retry-After header value: either delay-seconds
// or an HTTP-date. The ok result is false when the header is absent or
// unparseable (the client then falls back to its computed backoff).
func ParseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// retryStatus reports whether an HTTP status is a shed the server wants
// retried later: 429 (admission refused) and 503 (overloaded/read-only).
func retryStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Do runs an HTTP request with retries: transport errors and 429/503
// responses are retried up to Tries attempts, sleeping the larger of the
// jittered exponential delay and the response's Retry-After hint (both
// capped at Max) between attempts. newReq must produce a fresh request per
// attempt (bodies are consumed); each request is bound to ctx. The final
// response — success, non-retryable error status, or the last shed — is
// returned to the caller to interpret, with its body intact; retried
// responses are drained and closed here.
func Do(ctx context.Context, c *http.Client, newReq func() (*http.Request, error), b Backoff) (*http.Response, error) {
	b = b.withDefaults()
	if c == nil {
		c = http.DefaultClient
	}
	var lastErr error
	for attempt := 0; attempt < b.Tries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, b.retryDelay(attempt-1, lastErr)); err != nil {
				return nil, err
			}
		}
		req, err := newReq()
		if err != nil {
			return nil, err
		}
		resp, err := c.Do(req.WithContext(ctx))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		if !retryStatus(resp.StatusCode) || attempt == b.Tries-1 {
			return resp, nil
		}
		lastErr = &shedError{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	return nil, fmt.Errorf("resilience: request failed after %d attempts: %w", b.Tries, lastErr)
}

// shedError carries a retried 429/503 between attempts so the next delay
// can honor its Retry-After hint, and so the terminal error names the
// status the server kept answering with.
type shedError struct {
	code       int
	retryAfter string
}

func (e *shedError) Error() string {
	return fmt.Sprintf("server shed the request with status %d", e.code)
}

// retryDelay is the sleep before the (attempt+1)-th try: the computed
// jittered delay, or the server's Retry-After hint when that is longer,
// both capped at Max.
func (b Backoff) retryDelay(attempt int, lastErr error) time.Duration {
	d := b.Delay(attempt)
	if shed, ok := lastErr.(*shedError); ok {
		if hint, ok := ParseRetryAfter(shed.retryAfter); ok && hint > d {
			d = hint
		}
	}
	if d > b.Max {
		d = b.Max
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
