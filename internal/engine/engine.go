// Package engine implements the in-memory DBMS substrate that exact queries
// run against: a catalog of relations, columnar storage for float64
// attributes, bulk loading from datasets, scans and simple predicate
// filtering. It stands in for the PostgreSQL server the paper uses to serve
// the exact Q1/Q2 answers during training and as the REG baseline.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"llmq/internal/dataset"
)

// Errors returned by the engine.
var (
	ErrTableExists    = errors.New("engine: table already exists")
	ErrTableNotFound  = errors.New("engine: table not found")
	ErrColumnNotFound = errors.New("engine: column not found")
	ErrArity          = errors.New("engine: wrong number of values")
)

// Schema describes the columns of a relation. All attributes are float64;
// the analytics workload in the paper is purely numeric.
type Schema struct {
	// Columns holds the ordered column names.
	Columns []string
}

// NewSchema builds a schema from column names. Names must be unique and
// non-empty.
func NewSchema(columns ...string) (Schema, error) {
	if len(columns) == 0 {
		return Schema{}, errors.New("engine: schema needs at least one column")
	}
	seen := make(map[string]bool, len(columns))
	for _, c := range columns {
		if c == "" {
			return Schema{}, errors.New("engine: empty column name")
		}
		if seen[c] {
			return Schema{}, fmt.Errorf("engine: duplicate column %q", c)
		}
		seen[c] = true
	}
	return Schema{Columns: append([]string(nil), columns...)}, nil
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or an error.
func (s Schema) ColumnIndex(name string) (int, error) {
	for i, c := range s.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrColumnNotFound, name)
}

// Table is a columnar relation: one []float64 per column, row-aligned.
type Table struct {
	name   string
	schema Schema
	cols   [][]float64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	cols := make([][]float64, schema.Arity())
	return &Table{name: name, schema: schema, cols: cols}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// Insert appends one row. The number of values must match the schema arity.
func (t *Table) Insert(values ...float64) error {
	if len(values) != t.schema.Arity() {
		return fmt.Errorf("%w: got %d, want %d", ErrArity, len(values), t.schema.Arity())
	}
	for i, v := range values {
		t.cols[i] = append(t.cols[i], v)
	}
	return nil
}

// BulkInsert appends many rows at once; each row must match the schema arity.
func (t *Table) BulkInsert(rows [][]float64) error {
	for i, r := range rows {
		if len(r) != t.schema.Arity() {
			return fmt.Errorf("%w: row %d has %d values, want %d", ErrArity, i, len(r), t.schema.Arity())
		}
	}
	for _, r := range rows {
		for i, v := range r {
			t.cols[i] = append(t.cols[i], v)
		}
	}
	return nil
}

// Column returns the backing slice of the named column. The slice must be
// treated as read-only by callers.
func (t *Table) Column(name string) ([]float64, error) {
	i, err := t.schema.ColumnIndex(name)
	if err != nil {
		return nil, err
	}
	return t.cols[i], nil
}

// ColumnAt returns the backing slice of the i-th column.
func (t *Table) ColumnAt(i int) []float64 {
	if i < 0 || i >= len(t.cols) {
		panic(fmt.Sprintf("engine: column index %d out of range [0,%d)", i, len(t.cols)))
	}
	return t.cols[i]
}

// Row materializes the i-th row as a new slice.
func (t *Table) Row(i int) []float64 {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("engine: row %d out of range [0,%d)", i, t.Len()))
	}
	out := make([]float64, t.schema.Arity())
	for j := range t.cols {
		out[j] = t.cols[j][i]
	}
	return out
}

// Scan calls fn for every row id in order. If fn returns false the scan
// stops early.
func (t *Table) Scan(fn func(rowID int) bool) {
	n := t.Len()
	for i := 0; i < n; i++ {
		if !fn(i) {
			return
		}
	}
}

// Project returns, for the given row ids, the values of the named columns as
// row-major slices. It is the engine's projection operator.
func (t *Table) Project(rowIDs []int, columns ...string) ([][]float64, error) {
	idx := make([]int, len(columns))
	for j, c := range columns {
		i, err := t.schema.ColumnIndex(c)
		if err != nil {
			return nil, err
		}
		idx[j] = i
	}
	out := make([][]float64, len(rowIDs))
	for k, r := range rowIDs {
		if r < 0 || r >= t.Len() {
			return nil, fmt.Errorf("engine: row id %d out of range [0,%d)", r, t.Len())
		}
		row := make([]float64, len(idx))
		for j, i := range idx {
			row[j] = t.cols[i][r]
		}
		out[k] = row
	}
	return out, nil
}

// Filter returns the ids of the rows for which pred returns true. pred
// receives the materialized row.
func (t *Table) Filter(pred func(row []float64) bool) []int {
	var ids []int
	row := make([]float64, t.schema.Arity())
	n := t.Len()
	for i := 0; i < n; i++ {
		for j := range t.cols {
			row[j] = t.cols[j][i]
		}
		if pred(row) {
			ids = append(ids, i)
		}
	}
	return ids
}

// Catalog is a thread-safe registry of tables — the "database".
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new empty table.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	t := NewTable(name, schema)
	c.tables[name] = t
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTableNotFound, name)
	}
	return t, nil
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrTableNotFound, name)
	}
	delete(c.tables, name)
	return nil
}

// List returns the table names in sorted order.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadDataset creates a table named after the dataset (or name if non-empty)
// whose columns are the dataset's input attributes followed by the output
// attribute, and bulk-loads every observation.
func (c *Catalog) LoadDataset(name string, ds *dataset.Dataset) (*Table, error) {
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("engine: invalid dataset: %w", err)
	}
	if name == "" {
		name = ds.Name
	}
	cols := append(append([]string(nil), ds.InputNames...), ds.OutputName)
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t, err := c.Create(name, schema)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(cols))
	for i := range ds.Xs {
		copy(row, ds.Xs[i])
		row[len(cols)-1] = ds.Us[i]
		if err := t.Insert(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}
