package engine

import (
	"errors"
	"testing"

	"llmq/internal/dataset"
)

func mustSchema(t *testing.T, cols ...string) Schema {
	t.Helper()
	s, err := NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchema(t *testing.T) {
	s := mustSchema(t, "x1", "x2", "u")
	if s.Arity() != 3 {
		t.Errorf("arity = %d", s.Arity())
	}
	if i, err := s.ColumnIndex("x2"); err != nil || i != 1 {
		t.Errorf("ColumnIndex = %d, %v", i, err)
	}
	if _, err := s.ColumnIndex("nope"); !errors.Is(err, ErrColumnNotFound) {
		t.Errorf("missing column err = %v", err)
	}
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate columns accepted")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty column name accepted")
	}
}

func TestTableInsertAndAccess(t *testing.T) {
	tab := NewTable("points", mustSchema(t, "x", "y", "u"))
	if tab.Name() != "points" || tab.Len() != 0 {
		t.Fatalf("fresh table: %q len %d", tab.Name(), tab.Len())
	}
	if err := tab.Insert(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(4, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(1, 2); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	if tab.Len() != 2 {
		t.Errorf("len = %d", tab.Len())
	}
	col, err := tab.Column("y")
	if err != nil || col[1] != 5 {
		t.Errorf("Column = %v, %v", col, err)
	}
	if _, err := tab.Column("zz"); !errors.Is(err, ErrColumnNotFound) {
		t.Errorf("missing column err = %v", err)
	}
	if got := tab.ColumnAt(2); got[0] != 3 {
		t.Errorf("ColumnAt = %v", got)
	}
	row := tab.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row = %v", row)
	}
	if tab.Schema().Arity() != 3 {
		t.Error("Schema accessor broken")
	}
}

func TestTablePanics(t *testing.T) {
	tab := NewTable("p", mustSchema(t, "a"))
	_ = tab.Insert(1)
	cases := []func(){
		func() { tab.Row(5) },
		func() { tab.Row(-1) },
		func() { tab.ColumnAt(3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBulkInsert(t *testing.T) {
	tab := NewTable("p", mustSchema(t, "a", "b"))
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if err := tab.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Errorf("len = %d", tab.Len())
	}
	// A bad row anywhere must reject the whole batch before inserting.
	bad := [][]float64{{1, 2}, {3}}
	if err := tab.BulkInsert(bad); !errors.Is(err, ErrArity) {
		t.Errorf("bad batch err = %v", err)
	}
	if tab.Len() != 3 {
		t.Errorf("failed batch must not partially insert; len = %d", tab.Len())
	}
}

func TestScanAndFilterAndProject(t *testing.T) {
	tab := NewTable("p", mustSchema(t, "x", "u"))
	for i := 0; i < 10; i++ {
		_ = tab.Insert(float64(i), float64(i*i))
	}
	var visited int
	tab.Scan(func(rowID int) bool {
		visited++
		return rowID < 4 // stop early after seeing row 4
	})
	if visited != 5 {
		t.Errorf("early-stop scan visited %d rows", visited)
	}
	ids := tab.Filter(func(row []float64) bool { return row[0] >= 7 })
	if len(ids) != 3 || ids[0] != 7 {
		t.Errorf("Filter = %v", ids)
	}
	proj, err := tab.Project(ids, "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 3 || proj[0][0] != 49 {
		t.Errorf("Project = %v", proj)
	}
	if _, err := tab.Project(ids, "nope"); !errors.Is(err, ErrColumnNotFound) {
		t.Errorf("project missing column err = %v", err)
	}
	if _, err := tab.Project([]int{99}, "x"); err == nil {
		t.Error("out-of-range row id accepted")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := mustSchema(t, "x", "u")
	tab, err := c.Create("pts", s)
	if err != nil || tab == nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Create("pts", s); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	got, err := c.Get("pts")
	if err != nil || got != tab {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := c.Get("zz"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("missing get err = %v", err)
	}
	if _, err := c.Create("more", s); err != nil {
		t.Fatal(err)
	}
	names := c.List()
	if len(names) != 2 || names[0] != "more" || names[1] != "pts" {
		t.Errorf("List = %v", names)
	}
	if err := c.Drop("pts"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("pts"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("double drop err = %v", err)
	}
}

func TestLoadDataset(t *testing.T) {
	ds, err := dataset.FromPoints("seis", [][]float64{{1, 2}, {3, 4}}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	ds.InputNames = []string{"lon", "lat"}
	ds.OutputName = "pwave"
	c := NewCatalog()
	tab, err := c.LoadDataset("", ds)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "seis" || tab.Len() != 2 {
		t.Errorf("loaded table %q with %d rows", tab.Name(), tab.Len())
	}
	u, err := tab.Column("pwave")
	if err != nil || u[1] != 20 {
		t.Errorf("output column = %v, %v", u, err)
	}
	lat, _ := tab.Column("lat")
	if lat[0] != 2 {
		t.Errorf("lat = %v", lat)
	}
	// Named load and duplicate detection.
	if _, err := c.LoadDataset("other", ds); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadDataset("other", ds); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate load err = %v", err)
	}
	// Invalid dataset is rejected.
	bad := ds.Clone()
	bad.Us = bad.Us[:1]
	if _, err := c.LoadDataset("bad", bad); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestConcurrentCatalogAccess(t *testing.T) {
	c := NewCatalog()
	s := mustSchema(t, "a")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_, _ = c.Create("t", s)
			_ = c.Drop("t")
		}
	}()
	for i := 0; i < 100; i++ {
		_, _ = c.Get("t")
		_ = c.List()
	}
	<-done
}

func BenchmarkInsert(b *testing.B) {
	s, _ := NewSchema("x1", "x2", "x3", "u")
	tab := NewTable("bench", s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Insert(1, 2, 3, 4)
	}
}

func BenchmarkFilter10k(b *testing.B) {
	s, _ := NewSchema("x", "u")
	tab := NewTable("bench", s)
	for i := 0; i < 10000; i++ {
		_ = tab.Insert(float64(i), float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Filter(func(row []float64) bool { return row[0] > 5000 })
	}
}
