package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if !close(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", r.Mean())
	}
	if !close(r.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v", r.Variance())
	}
	if !close(r.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v", r.StdDev())
	}
	if !close(r.SampleVariance(), 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v", r.SampleVariance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Variance() != 0 || r.SampleVariance() != 0 {
		t.Error("variance of single sample should be 0")
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Error("min/max of single sample")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
	}
	var all, a, b Running
	for i, x := range xs {
		all.Add(x)
		if i < 70 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() || !close(a.Mean(), all.Mean(), 1e-10) || !close(a.Variance(), all.Variance(), 1e-10) {
		t.Errorf("merged = (%d, %v, %v), sequential = (%d, %v, %v)",
			a.N(), a.Mean(), a.Variance(), all.N(), all.Mean(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
	// Merging into an empty accumulator copies, merging an empty is a no-op.
	var empty Running
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Error("merge into empty failed")
	}
	before := a
	var empty2 Running
	a.Merge(empty2)
	if a != before {
		t.Error("merging empty should be a no-op")
	}
}

func TestMeanVariance(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	v, err := Variance([]float64{1, 2, 3, 4})
	if err != nil || !close(v, 1.25, 1e-12) {
		t.Errorf("Variance = %v, %v", v, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v", err)
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Variance(nil) err = %v", err)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	actual := []float64{1, 2, 3}
	pred := []float64{1, 2, 3}
	if e, _ := RMSE(actual, pred); e != 0 {
		t.Errorf("RMSE perfect = %v", e)
	}
	e, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || !close(e, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v, %v", e, err)
	}
	m, err := MAE([]float64{0, 0}, []float64{3, -4})
	if err != nil || m != 3.5 {
		t.Errorf("MAE = %v, %v", m, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("RMSE length mismatch should error")
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("RMSE empty err = %v", err)
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("MAE length mismatch should error")
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MAE empty err = %v", err)
	}
}

func TestSSRTSSFit(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	pred := []float64{1.5, 1.5, 3.5, 3.5}
	ssr, err := SSR(actual, pred)
	if err != nil || !close(ssr, 1, 1e-12) {
		t.Errorf("SSR = %v, %v", ssr, err)
	}
	tss, err := TSS(actual)
	if err != nil || !close(tss, 5, 1e-12) {
		t.Errorf("TSS = %v, %v", tss, err)
	}
	g, err := Fit(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !close(g.FVU, 0.2, 1e-12) || !close(g.CoD, 0.8, 1e-12) || g.N != 4 {
		t.Errorf("Fit = %+v", g)
	}
	if _, err := SSR([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("SSR length mismatch should error")
	}
	if _, err := TSS(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("TSS empty err = %v", err)
	}
	if _, err := Fit(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Fit empty err = %v", err)
	}
	if _, err := Fit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Fit length mismatch should error")
	}
}

func TestFitConstantResponse(t *testing.T) {
	g, err := Fit([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.FVU != 0 || g.CoD != 1 {
		t.Errorf("perfect constant fit = %+v", g)
	}
	g, err = Fit([]float64{2, 2, 2}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g.FVU, 1) || !math.IsInf(g.CoD, -1) {
		t.Errorf("bad constant fit = %+v", g)
	}
}

func TestFitWorseThanMeanGivesFVUAboveOne(t *testing.T) {
	// Predictions anti-correlated with the actual values: FVU > 1, CoD < 0,
	// matching the paper's interpretation of a bad fit.
	actual := []float64{0, 1, 2, 3}
	pred := []float64{3, 2, 1, 0}
	g, err := Fit(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if g.FVU <= 1 {
		t.Errorf("FVU = %v, want > 1", g.FVU)
	}
	if g.CoD >= 0 {
		t.Errorf("CoD = %v, want < 0", g.CoD)
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	med, err := Median(xs)
	if err != nil || med != 3 {
		t.Errorf("Median = %v, %v", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Errorf("extremes = %v %v", q0, q1)
	}
	q25, _ := Quantile(xs, 0.25)
	if q25 != 2 {
		t.Errorf("q25 = %v", q25)
	}
	// Interpolated quantile.
	q, _ := Quantile([]float64{0, 10}, 0.75)
	if !close(q, 7.5, 1e-12) {
		t.Errorf("interpolated = %v", q)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q should error")
	}
	single, _ := Quantile([]float64{7}, 0.3)
	if single != 7 {
		t.Errorf("single-element quantile = %v", single)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile must not modify its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if !close(s.StdDev, math.Sqrt(2), 1e-12) {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestCovariancePearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	c, err := Covariance(xs, ys)
	if err != nil || !close(c, 2.5, 1e-12) {
		t.Errorf("Covariance = %v, %v", c, err)
	}
	p, err := Pearson(xs, ys)
	if err != nil || !close(p, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v", p, err)
	}
	pneg, _ := Pearson(xs, []float64{8, 6, 4, 2})
	if !close(pneg, -1, 1e-12) {
		t.Errorf("Pearson negative = %v", pneg)
	}
	pzero, _ := Pearson(xs, []float64{1, 1, 1, 1})
	if pzero != 0 {
		t.Errorf("Pearson with constant series = %v", pzero)
	}
	if _, err := Covariance([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Covariance(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Pearson length mismatch should error")
	}
}

// Property: Running mean/variance agree with the batch formulas.
func TestPropertyRunningMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp to a sane range to avoid overflow-driven false negatives.
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		bm, _ := Mean(xs)
		bv, _ := Variance(xs)
		scale := 1.0 + math.Abs(bm)
		return close(r.Mean(), bm, 1e-6*scale) && close(r.Variance(), bv, 1e-5*(1+bv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RMSE is symmetric in its two arguments. Inputs are clamped so
// squared differences cannot overflow.
func TestPropertyRMSESymmetry(t *testing.T) {
	clampAll := func(in [6]float64) []float64 {
		out := make([]float64, len(in))
		for i, x := range in {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			out[i] = math.Mod(x, 1e6)
		}
		return out
	}
	f := func(a, b [6]float64) bool {
		x, y := clampAll(a), clampAll(b)
		e1, err1 := RMSE(x, y)
		e2, err2 := RMSE(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return close(e1, e2, 1e-9*(1+e1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CoD = 1 - FVU whenever TSS > 0.
func TestPropertyCoDComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		n := 3 + rng.Intn(20)
		actual := make([]float64, n)
		pred := make([]float64, n)
		for j := range actual {
			actual[j] = rng.NormFloat64()
			pred[j] = rng.NormFloat64()
		}
		g, err := Fit(actual, pred)
		if err != nil {
			t.Fatal(err)
		}
		if !close(g.CoD, 1-g.FVU, 1e-12) {
			t.Fatalf("CoD %v != 1-FVU %v", g.CoD, 1-g.FVU)
		}
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
	}
}
