// Package stats implements the statistical kernels used by the model and the
// evaluation harness: streaming mean/variance accumulation, prediction error
// metrics (RMSE), and goodness-of-fit metrics (SSR, TSS, FVU, CoD/R²) exactly
// as defined in Section VI of the paper.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by metrics that require at least one observation.
var ErrEmpty = errors.New("stats: no observations")

// Running accumulates count, mean and variance of a stream of observations
// using Welford's algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 when fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the unbiased sample variance (0 when fewer than 2).
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	min := r.min
	if o.min < min {
		min = o.min
	}
	max := r.max
	if o.max > max {
		max = o.max
	}
	*r = Running{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// RMSE returns the root mean squared error between actual and predicted
// values (metrics A1/A2 of the paper).
func RMSE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("stats: RMSE length mismatch %d vs %d", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range actual {
		d := actual[i] - predicted[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(actual))), nil
}

// MAE returns the mean absolute error between actual and predicted values.
func MAE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("stats: MAE length mismatch %d vs %d", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range actual {
		s += math.Abs(actual[i] - predicted[i])
	}
	return s / float64(len(actual)), nil
}

// SSR returns the sum of squared residuals Σ(u_i - û_i)².
func SSR(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("stats: SSR length mismatch %d vs %d", len(actual), len(predicted))
	}
	var s float64
	for i := range actual {
		d := actual[i] - predicted[i]
		s += d * d
	}
	return s, nil
}

// TSS returns the total sum of squares Σ(u_i - ū)².
func TSS(actual []float64) (float64, error) {
	m, err := Mean(actual)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, u := range actual {
		d := u - m
		s += d * d
	}
	return s, nil
}

// GoodnessOfFit bundles the paper's Q2 evaluation metrics over one data
// subspace: the Fraction of Variance Unexplained s = SSR/TSS and the
// Coefficient of Determination R² = 1 - s.
type GoodnessOfFit struct {
	SSR float64
	TSS float64
	FVU float64
	CoD float64
	N   int
}

// Fit computes FVU and CoD for a set of actual values and their
// approximations over a data subspace. When the actual values are constant
// (TSS == 0), FVU is reported as 0 for a perfect approximation and +Inf
// otherwise, mirroring the convention in internal/linalg.
func Fit(actual, predicted []float64) (GoodnessOfFit, error) {
	if len(actual) != len(predicted) {
		return GoodnessOfFit{}, fmt.Errorf("stats: Fit length mismatch %d vs %d", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return GoodnessOfFit{}, ErrEmpty
	}
	ssr, err := SSR(actual, predicted)
	if err != nil {
		return GoodnessOfFit{}, err
	}
	tss, err := TSS(actual)
	if err != nil {
		return GoodnessOfFit{}, err
	}
	g := GoodnessOfFit{SSR: ssr, TSS: tss, N: len(actual)}
	if tss == 0 {
		if ssr == 0 {
			g.FVU = 0
			g.CoD = 1
		} else {
			g.FVU = math.Inf(1)
			g.CoD = math.Inf(-1)
		}
		return g, nil
	}
	g.FVU = ssr / tss
	g.CoD = 1 - g.FVU
	return g, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Summary describes a slice of observations; it is used by the experiment
// harness to report series statistics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	med, err := Median(xs)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:      r.N(),
		Mean:   r.Mean(),
		StdDev: r.StdDev(),
		Min:    r.Min(),
		Max:    r.Max(),
		Median: med,
	}, nil
}

// Covariance returns the population covariance between xs and ys.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: covariance length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)), nil
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	vx, _ := Variance(xs)
	vy, _ := Variance(ys)
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}
