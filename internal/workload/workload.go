// Package workload generates analytics query workloads and drives the
// train/evaluate loop of the paper's system context (Figure 2): random dNN
// queries with uniformly distributed centres and Gaussian radii are executed
// exactly against the DBMS substrate to obtain (query, answer) pairs; a
// prefix T of the stream trains the LLM model and a disjoint set V evaluates
// predictability (RMSE), goodness of fit (FVU, CoD) and efficiency.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"llmq/internal/core"
	"llmq/internal/exec"
	"llmq/internal/plr"
	"llmq/internal/stats"
	"llmq/internal/vector"
)

// ErrNoUsableQueries is returned when every generated query selected an
// empty data subspace.
var ErrNoUsableQueries = errors.New("workload: no generated query selected any tuples")

// GenConfig configures the random query generator.
type GenConfig struct {
	// Dim is the dimensionality of the query centres.
	Dim int
	// CenterLo and CenterHi bound each centre coordinate (uniform).
	CenterLo, CenterHi float64
	// ThetaMean and ThetaStdDev parameterize the Gaussian radius
	// θ ~ N(µθ, σθ²); draws are truncated to be strictly positive.
	ThetaMean, ThetaStdDev float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// Validate checks the generator configuration.
func (c GenConfig) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("workload: Dim must be positive, got %d", c.Dim)
	}
	if !(c.CenterHi > c.CenterLo) {
		return fmt.Errorf("workload: need CenterHi > CenterLo, got [%v,%v]", c.CenterLo, c.CenterHi)
	}
	if c.ThetaMean <= 0 {
		return fmt.Errorf("workload: ThetaMean must be positive, got %v", c.ThetaMean)
	}
	if c.ThetaStdDev < 0 {
		return fmt.Errorf("workload: ThetaStdDev must be non-negative, got %v", c.ThetaStdDev)
	}
	return nil
}

// Generator produces random analytics queries.
type Generator struct {
	cfg GenConfig
	rng *rand.Rand
}

// NewGenerator creates a generator from the configuration.
func NewGenerator(cfg GenConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// sampleTheta draws one radius θ ~ N(µθ, σθ²) truncated to θ > 0 by
// resampling a magnitude around the mean — the single radius rule shared
// by the stationary and drifting generators, so the two workloads can
// never silently diverge in their radius distribution.
func (c GenConfig) sampleTheta(rng *rand.Rand) float64 {
	theta := c.ThetaMean + c.ThetaStdDev*rng.NormFloat64()
	if theta <= 0 {
		theta = c.ThetaMean * (0.5 + 0.5*rng.Float64())
	}
	return theta
}

// Next returns the next random query.
func (g *Generator) Next() core.Query {
	center := make([]float64, g.cfg.Dim)
	span := g.cfg.CenterHi - g.cfg.CenterLo
	for j := range center {
		center[j] = g.cfg.CenterLo + span*g.rng.Float64()
	}
	return core.Query{Center: vector.Of(center...), Theta: g.cfg.sampleTheta(g.rng)}
}

// Queries returns n random queries.
func (g *Generator) Queries(n int) []core.Query {
	out := make([]core.Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// QuerySource produces an analytics query stream: the stationary Generator
// or the non-stationary DriftingGenerator. Sources are stateful and
// deterministic for their seed.
type QuerySource interface {
	// Config returns the source's base generator configuration.
	Config() GenConfig
	// Next returns the next query of the stream.
	Next() core.Query
	// Queries returns the next n queries of the stream.
	Queries(n int) []core.Query
}

// DriftConfig parameterizes a non-stationary query workload: the centre
// window slides through the input space as the stream advances — the
// concept-drift regime that bounded-capacity training
// (core.Config.MaxPrototypes) exists to track. The window ping-pongs along
// the diagonal of [CenterLo, CenterHi], so arbitrarily long streams keep
// moving instead of walking off the data.
type DriftConfig struct {
	// Window is the edge length of the sliding centre window, as a fraction
	// of the [CenterLo, CenterHi] span (0 < Window ≤ 1).
	Window float64
	// Velocity is the window displacement per generated query, as a
	// fraction of the span: after 1/Velocity queries the window has crossed
	// the space once.
	Velocity float64
}

// Validate checks the drift configuration.
func (c DriftConfig) Validate() error {
	if c.Window <= 0 || c.Window > 1 {
		return fmt.Errorf("workload: Window must be in (0, 1], got %v", c.Window)
	}
	if c.Velocity <= 0 {
		return fmt.Errorf("workload: Velocity must be positive, got %v", c.Velocity)
	}
	return nil
}

// DriftingGenerator produces a non-stationary query stream: query centres
// are uniform inside a window that slides along the diagonal of the centre
// box as queries are drawn; radii follow the base configuration's Gaussian.
type DriftingGenerator struct {
	cfg   GenConfig
	drift DriftConfig
	rng   *rand.Rand
	t     int
}

// NewDriftingGenerator creates a drifting source from a base generator
// configuration and a drift profile.
func NewDriftingGenerator(cfg GenConfig, drift DriftConfig) (*DriftingGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := drift.Validate(); err != nil {
		return nil, err
	}
	return &DriftingGenerator{cfg: cfg, drift: drift, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the base generator configuration.
func (g *DriftingGenerator) Config() GenConfig { return g.cfg }

// Position returns the window's current low corner position in [0, 1−Window]
// (fraction of the centre span) — checkpoints use it to evaluate against
// the stream's current region.
func (g *DriftingGenerator) Position() float64 {
	v := math.Mod(g.drift.Velocity*float64(g.t), 2)
	if v > 1 {
		v = 2 - v
	}
	return v * (1 - g.drift.Window)
}

// Next returns the next query and advances the window.
func (g *DriftingGenerator) Next() core.Query {
	span := g.cfg.CenterHi - g.cfg.CenterLo
	lo := g.cfg.CenterLo + g.Position()*span
	w := g.drift.Window * span
	g.t++
	center := make([]float64, g.cfg.Dim)
	for j := range center {
		center[j] = lo + w*g.rng.Float64()
	}
	return core.Query{Center: vector.Of(center...), Theta: g.cfg.sampleTheta(g.rng)}
}

// Queries returns the next n queries of the drifting stream.
func (g *DriftingGenerator) Queries(n int) []core.Query {
	out := make([]core.Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Harness couples a query source with the exact executor over one
// relation; it produces training pairs and evaluates trained models against
// the exact baselines.
type Harness struct {
	Exec *exec.Executor
	Gen  QuerySource
}

// NewHarness builds a harness. Both the executor and query source are
// required, and their dimensionalities must agree.
func NewHarness(e *exec.Executor, g QuerySource) (*Harness, error) {
	if e == nil || g == nil {
		return nil, errors.New("workload: executor and query source are required")
	}
	if len(e.InputNames()) != g.Config().Dim {
		return nil, fmt.Errorf("workload: executor has %d input attributes, generator dim is %d",
			len(e.InputNames()), g.Config().Dim)
	}
	return &Harness{Exec: e, Gen: g}, nil
}

func toRadius(q core.Query) exec.RadiusQuery {
	return exec.RadiusQuery{Center: q.Center, Theta: q.Theta}
}

// TrainingPairs executes n random queries exactly and returns the resulting
// (query, answer) pairs. Queries whose subspace is empty are skipped (they
// produce no answer in the paper's setting either); the method keeps
// generating until n usable pairs exist or 10·n attempts have been made.
//
// Queries are generated sequentially (the generator stream stays
// deterministic for a given seed) but executed in chunks through the
// executor's parallel batch path, so producing the training stream scales
// with the available cores. Each chunk draws exactly the number of pairs
// still needed, so both the resulting pairs AND the generator stream are
// identical to a one-query-at-a-time loop — callers that keep drawing from
// the same generator (e.g. for evaluation sets) see the same queries either
// way.
func (h *Harness) TrainingPairs(n int) ([]core.TrainingPair, error) {
	pairs := make([]core.TrainingPair, 0, n)
	attempts := 0
	for len(pairs) < n && attempts < 10*n {
		chunk := n - len(pairs)
		if rem := 10*n - attempts; chunk > rem {
			chunk = rem
		}
		queries := h.Gen.Queries(chunk)
		attempts += chunk
		rqs := make([]exec.RadiusQuery, len(queries))
		for i, q := range queries {
			rqs[i] = toRadius(q)
		}
		results, errs := h.Exec.MeanBatch(rqs)
		for i := range queries {
			if len(pairs) == n {
				break
			}
			if errors.Is(errs[i], exec.ErrEmptySubspace) {
				continue
			}
			if errs[i] != nil {
				return nil, errs[i]
			}
			pairs = append(pairs, core.TrainingPair{Query: queries[i], Answer: results[i].Mean})
		}
	}
	if len(pairs) == 0 {
		return nil, ErrNoUsableQueries
	}
	return pairs, nil
}

// TrainModel generates up to maxPairs training pairs and trains a fresh
// model with the given configuration, returning the model, the training
// result and the pairs actually produced.
func (h *Harness) TrainModel(cfg core.Config, maxPairs int) (*core.Model, core.TrainingResult, []core.TrainingPair, error) {
	pairs, err := h.TrainingPairs(maxPairs)
	if err != nil {
		return nil, core.TrainingResult{}, nil, err
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, core.TrainingResult{}, nil, err
	}
	// Bulk ingestion of a fresh model: TrainBatch applies the identical
	// sequential updates as Train but publishes one serving snapshot for
	// the whole stream instead of one per pair.
	res, err := m.TrainBatch(pairs)
	if err != nil {
		return nil, core.TrainingResult{}, nil, err
	}
	return m, res, pairs, nil
}

// Q1Eval reports the outcome of evaluating Q1 predictions over a testing set
// (the paper's A1 metric plus efficiency numbers).
type Q1Eval struct {
	// RMSE is the root mean squared error of the predicted mean values.
	RMSE float64
	// N is the number of evaluated queries (empty subspaces are skipped).
	N int
	// ModelTime and ExactTime are the average per-query execution times of
	// the LLM prediction and the exact in-DBMS execution.
	ModelTime time.Duration
	ExactTime time.Duration
}

// EvaluateQ1 compares the model's Q1 predictions with exact answers over the
// given queries.
func (h *Harness) EvaluateQ1(m *core.Model, queries []core.Query) (Q1Eval, error) {
	var actual, predicted []float64
	var modelTime, exactTime time.Duration
	for _, q := range queries {
		res, err := h.Exec.Mean(toRadius(q))
		if errors.Is(err, exec.ErrEmptySubspace) {
			continue
		}
		if err != nil {
			return Q1Eval{}, err
		}
		exactTime += res.Elapsed
		start := time.Now()
		yhat, err := m.PredictMean(q)
		if err != nil {
			return Q1Eval{}, err
		}
		modelTime += time.Since(start)
		actual = append(actual, res.Mean)
		predicted = append(predicted, yhat)
	}
	if len(actual) == 0 {
		return Q1Eval{}, ErrNoUsableQueries
	}
	rmse, err := stats.RMSE(actual, predicted)
	if err != nil {
		return Q1Eval{}, err
	}
	n := len(actual)
	return Q1Eval{
		RMSE:      rmse,
		N:         n,
		ModelTime: modelTime / time.Duration(n),
		ExactTime: exactTime / time.Duration(n),
	}, nil
}

// Q2Eval reports goodness-of-fit and efficiency of the competitors over a
// testing set of Q2 queries, all scored on the same data subspaces:
//
//   - LLM: the trained model's list of local linear models (no data access
//     to answer; scored against the subspace data afterwards),
//   - REG: a single global linear regression fitted once over the whole
//     relation and evaluated inside each subspace — this matches the
//     behaviour of the paper's REG baseline, whose reported FVU exceeds 1,
//   - REGLocal: a per-subspace OLS fit (a strictly stronger exact baseline
//     than the paper's, included for completeness),
//   - PLR: the piecewise linear regression baseline fitted per subspace.
type Q2Eval struct {
	// FVU and CoD are averaged over the evaluated queries, per method.
	LLMFVU, REGFVU, REGLocalFVU, PLRFVU float64
	LLMCoD, REGCoD, REGLocalCoD, PLRCoD float64
	// MeanModels is the average number |S| of local models returned per
	// query by the LLM method.
	MeanModels float64
	// N is the number of evaluated queries.
	N int
	// Per-query average execution times. REGTime measures the per-subspace
	// exact regression (selection + OLS), the cost an in-DBMS user pays for
	// an exact Q2 answer.
	LLMTime, REGTime, PLRTime time.Duration
}

// Q2Options configures EvaluateQ2.
type Q2Options struct {
	// PLR configures the piecewise baseline; its MaxBasis is typically set
	// to the trained model's K to mirror the paper's "max models = K" rule.
	PLR plr.Options
	// SkipPLR disables the (expensive) PLR baseline.
	SkipPLR bool
	// MinSubspace skips queries selecting fewer tuples than this (a
	// regression needs at least d+2 points to be meaningful). Defaults to
	// 2·(d+2) when zero.
	MinSubspace int
}

// EvaluateQ2 scores the three methods over the same data subspaces.
func (h *Harness) EvaluateQ2(m *core.Model, queries []core.Query, opts Q2Options) (Q2Eval, error) {
	dim := len(h.Exec.InputNames())
	minSub := opts.MinSubspace
	if minSub <= 0 {
		minSub = 2 * (dim + 2)
	}
	var out Q2Eval
	var llmFVU, regFVU, regLocalFVU, plrFVU stats.Running
	var llmCoD, regCoD, regLocalCoD, plrCoD stats.Running
	var models stats.Running
	global, err := h.Exec.GlobalRegression()
	if err != nil {
		return Q2Eval{}, err
	}
	for _, q := range queries {
		rq := toRadius(q)
		xs, us, err := h.Exec.SubspaceValues(rq)
		if errors.Is(err, exec.ErrEmptySubspace) {
			continue
		}
		if err != nil {
			return Q2Eval{}, err
		}
		if len(xs) < minSub {
			continue
		}
		// REG: exact global OLS over the subspace.
		regStart := time.Now()
		reg, err := h.Exec.Regression(rq)
		if err != nil {
			continue
		}
		out.REGTime += time.Since(regStart)

		// LLM: list of local models, no data access for the answer itself;
		// the goodness of fit is then scored against the subspace data.
		llmStart := time.Now()
		locals, err := m.Regression(q)
		if err != nil {
			return Q2Eval{}, err
		}
		out.LLMTime += time.Since(llmStart)

		// PLR baseline.
		var plrModel *plr.Model
		if !opts.SkipPLR {
			plrStart := time.Now()
			plrModel, err = plr.Fit(xs, us, opts.PLR)
			if err != nil {
				plrModel = nil
			} else {
				out.PLRTime += time.Since(plrStart)
			}
		}

		globalPred := make([]float64, len(xs))
		localPred := make([]float64, len(xs))
		var plrPred []float64
		if plrModel != nil {
			plrPred = make([]float64, len(xs))
		}
		for i, x := range xs {
			globalPred[i] = global.Predict(x)
			localPred[i] = reg.Predict(x)
			if plrModel != nil {
				plrPred[i] = plrModel.Predict(x)
			}
		}
		// LLM goodness of fit: the piecewise predictor induced by the list S
		// of local models (each point predicted by the local model whose
		// prototype is closest), scored over the whole subspace so it is
		// directly comparable with the baselines.
		if fvu, cod, ok := scoreLocalModels(locals, xs, us, dim); ok {
			llmFVU.Add(fvu)
			llmCoD.Add(cod)
		}
		if g, err := stats.Fit(us, globalPred); err == nil && finite(g.FVU) {
			regFVU.Add(g.FVU)
			regCoD.Add(g.CoD)
		}
		if g, err := stats.Fit(us, localPred); err == nil && finite(g.FVU) {
			regLocalFVU.Add(g.FVU)
			regLocalCoD.Add(g.CoD)
		}
		if plrModel != nil {
			if g, err := stats.Fit(us, plrPred); err == nil && finite(g.FVU) {
				plrFVU.Add(g.FVU)
				plrCoD.Add(g.CoD)
			}
		}
		models.Add(float64(len(locals)))
		out.N++
	}
	if out.N == 0 {
		return Q2Eval{}, ErrNoUsableQueries
	}
	out.LLMFVU, out.REGFVU, out.REGLocalFVU, out.PLRFVU = llmFVU.Mean(), regFVU.Mean(), regLocalFVU.Mean(), plrFVU.Mean()
	out.LLMCoD, out.REGCoD, out.REGLocalCoD, out.PLRCoD = llmCoD.Mean(), regCoD.Mean(), regLocalCoD.Mean(), plrCoD.Mean()
	out.MeanModels = models.Mean()
	n := time.Duration(out.N)
	out.LLMTime /= n
	out.REGTime /= n
	if !opts.SkipPLR {
		out.PLRTime /= n
	}
	return out, nil
}

// scoreLocalModels computes the Q2 goodness-of-fit of the list S of local
// models over the subspace data: each point is predicted by the local model
// whose prototype centre is closest (the partition induced by the
// quantization, i.e. the piecewise-linear predictor S describes), and one
// FVU/CoD is computed over the whole subspace so the number is directly
// comparable with REG and PLR scored on the same data. It reports ok=false
// when nothing can be scored.
func scoreLocalModels(locals []core.LocalLinear, xs [][]float64, us []float64, dim int) (fvu, cod float64, ok bool) {
	if len(locals) == 0 || len(xs) == 0 {
		return 0, 0, false
	}
	_ = dim
	pred := make([]float64, len(xs))
	for i, x := range xs {
		best := 0
		bestDist := math.Inf(1)
		for k, lm := range locals {
			var s float64
			for j := range x {
				d := x[j] - lm.Center[j]
				s += d * d
			}
			if s < bestDist {
				best, bestDist = k, s
			}
		}
		pred[i] = locals[best].Predict(x)
	}
	g, err := stats.Fit(us, pred)
	if err != nil || !finite(g.FVU) {
		return 0, 0, false
	}
	return g.FVU, g.CoD, true
}

// predictWithLocals fuses a list of local linear models into a point
// prediction using their normalized overlap weights; extrapolated answers
// (single model with weight 0) fall back to that model.
func predictWithLocals(locals []core.LocalLinear, x []float64) float64 {
	if len(locals) == 1 && locals[0].Weight == 0 {
		return locals[0].Predict(x)
	}
	var sum, wsum float64
	for _, lm := range locals {
		sum += lm.Weight * lm.Predict(x)
		wsum += lm.Weight
	}
	if wsum == 0 {
		// Degenerate: average the local models.
		for _, lm := range locals {
			sum += lm.Predict(x)
		}
		return sum / float64(len(locals))
	}
	return sum
}

// DataValueEval reports the data-value prediction accuracy (metric A2,
// Figure 11) of the three methods over points drawn from test subspaces.
type DataValueEval struct {
	LLMRMSE, REGRMSE, PLRRMSE float64
	// N is the number of evaluated points.
	N int
}

// EvaluateDataValue predicts u = g(x) for points inside each test query's
// subspace with all three methods and reports their RMSE.
func (h *Harness) EvaluateDataValue(m *core.Model, queries []core.Query, opts Q2Options, pointsPerQuery int, seed int64) (DataValueEval, error) {
	if pointsPerQuery <= 0 {
		pointsPerQuery = 5
	}
	dim := len(h.Exec.InputNames())
	minSub := opts.MinSubspace
	if minSub <= 0 {
		minSub = 2 * (dim + 2)
	}
	rng := rand.New(rand.NewSource(seed))
	var actual, llmPred, regPred, plrPred []float64
	for _, q := range queries {
		rq := toRadius(q)
		xs, us, err := h.Exec.SubspaceValues(rq)
		if errors.Is(err, exec.ErrEmptySubspace) {
			continue
		}
		if err != nil {
			return DataValueEval{}, err
		}
		if len(xs) < minSub {
			continue
		}
		reg, err := h.Exec.Regression(rq)
		if err != nil {
			continue
		}
		var plrModel *plr.Model
		if !opts.SkipPLR {
			if pm, err := plr.Fit(xs, us, opts.PLR); err == nil {
				plrModel = pm
			}
		}
		for k := 0; k < pointsPerQuery; k++ {
			i := rng.Intn(len(xs))
			x, u := xs[i], us[i]
			uhat, err := m.PredictValue(q, x)
			if err != nil {
				return DataValueEval{}, err
			}
			actual = append(actual, u)
			llmPred = append(llmPred, uhat)
			regPred = append(regPred, reg.Predict(x))
			if plrModel != nil {
				plrPred = append(plrPred, plrModel.Predict(x))
			} else {
				plrPred = append(plrPred, reg.Predict(x))
			}
		}
	}
	if len(actual) == 0 {
		return DataValueEval{}, ErrNoUsableQueries
	}
	out := DataValueEval{N: len(actual)}
	var err error
	if out.LLMRMSE, err = stats.RMSE(actual, llmPred); err != nil {
		return DataValueEval{}, err
	}
	if out.REGRMSE, err = stats.RMSE(actual, regPred); err != nil {
		return DataValueEval{}, err
	}
	if out.PLRRMSE, err = stats.RMSE(actual, plrPred); err != nil {
		return DataValueEval{}, err
	}
	return out, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
