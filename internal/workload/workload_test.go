package workload

import (
	"errors"
	"math"
	"testing"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/plr"
	"llmq/internal/synth"
	"llmq/internal/vector"
)

// newHarness builds a harness over a synthetic dataset.
func newHarness(t testing.TB, n, dim int, fn synth.DataFunc, thetaMean float64, seed int64) *Harness {
	t.Helper()
	pts, err := synth.Generate(synth.Config{Name: "w", N: n, Dim: dim, Lo: 0, Hi: 1, Func: fn, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("w", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	tab, err := cat.LoadDataset("w", ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, thetaMean)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GenConfig{Dim: dim, CenterLo: 0, CenterHi: 1, ThetaMean: thetaMean, ThetaStdDev: thetaMean / 4, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(e, g)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestGenConfigValidate(t *testing.T) {
	valid := GenConfig{Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.1, ThetaStdDev: 0.01}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []GenConfig{
		{Dim: 0, CenterLo: 0, CenterHi: 1, ThetaMean: 0.1},
		{Dim: 2, CenterLo: 1, CenterHi: 1, ThetaMean: 0.1},
		{Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0},
		{Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.1, ThetaStdDev: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewGenerator(bad[0]); err == nil {
		t.Error("NewGenerator accepted invalid config")
	}
}

func TestGeneratorDeterministicAndInRange(t *testing.T) {
	cfg := GenConfig{Dim: 3, CenterLo: -1, CenterHi: 1, ThetaMean: 0.2, ThetaStdDev: 0.05, Seed: 7}
	g1, _ := NewGenerator(cfg)
	g2, _ := NewGenerator(cfg)
	for i := 0; i < 500; i++ {
		a, b := g1.Next(), g2.Next()
		if !a.Center.Equal(b.Center) || a.Theta != b.Theta {
			t.Fatal("generator is not deterministic")
		}
		for _, v := range a.Center {
			if v < -1 || v > 1 {
				t.Fatalf("centre out of range: %v", a.Center)
			}
		}
		if a.Theta <= 0 {
			t.Fatalf("non-positive radius: %v", a.Theta)
		}
	}
	qs := g1.Queries(10)
	if len(qs) != 10 {
		t.Errorf("Queries(10) returned %d", len(qs))
	}
	if g1.Config().Dim != 3 {
		t.Error("Config accessor broken")
	}
}

func TestGeneratorTruncatesNegativeRadii(t *testing.T) {
	// Huge σθ relative to µθ forces the truncation path.
	g, _ := NewGenerator(GenConfig{Dim: 1, CenterLo: 0, CenterHi: 1, ThetaMean: 0.01, ThetaStdDev: 10, Seed: 3})
	for i := 0; i < 1000; i++ {
		if q := g.Next(); q.Theta <= 0 {
			t.Fatalf("generated non-positive θ = %v", q.Theta)
		}
	}
}

func TestNewHarnessValidation(t *testing.T) {
	h := newHarness(t, 500, 2, synth.Paraboloid, 0.2, 1)
	if _, err := NewHarness(nil, h.Gen); err == nil {
		t.Error("nil executor accepted")
	}
	if _, err := NewHarness(h.Exec, nil); err == nil {
		t.Error("nil generator accepted")
	}
	wrongDim, _ := NewGenerator(GenConfig{Dim: 5, CenterLo: 0, CenterHi: 1, ThetaMean: 0.1})
	if _, err := NewHarness(h.Exec, wrongDim); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestTrainingPairsMatchExactExecution(t *testing.T) {
	h := newHarness(t, 2000, 2, synth.SensorSurrogate, 0.2, 2)
	pairs, err := h.TrainingPairs(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i, p := range pairs[:10] {
		res, err := h.Exec.Mean(exec.RadiusQuery{Center: p.Query.Center, Theta: p.Query.Theta})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Mean-p.Answer) > 1e-12 {
			t.Fatalf("pair %d: answer %v, exact %v", i, p.Answer, res.Mean)
		}
	}
}

func TestTrainingPairsSkipsEmptySubspaces(t *testing.T) {
	// Tiny radius over sparse data: many queries select nothing; the harness
	// must still deliver usable pairs (or a clear error if none exist).
	h := newHarness(t, 50, 2, synth.Paraboloid, 0.02, 3)
	pairs, err := h.TrainingPairs(20)
	if err != nil && !errors.Is(err, ErrNoUsableQueries) {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if math.IsNaN(p.Answer) {
			t.Fatal("NaN answer in training pairs")
		}
	}
}

func TestTrainModelEndToEnd(t *testing.T) {
	h := newHarness(t, 4000, 2, synth.SensorSurrogate, 0.2, 4)
	m, res, pairs, err := h.TrainModel(core.DefaultConfig(2), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() == 0 || res.Steps == 0 || len(pairs) == 0 {
		t.Fatalf("training produced K=%d steps=%d pairs=%d", m.K(), res.Steps, len(pairs))
	}
	// Q1 evaluation on unseen queries.
	eval, err := h.EvaluateQ1(m, h.Gen.Queries(300))
	if err != nil {
		t.Fatal(err)
	}
	if eval.N == 0 {
		t.Fatal("no queries evaluated")
	}
	if eval.RMSE <= 0 || math.IsNaN(eval.RMSE) {
		t.Errorf("RMSE = %v", eval.RMSE)
	}
	if eval.ModelTime <= 0 || eval.ExactTime <= 0 {
		t.Errorf("timings = %v / %v", eval.ModelTime, eval.ExactTime)
	}
	// The model answers queries orders of magnitude faster than exact
	// execution on any non-trivial dataset; require at least "not slower".
	if eval.ModelTime > eval.ExactTime {
		t.Errorf("model (%v) slower than exact execution (%v)", eval.ModelTime, eval.ExactTime)
	}
}

func TestEvaluateQ1AccuracyBeatsGlobalMean(t *testing.T) {
	h := newHarness(t, 6000, 2, synth.SensorSurrogate, 0.15, 5)
	m, _, pairs, err := h.TrainModel(core.DefaultConfig(2), 4000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := h.EvaluateQ1(m, h.Gen.Queries(400))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: predicting the global mean answer for every query.
	var mean float64
	for _, p := range pairs {
		mean += p.Answer
	}
	mean /= float64(len(pairs))
	var se float64
	var n int
	for _, q := range h.Gen.Queries(400) {
		res, err := h.Exec.Mean(exec.RadiusQuery{Center: q.Center, Theta: q.Theta})
		if err != nil {
			continue
		}
		se += (mean - res.Mean) * (mean - res.Mean)
		n++
	}
	baseline := math.Sqrt(se / float64(n))
	if eval.RMSE >= baseline {
		t.Errorf("LLM RMSE %v should beat the global-mean baseline %v", eval.RMSE, baseline)
	}
}

func TestEvaluateQ2ShapesMatchPaper(t *testing.T) {
	// The Figure 9/10 shape: over a non-linear data function,
	// FVU(PLR) <= FVU(REGLocal) <= FVU(LLM) < FVU(REG-global), with the LLM
	// achieving FVU < 1 (a usable fit) while the global linear model does
	// not explain the subspaces (FVU at or above ~1).
	h := newHarness(t, 8000, 2, synth.SensorSurrogate, 0.15, 6)
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.08
	m, _, _, err := h.TrainModel(cfg, 6000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := h.EvaluateQ2(m, h.Gen.Queries(60), Q2Options{PLR: plr.Options{MaxBasis: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if eval.N == 0 {
		t.Fatal("no queries evaluated")
	}
	if eval.LLMFVU >= 1 {
		t.Errorf("FVU: LLM %v should be below 1", eval.LLMFVU)
	}
	if eval.LLMFVU >= eval.REGFVU {
		t.Errorf("FVU: LLM %v should be below global REG %v", eval.LLMFVU, eval.REGFVU)
	}
	if eval.PLRFVU > eval.REGFVU {
		t.Errorf("FVU: PLR %v should not exceed global REG %v", eval.PLRFVU, eval.REGFVU)
	}
	if eval.REGLocalFVU > eval.REGFVU {
		t.Errorf("FVU: per-subspace OLS %v should not exceed the global fit %v", eval.REGLocalFVU, eval.REGFVU)
	}
	if eval.LLMCoD <= eval.REGCoD {
		t.Errorf("CoD: LLM %v should exceed global REG %v", eval.LLMCoD, eval.REGCoD)
	}
	if eval.MeanModels < 1 {
		t.Errorf("mean |S| = %v", eval.MeanModels)
	}
	if eval.LLMTime <= 0 || eval.REGTime <= 0 || eval.PLRTime <= 0 {
		t.Errorf("timings: %v %v %v", eval.LLMTime, eval.REGTime, eval.PLRTime)
	}
	// The LLM path must be faster than PLR (which refits on every query).
	if eval.LLMTime > eval.PLRTime {
		t.Errorf("LLM time %v should be below PLR time %v", eval.LLMTime, eval.PLRTime)
	}
}

func TestEvaluateQ2SkipPLR(t *testing.T) {
	h := newHarness(t, 2000, 2, synth.SensorSurrogate, 0.25, 7)
	m, _, _, err := h.TrainModel(core.DefaultConfig(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := h.EvaluateQ2(m, h.Gen.Queries(30), Q2Options{SkipPLR: true})
	if err != nil {
		t.Fatal(err)
	}
	if eval.PLRTime != 0 || eval.PLRFVU != 0 {
		t.Errorf("PLR should be skipped: %+v", eval)
	}
	if eval.N == 0 || eval.LLMFVU == 0 {
		t.Errorf("LLM/REG must still be evaluated: %+v", eval)
	}
}

func TestEvaluateDataValue(t *testing.T) {
	h := newHarness(t, 5000, 2, synth.SensorSurrogate, 0.25, 8)
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.1
	m, _, _, err := h.TrainModel(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := h.EvaluateDataValue(m, h.Gen.Queries(40), Q2Options{PLR: plr.Options{MaxBasis: 8}}, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if eval.N == 0 {
		t.Fatal("no points evaluated")
	}
	for name, v := range map[string]float64{"LLM": eval.LLMRMSE, "REG": eval.REGRMSE, "PLR": eval.PLRRMSE} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s RMSE = %v", name, v)
		}
	}
	// PLR has full data access and the most flexible model; it must not be
	// drastically worse than REG (sanity check of the baseline wiring).
	if eval.PLRRMSE > eval.REGRMSE*2 {
		t.Errorf("PLR RMSE %v suspiciously worse than REG %v", eval.PLRRMSE, eval.REGRMSE)
	}
}

func TestEvaluateErrorsWithUnusableQueries(t *testing.T) {
	h := newHarness(t, 200, 2, synth.Paraboloid, 0.2, 9)
	m, _, _, err := h.TrainModel(core.DefaultConfig(2), 300)
	if err != nil {
		t.Fatal(err)
	}
	// Queries far outside the data range never select tuples.
	far := []core.Query{{Center: vector.Of(50.0, 50.0), Theta: 0.1}}
	if _, err := h.EvaluateQ1(m, far); !errors.Is(err, ErrNoUsableQueries) {
		t.Errorf("EvaluateQ1 err = %v", err)
	}
	if _, err := h.EvaluateQ2(m, far, Q2Options{SkipPLR: true}); !errors.Is(err, ErrNoUsableQueries) {
		t.Errorf("EvaluateQ2 err = %v", err)
	}
	if _, err := h.EvaluateDataValue(m, far, Q2Options{SkipPLR: true}, 3, 1); !errors.Is(err, ErrNoUsableQueries) {
		t.Errorf("EvaluateDataValue err = %v", err)
	}
}

func TestPredictWithLocals(t *testing.T) {
	a := core.LocalLinear{Intercept: 1, Slope: vector.Of(0), Weight: 0.25}
	b := core.LocalLinear{Intercept: 3, Slope: vector.Of(0), Weight: 0.75}
	got := predictWithLocals([]core.LocalLinear{a, b}, []float64{0})
	if math.Abs(got-2.5) > 1e-12 {
		t.Errorf("weighted fusion = %v", got)
	}
	// Extrapolated single model (weight 0).
	ex := core.LocalLinear{Intercept: 7, Slope: vector.Of(2), Weight: 0}
	if got := predictWithLocals([]core.LocalLinear{ex}, []float64{1}); got != 9 {
		t.Errorf("extrapolated = %v", got)
	}
	// All-zero weights with several models: plain average.
	z1 := core.LocalLinear{Intercept: 2, Slope: vector.Of(0)}
	z2 := core.LocalLinear{Intercept: 4, Slope: vector.Of(0)}
	if got := predictWithLocals([]core.LocalLinear{z1, z2}, []float64{0}); got != 3 {
		t.Errorf("zero-weight average = %v", got)
	}
}

// TestDriftingGenerator covers the non-stationary source: validation,
// determinism, window containment and actual movement of the window.
func TestDriftingGenerator(t *testing.T) {
	base := GenConfig{Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.1, ThetaStdDev: 0.02, Seed: 5}
	if _, err := NewDriftingGenerator(base, DriftConfig{Window: 0, Velocity: 1e-3}); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := NewDriftingGenerator(base, DriftConfig{Window: 0.2, Velocity: 0}); err == nil {
		t.Error("zero velocity should fail")
	}
	drift := DriftConfig{Window: 0.2, Velocity: 1e-3}
	g1, err := NewDriftingGenerator(base, drift)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewDriftingGenerator(base, drift)
	first := g1.Queries(300)
	again := g2.Queries(300)
	var minC, maxC = math.Inf(1), math.Inf(-1)
	for i, q := range first {
		if !q.Center.Equal(again[i].Center) || q.Theta != again[i].Theta {
			t.Fatalf("query %d not deterministic", i)
		}
		if q.Theta <= 0 {
			t.Fatalf("query %d has non-positive radius %v", i, q.Theta)
		}
		for _, v := range q.Center {
			minC = math.Min(minC, v)
			maxC = math.Max(maxC, v)
		}
	}
	if minC < 0 || maxC > 1 {
		t.Fatalf("centres escaped the box: [%v, %v]", minC, maxC)
	}
	// After 1/Velocity queries the window must have crossed the space:
	// late-stream centres concentrate far from the early window.
	late := g1.Queries(1000)[699:]
	for i, q := range late {
		if q.Center[0] < 0.3 {
			t.Fatalf("late query %d still in the early window (x=%v): the window is not moving", i, q.Center[0])
		}
	}
	if p := g1.Position(); p < 0 || p > 0.8 {
		t.Fatalf("Position out of range: %v", p)
	}
}

// TestCappedTrainingTracksDrift is the end-to-end streaming scenario: a
// bounded model trained on a drifting workload stays at its capacity and
// remains accurate on the stream's current region, while its unbounded twin
// grows without bound — the trade bounded-capacity training buys.
func TestCappedTrainingTracksDrift(t *testing.T) {
	const dim = 2
	h := newHarness(t, 4000, dim, synth.Rosenbrock, 0.12, 3)
	gen, err := NewDriftingGenerator(GenConfig{
		Dim: dim, CenterLo: 0, CenterHi: 1, ThetaMean: 0.12, ThetaStdDev: 0.02, Seed: 9,
	}, DriftConfig{Window: 0.3, Velocity: 4e-4})
	if err != nil {
		t.Fatal(err)
	}
	h.Gen = gen

	cfg := core.DefaultConfig(dim)
	cfg.Vigilance = 0.05
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	capped := cfg
	capped.MaxPrototypes = 60
	mCapped, err := core.NewModel(capped)
	if err != nil {
		t.Fatal(err)
	}
	mFree, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := h.TrainingPairs(3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if _, err := mCapped.Observe(p.Query, p.Answer); err != nil {
			t.Fatal(err)
		}
		if _, err := mFree.Observe(p.Query, p.Answer); err != nil {
			t.Fatal(err)
		}
	}
	if mCapped.K() > 60 {
		t.Fatalf("capped model exceeded capacity: K=%d", mCapped.K())
	}
	if mFree.K() <= 60 {
		t.Fatalf("unbounded twin did not outgrow the cap (K=%d): drift too weak to test anything", mFree.K())
	}
	// Accuracy on the stream's CURRENT window: the capped model must remain
	// useful there (its budget is concentrated on the live region).
	eval, err := h.EvaluateQ1(mCapped, h.Gen.Queries(200))
	if err != nil {
		t.Fatal(err)
	}
	if eval.RMSE > 60 {
		// Rosenbrock over [0,1]² spans ~0..100; a tracking model sits far
		// below this blunt bound, an untrained or lost one does not.
		t.Fatalf("capped model lost the drifting stream: RMSE=%v over %d queries", eval.RMSE, eval.N)
	}
}
