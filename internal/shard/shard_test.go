package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"llmq/internal/core"
	"llmq/internal/index"
)

// The bit-identity contract under test: a sharded set must answer every
// query with exactly the floats of its union model — the single core.Model
// holding every shard's live prototypes, concatenated in ascending shard
// order (core.Fuse). The reference is rebuilt from the live shard models at
// every checkpoint, so it tracks the set through training, splits and
// merges.

// testConfig keeps the models unconvergeable (a converged model freezes and
// would stop tracking the interleaved stream) at a vigilance that spawns a
// few dozen prototypes per shard.
func testConfig(dim int) core.Config {
	cfg := core.DefaultConfig(dim)
	cfg.Vigilance = 0.25
	cfg.Gamma = 1e-12
	return cfg
}

// surface is a nonlinear answer function so the per-prototype local models
// differ and any mis-merged weight shows up in the prediction bits.
func surface(x []float64, theta float64) float64 {
	y := 3 * theta
	for i, xi := range x {
		y += math.Sin(4*xi) + 0.5*float64(i+1)*xi*xi
	}
	return y
}

// stream generates n training pairs with centres in [0,1]^dim.
func stream(n, dim int, rng *rand.Rand) []core.TrainingPair {
	pairs := make([]core.TrainingPair, n)
	for i := range pairs {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		theta := 0.02 + 0.1*rng.Float64()
		pairs[i] = core.TrainingPair{Query: core.Query{Center: c, Theta: theta}, Answer: surface(c, theta)}
	}
	return pairs
}

// newTestSet builds a sharded set of fresh local models over a partition
// derived from the given sample pairs.
func newTestSet(t testing.TB, dim, shards int, sample []core.TrainingPair) *Sharded {
	t.Helper()
	flat := make([]float64, 0, len(sample)*dim)
	for _, p := range sample {
		flat = append(flat, p.Query.Center...)
	}
	cell := 0.0
	if dim <= 3 {
		cell = 1.0 / 64
	}
	part, err := index.NewPartition(dim, shards, flat, cell)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]Backend, shards)
	for i := range backends {
		m, err := core.NewModel(testConfig(dim))
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = NewLocal(m)
	}
	s, err := New(part, backends)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// unionOf fuses the set's current shard models, in ascending shard order,
// into the reference model the sharded answers are defined to equal.
func unionOf(t testing.TB, s *Sharded) *core.Model {
	t.Helper()
	var models []*core.Model
	for _, b := range s.Backends() {
		models = append(models, b.(*Local).Model())
	}
	ref, err := core.Fuse(models[0].Config(), models...)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// queryMix is the comparison workload: in-box queries of mixed radius (the
// overlap and straddle paths), and far-out tiny-radius queries (the winner
// extrapolation path).
func queryMix(dim, n int, rng *rand.Rand) []core.Query {
	qs := make([]core.Query, 0, n)
	for i := 0; i < n; i++ {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()*1.2 - 0.1
		}
		theta := rng.Float64() * 0.25
		if i%8 == 7 {
			// Far outside every region and every prototype's reach: the
			// union extrapolates from its global winner, the router from its
			// two-phase fallback.
			for j := range c {
				c[j] = 2.5 + rng.Float64()
			}
			theta = 0.01
		}
		qs = append(qs, core.Query{Center: c, Theta: theta})
	}
	return qs
}

// pathCounts classifies how the routed queries exercised the scatter paths.
type pathCounts struct {
	straddled    int // phase-1 candidate set spanned 2+ shards
	extrapolated int // global overlap empty: winner fallback decided
}

// compareToUnion asserts PredictMean, PredictValue and Regression are
// bit-identical between the sharded set and its union model over the
// queries, and reports which scatter paths the mix exercised.
func compareToUnion(t *testing.T, s *Sharded, ref *core.Model, queries []core.Query, rng *rand.Rand) pathCounts {
	t.Helper()
	var pc pathCounts
	v := ref.View()
	part := s.Partition()
	backends := s.Backends()
	extra := make([]float64, len(backends))
	for i, b := range backends {
		extra[i] = b.MaxTheta()
	}
	for _, q := range queries {
		if len(part.Touching(q.Center, q.Theta, extra, nil)) > 1 {
			pc.straddled++
		}
		res, err := v.ScatterScan(q, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Contribs) == 0 {
			pc.extrapolated++
		}

		wantMean, err := v.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		gotMean, err := s.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotMean != wantMean {
			t.Fatalf("query %+v: sharded mean %v, union %v", q, gotMean, wantMean)
		}

		at := make([]float64, len(q.Center))
		for j := range at {
			at[j] = rng.Float64()
		}
		wantVal, err := v.PredictValue(q, at)
		if err != nil {
			t.Fatal(err)
		}
		gotVal, err := s.PredictValue(q, at)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal != wantVal {
			t.Fatalf("query %+v at %v: sharded value %v, union %v", q, at, gotVal, wantVal)
		}

		wantModels, err := v.Regression(q)
		if err != nil {
			t.Fatal(err)
		}
		gotModels, err := s.Regression(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotModels, wantModels) {
			t.Fatalf("query %+v: sharded regression %+v, union %+v", q, gotModels, wantModels)
		}
	}
	return pc
}

// TestShardedBitIdentityInterleaved drives the full lifecycle on a 4-shard
// d=2 set: rounds of partitioned training interleaved with query
// checkpoints, a zero-downtime shard split mid-stream, more training on the
// split layout, then a merge back — with every checkpoint property-testing
// the scatter/gather answers bit-identical to the fused union model,
// boundary-straddling and winner-fallback queries included.
func TestShardedBitIdentityInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	seed := stream(400, 2, rng)
	s := newTestSet(t, 2, 4, seed)
	ctx := context.Background()

	var straddled, extrapolated int
	checkpoint := func(stage string) {
		t.Helper()
		pc := compareToUnion(t, s, unionOf(t, s), queryMix(2, 250, rng), rng)
		straddled += pc.straddled
		extrapolated += pc.extrapolated
		if pc.straddled == 0 {
			t.Fatalf("%s: no boundary-straddling queries; the merge path is untested", stage)
		}
	}

	if _, err := s.TrainBatch(ctx, seed); err != nil {
		t.Fatal(err)
	}
	checkpoint("seeded")
	if _, err := s.TrainBatch(ctx, stream(300, 2, rng)); err != nil {
		t.Fatal(err)
	}
	checkpoint("trained")

	// Split the busiest shard down the middle of its region.
	busiest, bestK := 0, -1
	for i, b := range s.Backends() {
		if k := b.Stats().Live; k > bestK {
			busiest, bestK = i, k
		}
	}
	lo, hi, err := s.Partition().Region(busiest)
	if err != nil {
		t.Fatal(err)
	}
	axis := 0
	a0, b0 := math.Max(lo[0], 0), math.Min(hi[0], 1)
	a1, b1 := math.Max(lo[1], 0), math.Min(hi[1], 1)
	cut := (a0 + b0) / 2
	if b1-a1 > b0-a0 {
		axis, cut = 1, (a1+b1)/2
	}
	before := s.Stats()
	if err := s.SplitShard(busiest, axis, cut); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 5 {
		t.Fatalf("split left %d shards, want 5", s.Shards())
	}
	// Prototypes are conserved (both children inherit the step clock, so the
	// aggregate step count intentionally re-counts the split shard's).
	if after := s.Stats(); after.Live != before.Live {
		t.Fatalf("split changed the prototype set: live %d→%d", before.Live, after.Live)
	}
	checkpoint("split")
	if _, err := s.TrainBatch(ctx, stream(300, 2, rng)); err != nil {
		t.Fatal(err)
	}
	checkpoint("split+trained")

	// Merge the split pair back (the right half got the highest id).
	if err := s.MergeShards(busiest, s.Shards()-1); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("merge left %d shards, want 4", s.Shards())
	}
	checkpoint("merged")
	if _, err := s.TrainBatch(ctx, stream(200, 2, rng)); err != nil {
		t.Fatal(err)
	}
	checkpoint("merged+trained")

	if extrapolated == 0 {
		t.Fatal("no winner-fallback queries; the two-phase scatter is untested")
	}
	t.Logf("straddled %d, extrapolated %d", straddled, extrapolated)
}

// TestShardedBitIdentityWideDim repeats the identity on a d=5 k-d partition
// (no grid snapping), where region boxes are unbounded on most sides and
// the straddle sets are larger.
func TestShardedBitIdentityWideDim(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	seed := stream(300, 5, rng)
	s := newTestSet(t, 5, 3, seed)
	ctx := context.Background()
	if _, err := s.TrainBatch(ctx, seed); err != nil {
		t.Fatal(err)
	}
	pc := compareToUnion(t, s, unionOf(t, s), queryMix(5, 200, rng), rng)
	if _, err := s.TrainBatch(ctx, stream(200, 5, rng)); err != nil {
		t.Fatal(err)
	}
	pc2 := compareToUnion(t, s, unionOf(t, s), queryMix(5, 200, rng), rng)
	if pc.straddled+pc2.straddled == 0 || pc.extrapolated+pc2.extrapolated == 0 {
		t.Fatalf("path coverage too thin: straddled %d+%d, extrapolated %d+%d",
			pc.straddled, pc2.straddled, pc.extrapolated, pc2.extrapolated)
	}
}

// TestShardedTrainRouting checks the partitioner maps every pair to exactly
// one shard: after training, each shard's prototypes sit inside its region
// box, and the per-shard step counts sum to the pair count.
func TestShardedTrainRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	seed := stream(500, 2, rng)
	s := newTestSet(t, 2, 4, seed)
	st, err := s.TrainBatch(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != len(seed) || st.Steps != len(seed) {
		t.Fatalf("TrainStats %+v, want %d accepted and steps", st, len(seed))
	}
	part := s.Partition()
	for id, b := range s.Backends() {
		lo, hi, err := part.Region(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range b.(*Local).Model().LLMs() {
			for a, x := range l.CenterPrototype {
				if x < lo[a] || x >= hi[a] {
					t.Fatalf("shard %d prototype centre %v escaped region [%v, %v)", id, l.CenterPrototype, lo, hi)
				}
			}
		}
		if b.Stats().Live == 0 {
			t.Errorf("shard %d absorbed nothing; the partition is degenerate", id)
		}
	}
	// Observe routes a single pair the same way.
	q := core.Query{Center: []float64{0.5, 0.5}, Theta: 0.05}
	id := part.Locate(q.Center)
	wantSteps := s.Backends()[id].Stats().Steps + 1
	if _, err := s.Observe(context.Background(), q, 1.0); err != nil {
		t.Fatal(err)
	}
	if got := s.Backends()[id].Stats().Steps; got != wantSteps {
		t.Fatalf("Observe left shard %d at %d steps, want %d", id, got, wantSteps)
	}
}

// TestShardedValidation covers the construction and routing error surface.
func TestShardedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	seed := stream(100, 2, rng)
	s := newTestSet(t, 2, 2, seed)
	ctx := context.Background()

	// Empty set: scatter finds nothing, ErrNotTrained like a fresh model.
	if _, err := s.PredictMean(core.Query{Center: []float64{0.5, 0.5}, Theta: 0.1}); !errors.Is(err, core.ErrNotTrained) {
		t.Fatalf("empty set PredictMean: %v", err)
	}
	// Dimension mismatches.
	if _, err := s.PredictMean(core.Query{Center: []float64{0.5}, Theta: 0.1}); !errors.Is(err, core.ErrDimension) {
		t.Fatalf("bad query dim: %v", err)
	}
	if _, err := s.PredictValue(core.Query{Center: []float64{0.5, 0.5}, Theta: 0.1}, []float64{1}); !errors.Is(err, core.ErrDimension) {
		t.Fatalf("bad at dim: %v", err)
	}
	if _, err := s.PredictValue(core.Query{Center: []float64{0.5, 0.5}, Theta: 0.1}, nil); !errors.Is(err, core.ErrDimension) {
		t.Fatalf("nil at point: %v", err)
	}
	if _, err := s.TrainBatch(ctx, []core.TrainingPair{{Query: core.Query{Center: []float64{1}, Theta: 0.1}}}); !errors.Is(err, core.ErrDimension) {
		t.Fatalf("bad pair dim: %v", err)
	}

	// Constructor validation.
	part := s.Partition()
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil partition accepted")
	}
	if _, err := New(part, make([]Backend, 1)); err == nil {
		t.Fatal("backend count mismatch accepted")
	}
	if _, err := New(part, make([]Backend, 2)); err == nil {
		t.Fatal("nil backend accepted")
	}
	wrong, err := core.NewModel(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(part, []Backend{NewLocal(wrong), NewLocal(wrong)}); err == nil {
		t.Fatal("dim-mismatched local backend accepted")
	}

	// Lifecycle validation.
	if err := s.SplitShard(9, 0, 0.5); err == nil {
		t.Fatal("split of a missing shard accepted")
	}
	if err := s.MergeShards(0, 0); err == nil {
		t.Fatal("self-merge accepted")
	}
	remote := NewRemote("http://127.0.0.1:0", nil, nil)
	sr, err := New(part, []Backend{remote, NewLocal(wrongDim(t, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.SplitShard(0, 0, 0.5); err == nil {
		t.Fatal("split of a remote shard accepted")
	}
	if err := sr.MergeShards(0, 1); err == nil {
		t.Fatal("merge involving a remote shard accepted")
	}
}

func wrongDim(t *testing.T, dim int) *core.Model {
	t.Helper()
	m, err := core.NewModel(testConfig(dim))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardedDurableLifecycle checks the durable-shard guardrails: training
// through a durable backend WAL-logs, and split/merge refuse to touch it (a
// durable shard re-shards offline, or its WAL would be stranded).
func TestShardedDurableLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	seed := stream(120, 2, rng)
	flat := make([]float64, 0, len(seed)*2)
	for _, p := range seed {
		flat = append(flat, p.Query.Center...)
	}
	part, err := index.NewPartition(2, 2, flat, 0)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]Backend, 2)
	for i := range backends {
		d, err := core.Recover(t.TempDir(), testConfig(2), core.DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		backends[i] = NewLocalDurable(d)
	}
	s, err := New(part, backends)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.TrainBatch(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != len(seed) {
		t.Fatalf("durable sharded train absorbed %d steps, want %d", st.Steps, len(seed))
	}
	if !s.Stats().Durable {
		t.Fatal("all-durable set must aggregate Durable true")
	}
	for _, h := range s.Health(context.Background()) {
		if h.Status != "ready" {
			t.Fatalf("healthy durable shard reports %+v", h)
		}
	}
	if err := s.SplitShard(0, 0, 0.5); err == nil {
		t.Fatal("split of a durable shard accepted")
	}
	if err := s.MergeShards(0, 1); err == nil {
		t.Fatal("merge of durable shards accepted")
	}
	// The union still answers bit-identically through durable backends.
	var models []*core.Model
	for _, b := range s.Backends() {
		models = append(models, b.(*Local).Model())
	}
	ref, err := core.Fuse(models[0].Config(), models...)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Center: []float64{0.4, 0.6}, Theta: 0.2}
	want, err := ref.View().PredictMean(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.PredictMean(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("durable sharded mean %v, union %v", got, want)
	}
}

// TestReaderPinsRouteEpoch checks the zero-downtime contract: a Reader
// pinned before a split keeps answering on the old route state — same
// partition, same backends — while the set already routes with the new one.
func TestReaderPinsRouteEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	seed := stream(300, 2, rng)
	s := newTestSet(t, 2, 2, seed)
	if _, err := s.TrainBatch(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	pinned := s.Reader(context.Background())
	queries := queryMix(2, 100, rng)
	wants := make([]float64, len(queries))
	for i, q := range queries {
		w, err := pinned.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	lo, hi, err := s.Partition().Region(0)
	if err != nil {
		t.Fatal(err)
	}
	cut := (math.Max(lo[0], 0) + math.Min(hi[0], 1)) / 2
	axis := 0
	if !(cut > lo[0] && cut < hi[0]) {
		axis, cut = 1, (math.Max(lo[1], 0)+math.Min(hi[1], 1))/2
	}
	if err := s.SplitShard(0, axis, cut); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 || len(pinned.rt.backends) != 2 {
		t.Fatalf("split not isolated: set has %d shards, pinned reader %d", s.Shards(), len(pinned.rt.backends))
	}
	// The new route is bit-identical to ITS union (the split reorders the
	// shard-major concatenation, so pre- and post-split answers may differ
	// in the last ulps — each epoch matches its own union model).
	ref := unionOf(t, s).View()
	for i, q := range queries {
		got, err := pinned.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != wants[i] {
			t.Fatalf("pinned reader answer changed across a split: %v vs %v", got, wants[i])
		}
		fresh, err := s.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if fresh != want {
			t.Fatalf("post-split answer %v, its union %v", fresh, want)
		}
	}
}
