package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"llmq/internal/index"
	"llmq/internal/wal"
)

// ManifestName is the file a sharded data directory keeps its layout in,
// next to the per-shard subdirectories.
const ManifestName = "shards.json"

// Manifest pins a sharded deployment's layout: the partition that decides
// which shard owns which region, and the shard count. A sharded data
// directory writes it once at creation and every boot re-routes by exactly
// this partition — prototypes were placed by it, so routing by any other
// partition would silently miss them. A remote router can load the same
// file to front the shards.
type Manifest struct {
	Dim    int              `json:"dim"`
	Shards int              `json:"shards"`
	Part   *index.Partition `json:"partition"`
}

// WriteManifest persists the manifest atomically (temp file + rename +
// directory fsync), so a crash mid-write never leaves a torn layout.
func WriteManifest(path string, m Manifest) error {
	if m.Part == nil || m.Part.Leaves() != m.Shards || m.Part.Dim() != m.Dim {
		return fmt.Errorf("shard: manifest does not describe its partition (dim %d/%d, shards %d/%d)",
			m.Dim, m.Part.Dim(), m.Shards, m.Part.Leaves())
	}
	return wal.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// ReadManifest loads and validates a manifest.
func ReadManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	if m.Part == nil {
		return Manifest{}, fmt.Errorf("shard: manifest %s has no partition", path)
	}
	if m.Part.Leaves() != m.Shards || m.Part.Dim() != m.Dim {
		return Manifest{}, fmt.Errorf("shard: manifest %s is inconsistent (dim %d vs partition %d, shards %d vs leaves %d)",
			path, m.Dim, m.Part.Dim(), m.Shards, m.Part.Leaves())
	}
	return m, nil
}
