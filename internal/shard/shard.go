package shard

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"llmq/internal/core"
	"llmq/internal/index"
)

// Meta describes one shard's model state; it is also the /shard/meta wire
// body.
type Meta struct {
	Dim       int     `json:"dim"`
	Live      int     `json:"live"`
	Steps     int     `json:"steps"`
	Converged bool    `json:"converged"`
	MaxTheta  float64 `json:"max_theta"`
	Durable   bool    `json:"durable"`
}

// Health is one shard's readiness: Status is "ready" or the shard's
// degraded state ("read-only", "recovering", "unreachable", ...), with
// Cause naming the root failure.
type Health struct {
	Status string `json:"status"`
	Cause  string `json:"cause,omitempty"`
}

// TrainStats is the outcome of training pairs into one shard or a sharded
// set: how many pairs were absorbed, and the total step, prototype and
// convergence state afterwards.
type TrainStats struct {
	Accepted  int  `json:"accepted"`
	Steps     int  `json:"steps"`
	K         int  `json:"k"`
	Converged bool `json:"converged"`
}

// Backend is one shard as the router sees it: a scatter-scannable,
// trainable model, either in this process (Local) or across HTTP (Remote).
type Backend interface {
	// Scan answers a query with the shard's raw fusion terms
	// (core.View.ScatterScan).
	Scan(ctx context.Context, q core.Query, at []float64, needModels bool) (core.ScatterResult, error)
	// Train absorbs the pairs — all of which the partitioner already
	// assigned to this shard — and reports the shard's state afterwards.
	Train(ctx context.Context, pairs []core.TrainingPair) (TrainStats, error)
	// MaxTheta is the shard's routing bound: an upper bound on every live
	// prototype radius. It must never understate the true bound (a loose
	// bound costs a wasted scatter; a tight-but-stale one loses prototypes).
	MaxTheta() float64
	// Stats returns the backend's cheap, possibly cached view of the
	// shard's state — no network round trip.
	Stats() Meta
	// Health probes the shard's readiness.
	Health(ctx context.Context) Health
}

// Local is a shard living in this process: a model, optionally wrapped in
// a durable store so training is write-ahead logged.
type Local struct {
	m *core.Model
	d *core.Durable
}

// NewLocal wraps an in-memory model as a shard backend.
func NewLocal(m *core.Model) *Local { return &Local{m: m} }

// NewLocalDurable wraps a durable store as a shard backend: training runs
// through its WAL, queries read the model's published versions as usual.
func NewLocalDurable(d *core.Durable) *Local { return &Local{m: d.Model(), d: d} }

// Model returns the shard's model.
func (l *Local) Model() *core.Model { return l.m }

// Durable returns the shard's durable store, or nil.
func (l *Local) Durable() *core.Durable { return l.d }

// Scan implements Backend on the model's current published version.
func (l *Local) Scan(_ context.Context, q core.Query, at []float64, needModels bool) (core.ScatterResult, error) {
	return l.m.View().ScatterScan(q, at, needModels)
}

// Train implements Backend; with a durable store every pair is WAL-logged
// before it is applied.
func (l *Local) Train(_ context.Context, pairs []core.TrainingPair) (TrainStats, error) {
	before := l.m.Steps()
	var (
		res core.TrainingResult
		err error
	)
	if l.d != nil {
		res, err = l.d.TrainBatch(pairs)
	} else {
		res, err = l.m.TrainBatch(pairs)
	}
	if err != nil {
		return TrainStats{}, err
	}
	return TrainStats{Accepted: res.Steps - before, Steps: res.Steps, K: res.K, Converged: res.Converged}, nil
}

// MaxTheta implements Backend from the current published version.
func (l *Local) MaxTheta() float64 { return l.m.View().MaxTheta() }

// Stats implements Backend; for a local shard the cheap view is exact.
func (l *Local) Stats() Meta {
	v := l.m.View()
	return Meta{
		Dim:       l.m.Config().Dim,
		Live:      v.K(),
		Steps:     v.Steps(),
		Converged: v.Converged(),
		MaxTheta:  v.MaxTheta(),
		Durable:   l.d != nil,
	}
}

// Health implements Backend: a local shard degrades only when its durable
// store has gone read-only after a WAL failure.
func (l *Local) Health(context.Context) Health {
	if l.d != nil {
		if cause := l.d.Failure(); cause != nil {
			return Health{Status: "read-only", Cause: cause.Error()}
		}
	}
	return Health{Status: "ready"}
}

// routeState is the immutable routing epoch: the space partition and the
// shard backends, indexed by leaf id. Split and merge swap in a fresh
// state atomically; readers pin the state they loaded, so in-flight
// queries keep a consistent partition/backend pairing throughout.
type routeState struct {
	part     *index.Partition
	backends []Backend
}

// Sharded is the scatter/gather front-end over a set of shards. Reads are
// lock-free (they pin the current route state); training, splitting and
// merging serialize on one writer lock.
type Sharded struct {
	dim   int
	mu    sync.Mutex
	route atomic.Pointer[routeState]
}

// New assembles a sharded set: one backend per partition leaf, in leaf-id
// order. Local backends are checked against the partition's
// dimensionality; remote ones are checked when they are primed.
func New(part *index.Partition, backends []Backend) (*Sharded, error) {
	if part == nil {
		return nil, errors.New("shard: partition is required")
	}
	if len(backends) != part.Leaves() {
		return nil, fmt.Errorf("shard: %d backends for %d partition leaves", len(backends), part.Leaves())
	}
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("shard: backend %d is nil", i)
		}
		if l, ok := b.(*Local); ok {
			if d := l.m.Config().Dim; d != part.Dim() {
				return nil, fmt.Errorf("shard: backend %d has dim %d, partition has %d", i, d, part.Dim())
			}
		}
	}
	s := &Sharded{dim: part.Dim()}
	s.route.Store(&routeState{part: part, backends: slices.Clone(backends)})
	return s, nil
}

// Dim returns the input dimensionality the set serves.
func (s *Sharded) Dim() int { return s.dim }

// Shards returns the current shard count.
func (s *Sharded) Shards() int { return len(s.route.Load().backends) }

// Partition returns the current space partition (immutable; split/merge
// install new ones).
func (s *Sharded) Partition() *index.Partition { return s.route.Load().part }

// Backends returns the current backends in shard order.
func (s *Sharded) Backends() []Backend { return slices.Clone(s.route.Load().backends) }

// Stats aggregates the backends' cheap state views: total live prototypes
// and steps, convergence of the whole set, and whether every shard trains
// durably.
func (s *Sharded) Stats() Meta {
	rt := s.route.Load()
	agg := Meta{Dim: s.dim, Converged: true, Durable: true}
	for _, b := range rt.backends {
		m := b.Stats()
		agg.Live += m.Live
		agg.Steps += m.Steps
		agg.Converged = agg.Converged && m.Converged
		agg.Durable = agg.Durable && m.Durable
		if m.MaxTheta > agg.MaxTheta {
			agg.MaxTheta = m.MaxTheta
		}
	}
	return agg
}

// Health probes every shard, in shard order.
func (s *Sharded) Health(ctx context.Context) []Health {
	rt := s.route.Load()
	out := make([]Health, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = b.Health(ctx)
		}()
	}
	wg.Wait()
	return out
}

// scanInto runs the query against the given shards concurrently, filling
// results[id] and scanned[id]. Any shard failure fails the whole scatter —
// a partial gather would silently break the union-model contract.
func (rt *routeState) scanInto(ctx context.Context, ids []int, q core.Query, at []float64, needModels bool,
	results []core.ScatterResult, scanned []bool) error {
	if len(ids) == 1 {
		id := ids[0]
		res, err := rt.backends[id].Scan(ctx, q, at, needModels)
		if err != nil {
			return fmt.Errorf("shard %d: %w", id, err)
		}
		results[id], scanned[id] = res, true
		return nil
	}
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for n, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rt.backends[id].Scan(ctx, q, at, needModels)
			if err != nil {
				errs[n] = fmt.Errorf("shard %d: %w", id, err)
				return
			}
			results[id], scanned[id] = res, true
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// scatter answers one query from the union of the shards: phase 1 scans
// the candidate shards (region box within θ + shard's MaxTheta of the
// centre — the only shards that can hold overlapping prototypes); if the
// global overlap set comes up empty, phase 2 scans the remaining shards,
// whose overlap sets are provably empty too, so they answer with their
// winner terms and the gather keeps the globally closest. The gather runs
// in ascending shard order throughout — the union model's slot order.
func (rt *routeState) scatter(ctx context.Context, q core.Query, at []float64, needModels bool) (gathered, error) {
	extra := make([]float64, len(rt.backends))
	for i, b := range rt.backends {
		extra[i] = b.MaxTheta()
	}
	cand := rt.part.Touching(q.Center, q.Theta, extra, nil)
	slices.Sort(cand)
	results := make([]core.ScatterResult, len(rt.backends))
	scanned := make([]bool, len(rt.backends))
	if err := rt.scanInto(ctx, cand, q, at, needModels, results, scanned); err != nil {
		return gathered{}, err
	}
	g := gather(ordered(results, scanned))
	if len(g.contribs) == 0 && len(cand) < len(rt.backends) {
		// Winner fallback: the union model extrapolates from its globally
		// closest prototype, which can live in any shard.
		rest := make([]int, 0, len(rt.backends)-len(cand))
		for id := range rt.backends {
			if !scanned[id] {
				rest = append(rest, id)
			}
		}
		if err := rt.scanInto(ctx, rest, q, at, needModels, results, scanned); err != nil {
			return gathered{}, err
		}
		g = gather(ordered(results, scanned))
	}
	return g, nil
}

// ordered collects the scanned results in ascending shard id — the gather
// order the bit-identity contract requires.
func ordered(results []core.ScatterResult, scanned []bool) []core.ScatterResult {
	out := make([]core.ScatterResult, 0, len(results))
	for id, ok := range scanned {
		if ok {
			out = append(out, results[id])
		}
	}
	return out
}

// Reader is a prediction surface pinned to one routing epoch and bound to
// one request context — the sharded counterpart of pinning a core.View for
// a batch: statements answered through one Reader all route through the
// same partition and backend set, even while a split or merge swaps the
// route concurrently.
type Reader struct {
	rt  *routeState
	dim int
	ctx context.Context
}

// Reader pins the current route state under ctx.
func (s *Sharded) Reader(ctx context.Context) Reader {
	return Reader{rt: s.route.Load(), dim: s.dim, ctx: ctx}
}

func (r Reader) check(q core.Query, at []float64) error {
	if q.Dim() != r.dim {
		return fmt.Errorf("%w: query dim %d, sharded set dim %d", core.ErrDimension, q.Dim(), r.dim)
	}
	if at != nil && len(at) != r.dim {
		return fmt.Errorf("%w: point dim %d, sharded set dim %d", core.ErrDimension, len(at), r.dim)
	}
	return nil
}

// PredictMean answers Q1 exactly as the union model would.
func (r Reader) PredictMean(q core.Query) (float64, error) {
	if err := r.check(q, nil); err != nil {
		return 0, err
	}
	g, err := r.rt.scatter(r.ctx, q, nil, false)
	if err != nil {
		return 0, err
	}
	if g.live == 0 {
		return 0, core.ErrNotTrained
	}
	return g.mean(), nil
}

// Regression answers Q2 exactly as the union model would.
func (r Reader) Regression(q core.Query) ([]core.LocalLinear, error) {
	if err := r.check(q, nil); err != nil {
		return nil, err
	}
	g, err := r.rt.scatter(r.ctx, q, nil, true)
	if err != nil {
		return nil, err
	}
	if g.live == 0 {
		return nil, core.ErrNotTrained
	}
	return g.models(), nil
}

// PredictValue answers a value prediction exactly as the union model would.
func (r Reader) PredictValue(q core.Query, x []float64) (float64, error) {
	if err := r.check(q, x); err != nil {
		return 0, err
	}
	if x == nil {
		return 0, fmt.Errorf("%w: value prediction needs a data point", core.ErrDimension)
	}
	g, err := r.rt.scatter(r.ctx, q, x, false)
	if err != nil {
		return 0, err
	}
	if g.live == 0 {
		return 0, core.ErrNotTrained
	}
	return g.value(), nil
}

// PredictMean answers on the current route state.
func (s *Sharded) PredictMean(q core.Query) (float64, error) {
	return s.Reader(context.Background()).PredictMean(q)
}

// Regression answers on the current route state.
func (s *Sharded) Regression(q core.Query) ([]core.LocalLinear, error) {
	return s.Reader(context.Background()).Regression(q)
}

// PredictValue answers on the current route state.
func (s *Sharded) PredictValue(q core.Query, x []float64) (float64, error) {
	return s.Reader(context.Background()).PredictValue(q, x)
}

// TrainBatch partitions the pairs by the query centre's leaf and trains
// the touched shards concurrently — the write path scales with the shard
// count because each shard takes its own writer lock and (when durable)
// fsyncs its own WAL. The whole batch runs under the sharded writer lock,
// serializing with split/merge; queries keep answering from the pinned
// route state throughout.
func (s *Sharded) TrainBatch(ctx context.Context, pairs []core.TrainingPair) (TrainStats, error) {
	for i, p := range pairs {
		if p.Query.Dim() != s.dim {
			return TrainStats{}, fmt.Errorf("%w: pair %d has dim %d, sharded set has %d",
				core.ErrDimension, i, p.Query.Dim(), s.dim)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.route.Load()
	buckets := make([][]core.TrainingPair, len(rt.backends))
	for _, p := range pairs {
		id := rt.part.Locate(p.Query.Center)
		buckets[id] = append(buckets[id], p)
	}
	stats := make([]TrainStats, len(rt.backends))
	errs := make([]error, len(rt.backends))
	var wg sync.WaitGroup
	for id, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rt.backends[id].Train(ctx, bucket)
			if err != nil {
				errs[id] = fmt.Errorf("shard %d: %w", id, err)
				return
			}
			stats[id] = res
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return TrainStats{}, err
	}
	agg := TrainStats{Converged: true}
	for id := range rt.backends {
		st := stats[id]
		if len(buckets[id]) == 0 {
			// Untouched shard: fold in its cheap state view so Steps and K
			// describe the whole set.
			m := rt.backends[id].Stats()
			st = TrainStats{Steps: m.Steps, K: m.Live, Converged: m.Converged}
		}
		agg.Accepted += st.Accepted
		agg.Steps += st.Steps
		agg.K += st.K
		agg.Converged = agg.Converged && st.Converged
	}
	return agg, nil
}

// Observe routes one training pair to its shard.
func (s *Sharded) Observe(ctx context.Context, q core.Query, answer float64) (TrainStats, error) {
	return s.TrainBatch(ctx, []core.TrainingPair{{Query: q, Answer: answer}})
}

// localShard resolves a shard for split/merge: the lifecycle operations
// move prototype state between models in this process, so the shard must
// be a Local over a plain model (durable shards re-shard offline — their
// WAL directories cannot be re-partitioned under load).
func (rt *routeState) localShard(id int) (*Local, error) {
	if id < 0 || id >= len(rt.backends) {
		return nil, fmt.Errorf("shard: no shard %d (have %d)", id, len(rt.backends))
	}
	l, ok := rt.backends[id].(*Local)
	if !ok {
		return nil, fmt.Errorf("shard: shard %d is remote; split and merge run where the models live", id)
	}
	if l.d != nil {
		return nil, fmt.Errorf("shard: shard %d is durable; re-shard offline (split would strand its WAL)", id)
	}
	return l, nil
}

// SplitShard splits one shard's region at cut on axis and partitions its
// prototypes between the two halves — zero-downtime: queries in flight
// keep the pinned route state (whose model remains fully answerable), and
// the new state swaps in atomically. The left half keeps the shard id, the
// right half becomes the new highest id. Training pauses for the duration
// of the prototype copy (the writer lock).
func (s *Sharded) SplitShard(id, axis int, cut float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.route.Load()
	l, err := rt.localShard(id)
	if err != nil {
		return err
	}
	np, err := rt.part.SplitLeaf(id, axis, cut)
	if err != nil {
		return err
	}
	kids, err := core.Split(l.m, 2, func(center []float64, _ float64) int {
		if np.Locate(center) == id {
			return 0
		}
		return 1
	})
	if err != nil {
		return err
	}
	backends := slices.Clone(rt.backends)
	backends[id] = NewLocal(kids[0])
	backends = append(backends, NewLocal(kids[1]))
	s.route.Store(&routeState{part: np, backends: backends})
	return nil
}

// MergeShards merges two sibling shards into one holding both prototype
// sets, concatenated in ascending shard order (core.Fuse) — the merged
// shard answers its region exactly as the pair did. The lower id survives;
// the highest shard id is renumbered into the freed one, mirroring the
// partition's leaf renumbering. Zero-downtime like SplitShard.
func (s *Sharded) MergeShards(a, b int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.route.Load()
	la, err := rt.localShard(a)
	if err != nil {
		return err
	}
	lb, err := rt.localShard(b)
	if err != nil {
		return err
	}
	np, moved, err := rt.part.MergeLeaves(a, b)
	if err != nil {
		return err
	}
	if a > b {
		la, lb = lb, la
		a, b = b, a
	}
	fused, err := core.Fuse(la.m.Config(), la.m, lb.m)
	if err != nil {
		return err
	}
	backends := slices.Clone(rt.backends)
	backends[a] = NewLocal(fused)
	if moved >= 0 {
		backends[b] = backends[moved]
	}
	backends = backends[:len(backends)-1]
	s.route.Store(&routeState{part: np, backends: backends})
	return nil
}
