// Package shard partitions the query space across N independently trained
// models and routes queries and training pairs to the shards that own them,
// while answering exactly what one model holding every shard's prototypes
// would answer — bit for bit.
//
// # Partitioning
//
// An index.Partition carves the input space into axis-aligned half-open
// boxes, one per shard, built from a sample of the workload (grid-snapped
// cuts for d ≤ 3, raw k-d median cuts above — the same spatial splits the
// read-epoch machinery uses). Every training pair belongs to exactly one
// shard: the one whose region contains the query centre. Prototypes never
// leave their shard's region, because every prototype movement — drift,
// spawn, merge-on-evict — is a convex combination of region points and the
// regions are convex.
//
// # Routing
//
// A query q = [x, θ] can only overlap prototypes of shards whose region box
// lies within θ + maxΘ_shard of x, where maxΘ_shard is the shard's radius
// bound (View.MaxTheta, carried on every scan response). Queries deep
// inside one region are answered point-to-point by that shard alone; only
// boundary-straddling queries scatter.
//
// # Bit-identity
//
// The reference a sharded deployment is held to is the union model: the
// core.Fuse of the shard models in ascending shard order. Each shard ships
// its raw fusion terms — unnormalized overlap degrees and per-prototype
// evaluations, in slot order (core.View.ScatterScan) — and the merger
// re-runs the single-model fusion loop over the shard-major concatenation:
// one running total, one normalization, one accumulation, in the exact
// order the union model's own sweep would have used. Same values, same
// operation order, same floats. When no prototype anywhere overlaps the
// query, the union model extrapolates from its globally closest prototype;
// the router finds it by scanning the remaining shards (their overlap sets
// are provably empty, so they answer with winner terms) and taking the
// first strict minimum in shard order — the same tie-break the union
// model's slot-order winner sweep applies.
//
// Remote shards preserve the contract because Go's encoding/json
// round-trips float64 values exactly (shortest-representation encoding),
// and non-finite values are rejected at training time.
package shard
