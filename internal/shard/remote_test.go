package shard

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"llmq/internal/core"
	"llmq/internal/index"
)

// shardHandler serves the shard wire protocol over a local backend — the
// minimal HTTP twin of the real server's /shard/* handlers, so the Remote
// client and the JSON round trip are testable without the serving tier.
func shardHandler(l *Local) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc(PathScan, func(w http.ResponseWriter, r *http.Request) {
		var req ScanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := l.Scan(r.Context(), core.Query{Center: req.Center, Theta: req.Theta}, req.At, req.Models)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc(PathMeta, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, l.Stats())
	})
	mux.HandleFunc(PathTrain, func(w http.ResponseWriter, r *http.Request) {
		var req TrainShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pairs := make([]core.TrainingPair, len(req.Pairs))
		for i, p := range req.Pairs {
			pairs[i] = core.TrainingPair{Query: core.Query{Center: p.Center, Theta: p.Theta}, Answer: p.Answer}
		}
		st, err := l.Train(r.Context(), pairs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, TrainShardResponse{TrainStats: st, MaxTheta: l.MaxTheta()})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, l.Health(r.Context()))
	})
	return mux
}

// TestRemoteShardBitIdentity is the distributed half of the bit-identity
// contract: a router scattering over HTTP shards must produce exactly the
// local scatter's floats — Go's float64 JSON round trip is exact — which
// are themselves the union model's floats. Training flows through the
// remote path too, so the models behind both sets stay the same objects.
func TestRemoteShardBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	seed := stream(400, 2, rng)
	local := newTestSet(t, 2, 3, seed)
	ctx := context.Background()

	remotes := make([]Backend, local.Shards())
	for i, b := range local.Backends() {
		ts := httptest.NewServer(shardHandler(b.(*Local)))
		defer ts.Close()
		r := NewRemote(ts.URL, nil, nil)
		if err := r.Prime(ctx, 2); err != nil {
			t.Fatal(err)
		}
		remotes[i] = r
	}
	router, err := New(local.Partition(), remotes)
	if err != nil {
		t.Fatal(err)
	}

	// Train through the router: the pairs cross the wire, land in the same
	// models the local set fronts, and the train responses grow the remote
	// routing bounds.
	if _, err := router.TrainBatch(ctx, seed); err != nil {
		t.Fatal(err)
	}
	st := router.Stats()
	if st.Steps != len(seed) || st.Live == 0 {
		t.Fatalf("remote train left Stats %+v", st)
	}
	for i, b := range remotes {
		if got, want := b.MaxTheta(), local.Backends()[i].MaxTheta(); got < want {
			t.Fatalf("shard %d cached bound %v below the true bound %v", i, got, want)
		}
	}

	ref := unionOf(t, local)
	v := ref.View()
	for _, q := range queryMix(2, 200, rng) {
		want, err := v.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %+v: remote mean %v, union %v", q, got, want)
		}
		at := []float64{rng.Float64(), rng.Float64()}
		wantVal, err := v.PredictValue(q, at)
		if err != nil {
			t.Fatal(err)
		}
		gotVal, err := router.PredictValue(q, at)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal != wantVal {
			t.Fatalf("query %+v: remote value %v, union %v", q, gotVal, wantVal)
		}
		wantModels, err := v.Regression(q)
		if err != nil {
			t.Fatal(err)
		}
		gotModels, err := router.Regression(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotModels) != len(wantModels) {
			t.Fatalf("query %+v: remote regression %d models, union %d", q, len(gotModels), len(wantModels))
		}
		for j := range gotModels {
			if gotModels[j].Weight != wantModels[j].Weight || gotModels[j].Intercept != wantModels[j].Intercept {
				t.Fatalf("query %+v model %d: remote %+v, union %+v", q, j, gotModels[j], wantModels[j])
			}
		}
	}
}

// TestRemoteFollowerSpreadAndFailover checks the read path across replicas:
// scans round-robin over primary and followers (all serving the same
// model), keep answering when a follower is down, and training goes to the
// primary only.
func TestRemoteFollowerSpreadAndFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	m, err := core.NewModel(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLocal(m)
	var primaryScans, followerScans, primaryTrains int
	count := func(h http.Handler, scans, trains *int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case PathScan:
				*scans++
			case PathTrain:
				*trains++
			}
			h.ServeHTTP(w, r)
		})
	}
	var followerTrains int
	primary := httptest.NewServer(count(shardHandler(l), &primaryScans, &primaryTrains))
	defer primary.Close()
	follower := httptest.NewServer(count(shardHandler(l), &followerScans, &followerTrains))
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	r := NewRemote(primary.URL, []string{follower.URL, dead.URL}, nil)
	ctx := context.Background()
	if err := r.Prime(ctx, 2); err != nil {
		t.Fatal(err)
	}
	pairs := stream(100, 2, rng)
	if _, err := r.Train(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	if primaryTrains != 1 || followerTrains != 0 {
		t.Fatalf("training hit primary %d times, follower %d; must be primary-only", primaryTrains, followerTrains)
	}
	q := core.Query{Center: []float64{0.5, 0.5}, Theta: 0.3}
	for i := 0; i < 12; i++ {
		if _, err := r.Scan(ctx, q, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	if primaryScans == 0 || followerScans == 0 {
		t.Fatalf("scans did not spread: primary %d, follower %d", primaryScans, followerScans)
	}
	// The dead replica absorbed ~a third of the round-robin starts; every
	// scan still succeeded by failing over.
	if primaryScans+followerScans < 12 {
		t.Fatalf("only %d+%d scans landed; failover lost requests", primaryScans, followerScans)
	}

	// Health reflects the wire: the primary is ready, a dead shard is not.
	if h := r.Health(ctx); h.Status != "ready" {
		t.Fatalf("healthy remote reports %+v", h)
	}
	down := NewRemote(dead.URL, nil, nil)
	if h := down.Health(ctx); h.Status != "unreachable" {
		t.Fatalf("dead remote reports %+v", h)
	}
	// Priming against a dead shard fails rather than wiring a blind route.
	if err := down.Prime(ctx, 2); err == nil {
		t.Fatal("Prime against a dead shard succeeded")
	}
	// A dim-mismatched shard is refused with ErrDimension.
	if err := r.Prime(ctx, 7); err == nil {
		t.Fatal("Prime accepted a dim mismatch")
	}
}

// TestManifestRoundTrip checks the shards.json layout file: write, read,
// routing equivalence, and validation of torn documents.
func TestManifestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	flat := make([]float64, 0, 600)
	for i := 0; i < 300; i++ {
		flat = append(flat, rng.Float64(), rng.Float64())
	}
	part, err := index.NewPartition(2, 4, flat, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + ManifestName
	man := Manifest{Dim: 2, Shards: 4, Part: part}
	if err := WriteManifest(path, man); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 2 || got.Shards != 4 || got.Part.Leaves() != 4 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if got.Part.Locate(x) != part.Locate(x) {
			t.Fatalf("decoded partition routes %v differently", x)
		}
	}
	// Inconsistent documents are rejected.
	if err := WriteManifest(path, Manifest{Dim: 2, Shards: 5, Part: part}); err == nil {
		t.Fatal("manifest with wrong shard count accepted")
	}
	if _, err := ReadManifest(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing manifest read succeeded")
	}
}
