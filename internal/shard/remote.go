package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"

	"llmq/internal/core"
)

// The shard wire protocol, served by every model-backed llmq server:
//
//	POST /shard/scan   ScanRequest → core.ScatterResult
//	POST /shard/train  TrainShardRequest → TrainShardResponse
//	GET  /shard/meta   → Meta
//
// Scans are read-only and may be answered by a follower replica; training
// must go to the shard's primary. float64 values survive the JSON round
// trip exactly (Go encodes the shortest representation that parses back to
// the same bits), so remote merging stays bit-identical to local merging.
const (
	PathScan  = "/shard/scan"
	PathMeta  = "/shard/meta"
	PathTrain = "/shard/train"
)

// ScanRequest is the body of POST /shard/scan.
type ScanRequest struct {
	Center []float64 `json:"center"`
	Theta  float64   `json:"theta"`
	// At, when present, asks for value-prediction terms at this data point.
	At []float64 `json:"at,omitempty"`
	// Models asks for the explicit local linear models (Q2 answers).
	Models bool `json:"models,omitempty"`
}

// WirePair is one training pair on the shard protocol.
type WirePair struct {
	Center []float64 `json:"center"`
	Theta  float64   `json:"theta"`
	Answer float64   `json:"answer"`
}

// TrainShardRequest is the body of POST /shard/train.
type TrainShardRequest struct {
	Pairs []WirePair `json:"pairs"`
}

// TrainShardResponse is the body returned by POST /shard/train: the train
// outcome plus the shard's routing bound, so the router's cached bound
// follows the prototypes it just created.
type TrainShardResponse struct {
	TrainStats
	MaxTheta float64 `json:"max_theta"`
}

// Remote is a shard reached over HTTP: a primary (the only endpoint that
// trains) and optionally follower replicas, across which read scans are
// spread round-robin. The routing bound MaxTheta is cached grow-only: it
// is primed from /shard/meta, grown by every train and scan response, and
// never shrinks while the router runs — a stale-loose bound costs a wasted
// scatter, never a missed prototype.
type Remote struct {
	urls   []string // primary first
	client *http.Client

	next     atomic.Uint64 // round-robin cursor over urls for scans
	maxTheta atomic.Uint64 // float64 bits, grow-only

	dim       atomic.Int64
	live      atomic.Int64
	steps     atomic.Int64
	converged atomic.Bool
	durable   atomic.Bool
}

// NewRemote builds a remote shard backend over the primary's base URL and
// any follower base URLs. client may be nil for http.DefaultClient. The
// backend is not routable until Prime succeeds.
func NewRemote(primary string, followers []string, client *http.Client) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{urls: append([]string{primary}, followers...), client: client}
}

// Primary returns the shard's primary base URL.
func (r *Remote) Primary() string { return r.urls[0] }

// Prime fetches the shard's meta from its primary and seeds the routing
// bound. wantDim guards against wiring a shard of the wrong
// dimensionality into a router; pass 0 to accept any (an empty durable
// shard still knows its configured dim, but a fresh in-memory one may
// report 0 until trained).
func (r *Remote) Prime(ctx context.Context, wantDim int) error {
	var m Meta
	if err := r.do(ctx, r.urls[0], http.MethodGet, PathMeta, nil, &m); err != nil {
		return fmt.Errorf("shard: prime %s: %w", r.urls[0], err)
	}
	if wantDim != 0 && m.Dim != 0 && m.Dim != wantDim {
		return fmt.Errorf("%w: shard %s has dim %d, router expects %d", core.ErrDimension, r.urls[0], m.Dim, wantDim)
	}
	r.dim.Store(int64(m.Dim))
	r.live.Store(int64(m.Live))
	r.steps.Store(int64(m.Steps))
	r.converged.Store(m.Converged)
	r.durable.Store(m.Durable)
	r.growTheta(m.MaxTheta)
	return nil
}

// growTheta raises the cached routing bound, never lowering it.
func (r *Remote) growTheta(v float64) {
	for {
		old := r.maxTheta.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if r.maxTheta.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// MaxTheta implements Backend from the grow-only cache.
func (r *Remote) MaxTheta() float64 { return math.Float64frombits(r.maxTheta.Load()) }

// Scan implements Backend: the request is spread round-robin across the
// primary and its followers, falling over to the next replica on a
// transport failure. Every response refreshes the routing bound.
func (r *Remote) Scan(ctx context.Context, q core.Query, at []float64, needModels bool) (core.ScatterResult, error) {
	req := ScanRequest{Center: q.Center, Theta: q.Theta, At: at, Models: needModels}
	var res core.ScatterResult
	start := r.next.Add(1)
	var errs []error
	for i := 0; i < len(r.urls); i++ {
		url := r.urls[(start+uint64(i))%uint64(len(r.urls))]
		err := r.do(ctx, url, http.MethodPost, PathScan, req, &res)
		if err == nil {
			r.live.Store(int64(res.Live))
			r.growTheta(res.MaxTheta)
			return res, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", url, err))
		if ctx.Err() != nil {
			break
		}
	}
	return core.ScatterResult{}, errors.Join(errs...)
}

// Train implements Backend against the primary only — follower state is
// defined as "exactly what the primary shipped".
func (r *Remote) Train(ctx context.Context, pairs []core.TrainingPair) (TrainStats, error) {
	req := TrainShardRequest{Pairs: make([]WirePair, len(pairs))}
	for i, p := range pairs {
		req.Pairs[i] = WirePair{Center: p.Query.Center, Theta: p.Query.Theta, Answer: p.Answer}
	}
	var res TrainShardResponse
	if err := r.do(ctx, r.urls[0], http.MethodPost, PathTrain, req, &res); err != nil {
		return TrainStats{}, err
	}
	r.live.Store(int64(res.K))
	r.steps.Store(int64(res.Steps))
	r.converged.Store(res.Converged)
	r.growTheta(res.MaxTheta)
	return res.TrainStats, nil
}

// Stats implements Backend from the cached view — no round trip. The cache
// follows train and scan responses; Prime refreshes it authoritatively.
func (r *Remote) Stats() Meta {
	return Meta{
		Dim:       int(r.dim.Load()),
		Live:      int(r.live.Load()),
		Steps:     int(r.steps.Load()),
		Converged: r.converged.Load(),
		MaxTheta:  r.MaxTheta(),
		Durable:   r.durable.Load(),
	}
}

// readyBody is the subset of the server's /readyz body the router reads.
type readyBody struct {
	Status string `json:"status"`
	Cause  string `json:"cause,omitempty"`
}

// Health implements Backend by probing the primary's readiness endpoint.
func (r *Remote) Health(ctx context.Context) Health {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.urls[0]+"/readyz", nil)
	if err != nil {
		return Health{Status: "unreachable", Cause: err.Error()}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return Health{Status: "unreachable", Cause: err.Error()}
	}
	defer resp.Body.Close()
	var body readyBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return Health{Status: "unreachable", Cause: fmt.Sprintf("bad readiness body: %v", err)}
	}
	if body.Status == "" {
		body.Status = resp.Status
	}
	return Health{Status: body.Status, Cause: body.Cause}
}

// errorBody matches the server's error responses.
type errorBody struct {
	Error string `json:"error"`
}

// do runs one JSON request against base+path and decodes a 2xx body into
// out. Non-2xx responses surface the server's error string.
func (r *Remote) do(ctx context.Context, base, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		if eb.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, eb.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
