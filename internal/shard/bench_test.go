package shard

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// Shard-scaling measurements. The write path scales because TrainBatch
// buckets the pairs and each shard absorbs its bucket under its own writer
// lock; the read path scales because concurrent queries fan out over
// per-shard scans. On the 1-core container the numbers collapse to ~1× —
// the scaling shows on multi-core runners; scripts/bench.sh records both.

// benchShardCounts is the scaling ladder of BENCH_<n>.json.
var benchShardCounts = []int{1, 2, 4, 8}

// TestShardedTrainScaling asserts the tentpole property on a multi-core
// runner: partitioned training across 4 shards beats the single writer lock
// by a clear margin on the identical pair stream. Timing-based, so the
// bar is deliberately below the ~3× a quiet 4-core machine shows.
func TestShardedTrainScaling(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 cores to observe write scaling, have GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := rand.New(rand.NewSource(141))
	pairs := stream(6000, 2, rng)
	elapsed := func(shards int) time.Duration {
		s := newTestSet(t, 2, shards, pairs)
		ctx := context.Background()
		start := time.Now()
		for off := 0; off < len(pairs); off += 500 {
			if _, err := s.TrainBatch(ctx, pairs[off:off+500]); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Best of two runs each, to shrug off scheduler noise.
	t1 := min(elapsed(1), elapsed(1))
	t4 := min(elapsed(4), elapsed(4))
	speedup := float64(t1) / float64(t4)
	t.Logf("1 shard %v, 4 shards %v: %.2fx", t1, t4, speedup)
	if speedup < 1.5 {
		t.Fatalf("4-shard training only %.2fx faster than 1-shard (%v vs %v)", speedup, t4, t1)
	}
}

// BenchmarkShardedTrainThroughput measures partitioned write throughput at
// each shard count: one op trains a 256-pair batch through the scatter
// bucketer. pairs/s is the headline metric; ns/op is per batch. Prototype
// counts saturate under the test vigilance, so steady-state batches are
// comparable across shard counts.
func BenchmarkShardedTrainThroughput(b *testing.B) {
	for _, shards := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rng := rand.New(rand.NewSource(151))
			pool := stream(4096, 2, rng)
			s := newTestSet(b, 2, shards, pool)
			ctx := context.Background()
			const batch = 256
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * batch) % len(pool)
				if _, err := s.TrainBatch(ctx, pool[off:off+batch]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
}

// BenchmarkShardedQPS measures read throughput at each shard count:
// concurrent Q1 queries scattered over the set from all cores. Most queries
// route point-to-point (one shard), so added shards shrink per-scan work
// and add read parallelism.
func BenchmarkShardedQPS(b *testing.B) {
	for _, shards := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rng := rand.New(rand.NewSource(161))
			pool := stream(4096, 2, rng)
			s := newTestSet(b, 2, shards, pool)
			if _, err := s.TrainBatch(context.Background(), pool); err != nil {
				b.Fatal(err)
			}
			queries := queryMix(2, 1024, rng)
			var cursor atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := queries[int(cursor.Add(1))%len(queries)]
					if _, err := s.PredictMean(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
}
