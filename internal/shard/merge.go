package shard

import (
	"math"

	"llmq/internal/core"
)

// gathered is the union model's view of one query, assembled from per-shard
// scatter results in ascending shard order: the shard-major concatenation
// of raw contributions, the global winner terms, and the union's live
// count.
type gathered struct {
	live     int
	contribs []core.ScatterContribution
	// winner* carry the terms of the globally closest prototype among the
	// shards whose local overlap came up empty. They decide the answer only
	// when contribs is empty — then every scanned shard reported a winner,
	// and the closest one is the union model's extrapolation source.
	winnerDist  float64
	winnerMean  float64
	winnerValue float64
	winnerModel *core.LocalLinear
}

// gather folds per-shard scatter results, which MUST be ordered by
// ascending shard id — the order core.Fuse concatenates slots in, and
// therefore the order the union model's own accumulation loop visits them.
// The strict < on the winner distance keeps the first minimum in shard
// order, matching the union model's slot-order winner sweep.
func gather(results []core.ScatterResult) gathered {
	g := gathered{winnerDist: math.Inf(1)}
	for _, r := range results {
		g.live += r.Live
		g.contribs = append(g.contribs, r.Contribs...)
		if r.WinnerDist < g.winnerDist {
			g.winnerDist = r.WinnerDist
			g.winnerMean = r.WinnerMean
			g.winnerValue = r.WinnerValue
			g.winnerModel = r.WinnerModel
		}
	}
	return g
}

// total sums the raw overlap degrees in concatenation order — the union
// model's running total, the single divisor of every fusion weight.
func (g gathered) total() float64 {
	var t float64
	for _, c := range g.contribs {
		t += c.Degree
	}
	return t
}

// mean replays the union model's Q1 accumulation (Eq. 11/12) over the
// concatenated raw terms.
func (g gathered) mean() float64 {
	if len(g.contribs) == 0 {
		return g.winnerMean
	}
	t := g.total()
	var yhat float64
	for _, c := range g.contribs {
		yhat += c.Degree / t * c.Mean
	}
	return yhat
}

// value replays the union model's value-prediction accumulation (Eq. 14).
func (g gathered) value() float64 {
	if len(g.contribs) == 0 {
		return g.winnerValue
	}
	t := g.total()
	var uhat float64
	for _, c := range g.contribs {
		uhat += c.Degree / t * c.Value
	}
	return uhat
}

// models assembles the union model's Q2 answer (Theorem 3): the local
// linear models of the overlapping prototypes with their normalized fusion
// weights, or the winner's model with weight 0 on the extrapolation path.
func (g gathered) models() []core.LocalLinear {
	if len(g.contribs) == 0 {
		if g.winnerModel == nil {
			return nil
		}
		m := *g.winnerModel
		m.Weight = 0
		return []core.LocalLinear{m}
	}
	t := g.total()
	out := make([]core.LocalLinear, 0, len(g.contribs))
	for _, c := range g.contribs {
		m := *c.Model
		m.Weight = c.Degree / t
		out = append(out, m)
	}
	return out
}
