// Package dataset provides the in-memory dataset abstraction shared by the
// DBMS substrate, the workload generator and the experiment harness: a set of
// (x, u) observations with named attributes, CSV import/export, min–max
// scaling to the unit cube (the paper scales all real attributes to [0,1]),
// and deterministic splitting.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Errors returned by dataset operations.
var (
	ErrEmpty     = errors.New("dataset: empty dataset")
	ErrDimension = errors.New("dataset: dimension mismatch")
)

// Dataset is an in-memory collection of observations (x, u) where x is a
// d-dimensional input vector and u the scalar output attribute.
type Dataset struct {
	// Name identifies the dataset (e.g. "R1", "R2").
	Name string
	// InputNames holds the d input attribute names.
	InputNames []string
	// OutputName holds the output attribute name.
	OutputName string
	// Xs holds the input vectors; all have dimension len(InputNames).
	Xs [][]float64
	// Us holds the output values; len(Us) == len(Xs).
	Us []float64
}

// New creates an empty dataset with auto-generated attribute names x1..xd
// and output name "u".
func New(name string, dim int) *Dataset {
	names := make([]string, dim)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i+1)
	}
	return &Dataset{Name: name, InputNames: names, OutputName: "u"}
}

// FromPoints builds a dataset from parallel slices of inputs and outputs.
// The slices are used directly (not copied).
func FromPoints(name string, xs [][]float64, us []float64) (*Dataset, error) {
	if len(xs) != len(us) {
		return nil, fmt.Errorf("%w: %d inputs vs %d outputs", ErrDimension, len(xs), len(us))
	}
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	d := len(xs[0])
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("%w: row %d has dim %d, want %d", ErrDimension, i, len(x), d)
		}
	}
	ds := New(name, d)
	ds.Xs = xs
	ds.Us = us
	return ds, nil
}

// Dim returns the input dimensionality.
func (d *Dataset) Dim() int { return len(d.InputNames) }

// Len returns the number of observations.
func (d *Dataset) Len() int { return len(d.Xs) }

// Append adds a single observation. The input vector is used directly.
func (d *Dataset) Append(x []float64, u float64) error {
	if len(x) != d.Dim() {
		return fmt.Errorf("%w: got %d, want %d", ErrDimension, len(x), d.Dim())
	}
	d.Xs = append(d.Xs, x)
	d.Us = append(d.Us, u)
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Name:       d.Name,
		InputNames: append([]string(nil), d.InputNames...),
		OutputName: d.OutputName,
		Xs:         make([][]float64, len(d.Xs)),
		Us:         append([]float64(nil), d.Us...),
	}
	for i, x := range d.Xs {
		c.Xs[i] = append([]float64(nil), x...)
	}
	return c
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.Xs) != len(d.Us) {
		return fmt.Errorf("%w: %d inputs vs %d outputs", ErrDimension, len(d.Xs), len(d.Us))
	}
	dim := d.Dim()
	for i, x := range d.Xs {
		if len(x) != dim {
			return fmt.Errorf("%w: row %d has dim %d, want %d", ErrDimension, i, len(x), dim)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: row %d attribute %d is not finite (%v)", i, j, v)
			}
		}
		if math.IsNaN(d.Us[i]) || math.IsInf(d.Us[i], 0) {
			return fmt.Errorf("dataset: row %d output is not finite (%v)", i, d.Us[i])
		}
	}
	return nil
}

// Bounds returns, per input attribute, the minimum and maximum observed
// values, along with the output bounds.
type Bounds struct {
	InputMin  []float64
	InputMax  []float64
	OutputMin float64
	OutputMax float64
}

// Bounds computes the attribute-wise bounds of the dataset.
func (d *Dataset) Bounds() (Bounds, error) {
	if d.Len() == 0 {
		return Bounds{}, ErrEmpty
	}
	dim := d.Dim()
	b := Bounds{
		InputMin:  make([]float64, dim),
		InputMax:  make([]float64, dim),
		OutputMin: d.Us[0],
		OutputMax: d.Us[0],
	}
	copy(b.InputMin, d.Xs[0])
	copy(b.InputMax, d.Xs[0])
	for i := 1; i < d.Len(); i++ {
		for j, v := range d.Xs[i] {
			if v < b.InputMin[j] {
				b.InputMin[j] = v
			}
			if v > b.InputMax[j] {
				b.InputMax[j] = v
			}
		}
		if d.Us[i] < b.OutputMin {
			b.OutputMin = d.Us[i]
		}
		if d.Us[i] > b.OutputMax {
			b.OutputMax = d.Us[i]
		}
	}
	return b, nil
}

// Scaler min–max scales inputs (and optionally the output) into [0,1],
// remembering the original bounds so queries and predictions can be mapped
// both ways.
type Scaler struct {
	bounds      Bounds
	scaleOutput bool
}

// FitScaler learns a scaler from the dataset. If scaleOutput is true the
// output attribute is scaled as well.
func FitScaler(d *Dataset, scaleOutput bool) (*Scaler, error) {
	b, err := d.Bounds()
	if err != nil {
		return nil, err
	}
	return &Scaler{bounds: b, scaleOutput: scaleOutput}, nil
}

// Bounds returns the bounds the scaler was fitted on.
func (s *Scaler) Bounds() Bounds { return s.bounds }

// ScaleX maps an input vector into [0,1]^d (in place on a copy).
// Attributes with zero range map to 0.5.
func (s *Scaler) ScaleX(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		lo, hi := s.bounds.InputMin[j], s.bounds.InputMax[j]
		if hi == lo {
			out[j] = 0.5
			continue
		}
		out[j] = (v - lo) / (hi - lo)
	}
	return out
}

// UnscaleX maps a scaled input vector back to the original range.
func (s *Scaler) UnscaleX(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		lo, hi := s.bounds.InputMin[j], s.bounds.InputMax[j]
		out[j] = lo + v*(hi-lo)
	}
	return out
}

// ScaleU maps an output value into [0,1] when output scaling is enabled;
// otherwise it returns u unchanged.
func (s *Scaler) ScaleU(u float64) float64 {
	if !s.scaleOutput {
		return u
	}
	lo, hi := s.bounds.OutputMin, s.bounds.OutputMax
	if hi == lo {
		return 0.5
	}
	return (u - lo) / (hi - lo)
}

// UnscaleU inverts ScaleU.
func (s *Scaler) UnscaleU(u float64) float64 {
	if !s.scaleOutput {
		return u
	}
	lo, hi := s.bounds.OutputMin, s.bounds.OutputMax
	return lo + u*(hi-lo)
}

// Apply returns a new dataset with all observations scaled.
func (s *Scaler) Apply(d *Dataset) *Dataset {
	out := New(d.Name+"-scaled", d.Dim())
	out.InputNames = append([]string(nil), d.InputNames...)
	out.OutputName = d.OutputName
	out.Xs = make([][]float64, d.Len())
	out.Us = make([]float64, d.Len())
	for i := range d.Xs {
		out.Xs[i] = s.ScaleX(d.Xs[i])
		out.Us[i] = s.ScaleU(d.Us[i])
	}
	return out
}

// Split partitions the dataset into two parts, the first containing
// round(frac*Len()) observations, selected by a deterministic shuffle of the
// given seed. frac must lie in (0,1).
func (d *Dataset) Split(frac float64, seed int64) (*Dataset, *Dataset, error) {
	if d.Len() == 0 {
		return nil, nil, ErrEmpty
	}
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v outside (0,1)", frac)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	cut := int(math.Round(frac * float64(d.Len())))
	if cut == 0 {
		cut = 1
	}
	if cut == d.Len() {
		cut = d.Len() - 1
	}
	mk := func(name string, ids []int) *Dataset {
		out := New(name, d.Dim())
		out.InputNames = append([]string(nil), d.InputNames...)
		out.OutputName = d.OutputName
		for _, i := range ids {
			out.Xs = append(out.Xs, d.Xs[i])
			out.Us = append(out.Us, d.Us[i])
		}
		return out
	}
	return mk(d.Name+"-a", idx[:cut]), mk(d.Name+"-b", idx[cut:]), nil
}

// Sample returns a dataset of n observations drawn uniformly without
// replacement (or the full dataset if n >= Len()).
func (d *Dataset) Sample(n int, seed int64) *Dataset {
	if n >= d.Len() {
		return d.Clone()
	}
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())[:n]
	out := New(d.Name+"-sample", d.Dim())
	out.InputNames = append([]string(nil), d.InputNames...)
	out.OutputName = d.OutputName
	for _, i := range idx {
		out.Xs = append(out.Xs, d.Xs[i])
		out.Us = append(out.Us, d.Us[i])
	}
	return out
}

// WriteCSV writes the dataset as CSV with a header row (input names then the
// output name).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), d.InputNames...), d.OutputName)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, d.Dim()+1)
	for i := range d.Xs {
		for j, v := range d.Xs[i] {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[d.Dim()] = strconv.FormatFloat(d.Us[i], 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV: a header row of d input names
// plus one output name, followed by numeric rows.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: header must have at least 2 columns, got %d", len(header))
	}
	dim := len(header) - 1
	ds := New(name, dim)
	ds.InputNames = append([]string(nil), header[:dim]...)
	ds.OutputName = strings.TrimSpace(header[dim])
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		if len(rec) != dim+1 {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), dim+1)
		}
		x := make([]float64, dim)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", line, j+1, err)
			}
			x[j] = v
		}
		u, err := strconv.ParseFloat(strings.TrimSpace(rec[dim]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d output: %w", line, err)
		}
		ds.Xs = append(ds.Xs, x)
		ds.Us = append(ds.Us, u)
	}
	if ds.Len() == 0 {
		return nil, ErrEmpty
	}
	return ds, nil
}
