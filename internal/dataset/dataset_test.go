package dataset

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T, n, dim int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	us := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = rng.Float64()*10 - 5
		}
		us[i] = rng.NormFloat64()
	}
	ds, err := FromPoints("t", xs, us)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewAndAppend(t *testing.T) {
	ds := New("demo", 3)
	if ds.Dim() != 3 || ds.Len() != 0 {
		t.Fatalf("Dim=%d Len=%d", ds.Dim(), ds.Len())
	}
	if ds.InputNames[0] != "x1" || ds.InputNames[2] != "x3" || ds.OutputName != "u" {
		t.Errorf("default names = %v / %q", ds.InputNames, ds.OutputName)
	}
	if err := ds.Append([]float64{1, 2, 3}, 4); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Errorf("Len = %d", ds.Len())
	}
	if err := ds.Append([]float64{1}, 2); !errors.Is(err, ErrDimension) {
		t.Errorf("dim mismatch err = %v", err)
	}
}

func TestFromPointsValidation(t *testing.T) {
	if _, err := FromPoints("x", [][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatched lengths err = %v", err)
	}
	if _, err := FromPoints("x", nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := FromPoints("x", [][]float64{{1, 2}, {1}}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("ragged err = %v", err)
	}
	ds, err := FromPoints("x", [][]float64{{1, 2}}, []float64{3})
	if err != nil || ds.Dim() != 2 {
		t.Errorf("valid FromPoints: %v %v", ds, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := sample(t, 10, 2, 1)
	c := ds.Clone()
	c.Xs[0][0] = 999
	c.Us[0] = 999
	if ds.Xs[0][0] == 999 || ds.Us[0] == 999 {
		t.Error("Clone must deep-copy")
	}
}

func TestValidate(t *testing.T) {
	ds := sample(t, 5, 2, 2)
	if err := ds.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := ds.Clone()
	bad.Us = bad.Us[:len(bad.Us)-1]
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch not detected")
	}
	bad2 := ds.Clone()
	bad2.Xs[2] = []float64{1}
	if err := bad2.Validate(); err == nil {
		t.Error("ragged row not detected")
	}
	bad3 := ds.Clone()
	bad3.Xs[0][0] = math.NaN()
	if err := bad3.Validate(); err == nil {
		t.Error("NaN input not detected")
	}
	bad4 := ds.Clone()
	bad4.Us[0] = math.Inf(1)
	if err := bad4.Validate(); err == nil {
		t.Error("Inf output not detected")
	}
}

func TestBounds(t *testing.T) {
	ds, _ := FromPoints("b", [][]float64{{1, -2}, {3, 0}, {-1, 5}}, []float64{10, -10, 0})
	b, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if b.InputMin[0] != -1 || b.InputMax[0] != 3 || b.InputMin[1] != -2 || b.InputMax[1] != 5 {
		t.Errorf("input bounds = %+v", b)
	}
	if b.OutputMin != -10 || b.OutputMax != 10 {
		t.Errorf("output bounds = %+v", b)
	}
	empty := New("e", 2)
	if _, err := empty.Bounds(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty bounds err = %v", err)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	ds := sample(t, 100, 3, 3)
	s, err := FitScaler(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	scaled := s.Apply(ds)
	for i := range scaled.Xs {
		for j, v := range scaled.Xs[i] {
			if v < 0 || v > 1 {
				t.Fatalf("scaled input out of [0,1]: row %d col %d = %v", i, j, v)
			}
		}
		if scaled.Us[i] < 0 || scaled.Us[i] > 1 {
			t.Fatalf("scaled output out of [0,1]: %v", scaled.Us[i])
		}
		back := s.UnscaleX(scaled.Xs[i])
		for j := range back {
			if math.Abs(back[j]-ds.Xs[i][j]) > 1e-9 {
				t.Fatalf("UnscaleX round trip failed at row %d", i)
			}
		}
		if math.Abs(s.UnscaleU(scaled.Us[i])-ds.Us[i]) > 1e-9 {
			t.Fatalf("UnscaleU round trip failed at row %d", i)
		}
	}
}

func TestScalerWithoutOutputScaling(t *testing.T) {
	ds := sample(t, 50, 2, 4)
	s, err := FitScaler(ds, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.ScaleU(3.7) != 3.7 || s.UnscaleU(3.7) != 3.7 {
		t.Error("output must pass through unchanged when scaleOutput is false")
	}
	if s.Bounds().InputMin == nil {
		t.Error("Bounds should be populated")
	}
}

func TestScalerDegenerateAttribute(t *testing.T) {
	ds, _ := FromPoints("deg", [][]float64{{1, 5}, {2, 5}, {3, 5}}, []float64{7, 7, 7})
	s, err := FitScaler(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	x := s.ScaleX([]float64{2, 5})
	if x[1] != 0.5 {
		t.Errorf("constant attribute should scale to 0.5, got %v", x[1])
	}
	if s.ScaleU(7) != 0.5 {
		t.Errorf("constant output should scale to 0.5, got %v", s.ScaleU(7))
	}
	empty := New("e", 1)
	if _, err := FitScaler(empty, false); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty scaler err = %v", err)
	}
}

func TestSplit(t *testing.T) {
	ds := sample(t, 100, 2, 5)
	a, b, err := ds.Split(0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len()+b.Len() != 100 {
		t.Fatalf("split sizes %d + %d != 100", a.Len(), b.Len())
	}
	if a.Len() != 70 {
		t.Errorf("first part = %d, want 70", a.Len())
	}
	// Deterministic for the same seed.
	a2, _, _ := ds.Split(0.7, 9)
	for i := range a.Us {
		if a.Us[i] != a2.Us[i] {
			t.Fatal("split is not deterministic")
		}
	}
	if _, _, err := ds.Split(0, 1); err == nil {
		t.Error("frac=0 should be rejected")
	}
	if _, _, err := ds.Split(1, 1); err == nil {
		t.Error("frac=1 should be rejected")
	}
	empty := New("e", 2)
	if _, _, err := empty.Split(0.5, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty split err = %v", err)
	}
	// Tiny datasets never produce an empty side.
	tiny, _ := FromPoints("tiny", [][]float64{{1}, {2}}, []float64{1, 2})
	x, y, err := tiny.Split(0.01, 3)
	if err != nil || x.Len() == 0 || y.Len() == 0 {
		t.Errorf("tiny split = %d/%d, %v", x.Len(), y.Len(), err)
	}
	x, y, err = tiny.Split(0.99, 3)
	if err != nil || x.Len() == 0 || y.Len() == 0 {
		t.Errorf("tiny split hi = %d/%d, %v", x.Len(), y.Len(), err)
	}
}

func TestSample(t *testing.T) {
	ds := sample(t, 50, 2, 6)
	s := ds.Sample(10, 1)
	if s.Len() != 10 {
		t.Errorf("sample size = %d", s.Len())
	}
	full := ds.Sample(500, 1)
	if full.Len() != 50 {
		t.Errorf("oversampling should return the whole dataset, got %d", full.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := sample(t, 25, 3, 7)
	ds.InputNames = []string{"lon", "lat", "depth"}
	ds.OutputName = "pwave"
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != 3 || back.Len() != 25 {
		t.Fatalf("round trip shape %d x %d", back.Len(), back.Dim())
	}
	if back.InputNames[0] != "lon" || back.OutputName != "pwave" {
		t.Errorf("names lost: %v %q", back.InputNames, back.OutputName)
	}
	for i := range ds.Xs {
		for j := range ds.Xs[i] {
			if math.Abs(ds.Xs[i][j]-back.Xs[i][j]) > 1e-12 {
				t.Fatalf("value drift at %d,%d", i, j)
			}
		}
		if math.Abs(ds.Us[i]-back.Us[i]) > 1e-12 {
			t.Fatalf("output drift at %d", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"one column":  "a\n1\n",
		"short row":   "a,b,u\n1,2,3\n4,5\n",
		"bad number":  "a,b,u\n1,zap,3\n",
		"bad output":  "a,b,u\n1,2,zap\n",
		"header only": "a,b,u\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV("x", strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// Property: scaling then unscaling any in-bounds vector is the identity.
func TestPropertyScalerInverse(t *testing.T) {
	ds := sample(t, 200, 4, 11)
	s, err := FitScaler(ds, true)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Bounds()
	f := func(raw [4]float64) bool {
		x := make([]float64, 4)
		for j := range x {
			frac := math.Abs(math.Mod(raw[j], 1))
			if math.IsNaN(frac) {
				frac = 0.5
			}
			x[j] = b.InputMin[j] + frac*(b.InputMax[j]-b.InputMin[j])
		}
		back := s.UnscaleX(s.ScaleX(x))
		for j := range x {
			if math.Abs(back[j]-x[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
