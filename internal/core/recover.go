package core

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"sync"

	"llmq/internal/wal"
)

// ErrReadOnly marks a Durable whose write-ahead log failed: the store has
// flipped to read-only — queries keep answering from the in-memory model,
// but every further training call fails with an error wrapping this
// sentinel and the original I/O failure. The failure is sticky by design:
// a log that could not take an append has an undefined tail, and training
// past it would hand out acknowledgements the WAL cannot back. Recovery
// (a process restart over the same directory, once the disk is healthy)
// is the only way back to writable.
var ErrReadOnly = errors.New("core: durable store is read-only after a WAL failure")

// The durability layer: a Model wrapped so that every training pair is
// written ahead to a wal.Log before it is applied, periodic Checkpoint
// snapshots bound the replay work, and Recover reconstructs the exact
// model — bit for bit, including the solver state and the eviction clock —
// from whatever a crash left in the data directory. The contract chain:
//
//	Checkpoint persists everything training touches        (serialize.go)
//	training is deterministic given the pair sequence      (model.go)
//	the WAL totally orders the pair sequence               (Durable.mu)
//	=> newest loadable snapshot + tail replay ≡ no crash.

// DurableOptions configures Recover and the Durable it returns.
type DurableOptions struct {
	// WAL configures the write-ahead log's sync policy; the zero value is
	// group fsync with the default interval and batch.
	WAL wal.Options
	// SnapshotEvery is the number of training pairs between automatic
	// snapshot rotations. Smaller values bound replay-on-boot time at the
	// cost of more frequent full-model writes; values ≤ 0 default to 4096.
	SnapshotEvery int
	// Logf receives the loud recovery diagnostics (torn-tail truncation,
	// snapshot fallback). nil uses the standard library logger.
	Logf func(format string, args ...any)
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Durable is a Model whose training stream survives crashes: Observe and
// TrainBatch append each pair to the write-ahead log under the configured
// sync policy before applying it, and every SnapshotEvery pairs the model
// is checkpointed and the log rotated. Obtain one with Recover. Training
// calls serialize on the Durable (they must — the WAL order is the replay
// order); the wrapped Model's read side stays lock-free, so serving traffic
// is unaffected. All training must go through the Durable: a pair applied
// directly to Model() bypasses the log and is lost on the next crash.
//
// Failure is fail-safe, not fail-stop: the first WAL append, fsync or
// rotation error flips the store read-only (ErrReadOnly) while queries
// keep serving the in-memory model — see Failure.
type Durable struct {
	m    *Model
	opts DurableOptions

	// bootID is a random token minted per Recover/Resume. Replication
	// followers pin it: a change means the primary restarted — and may have
	// truncated and rewritten log bytes the follower already consumed — so
	// the follower must re-bootstrap rather than trust its cursor.
	bootID string

	mu        sync.Mutex // orders append-then-apply; excludes rotation
	log       *wal.Log
	sinceSnap int   // pairs appended since the last snapshot
	failure   error // first WAL failure; non-nil flips the store read-only
	hashes    map[uint64]BoundaryHash
	hasSnap   bool // a snapshot for the current generation exists on disk
}

// BoundaryHash records the model's canonical state at one snapshot
// boundary: entering generation Gen, after Steps training steps. Followers
// compare it against their own state when they cross the same boundary.
type BoundaryHash struct {
	// Gen is the generation this state opens (the snapshot's generation).
	Gen uint64 `json:"gen"`
	// Steps is the model's training-step count at the boundary.
	Steps int `json:"steps"`
	// Hash is the canonical Model.StateHash at the boundary.
	Hash string `json:"hash"`
}

// boundaryHashKeep bounds the retained boundary-hash history; rotation GC
// keeps two generations of files, so a handful of hash entries is already
// generous for any follower that can still catch up incrementally.
const boundaryHashKeep = 16

// newBootID mints the per-boot random token.
func newBootID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a constant: replication then cannot distinguish
		// restarts, but durability itself is unaffected.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Recover reconstructs the model from the data directory and opens it for
// durable training: the newest loadable snapshot is loaded (an unreadable
// one is skipped with a loud log line, falling back to the previous
// generation — whose segments rotation retained for exactly this case) and
// the remaining WAL segments are replayed through the normal training path.
// A torn record at the tail of the newest segment is the signature of a
// crash mid-append: it is truncated away, loudly, and appending resumes at
// the cut. Corruption anywhere else — an unreadable non-newest segment, a
// missing generation — is data loss, not a crash artifact, and fails
// recovery with a descriptive error. A fresh or empty directory starts an
// empty model with the given configuration; cfg is only used in that case
// (an existing snapshot carries its own configuration).
func Recover(dir string, cfg Config, opts DurableOptions) (*Durable, error) {
	opts = opts.withDefaults()
	man, err := wal.List(dir)
	if err != nil {
		return nil, err
	}

	// Choose the recovery base: the newest snapshot that actually loads,
	// else a fresh model replaying from segment 0.
	var (
		m       *Model
		baseGen uint64
	)
	for i := len(man.Snapshots) - 1; i >= 0; i-- {
		gen := man.Snapshots[i]
		path := wal.SnapshotPath(dir, gen)
		lm, lerr := loadSnapshotFile(path)
		if lerr != nil {
			opts.Logf("core: recovery: snapshot %s unreadable (%v); falling back to previous generation", path, lerr)
			continue
		}
		m, baseGen = lm, gen
		break
	}
	if m == nil {
		if len(man.Snapshots) > 0 {
			opts.Logf("core: recovery: no loadable snapshot in %s; replaying the full log from segment 0", dir)
		}
		m, err = NewModel(cfg)
		if err != nil {
			return nil, err
		}
		baseGen = 0
	}

	// The segments to replay: every generation ≥ the base, contiguously.
	// A gap means a segment the state depends on is gone — rotation only
	// deletes generations two snapshots back, so a hole is real data loss.
	var replay []uint64
	for _, g := range man.Segments {
		if g >= baseGen {
			replay = append(replay, g)
		}
	}
	if len(replay) > 0 {
		if replay[0] != baseGen {
			return nil, fmt.Errorf("core: recovery: snapshot generation %d needs segment %s, which is missing", baseGen, wal.SegmentPath(dir, baseGen))
		}
		for i := 1; i < len(replay); i++ {
			if replay[i] != replay[i-1]+1 {
				return nil, fmt.Errorf("core: recovery: missing segment %s", wal.SegmentPath(dir, replay[i-1]+1))
			}
		}
	}
	replayed := 0
	for i, gen := range replay {
		newest := i == len(replay)-1
		n, err := replaySegment(m, dir, gen, newest, opts.Logf)
		if err != nil {
			return nil, err
		}
		replayed += n
	}

	l, err := wal.Continue(dir, opts.WAL)
	if err != nil {
		return nil, err
	}
	// Replayed records count toward the snapshot cadence: they are exactly
	// the replay debt the next boot would pay again, so the next rotation —
	// or a clean Close — folds them into a snapshot instead of letting a
	// kill-restart cycle replay the same tail forever.
	d := &Durable{m: m, opts: opts, bootID: newBootID(), log: l, sinceSnap: replayed,
		hashes: make(map[uint64]BoundaryHash)}
	d.hasSnap = fileExists(wal.SnapshotPath(dir, l.Gen()))
	if replayed == 0 && d.hasSnap && l.Gen() == baseGen {
		// The model sits exactly at a snapshot boundary; record its hash so
		// a follower bootstrapping from this snapshot can verify its copy.
		d.recordBoundaryLocked(l.Gen())
	}
	return d, nil
}

// Resume wraps an already-recovered model over its data directory for
// durable training, without replaying anything: the caller guarantees m is
// exactly the state the directory's snapshot + full segment replay
// produces, and that any torn tail is already truncated. sinceSnap is the
// number of records the newest segment holds (the pending replay debt a
// clean Close should fold into a snapshot). This is how a replication
// follower — which mirrored the log bytes and applied them as they arrived
// — seals its copy and becomes a writable primary on promotion.
func Resume(m *Model, dir string, sinceSnap int, opts DurableOptions) (*Durable, error) {
	opts = opts.withDefaults()
	l, err := wal.Continue(dir, opts.WAL)
	if err != nil {
		return nil, err
	}
	d := &Durable{m: m, opts: opts, bootID: newBootID(), log: l, sinceSnap: sinceSnap,
		hashes: make(map[uint64]BoundaryHash)}
	d.hasSnap = fileExists(wal.SnapshotPath(dir, l.Gen()))
	if sinceSnap == 0 && d.hasSnap {
		d.recordBoundaryLocked(l.Gen())
	}
	return d, nil
}

// fileExists reports whether path exists (any stat failure counts as no).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// loadSnapshotFile loads one snapshot from disk through the hardened Load.
func loadSnapshotFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// replayChunk bounds the pairs buffered per TrainBatch call during replay,
// so replaying an arbitrarily long segment runs in constant memory.
const replayChunk = 4096

// replaySegment re-applies one WAL segment to the model through the shared
// ReplayApplier — the same code path live training takes, which is what
// makes replay reproduce the uncrashed model exactly. It returns the number
// of records re-applied. A torn tail is truncated only on the newest
// segment; anywhere else it fails recovery.
func replaySegment(m *Model, dir string, gen uint64, newest bool, logf func(string, ...any)) (int, error) {
	path := wal.SegmentPath(dir, gen)
	a := NewReplayApplier(m)
	n, corrupt, err := wal.Replay(path, func(r wal.Record) error {
		if aerr := a.Apply(r); aerr != nil {
			return fmt.Errorf("core: recovery: %s: %w", path, aerr)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := a.Flush(); err != nil {
		return 0, err
	}
	if corrupt != nil {
		if !newest {
			// A torn tail is only explicable on the segment that was being
			// appended when the crash hit; corruption below it means the
			// storage lost data that was fsynced long ago.
			return 0, fmt.Errorf("core: recovery: segment %s is corrupt mid-log: %w", path, corrupt)
		}
		logf("core: recovery: %s has a torn/corrupt tail at byte offset %d (%s); truncating to last valid record (%d records kept)",
			path, corrupt.Offset, corrupt.Reason, n)
		if terr := wal.TruncateTorn(path, corrupt.Offset); terr != nil {
			return 0, terr
		}
	}
	return n, nil
}

// Model returns the wrapped model for querying (and for read-only
// inspection). Training through it directly bypasses the log; use the
// Durable's Observe/TrainBatch.
func (d *Durable) Model() *Model { return d.m }

// failLocked records the first WAL failure — flipping the store read-only
// for good — and returns it wrapped in ErrReadOnly. Callers hold d.mu.
// After a mid-batch append failure the log may be ahead of the in-memory
// model (a prefix of the failed, never-acknowledged batch); that is the
// safe direction: the next boot replays the orphaned prefix through the
// normal training path, and no pair that was acknowledged is ever lost.
func (d *Durable) failLocked(err error) error {
	if d.failure == nil {
		d.failure = err
	}
	return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
}

// Failure returns nil while the store is writable, and the root-cause WAL
// error once it has flipped read-only (check errors.Is(err, ErrReadOnly)
// on training errors, or poll this for a readiness probe).
func (d *Durable) Failure() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failure
}

// View pins the current published model version; see Model.View.
func (d *Durable) View() View { return d.m.View() }

// Observe durably consumes one training pair: the pair is appended to the
// write-ahead log (fsynced per the configured sync policy) and then applied
// to the model. The append happens first — a crash after the append replays
// the pair; a crash before it loses a pair the caller never saw applied.
func (d *Durable) Observe(q Query, answer float64) (StepInfo, error) {
	if q.Dim() != d.m.cfg.Dim {
		return StepInfo{}, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, q.Dim(), d.m.cfg.Dim)
	}
	if math.IsNaN(answer) || math.IsInf(answer, 0) {
		return StepInfo{}, fmt.Errorf("core: non-finite training answer %v", answer)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return StepInfo{}, fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.log.Append(wal.Record{Center: q.Center, Theta: q.Theta, Answer: answer}); err != nil {
		return StepInfo{}, d.failLocked(err)
	}
	info, err := d.m.Observe(q, answer)
	if err != nil {
		return info, err
	}
	d.sinceSnap++
	if err := d.maybeRotateLocked(); err != nil {
		return info, d.failLocked(err)
	}
	return info, nil
}

// TrainBatch durably consumes a batch: every pair is validated, appended to
// the log, and the batch is applied under one writer-lock acquisition (see
// Model.TrainBatch). Durability follows the sync policy, as with Observe.
func (d *Durable) TrainBatch(pairs []TrainingPair) (TrainingResult, error) {
	for _, p := range pairs {
		if p.Query.Dim() != d.m.cfg.Dim {
			return TrainingResult{}, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, p.Query.Dim(), d.m.cfg.Dim)
		}
		if math.IsNaN(p.Answer) || math.IsInf(p.Answer, 0) {
			return TrainingResult{}, fmt.Errorf("core: non-finite training answer %v", p.Answer)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return TrainingResult{}, fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	for _, p := range pairs {
		if err := d.log.Append(wal.Record{Center: p.Query.Center, Theta: p.Query.Theta, Answer: p.Answer}); err != nil {
			return TrainingResult{}, d.failLocked(err)
		}
	}
	res, err := d.m.TrainBatch(pairs)
	if err != nil {
		return res, err
	}
	d.sinceSnap += len(pairs)
	if err := d.maybeRotateLocked(); err != nil {
		return res, d.failLocked(err)
	}
	return res, nil
}

// maybeRotateLocked rotates the log onto a fresh checkpoint once enough
// pairs have accumulated. The caller holds d.mu, so no append can interleave
// between the checkpoint and the segment switch — the invariant Rotate
// requires.
func (d *Durable) maybeRotateLocked() error {
	if d.sinceSnap < d.opts.SnapshotEvery {
		return nil
	}
	return d.rotateLocked()
}

func (d *Durable) rotateLocked() error {
	if err := d.log.Rotate(d.m.Checkpoint); err != nil {
		return err
	}
	d.sinceSnap = 0
	d.hasSnap = true
	d.recordBoundaryLocked(d.log.Gen())
	return nil
}

// recordBoundaryLocked stores the model's canonical hash for the boundary
// opening gen, pruning the oldest entries past boundaryHashKeep. A hash
// failure is logged, not fatal — the boundary check it feeds is an
// opportunistic divergence detector, not a durability invariant.
func (d *Durable) recordBoundaryLocked(gen uint64) {
	h, err := d.m.StateHash()
	if err != nil {
		d.opts.Logf("core: boundary hash at generation %d failed: %v", gen, err)
		return
	}
	d.hashes[gen] = BoundaryHash{Gen: gen, Steps: d.m.Steps(), Hash: h}
	for len(d.hashes) > boundaryHashKeep {
		oldest := gen
		for g := range d.hashes {
			if g < oldest {
				oldest = g
			}
		}
		delete(d.hashes, oldest)
	}
}

// BoundaryHash returns the recorded canonical state hash for the boundary
// opening gen, if this process recorded one (it records at every rotation
// it performs, and at boot when it starts exactly on a boundary).
func (d *Durable) BoundaryHash(gen uint64) (BoundaryHash, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hashes[gen]
	return h, ok
}

// StateHash returns the model's current step count and canonical state
// hash, atomically with respect to durable training (no pair can land
// between the two reads).
func (d *Durable) StateHash() (steps int, hash string, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	hash, err = d.m.StateHash()
	return d.m.Steps(), hash, err
}

// BootID returns the random token minted when this Durable opened the
// directory. Replication followers pin it to detect primary restarts.
func (d *Durable) BootID() string { return d.bootID }

// Dir returns the data directory.
func (d *Durable) Dir() string { return d.log.Dir() }

// EnsureSnapshot guarantees a loadable snapshot exists for the current
// generation — rotating once if the directory has never snapshotted — and
// returns that generation. Replication bootstrap serves this snapshot; a
// fresh directory would otherwise have nothing to bootstrap from.
func (d *Durable) EnsureSnapshot() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return 0, fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if d.hasSnap {
		return d.log.Gen(), nil
	}
	if err := d.rotateLocked(); err != nil {
		return 0, d.failLocked(err)
	}
	return d.log.Gen(), nil
}

// SetCapacity durably changes the model's capacity bound at runtime: the
// command is appended to the write-ahead log as an admin record — so
// recovery and replication followers re-apply it at exactly this point in
// the training order — and then applied to the model. A nil policy keeps
// the current one. Policies other than the built-in WinDecay/Recency cannot
// be encoded into the log and are rejected.
func (d *Durable) SetCapacity(max int, policy EvictionPolicy, merge bool) error {
	if max < 0 {
		return fmt.Errorf("%w: MaxPrototypes must be non-negative, got %d", ErrBadConfig, max)
	}
	rec := wal.Record{Kind: wal.KindCapacity, MaxPrototypes: max, Merge: merge}
	if policy != nil {
		if _, err := ParseEvictionPolicy(policy.Name()); err != nil {
			return fmt.Errorf("core: cannot WAL-log eviction policy %q: only built-in policies replay", policy.Name())
		}
		rec.Eviction = policy.Name()
		if wd, ok := policy.(WinDecay); ok {
			rec.EvictionHalfLife = wd.HalfLife
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.log.Append(rec); err != nil {
		return d.failLocked(err)
	}
	if err := d.m.SetCapacity(max, policy, merge); err != nil {
		return err
	}
	d.sinceSnap++
	if err := d.maybeRotateLocked(); err != nil {
		return d.failLocked(err)
	}
	return nil
}

// Snapshot forces a checkpoint + log rotation now, independent of the
// SnapshotEvery cadence. A rotation failure — the tail fsync or the
// snapshot write hitting a sick disk — flips the store read-only like any
// other WAL failure.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.rotateLocked(); err != nil {
		return d.failLocked(err)
	}
	return nil
}

// Sync forces every appended pair to stable storage regardless of the sync
// policy. A failed fsync flips the store read-only.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.log.Sync(); err != nil {
		return d.failLocked(err)
	}
	return nil
}

// Gen returns the current snapshot/segment generation (diagnostics).
func (d *Durable) Gen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Gen()
}

// Close shuts the durability layer down cleanly: pairs consumed since the
// last snapshot are checkpointed (so the next Recover replays nothing) and
// the log is closed. Close with pending pairs pays one snapshot write; a
// process killed instead of closed just pays that replay at the next boot.
// A read-only store skips the checkpoint — its log must not grow past the
// failure — closes what it can, and reports the root cause.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		_ = d.log.Close()
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	var rerr error
	if d.sinceSnap > 0 {
		rerr = d.rotateLocked()
	}
	if cerr := d.log.Close(); rerr == nil {
		rerr = cerr
	}
	return rerr
}
