package core

import (
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"sync"

	"llmq/internal/wal"
)

// ErrReadOnly marks a Durable whose write-ahead log failed: the store has
// flipped to read-only — queries keep answering from the in-memory model,
// but every further training call fails with an error wrapping this
// sentinel and the original I/O failure. The failure is sticky by design:
// a log that could not take an append has an undefined tail, and training
// past it would hand out acknowledgements the WAL cannot back. Recovery
// (a process restart over the same directory, once the disk is healthy)
// is the only way back to writable.
var ErrReadOnly = errors.New("core: durable store is read-only after a WAL failure")

// The durability layer: a Model wrapped so that every training pair is
// written ahead to a wal.Log before it is applied, periodic Checkpoint
// snapshots bound the replay work, and Recover reconstructs the exact
// model — bit for bit, including the solver state and the eviction clock —
// from whatever a crash left in the data directory. The contract chain:
//
//	Checkpoint persists everything training touches        (serialize.go)
//	training is deterministic given the pair sequence      (model.go)
//	the WAL totally orders the pair sequence               (Durable.mu)
//	=> newest loadable snapshot + tail replay ≡ no crash.

// DurableOptions configures Recover and the Durable it returns.
type DurableOptions struct {
	// WAL configures the write-ahead log's sync policy; the zero value is
	// group fsync with the default interval and batch.
	WAL wal.Options
	// SnapshotEvery is the number of training pairs between automatic
	// snapshot rotations. Smaller values bound replay-on-boot time at the
	// cost of more frequent full-model writes; values ≤ 0 default to 4096.
	SnapshotEvery int
	// Logf receives the loud recovery diagnostics (torn-tail truncation,
	// snapshot fallback). nil uses the standard library logger.
	Logf func(format string, args ...any)
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Durable is a Model whose training stream survives crashes: Observe and
// TrainBatch append each pair to the write-ahead log under the configured
// sync policy before applying it, and every SnapshotEvery pairs the model
// is checkpointed and the log rotated. Obtain one with Recover. Training
// calls serialize on the Durable (they must — the WAL order is the replay
// order); the wrapped Model's read side stays lock-free, so serving traffic
// is unaffected. All training must go through the Durable: a pair applied
// directly to Model() bypasses the log and is lost on the next crash.
//
// Failure is fail-safe, not fail-stop: the first WAL append, fsync or
// rotation error flips the store read-only (ErrReadOnly) while queries
// keep serving the in-memory model — see Failure.
type Durable struct {
	m    *Model
	opts DurableOptions

	mu        sync.Mutex // orders append-then-apply; excludes rotation
	log       *wal.Log
	sinceSnap int   // pairs appended since the last snapshot
	failure   error // first WAL failure; non-nil flips the store read-only
}

// Recover reconstructs the model from the data directory and opens it for
// durable training: the newest loadable snapshot is loaded (an unreadable
// one is skipped with a loud log line, falling back to the previous
// generation — whose segments rotation retained for exactly this case) and
// the remaining WAL segments are replayed through the normal training path.
// A torn record at the tail of the newest segment is the signature of a
// crash mid-append: it is truncated away, loudly, and appending resumes at
// the cut. Corruption anywhere else — an unreadable non-newest segment, a
// missing generation — is data loss, not a crash artifact, and fails
// recovery with a descriptive error. A fresh or empty directory starts an
// empty model with the given configuration; cfg is only used in that case
// (an existing snapshot carries its own configuration).
func Recover(dir string, cfg Config, opts DurableOptions) (*Durable, error) {
	opts = opts.withDefaults()
	man, err := wal.List(dir)
	if err != nil {
		return nil, err
	}

	// Choose the recovery base: the newest snapshot that actually loads,
	// else a fresh model replaying from segment 0.
	var (
		m       *Model
		baseGen uint64
	)
	for i := len(man.Snapshots) - 1; i >= 0; i-- {
		gen := man.Snapshots[i]
		path := wal.SnapshotPath(dir, gen)
		lm, lerr := loadSnapshotFile(path)
		if lerr != nil {
			opts.Logf("core: recovery: snapshot %s unreadable (%v); falling back to previous generation", path, lerr)
			continue
		}
		m, baseGen = lm, gen
		break
	}
	if m == nil {
		if len(man.Snapshots) > 0 {
			opts.Logf("core: recovery: no loadable snapshot in %s; replaying the full log from segment 0", dir)
		}
		m, err = NewModel(cfg)
		if err != nil {
			return nil, err
		}
		baseGen = 0
	}

	// The segments to replay: every generation ≥ the base, contiguously.
	// A gap means a segment the state depends on is gone — rotation only
	// deletes generations two snapshots back, so a hole is real data loss.
	var replay []uint64
	for _, g := range man.Segments {
		if g >= baseGen {
			replay = append(replay, g)
		}
	}
	if len(replay) > 0 {
		if replay[0] != baseGen {
			return nil, fmt.Errorf("core: recovery: snapshot generation %d needs segment %s, which is missing", baseGen, wal.SegmentPath(dir, baseGen))
		}
		for i := 1; i < len(replay); i++ {
			if replay[i] != replay[i-1]+1 {
				return nil, fmt.Errorf("core: recovery: missing segment %s", wal.SegmentPath(dir, replay[i-1]+1))
			}
		}
	}
	replayed := 0
	for i, gen := range replay {
		newest := i == len(replay)-1
		n, err := replaySegment(m, dir, gen, newest, opts.Logf)
		if err != nil {
			return nil, err
		}
		replayed += n
	}

	l, err := wal.Continue(dir, opts.WAL)
	if err != nil {
		return nil, err
	}
	// Replayed records count toward the snapshot cadence: they are exactly
	// the replay debt the next boot would pay again, so the next rotation —
	// or a clean Close — folds them into a snapshot instead of letting a
	// kill-restart cycle replay the same tail forever.
	return &Durable{m: m, opts: opts, log: l, sinceSnap: replayed}, nil
}

// loadSnapshotFile loads one snapshot from disk through the hardened Load.
func loadSnapshotFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// replayChunk bounds the pairs buffered per TrainBatch call during replay,
// so replaying an arbitrarily long segment runs in constant memory.
const replayChunk = 4096

// replaySegment re-applies one WAL segment to the model through TrainBatch —
// the same code path live training takes, which is what makes replay
// reproduce the uncrashed model exactly. It returns the number of records
// re-applied. A torn tail is truncated only on the newest segment; anywhere
// else it fails recovery.
func replaySegment(m *Model, dir string, gen uint64, newest bool, logf func(string, ...any)) (int, error) {
	path := wal.SegmentPath(dir, gen)
	pairs := make([]TrainingPair, 0, replayChunk)
	flush := func() error {
		if len(pairs) == 0 {
			return nil
		}
		_, err := m.TrainBatch(pairs)
		pairs = pairs[:0]
		return err
	}
	n, corrupt, err := wal.Replay(path, func(r wal.Record) error {
		q, qerr := NewQuery(r.Center, r.Theta)
		if qerr != nil {
			return fmt.Errorf("core: recovery: %s holds an invalid query: %w", path, qerr)
		}
		if math.IsNaN(r.Answer) || math.IsInf(r.Answer, 0) {
			return fmt.Errorf("core: recovery: %s holds a non-finite answer %v", path, r.Answer)
		}
		pairs = append(pairs, TrainingPair{Query: q, Answer: r.Answer})
		if len(pairs) == replayChunk {
			return flush()
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := flush(); err != nil {
		return 0, err
	}
	if corrupt != nil {
		if !newest {
			// A torn tail is only explicable on the segment that was being
			// appended when the crash hit; corruption below it means the
			// storage lost data that was fsynced long ago.
			return 0, fmt.Errorf("core: recovery: segment %s is corrupt mid-log: %w", path, corrupt)
		}
		logf("core: recovery: %s has a torn/corrupt tail at byte offset %d (%s); truncating to last valid record (%d records kept)",
			path, corrupt.Offset, corrupt.Reason, n)
		if terr := wal.TruncateTorn(path, corrupt.Offset); terr != nil {
			return 0, terr
		}
	}
	return n, nil
}

// Model returns the wrapped model for querying (and for read-only
// inspection). Training through it directly bypasses the log; use the
// Durable's Observe/TrainBatch.
func (d *Durable) Model() *Model { return d.m }

// failLocked records the first WAL failure — flipping the store read-only
// for good — and returns it wrapped in ErrReadOnly. Callers hold d.mu.
// After a mid-batch append failure the log may be ahead of the in-memory
// model (a prefix of the failed, never-acknowledged batch); that is the
// safe direction: the next boot replays the orphaned prefix through the
// normal training path, and no pair that was acknowledged is ever lost.
func (d *Durable) failLocked(err error) error {
	if d.failure == nil {
		d.failure = err
	}
	return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
}

// Failure returns nil while the store is writable, and the root-cause WAL
// error once it has flipped read-only (check errors.Is(err, ErrReadOnly)
// on training errors, or poll this for a readiness probe).
func (d *Durable) Failure() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failure
}

// View pins the current published model version; see Model.View.
func (d *Durable) View() View { return d.m.View() }

// Observe durably consumes one training pair: the pair is appended to the
// write-ahead log (fsynced per the configured sync policy) and then applied
// to the model. The append happens first — a crash after the append replays
// the pair; a crash before it loses a pair the caller never saw applied.
func (d *Durable) Observe(q Query, answer float64) (StepInfo, error) {
	if q.Dim() != d.m.cfg.Dim {
		return StepInfo{}, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, q.Dim(), d.m.cfg.Dim)
	}
	if math.IsNaN(answer) || math.IsInf(answer, 0) {
		return StepInfo{}, fmt.Errorf("core: non-finite training answer %v", answer)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return StepInfo{}, fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.log.Append(wal.Record{Center: q.Center, Theta: q.Theta, Answer: answer}); err != nil {
		return StepInfo{}, d.failLocked(err)
	}
	info, err := d.m.Observe(q, answer)
	if err != nil {
		return info, err
	}
	d.sinceSnap++
	if err := d.maybeRotateLocked(); err != nil {
		return info, d.failLocked(err)
	}
	return info, nil
}

// TrainBatch durably consumes a batch: every pair is validated, appended to
// the log, and the batch is applied under one writer-lock acquisition (see
// Model.TrainBatch). Durability follows the sync policy, as with Observe.
func (d *Durable) TrainBatch(pairs []TrainingPair) (TrainingResult, error) {
	for _, p := range pairs {
		if p.Query.Dim() != d.m.cfg.Dim {
			return TrainingResult{}, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, p.Query.Dim(), d.m.cfg.Dim)
		}
		if math.IsNaN(p.Answer) || math.IsInf(p.Answer, 0) {
			return TrainingResult{}, fmt.Errorf("core: non-finite training answer %v", p.Answer)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return TrainingResult{}, fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	for _, p := range pairs {
		if err := d.log.Append(wal.Record{Center: p.Query.Center, Theta: p.Query.Theta, Answer: p.Answer}); err != nil {
			return TrainingResult{}, d.failLocked(err)
		}
	}
	res, err := d.m.TrainBatch(pairs)
	if err != nil {
		return res, err
	}
	d.sinceSnap += len(pairs)
	if err := d.maybeRotateLocked(); err != nil {
		return res, d.failLocked(err)
	}
	return res, nil
}

// maybeRotateLocked rotates the log onto a fresh checkpoint once enough
// pairs have accumulated. The caller holds d.mu, so no append can interleave
// between the checkpoint and the segment switch — the invariant Rotate
// requires.
func (d *Durable) maybeRotateLocked() error {
	if d.sinceSnap < d.opts.SnapshotEvery {
		return nil
	}
	return d.rotateLocked()
}

func (d *Durable) rotateLocked() error {
	if err := d.log.Rotate(d.m.Checkpoint); err != nil {
		return err
	}
	d.sinceSnap = 0
	return nil
}

// Snapshot forces a checkpoint + log rotation now, independent of the
// SnapshotEvery cadence. A rotation failure — the tail fsync or the
// snapshot write hitting a sick disk — flips the store read-only like any
// other WAL failure.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.rotateLocked(); err != nil {
		return d.failLocked(err)
	}
	return nil
}

// Sync forces every appended pair to stable storage regardless of the sync
// policy. A failed fsync flips the store read-only.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	if err := d.log.Sync(); err != nil {
		return d.failLocked(err)
	}
	return nil
}

// Gen returns the current snapshot/segment generation (diagnostics).
func (d *Durable) Gen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Gen()
}

// Close shuts the durability layer down cleanly: pairs consumed since the
// last snapshot are checkpointed (so the next Recover replays nothing) and
// the log is closed. Close with pending pairs pays one snapshot write; a
// process killed instead of closed just pays that replay at the next boot.
// A read-only store skips the checkpoint — its log must not grow past the
// failure — closes what it can, and reports the root cause.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure != nil {
		_ = d.log.Close()
		return fmt.Errorf("%w: %w", ErrReadOnly, d.failure)
	}
	var rerr error
	if d.sinceSnap > 0 {
		rerr = d.rotateLocked()
	}
	if cerr := d.log.Close(); rerr == nil {
		rerr = cerr
	}
	return rerr
}
