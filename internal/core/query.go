// Package core implements the paper's primary contribution: the query-driven
// Local Linear Mapping (LLM) model. The model observes executed analytics
// queries q = [x, θ] and their answers y, quantizes the query space with a
// conditionally growing AVQ (vigilance ρ = a(√d+1)), and learns per-prototype
// local linear mappings f_k(x, θ) ≈ y_k + b_{X,k}(x − x_k)ᵀ + b_{Θ,k}(θ − θ_k)
// by stochastic gradient descent (Algorithm 1, Theorem 4). After training it
// answers, without any data access:
//
//   - Q1 mean-value queries (Algorithm 2, Eq. 11–12),
//   - Q2 linear-regression queries as a list of local linear models over the
//     queried data subspace (Algorithm 3, Eq. 13, Theorem 3), and
//   - data-value predictions û ≈ g(x) (Eq. 14).
//
// Architecturally the package is a small serving system around that model.
// The write side (Model.Observe/Train/TrainBatch, model.go) serializes on
// one writer mutex, updates the authoritative per-LLM solver state, mirrors
// it into a chunked struct-of-arrays store (store.go) and publishes an
// immutable copy-on-write snapshot through one atomic pointer. The read
// side (snapshot.go) is lock-free: every prediction answers from one
// published storeSnapshot, searching it through an immutable grid or k-d
// tree "read epoch" with exactness preserved across index staleness by a
// verified drift-slack budget, and Model.View pins a version across calls.
// Bounded-capacity streaming deployments (Config.MaxPrototypes, evict.go)
// tombstone and reuse prototype slots so the model tracks non-stationary
// workloads at a fixed budget, with eviction published like any other
// version. docs/ARCHITECTURE.md is the guided tour of these paths and the
// invariants each layer maintains.
package core

import (
	"errors"
	"fmt"
	"math"

	"llmq/internal/vector"
)

// Errors returned by the core model.
var (
	ErrDimension  = errors.New("core: dimension mismatch")
	ErrNotTrained = errors.New("core: model has no prototypes yet")
	ErrBadConfig  = errors.New("core: invalid configuration")
)

// Query is an analytics query over the data subspace D(x, θ): all points
// within distance θ of the centre x (Definition 3/4 of the paper).
type Query struct {
	// Center is the query centre x ∈ R^d.
	Center vector.Vec
	// Theta is the radius θ >= 0.
	Theta float64
}

// NewQuery builds a query, validating its shape.
func NewQuery(center []float64, theta float64) (Query, error) {
	if len(center) == 0 {
		return Query{}, fmt.Errorf("%w: empty query centre", ErrDimension)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return Query{}, fmt.Errorf("core: invalid radius %v", theta)
	}
	return Query{Center: vector.Of(center...), Theta: theta}, nil
}

// Dim returns the dimensionality d of the query centre.
func (q Query) Dim() int { return len(q.Center) }

// Vector returns the query as the (d+1)-dimensional vector [x, θ] of the
// query space Q (Definition 4).
func (q Query) Vector() vector.Vec {
	return q.Center.Append(q.Theta)
}

// Distance returns the query-space L2 distance between two queries
// (Definition 5): sqrt(||x − x'||² + (θ − θ')²).
func (q Query) Distance(o Query) float64 {
	return math.Sqrt(vector.SqDistance(q.Center, o.Center) + (q.Theta-o.Theta)*(q.Theta-o.Theta))
}

// Overlaps reports whether the data subspaces of q and o overlap
// (Definition 6): ||x − x'||₂ <= θ + θ'.
func (q Query) Overlaps(o Query) bool {
	return vector.Distance(q.Center, o.Center) <= q.Theta+o.Theta
}

// OverlapDegree returns the normalized degree of overlap δ(q, o) ∈ [0, 1]
// of Eq. (9): 1 − max(||x − x'||₂, |θ − θ'|)/(θ + θ') when the subspaces
// overlap, and 0 otherwise. Two identical queries have degree 1.
func (q Query) OverlapDegree(o Query) float64 {
	return overlapDegree(vector.Distance(q.Center, o.Center), q.Theta, o.Theta)
}

// overlapDegree is the shared Eq. (9) kernel: the overlap degree of two data
// subspaces with centre distance dist and radii t1, t2. Both the Query API
// and the model's flat-store neighbourhood scan use it, so the two paths
// cannot diverge numerically.
func overlapDegree(dist, t1, t2 float64) float64 {
	sum := t1 + t2
	if sum <= 0 {
		// Two degenerate (zero-radius) subspaces overlap fully only when
		// they coincide.
		if dist == 0 {
			return 1
		}
		return 0
	}
	if dist > sum {
		return 0
	}
	num := math.Max(dist, math.Abs(t1-t2))
	deg := 1 - num/sum
	if deg < 0 {
		return 0
	}
	return deg
}

// Contains reports whether the point x lies inside the query's data
// subspace D(x0, θ) under the L2 norm.
func (q Query) Contains(x []float64) bool {
	if len(x) != q.Dim() {
		return false
	}
	return vector.Distance(vector.Vec(x), q.Center) <= q.Theta
}

// String renders the query compactly.
func (q Query) String() string {
	return fmt.Sprintf("D(x=%s, θ=%.4g)", q.Center.String(), q.Theta)
}
