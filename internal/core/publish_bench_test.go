package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// buildPublishBenchModel constructs a K-prototype model by direct insertion
// (bypassing the vigilance stream), so the 100k-prototype fixtures of the
// publication benchmarks build in milliseconds instead of streaming millions
// of pairs. Prototypes are uniform in [0,1]^d with radii in [θLo, θHi];
// epoch rebuilds fire on the way exactly as during training, and the model
// ends published. Benchmark queries drawn with perturbedQuery land within
// the vigilance of their source prototype, so every Observe exercises the
// winner-update (copy-on-write) path, never a spawn.
func buildPublishBenchModel(tb testing.TB, dim, protos int, vigilance, thetaLo, thetaHi float64) *Model {
	tb.Helper()
	cfg := DefaultConfig(dim)
	cfg.Vigilance = vigilance
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < protos; i++ {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		q := Query{Center: c, Theta: thetaLo + (thetaHi-thetaLo)*rng.Float64()}
		l := newLLM(q, rng.NormFloat64())
		// A converged serving model has absorbed many pairs per prototype;
		// the per-prototype learning-rate schedule then takes small steps, so
		// the benchmark measures steady-state updates, not cold-start lurches
		// (whose full-distance prototype moves would trigger drift rebuilds
		// every few pairs, which no converged stream exhibits).
		l.Wins = 200
		m.llms = append(m.llms, l)
		m.store.add(q.Center, q.Theta)
		m.store.syncCoef(i, l)
	}
	m.steps = protos
	// Index everything: a converged serving model has no stale un-indexed
	// tail (growth stopped long ago), whereas the raw bulk build above ends
	// with up to K/8 appended rows pending the next rebuild — which would
	// make every benchmark iteration scan that tail and measure the epoch
	// policy instead of the write path.
	m.store.rebuildEpoch()
	m.publishLocked()
	return m
}

// perturbedQuery returns a query a small step (well inside the vigilance)
// from a random existing prototype of v, so its winner is (essentially
// always) that prototype and Observe takes the update path.
func perturbedQuery(rng *rand.Rand, v View, vigilance float64) Query {
	s := v.s
	src := s.protoQuery(rng.Intn(s.k))
	step := 0.2 * vigilance / float64(s.width)
	for j := range src.Center {
		src.Center[j] += step * (2*rng.Float64() - 1)
	}
	src.Theta += step * (2*rng.Float64() - 1)
	if src.Theta < 0 {
		src.Theta = 0
	}
	return src
}

// BenchmarkObservePublish measures the full per-pair write path — winner
// search, joint AVQ/RLS update, and snapshot publication — across prototype
// counts. This is the measurement behind the chunked copy-on-write
// acceptance criterion: with publication copying only the winner row's chunk
// and the chunk-pointer tables, ns/op must stay essentially flat from K=1k
// to K=100k, where the old full-matrix copy grew it linearly.
// scripts/bench.sh records it in BENCH_3.json.
func BenchmarkObservePublish(b *testing.B) {
	const dim = 2
	// The vigilance scales as 1/√K, as a real training stream's would have to
	// for the workload to pack that many prototypes: constant prototype
	// density per grid cell, so the benchmark isolates the publication cost's
	// K-dependence rather than an unrealistic candidate-density growth.
	for _, tc := range []struct {
		name string
		K    int
		vig  float64
	}{
		{"K=1k", 1_000, 0.03},
		{"K=10k", 10_000, 0.01},
		{"K=100k", 100_000, 0.003},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := buildPublishBenchModel(b, dim, tc.K, tc.vig, 0.05, 0.15)
			rng := rand.New(rand.NewSource(9))
			queries := make([]Query, 4096)
			for i := range queries {
				queries[i] = perturbedQuery(rng, m.View(), tc.vig)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Observe(queries[i%len(queries)], 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainThroughput measures bulk ingestion (TrainBatch in 512-pair
// sheets): one writer-lock acquisition and one publication per sheet, with
// each dirtied chunk copied at most once per sheet however many of its rows
// the sheet updates. ns/op is per training pair.
func BenchmarkTrainThroughput(b *testing.B) {
	const dim, sheet = 2, 512
	for _, tc := range []struct {
		name string
		K    int
		vig  float64
	}{
		{"K=1k", 1_000, 0.03},
		{"K=10k", 10_000, 0.01},
		{"K=100k", 100_000, 0.003},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := buildPublishBenchModel(b, dim, tc.K, tc.vig, 0.05, 0.15)
			rng := rand.New(rand.NewSource(10))
			pairs := make([]TrainingPair, sheet)
			for i := range pairs {
				pairs[i] = TrainingPair{Query: perturbedQuery(rng, m.View(), tc.vig), Answer: rng.NormFloat64()}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += sheet {
				n := sheet
				if rest := b.N - done; rest < n {
					n = rest
				}
				if _, err := m.TrainBatch(pairs[:n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadDuringTrainingScaled is BenchmarkReadDuringTraining's
// large-K companion: prediction latency while a writer streams winner
// updates into a K=10k model. With O(touched-rows) publication the writer
// generates KB-sized garbage per pair instead of full-matrix copies, so the
// under-training read latency stays near the idle latency — the ≥3×
// acceptance criterion against BENCH_2's under-training number.
func BenchmarkReadDuringTrainingScaled(b *testing.B) {
	const dim, vig, K = 2, 0.01, 10_000
	run := func(b *testing.B, training bool) {
		m := buildPublishBenchModel(b, dim, K, vig, 0.01, 0.02)
		qrng := rand.New(rand.NewSource(7))
		queries := make([]Query, 256)
		for i := range queries {
			queries[i] = perturbedQuery(qrng, m.View(), vig)
		}
		done := make(chan struct{})
		var wg sync.WaitGroup
		if training {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(11))
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := m.Observe(perturbedQuery(wrng, m.View(), vig), wrng.NormFloat64()); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		b.ReportAllocs()
		b.ResetTimer()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q := queries[int(i.Add(1))%len(queries)]
				if _, err := m.PredictMean(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		close(done)
		wg.Wait()
	}
	for _, mode := range []string{"idle", "under-training"} {
		b.Run(fmt.Sprintf("%s/K=10k", mode), func(b *testing.B) { run(b, mode == "under-training") })
	}
}
