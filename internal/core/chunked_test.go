package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// refVersion is a full deep copy of one published model version, taken from
// the authoritative LLM training objects — the reference the chunked
// copy-on-write publication is compared against. The store mirrors the LLM
// parameters by plain copies, so a published snapshot must reproduce these
// values bit for bit, at the moment of publication and forever after.
type refVersion struct {
	k     int
	steps int
	rows  [][]float64 // [x_k..., θ_k]
	coefs [][]float64 // [y_k, b_Xk..., b_Θk]
	wins  []int
}

func captureRef(m *Model) refVersion {
	ref := refVersion{k: len(m.llms), steps: m.steps}
	for _, l := range m.llms {
		row := append(append([]float64(nil), l.CenterPrototype...), l.ThetaPrototype)
		coef := append([]float64{l.Intercept}, l.SlopeX...)
		coef = append(coef, l.SlopeTheta)
		ref.rows = append(ref.rows, row)
		ref.coefs = append(ref.coefs, coef)
		ref.wins = append(ref.wins, l.Wins)
	}
	return ref
}

// checkSnapshotAgainstRef asserts the snapshot behind v is bit-identical to
// the full-copy reference captured when it was published.
func checkSnapshotAgainstRef(t *testing.T, v View, ref refVersion, stage string) {
	t.Helper()
	s := v.s
	if s.k != ref.k || s.steps != ref.steps {
		t.Fatalf("%s: snapshot K=%d steps=%d, reference K=%d steps=%d", stage, s.k, s.steps, ref.k, ref.steps)
	}
	for i := 0; i < ref.k; i++ {
		row, coef := s.row(i), s.coefRow(i)
		for j, want := range ref.rows[i] {
			if row[j] != want {
				t.Fatalf("%s: row %d[%d] = %v, reference %v", stage, i, j, row[j], want)
			}
		}
		for j, want := range ref.coefs[i] {
			if coef[j] != want {
				t.Fatalf("%s: coef %d[%d] = %v, reference %v", stage, i, j, coef[j], want)
			}
		}
		if s.win(i) != ref.wins[i] {
			t.Fatalf("%s: wins %d = %d, reference %d", stage, i, s.win(i), ref.wins[i])
		}
	}
}

// TestChunkedPublicationMatchesFullCopy is the copy-on-write exactness
// property test: a random interleaving of Observe, TrainBatch, View and Save
// must (a) publish snapshots bit-identical to a full copy of the
// authoritative training state, and (b) never mutate an already-published
// version — every pinned View is re-verified against its recorded full copy
// after all subsequent training, which fails if a writer ever writes into a
// chunk a published snapshot shares. Save is checked by decoding the JSON
// (Go's float64 encoding round-trips exactly) against the same reference.
func TestChunkedPublicationMatchesFullCopy(t *testing.T) {
	for _, dim := range []int{1, 2, 5} {
		rng := rand.New(rand.NewSource(int64(1000 + dim)))
		cfg := DefaultConfig(dim)
		// Tight spacing: enough spawns to cross chunk boundaries even in the
		// small-volume d=1 query space.
		cfg.Vigilance = 0.02
		if dim == 1 {
			cfg.Vigilance = 0.004
		}
		cfg.Gamma = 1e-12
		cfg.MinGammaSteps = 1 << 30
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		type pinned struct {
			v     View
			ref   refVersion
			stage string
		}
		var pins []pinned
		gen := uniformGen(dim)
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // Observe: per-pair publication
				if _, err := m.Observe(gen(rng), rng.NormFloat64()); err != nil {
					t.Fatal(err)
				}
			case 5: // Observe a near-duplicate of an existing prototype: a
				// guaranteed in-place winner update in an already-published chunk
				if k := m.K(); k > 0 {
					q := m.View().s.protoQuery(rng.Intn(k))
					if _, err := m.Observe(q, rng.NormFloat64()); err != nil {
						t.Fatal(err)
					}
				}
			case 6, 7: // TrainBatch: one publication for many touched rows
				pairs := make([]TrainingPair, 1+rng.Intn(60))
				for i := range pairs {
					pairs[i] = TrainingPair{Query: gen(rng), Answer: rng.NormFloat64()}
				}
				if _, err := m.TrainBatch(pairs); err != nil {
					t.Fatal(err)
				}
			case 8: // pin the current version with its reference copy
				pins = append(pins, pinned{m.View(), captureRef(m), fmt.Sprintf("dim=%d op=%d", dim, op)})
			case 9: // Save the live model; its JSON must match the reference
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					t.Fatal(err)
				}
				ref := captureRef(m)
				var doc modelJSON
				if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
					t.Fatal(err)
				}
				if len(doc.LLMs) != ref.k || doc.Steps != ref.steps {
					t.Fatalf("dim=%d op=%d: Save K=%d steps=%d, reference K=%d steps=%d",
						dim, op, len(doc.LLMs), doc.Steps, ref.k, ref.steps)
				}
				for i, lj := range doc.LLMs {
					got := append(append([]float64(nil), lj.Center...), lj.Theta)
					coef := append([]float64{lj.Intercept}, lj.SlopeX...)
					coef = append(coef, lj.SlopeTheta)
					for j, want := range ref.rows[i] {
						if got[j] != want {
							t.Fatalf("dim=%d op=%d: Save row %d[%d] = %v, reference %v", dim, op, i, j, got[j], want)
						}
					}
					for j, want := range ref.coefs[i] {
						if coef[j] != want {
							t.Fatalf("dim=%d op=%d: Save coef %d[%d] = %v, reference %v", dim, op, i, j, coef[j], want)
						}
					}
					if lj.Wins != ref.wins[i] {
						t.Fatalf("dim=%d op=%d: Save wins %d = %d, reference %d", dim, op, i, lj.Wins, ref.wins[i])
					}
				}
			}
			// The latest published version always matches the live state.
			checkSnapshotAgainstRef(t, m.View(), captureRef(m), fmt.Sprintf("dim=%d op=%d live", dim, op))
		}
		if m.K() < chunkRows {
			t.Fatalf("dim=%d: workload stayed at K=%d — never crossed a chunk boundary", dim, m.K())
		}
		// The heart of the property: every historical version is untouched by
		// everything that trained after it.
		for _, p := range pins {
			checkSnapshotAgainstRef(t, p.v, p.ref, p.stage+" (re-check after training)")
		}
	}
}

// FuzzChunkBoundaryTransitions drives spawn/update/rebuild sequences around
// chunk boundaries from fuzz input: each byte selects an operation, with the
// model pre-grown to just below the first boundary so appends, copy-on-write
// updates and epoch rebuilds all straddle chunk edges. The invariants are
// the same as the property test's: the live snapshot matches a full copy of
// the training state, and a version pinned mid-sequence survives later
// training bit for bit. CI's -race run executes the corpus seeds.
func FuzzChunkBoundaryTransitions(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 17, 99, 200, 5, 5, 5, 128})
	f.Add(bytes.Repeat([]byte{0}, 80))          // all spawns: straight through the boundary
	f.Add(bytes.Repeat([]byte{201, 3}, 40))     // spawn/update interleave
	f.Add([]byte{255, 255, 0, 0, 0, 64, 32, 9}) // batch-heavy
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		const dim = 1
		cfg := DefaultConfig(dim)
		cfg.Vigilance = 1e-6 // any distinct query spawns
		cfg.Gamma = 1e-12
		cfg.MinGammaSteps = 1 << 30
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		// Park K just under the first chunk boundary; every few ops then
		// cross, fill, or rewrite the boundary chunk.
		warm := make([]TrainingPair, chunkRows-4)
		for i := range warm {
			warm[i] = TrainingPair{Query: randQuery(rng, dim), Answer: rng.NormFloat64()}
		}
		if _, err := m.TrainBatch(warm); err != nil {
			t.Fatal(err)
		}
		pinnedView := m.View()
		pinnedRef := captureRef(m)
		for i, b := range ops {
			switch {
			case b < 200: // spawn: a fresh random query is (a.s.) > ρ from everything
				if _, err := m.Observe(randQuery(rng, dim), float64(b)); err != nil {
					t.Fatal(err)
				}
			case b < 250: // in-place update of an existing row (COW path)
				k := int(b) % m.K()
				q := m.View().s.protoQuery(k)
				if _, err := m.Observe(q, float64(b)-225); err != nil {
					t.Fatal(err)
				}
			default: // batch: many rows touched, one publication
				pairs := make([]TrainingPair, 8)
				for j := range pairs {
					pairs[j] = TrainingPair{Query: randQuery(rng, dim), Answer: float64(j)}
				}
				if _, err := m.TrainBatch(pairs); err != nil {
					t.Fatal(err)
				}
			}
			if i%16 == 0 {
				checkSnapshotAgainstRef(t, m.View(), captureRef(m), fmt.Sprintf("fuzz op %d live", i))
			}
		}
		checkSnapshotAgainstRef(t, m.View(), captureRef(m), "fuzz final live")
		checkSnapshotAgainstRef(t, pinnedView, pinnedRef, "fuzz pinned pre-boundary version")
	})
}
