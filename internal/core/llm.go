package core

import (
	"fmt"
	"math"

	"llmq/internal/vector"
)

// LLM is one Local Linear Mapping f_k: Q_k → R, the first-order Taylor
// approximation of the regression function f(x, θ) around the prototype
// w_k = [x_k, θ_k] of the query subspace Q_k (Section III-A):
//
//	f_k(x, θ) ≈ y_k + b_{X,k}(x − x_k)ᵀ + b_{Θ,k}(θ − θ_k).
type LLM struct {
	// CenterPrototype is x_k, the input-space part of the prototype.
	CenterPrototype vector.Vec
	// ThetaPrototype is θ_k, the radius part of the prototype.
	ThetaPrototype float64
	// Intercept is y_k, the local expectation of the answer at the prototype.
	Intercept float64
	// SlopeX is b_{X,k}, the gradient with respect to the query centre.
	SlopeX vector.Vec
	// SlopeTheta is b_{Θ,k}, the gradient with respect to the radius.
	SlopeTheta float64
	// Wins counts how many training pairs this LLM has absorbed.
	Wins int

	// p is the inverse-covariance state of the recursive-least-squares
	// solver, laid out row-major over the (d+2) local parameters
	// [y, b_X, b_Θ]. It is nil when the SGD solver is used.
	p []float64
}

// newLLM creates an LLM positioned at the query q with the given initial
// intercept and zero slope.
func newLLM(q Query, intercept float64) *LLM {
	return &LLM{
		CenterPrototype: q.Center.Clone(),
		ThetaPrototype:  q.Theta,
		Intercept:       intercept,
		SlopeX:          vector.New(q.Dim()),
		Wins:            1,
	}
}

// Dim returns the input dimensionality d of the LLM.
func (l *LLM) Dim() int { return len(l.CenterPrototype) }

// PrototypeQuery returns the prototype as a Query value w_k = [x_k, θ_k].
func (l *LLM) PrototypeQuery() Query {
	return Query{Center: l.CenterPrototype.Clone(), Theta: l.ThetaPrototype}
}

// Eval evaluates f_k(x, θ) (Eq. 5 / Eq. 12).
func (l *LLM) Eval(center vector.Vec, theta float64) float64 {
	s := l.Intercept + l.SlopeTheta*(theta-l.ThetaPrototype)
	for i := range l.SlopeX {
		s += l.SlopeX[i] * (center[i] - l.CenterPrototype[i])
	}
	return s
}

// EvalAtPrototypeRadius evaluates f_k(x, θ_k), i.e. the LLM restricted to its
// own radius. By Theorem 3 this is the local linear approximation of the data
// function g over the data subspace D_k.
func (l *LLM) EvalAtPrototypeRadius(x vector.Vec) float64 {
	s := l.Intercept
	for i := range l.SlopeX {
		s += l.SlopeX[i] * (x[i] - l.CenterPrototype[i])
	}
	return s
}

// Residual returns the prediction error y − f_k(x, θ) for a training pair;
// it is the common factor of the SGD updates of Theorem 4.
func (l *LLM) Residual(center vector.Vec, theta, y float64) float64 {
	return y - l.Eval(center, theta)
}

// DataModel converts the LLM into the explicit local linear regression of
// the data function g over D_k (Theorem 3): u ≈ intercept + slope·x with
// slope b_{X,k} and intercept y_k − b_{X,k}·x_kᵀ.
func (l *LLM) DataModel() LocalLinear {
	return LocalLinear{
		Intercept: l.Intercept - l.SlopeX.Dot(l.CenterPrototype),
		Slope:     l.SlopeX.Clone(),
		Center:    l.CenterPrototype.Clone(),
		Theta:     l.ThetaPrototype,
	}
}

// clone returns a deep copy.
func (l *LLM) clone() *LLM {
	return &LLM{
		CenterPrototype: l.CenterPrototype.Clone(),
		ThetaPrototype:  l.ThetaPrototype,
		Intercept:       l.Intercept,
		SlopeX:          l.SlopeX.Clone(),
		SlopeTheta:      l.SlopeTheta,
		Wins:            l.Wins,
		p:               append([]float64(nil), l.p...),
	}
}

// initRLS (re)initializes the RLS state P = (1/delta)·I over the d+2 local
// parameters.
func (l *LLM) initRLS(delta float64) {
	n := l.Dim() + 2
	l.p = make([]float64, n*n)
	for i := 0; i < n; i++ {
		l.p[i*n+i] = 1 / delta
	}
}

// rlsUpdate applies one recursive-least-squares step for the regressor
// z = [1, x − x_k, θ − θ_k] and residual res = y − f_k(x, θ), using pz as
// len(z)-sized scratch (the writer's, so the training hot path does not
// allocate). It returns the Γ^H contribution of the step (the norm of the
// slope change plus the absolute intercept change). The prototype itself is
// not moved here.
func (l *LLM) rlsUpdate(z, pz []float64, res float64) float64 {
	n := len(z)
	if l.p == nil {
		l.initRLS(1e-3)
	}
	// pz = P·z and the scalar s = 1 + zᵀ·P·z.
	for i := 0; i < n; i++ {
		row := l.p[i*n : (i+1)*n]
		var acc float64
		for j := 0; j < n; j++ {
			acc += row[j] * z[j]
		}
		pz[i] = acc
	}
	s := 1.0
	for i := 0; i < n; i++ {
		s += z[i] * pz[i]
	}
	// Gain k = P·z / s; parameter update Δ = k·res.
	var dy float64
	var db float64
	for i := 0; i < n; i++ {
		delta := pz[i] / s * res
		switch {
		case i == 0:
			l.Intercept += delta
			dy = delta
		case i == n-1:
			l.SlopeTheta += delta
			db += delta * delta
		default:
			l.SlopeX[i-1] += delta
			db += delta * delta
		}
	}
	// P ← P − (P·z)(P·z)ᵀ / s.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			l.p[i*n+j] -= pz[i] * pz[j] / s
		}
	}
	return math.Sqrt(db) + math.Abs(dy)
}

// LocalLinear is one element of the answer list S of a Q2 query: a local
// linear regression u ≈ Intercept + Slope·x valid around the data subspace
// D(Center, Theta) (Eq. 13).
type LocalLinear struct {
	// Intercept is the u-intercept of the local plane.
	Intercept float64
	// Slope is the coefficient vector over the input attributes.
	Slope vector.Vec
	// Center and Theta describe the data subspace the model is local to.
	Center vector.Vec
	Theta  float64
	// Weight is the normalized overlap degree δ̃ of the prototype with the
	// issued query (0 when the model was obtained by extrapolation).
	Weight float64
}

// Predict evaluates the local plane at x.
func (m LocalLinear) Predict(x []float64) float64 {
	s := m.Intercept
	for i, b := range m.Slope {
		s += b * x[i]
	}
	return s
}

// String renders the local model as "u ≈ b0 + b1*x1 + ...".
func (m LocalLinear) String() string {
	s := fmt.Sprintf("u ≈ %.4g", m.Intercept)
	for i, b := range m.Slope {
		s += fmt.Sprintf(" %+.4g·x%d", b, i+1)
	}
	return s
}
