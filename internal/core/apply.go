package core

import (
	"fmt"
	"math"

	"llmq/internal/wal"
)

// ReplayApplier feeds WAL records into a model through the live training
// path — TrainBatch for pairs, SetCapacity for capacity records — exactly
// the way crash recovery does, which is what makes the result bit-identical
// to the process that wrote the log. Recovery and replication followers
// share it: both are "re-run this totally ordered record stream" consumers.
// Pairs are buffered and flushed in bounded chunks so an arbitrarily long
// stream replays in constant memory; admin records flush the buffer first,
// preserving the log order. Not safe for concurrent use.
type ReplayApplier struct {
	m     *Model
	pairs []TrainingPair
}

// NewReplayApplier returns an applier targeting m.
func NewReplayApplier(m *Model) *ReplayApplier {
	return &ReplayApplier{m: m, pairs: make([]TrainingPair, 0, replayChunk)}
}

// Apply consumes one record. Pair records may be buffered until the next
// Flush; admin records take effect immediately (after flushing the pairs
// that precede them in the log). Every decode or validation failure is an
// error — a checksummed record that fails to apply means a writer bug, and
// must stop a replay rather than skew the model.
func (a *ReplayApplier) Apply(r wal.Record) error {
	switch r.Kind {
	case wal.KindCapacity:
		if err := a.Flush(); err != nil {
			return err
		}
		policy, err := capacityRecordPolicy(r)
		if err != nil {
			return err
		}
		return a.m.SetCapacity(r.MaxPrototypes, policy, r.Merge)
	default: // KindPair, and the zero value of pre-kind constructors
		q, err := NewQuery(r.Center, r.Theta)
		if err != nil {
			return fmt.Errorf("core: replay: invalid query: %w", err)
		}
		if math.IsNaN(r.Answer) || math.IsInf(r.Answer, 0) {
			return fmt.Errorf("core: replay: non-finite answer %v", r.Answer)
		}
		a.pairs = append(a.pairs, TrainingPair{Query: q, Answer: r.Answer})
		if len(a.pairs) >= replayChunk {
			return a.Flush()
		}
		return nil
	}
}

// Flush applies the buffered pairs. Call it after the last record; Apply
// calls it internally on chunk boundaries and before admin records.
func (a *ReplayApplier) Flush() error {
	if len(a.pairs) == 0 {
		return nil
	}
	_, err := a.m.TrainBatch(a.pairs)
	a.pairs = a.pairs[:0]
	return err
}

// capacityRecordPolicy resolves a capacity record's eviction policy: the
// empty name keeps the model's current policy (nil for SetCapacity), and a
// WinDecay name with a logged half-life restores that half-life, so replay
// reproduces the exact runtime call.
func capacityRecordPolicy(r wal.Record) (EvictionPolicy, error) {
	if r.Eviction == "" {
		return nil, nil
	}
	policy, err := ParseEvictionPolicy(r.Eviction)
	if err != nil {
		return nil, fmt.Errorf("core: replay: capacity record: %w", err)
	}
	if wd, ok := policy.(WinDecay); ok && r.EvictionHalfLife > 0 {
		wd.HalfLife = r.EvictionHalfLife
		policy = wd
	}
	return policy, nil
}
