package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"llmq/internal/vector"
)

func randQuery(rng *rand.Rand, dim int) Query {
	c := make([]float64, dim)
	for j := range c {
		c[j] = rng.Float64()
	}
	return Query{Center: vector.Of(c...), Theta: 0.02 + 0.1*rng.Float64()}
}

// TestConcurrentReadersDuringTraining hammers every read API from multiple
// goroutines while a writer streams training pairs into the model. Run with
// -race (the CI workflow does) to verify the locking discipline: readers
// must never observe a partially applied AVQ/SGD step.
func TestConcurrentReadersDuringTraining(t *testing.T) {
	const dim, pairs, readers = 2, 2000, 8
	cfg := DefaultConfig(dim)
	cfg.ResolutionA = 0.05 // many prototypes → many spawn + drift steps
	cfg.Gamma = 1e-12      // never converge during the test
	cfg.MinGammaSteps = pairs * 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed one prototype so readers never hit ErrNotTrained.
	if _, err := m.Observe(randQuery(rand.New(rand.NewSource(1)), dim), 0.5); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := randQuery(rng, dim)
				if _, err := m.PredictMean(q); err != nil {
					t.Errorf("PredictMean: %v", err)
					return
				}
				if _, err := m.Regression(q); err != nil {
					t.Errorf("Regression: %v", err)
					return
				}
				x := []float64{rng.Float64(), rng.Float64()}
				if _, err := m.PredictValue(q, x); err != nil {
					t.Errorf("PredictValue: %v", err)
					return
				}
				if _, _, err := m.Winner(q); err != nil {
					t.Errorf("Winner: %v", err)
					return
				}
				_ = m.K()
				_ = m.Converged()
				_ = m.LLMs()
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
			}
		}(int64(100 + r))
	}

	wrng := rand.New(rand.NewSource(2))
	for i := 0; i < pairs; i++ {
		q := randQuery(wrng, dim)
		if _, err := m.Observe(q, math.Sin(float64(i))); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	close(done)
	wg.Wait()
	if m.K() < 2 {
		t.Fatalf("expected the workload to spawn prototypes, K=%d", m.K())
	}
}

// winnerLinearScan replicates the pre-store winner search: a scan over the
// per-LLM structs taking a square root per candidate, first strict minimum
// wins. It is the reference the indexed/flat search must reproduce.
func winnerLinearScan(llms []*LLM, q Query) (int, float64) {
	best, bestDist := 0, math.Inf(1)
	for k, l := range llms {
		d := math.Sqrt(vector.SqDistance(q.Center, l.CenterPrototype) +
			(q.Theta-l.ThetaPrototype)*(q.Theta-l.ThetaPrototype))
		if d < bestDist {
			best, bestDist = k, d
		}
	}
	return best, bestDist
}

// TestWinnerMatchesLinearScan is the exactness property test: on random
// workloads across dimensionalities (covering the grid-indexed path for
// d+1 <= 4 and the k-d tree path above — including the tree's scan-budget
// bail on uniform wide workloads), the store's winner must agree with the
// linear-scan baseline — same prototype index, or an equal distance when
// several prototypes tie to within reassociation rounding.
func TestWinnerMatchesLinearScan(t *testing.T) {
	// Vigilance per dimensionality, small enough that the random workload
	// spawns a large prototype set (> storeGridMinK where the grid applies).
	vigilance := map[int]float64{1: 0.02, 2: 0.05, 3: 0.07, 5: 0.2, 8: 0.3}
	for _, dim := range []int{1, 2, 3, 5, 8} {
		rng := rand.New(rand.NewSource(int64(40 + dim)))
		cfg := DefaultConfig(dim)
		cfg.Vigilance = vigilance[dim]
		cfg.Gamma = 1e-12
		cfg.MinGammaSteps = 1 << 30
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1200; i++ {
			if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
				t.Fatal(err)
			}
		}
		llms := m.LLMs()
		if dim+1 <= storeGridMaxWidth && m.K() < storeGridMinK {
			t.Fatalf("dim %d: K=%d too small to exercise the grid path", dim, m.K())
		}
		if e := m.snap.Load().epoch; e != nil {
			if dim+1 <= storeGridMaxWidth && e.grid == nil {
				t.Fatalf("dim %d: epoch should route to the grid", dim)
			}
			if dim+1 > storeGridMaxWidth && e.tree == nil {
				t.Fatalf("dim %d: epoch should route to the k-d tree", dim)
			}
		}
		for trial := 0; trial < 300; trial++ {
			q := randQuery(rng, dim)
			gotIdx, gotDist, err := m.Winner(q)
			if err != nil {
				t.Fatal(err)
			}
			wantIdx, wantDist := winnerLinearScan(llms, q)
			if gotIdx != wantIdx && math.Abs(gotDist-wantDist) > 1e-9*(1+wantDist) {
				t.Fatalf("dim %d K=%d: store winner %d (dist %v), linear scan %d (dist %v)",
					dim, m.K(), gotIdx, gotDist, wantIdx, wantDist)
			}
		}
	}
}

// TestWinnerMatchesLinearScanClustered exercises the k-d tree's pruning
// path (clustered query spaces, where the bounding boxes actually prune)
// and its drift-slack accounting: winners are checked mid-training, while
// prototypes have drifted since the last tree rebuild, and again after
// further training.
func TestWinnerMatchesLinearScanClustered(t *testing.T) {
	for _, dim := range []int{5, 8} {
		gen := clusteredGen(dim, 40, 0.05, int64(60+dim))
		rng := rand.New(rand.NewSource(int64(70 + dim)))
		cfg := DefaultConfig(dim)
		cfg.Vigilance = 0.08
		cfg.Gamma = 1e-12
		cfg.MinGammaSteps = 1 << 30
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check := func(stage string) {
			llms := m.LLMs()
			for trial := 0; trial < 120; trial++ {
				q := gen(rng)
				gotIdx, gotDist, err := m.Winner(q)
				if err != nil {
					t.Fatal(err)
				}
				wantIdx, wantDist := winnerLinearScan(llms, q)
				if gotIdx != wantIdx && math.Abs(gotDist-wantDist) > 1e-9*(1+wantDist) {
					t.Fatalf("dim %d %s K=%d: store winner %d (dist %v), linear scan %d (dist %v)",
						dim, stage, m.K(), gotIdx, gotDist, wantIdx, wantDist)
				}
			}
		}
		for phase := 0; phase < 4; phase++ {
			for i := 0; i < 400; i++ {
				if _, err := m.Observe(gen(rng), rng.NormFloat64()); err != nil {
					t.Fatal(err)
				}
			}
			// Mid-training: prototypes have drifted since the last rebuild,
			// so the winner search must honour the staleness slack.
			check("mid-training")
		}
		if m.K() < storeTreeMinK {
			t.Fatalf("dim %d: K=%d too small to exercise the k-d tree", dim, m.K())
		}
		if e := m.snap.Load().epoch; e == nil || e.tree == nil {
			t.Fatalf("dim %d: expected a k-d tree epoch", dim)
		}
	}
}

// TestTrainBatchMatchesTrain verifies that the single-lock bulk ingestion
// path applies exactly the same sequential updates as per-step Train.
func TestTrainBatchMatchesTrain(t *testing.T) {
	const dim = 2
	rng := rand.New(rand.NewSource(77))
	pairs := make([]TrainingPair, 600)
	for i := range pairs {
		pairs[i] = TrainingPair{Query: randQuery(rng, dim), Answer: rng.NormFloat64()}
	}
	cfg := DefaultConfig(dim)
	a, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Train(pairs)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.TrainBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Steps != resB.Steps || resA.K != resB.K || resA.Converged != resB.Converged {
		t.Fatalf("Train %+v vs TrainBatch %+v diverged", resA, resB)
	}
	la, lb := a.LLMs(), b.LLMs()
	for k := range la {
		if !la[k].CenterPrototype.Equal(lb[k].CenterPrototype) ||
			la[k].ThetaPrototype != lb[k].ThetaPrototype ||
			la[k].Intercept != lb[k].Intercept {
			t.Fatalf("prototype %d diverged between Train and TrainBatch", k)
		}
	}
}

// TestPredictBatchMatchesSequential verifies positional results and the
// error paths of the worker-pool batch predictor.
func TestPredictBatchMatchesSequential(t *testing.T) {
	const dim = 2
	rng := rand.New(rand.NewSource(13))
	cfg := DefaultConfig(dim)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]Query, 257) // not a multiple of the worker count
	for i := range queries {
		queries[i] = randQuery(rng, dim)
	}
	got, err := m.PredictBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := m.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("query %d: batch %v, sequential %v", i, got[i], want)
		}
	}
	if out, err := m.PredictBatch(nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
	if _, err := m.PredictBatch([]Query{{Center: vector.Of(1, 2, 3), Theta: 1}}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	empty, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.PredictBatch(queries); err == nil {
		t.Error("untrained model should fail")
	}
}

// TestWinnerAfterReload verifies the flat store (and its index) is rebuilt
// by Load, so a deserialized model serves the same winners.
func TestWinnerAfterReload(t *testing.T) {
	const dim = 2
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig(dim)
	cfg.ResolutionA = 0.05
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		q := randQuery(rng, dim)
		i1, d1, err := m.Winner(q)
		if err != nil {
			t.Fatal(err)
		}
		i2, d2, err := loaded.Winner(q)
		if err != nil {
			t.Fatal(err)
		}
		if i1 != i2 || d1 != d2 {
			t.Fatalf("winner diverged after reload: (%d, %v) vs (%d, %v)", i1, d1, i2, d2)
		}
	}
}
