package core

import (
	"encoding/json"
	"fmt"
	"math"

	"llmq/internal/vector"
)

// The scatter surface: what a sharded deployment needs from one shard so a
// router can merge N partial answers into the answer the union model — a
// single Model holding every shard's live prototypes concatenated in shard
// order — would give, bit for bit.
//
// The fusion arithmetic of Eq. (11)/(13)/(14) is a weighted sum whose
// weights are the overlap degrees normalized by their running total, and
// every accumulation in the local path runs in ascending slot order. A
// shard therefore ships its contributions RAW — per-prototype degree and
// the per-prototype evaluations, in slot order, without normalizing — and
// the merger re-runs the identical loop over the concatenation: sum the
// degrees shard-major into one total, divide, fuse. Same values, same
// operation order, same floats. The empty-overlap extrapolation case ships
// each shard's winner (closest prototype) the same way: the merger takes
// the globally closest one and uses its already-evaluated answer.

// ScatterContribution is one prototype's raw share of a scattered query:
// its pre-normalization overlap degree (Eq. 9) and its local evaluations,
// exactly the terms the single-model fusion loop would have produced for
// this prototype.
type ScatterContribution struct {
	// Degree is the raw overlap degree δ(q, w_k) — NOT normalized; the
	// merger divides by the shard-major running total.
	Degree float64 `json:"degree"`
	// Mean is f_k(x, θ) — the prototype's Q1 term (Eq. 12).
	Mean float64 `json:"mean"`
	// Value is f_k(x_at, θ_k), the prototype's value-prediction term
	// (Eq. 14); only meaningful when the scan was given an At point.
	Value float64 `json:"value,omitempty"`
	// Model is the prototype's explicit local linear model (Theorem 3),
	// with Weight left zero; only populated when the scan asked for models.
	Model *LocalLinear `json:"model,omitempty"`
}

// ScatterResult is one shard's partial answer to a scattered query. It is
// also the /shard/scan wire body; WinnerDist's +Inf sentinel (no winner
// computed) cannot be JSON-encoded, so the custom marshaling below carries
// it as an absent field.
type ScatterResult struct {
	// Live is the shard's live prototype count; a shard with none
	// contributes nothing and is skipped by the merger.
	Live int `json:"live"`
	// Contribs holds the overlapping prototypes' raw terms in ascending
	// slot order — the order the union model's own sweep would visit them.
	Contribs []ScatterContribution `json:"contribs,omitempty"`
	// WinnerDist is the query-space distance to the shard's closest
	// prototype, and the Winner* fields its evaluations — the Case-3
	// extrapolation terms, only computed when the shard's own overlap set
	// came up empty (+Inf distance otherwise, and on an empty shard).
	WinnerDist  float64      `json:"winner_dist"`
	WinnerMean  float64      `json:"winner_mean,omitempty"`
	WinnerValue float64      `json:"winner_value,omitempty"`
	WinnerModel *LocalLinear `json:"winner_model,omitempty"`
	// MaxTheta is the shard's current upper bound on its prototype radii —
	// the routing slack a front-end must assume for this shard. It rides
	// every scan so a remote router's cached bound heals even if a train
	// response was lost.
	MaxTheta float64 `json:"max_theta"`
}

// scatterResultJSON is ScatterResult's wire shape: WinnerDist rides as a
// pointer so the +Inf "no winner" sentinel round-trips as absence.
type scatterResultJSON struct {
	Live        int                   `json:"live"`
	Contribs    []ScatterContribution `json:"contribs,omitempty"`
	WinnerDist  *float64              `json:"winner_dist,omitempty"`
	WinnerMean  float64               `json:"winner_mean,omitempty"`
	WinnerValue float64               `json:"winner_value,omitempty"`
	WinnerModel *LocalLinear          `json:"winner_model,omitempty"`
	MaxTheta    float64               `json:"max_theta"`
}

// MarshalJSON encodes the result with the +Inf winner distance omitted.
func (r ScatterResult) MarshalJSON() ([]byte, error) {
	doc := scatterResultJSON{
		Live:        r.Live,
		Contribs:    r.Contribs,
		WinnerMean:  r.WinnerMean,
		WinnerValue: r.WinnerValue,
		WinnerModel: r.WinnerModel,
		MaxTheta:    r.MaxTheta,
	}
	if !math.IsInf(r.WinnerDist, 1) {
		doc.WinnerDist = &r.WinnerDist
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes the wire shape, restoring the +Inf sentinel.
func (r *ScatterResult) UnmarshalJSON(data []byte) error {
	var doc scatterResultJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	*r = ScatterResult{
		Live:        doc.Live,
		Contribs:    doc.Contribs,
		WinnerDist:  math.Inf(1),
		WinnerMean:  doc.WinnerMean,
		WinnerValue: doc.WinnerValue,
		WinnerModel: doc.WinnerModel,
		MaxTheta:    doc.MaxTheta,
	}
	if doc.WinnerDist != nil {
		r.WinnerDist = *doc.WinnerDist
	}
	return nil
}

// Dim returns the model's input dimensionality d for this version, or 0 for
// a version that has never seen a prototype (an untrained model's dim is a
// config property; the snapshot only learns it with its first row).
func (v View) Dim() int { return v.s.dim }

// MaxTheta returns this version's upper bound on every live prototype
// radius θ_k. It is the per-shard term of the scatter routing test: a
// prototype of this shard can overlap a query q only if the shard's region
// is within q.Theta + MaxTheta of the query centre. The bound is monotone
// between epoch rebuilds and exact right after one, so it may be loose —
// which costs a wasted scatter, never a missed prototype.
func (v View) MaxTheta() float64 { return v.s.maxTheta }

// ScatterScan answers a query with this shard's raw fusion terms instead of
// a finished prediction: the overlapping prototypes' unnormalized degrees
// and evaluations in slot order, plus — when the local overlap is empty —
// the closest prototype's extrapolation terms. at, when non-nil, is the
// data point of a value-prediction query (Eq. 14) and must have the model's
// dimensionality; needModels asks for the explicit local linear models
// (Q2). An empty shard returns Live 0 and no terms, with no error — the
// union may still answer from its siblings.
func (v View) ScatterScan(q Query, at []float64, needModels bool) (ScatterResult, error) {
	s := v.s
	res := ScatterResult{Live: s.live, WinnerDist: math.Inf(1), MaxTheta: s.maxTheta}
	if s.live == 0 {
		return res, nil
	}
	if q.Dim() != s.dim {
		return res, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, q.Dim(), s.dim)
	}
	if at != nil && len(at) != s.dim {
		return res, fmt.Errorf("%w: point dim %d, model dim %d", ErrDimension, len(at), s.dim)
	}
	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	idx, degrees, _ := s.overlapRaw(q, sc)
	if len(idx) == 0 {
		w, dist := s.winnerQuery(q, sc)
		res.WinnerDist = dist
		res.WinnerMean = s.eval(w, q.Center, q.Theta)
		if at != nil {
			res.WinnerValue = s.evalAtPrototypeRadius(w, vector.Vec(at))
		}
		if needModels {
			m := s.dataModel(w)
			res.WinnerModel = &m
		}
		return res, nil
	}
	res.Contribs = make([]ScatterContribution, len(idx))
	for i, k := range idx {
		c := ScatterContribution{Degree: degrees[i], Mean: s.eval(k, q.Center, q.Theta)}
		if at != nil {
			c.Value = s.evalAtPrototypeRadius(k, vector.Vec(at))
		}
		if needModels {
			m := s.dataModel(k)
			c.Model = &m
		}
		res.Contribs[i] = c
	}
	return res, nil
}
