package core

import (
	"bytes"
	"strings"
	"testing"

	"llmq/internal/wal"
)

// TestStateHashCanonical: the hash must be invariant under slot
// renumbering (a Checkpoint→Load round trip compacts tombstones and
// permutes slots) and must change when the state changes.
func TestStateHashCanonical(t *testing.T) {
	m, err := NewModel(durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs := planeStream(2000, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 43)
	if _, err := m.TrainBatch(pairs[:1500]); err != nil {
		t.Fatal(err)
	}
	h1 := mustStateHash(t, m)
	if h1 != mustStateHash(t, m) {
		t.Fatal("StateHash is not deterministic")
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustStateHash(t, loaded); got != h1 {
		t.Fatalf("Checkpoint→Load changed the hash: %s vs %s", got, h1)
	}
	if _, err := m.TrainBatch(pairs[1500:]); err != nil {
		t.Fatal(err)
	}
	if mustStateHash(t, m) == h1 {
		t.Fatal("training did not change the hash")
	}
	// Hashing must not perturb the model: the loaded copy fed the same
	// continuation stays identical.
	if _, err := loaded.TrainBatch(pairs[1500:]); err != nil {
		t.Fatal(err)
	}
	if mustStateHash(t, loaded) != mustStateHash(t, m) {
		t.Fatal("hashed models diverged on identical continuation pairs")
	}
}

// TestDurableSetCapacityReplay is the WAL-logged re-cap contract: a runtime
// SetCapacity through the Durable must replay at exactly its point in the
// training order, so recovery — with or without an intervening checkpoint —
// matches a reference run that made the same call at the same step.
func TestDurableSetCapacityReplay(t *testing.T) {
	pairs := planeStream(900, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 47)
	cfg := durableConfig()
	cfg.MaxPrototypes = 0 // start unbounded; the runtime call installs the cap
	cfg.Eviction = nil

	run := func(t *testing.T, snapEvery int) {
		dir := t.TempDir()
		opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: snapEvery}
		d, err := Recover(dir, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.TrainBatch(pairs[:400]); err != nil {
			t.Fatal(err)
		}
		if err := d.SetCapacity(12, WinDecay{HalfLife: 64}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := d.TrainBatch(pairs[400:]); err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		want := mustStateHash(t, d.Model())
		// Abandon d without Close — the crash. Recovery must land on the
		// same state, which requires the capacity record to replay.
		d2, err := Recover(dir, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		if got := mustStateHash(t, d2.Model()); got != want {
			t.Fatalf("recovered StateHash %s, want %s", got, want)
		}
		if got := d2.Model().Config().MaxPrototypes; got != 12 {
			t.Fatalf("recovered capacity %d, want 12", got)
		}
		// And the whole run equals a plain model making the same call at the
		// same step.
		ref, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.TrainBatch(pairs[:400]); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetCapacity(12, WinDecay{HalfLife: 64}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.TrainBatch(pairs[400:]); err != nil {
			t.Fatal(err)
		}
		if got := mustStateHash(t, ref); got != want {
			t.Fatalf("reference StateHash %s, want %s", got, want)
		}
	}

	// Replay-only (no rotation ever fires) and across-checkpoint variants.
	t.Run("replay", func(t *testing.T) { run(t, 1<<30) })
	t.Run("checkpointed", func(t *testing.T) { run(t, 250) })
}

// TestDurableSetCapacityRejectsCustomPolicy: a policy the WAL cannot encode
// must be refused before anything is logged.
func TestDurableSetCapacityRejectsCustomPolicy(t *testing.T) {
	dir := t.TempDir()
	d, err := Recover(dir, durableConfig(), DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	err = d.SetCapacity(8, customPolicy{}, false)
	if err == nil || !strings.Contains(err.Error(), "WAL-log") {
		t.Fatalf("custom policy error = %v", err)
	}
	if err := d.SetCapacity(-1, nil, false); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

type customPolicy struct{}

func (customPolicy) Score(wins, sinceWin int) float64 { return float64(wins - sinceWin) }
func (customPolicy) Name() string                     { return "bespoke" }

// TestDurableBoundaryHashes: rotations record a boundary hash a follower
// can compare against, and the recorded history is pruned.
func TestDurableBoundaryHashes(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(600, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 53)
	d, err := Recover(dir, durableConfig(), DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	gen := d.Gen()
	if gen == 0 {
		t.Fatal("no rotation happened")
	}
	bh, ok := d.BoundaryHash(gen)
	if !ok {
		t.Fatalf("no boundary hash for current generation %d", gen)
	}
	if bh.Gen != gen || bh.Steps <= 0 || len(bh.Hash) != 64 {
		t.Fatalf("boundary hash = %+v", bh)
	}
	if _, ok := d.BoundaryHash(gen + 99); ok {
		t.Fatal("hash reported for a generation that never happened")
	}
	if d.BootID() == "" {
		t.Fatal("empty boot id")
	}
	// EnsureSnapshot on an already-snapshotted directory must not rotate.
	g, err := d.EnsureSnapshot()
	if err != nil || g != gen {
		t.Fatalf("EnsureSnapshot = %d, %v; want %d", g, err, gen)
	}
}

// TestResumeContinuesDurably: core.Resume wraps an in-memory model over a
// directory whose bytes it already equals (the promotion path) and training
// continues durably — a subsequent Recover sees the full stream.
func TestResumeContinuesDurably(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(400, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 59)
	opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 1 << 30}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrainBatch(pairs[:200]); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	m := d.Model()
	// Simulate the follower's hand-off: the log handle is abandoned (the
	// follower never had one) and the model continues over the same bytes.
	r, err := Resume(m, dir, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.BootID() == d.BootID() {
		t.Fatal("Resume reused the boot id")
	}
	if _, err := r.TrainBatch(pairs[200:]); err != nil {
		t.Fatal(err)
	}
	want := mustStateHash(t, r.Model())
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Model().Steps() != len(pairs) {
		t.Fatalf("recovered %d steps, want %d", d2.Model().Steps(), len(pairs))
	}
	if got := mustStateHash(t, d2.Model()); got != want {
		t.Fatalf("recovered StateHash %s, want %s", got, want)
	}
}
