package core

import (
	"math"
	"math/rand"
	"testing"

	"llmq/internal/vector"
)

// The epoch indexes carry fallback paths that are only reachable by
// pathological inputs — queries or prototype sets with no locality for the
// index to prune on. The tests here force each of them end to end through
// the model and assert the answers still match the linear scan: the
// fallbacks are performance valves, never correctness forks. (The
// index-level counterparts live in internal/index: the grid's visited-cell
// budget and the tree's forced bail are unit-forced there.)

// TestOverlapBroadQueryFallsBackToLinear forces the overlap router's
// broad-query bail: a radius covering most of the space makes the epoch's
// candidate set exceed K/2 (and, on the grid, the cell box exceed the cell
// budget), so the router answers with the straight scan. The result must be
// identical either way — indices and weights.
func TestOverlapBroadQueryFallsBackToLinear(t *testing.T) {
	for _, dim := range []int{2, 8} {
		vig := 0.03
		if dim > 3 {
			vig = 0.25
		}
		m := buildBenchModel(t, dim, 300, vig, uniformGen(dim))
		if m.snap.Load().epoch == nil {
			t.Fatalf("dim %d: no epoch at K=%d", dim, m.K())
		}
		rng := rand.New(rand.NewSource(int64(20 + dim)))
		for trial := 0; trial < 60; trial++ {
			c := make([]float64, dim)
			for j := range c {
				c[j] = rng.Float64()
			}
			// θ of several space diameters: every prototype overlaps.
			q := Query{Center: vector.Of(c...), Theta: 3 + 2*rng.Float64()}
			checkOverlapAgainstLinear(t, m, q, "broad-query")
		}
	}
}

// TestWinnerNoLocalityBailMatchesLinearScan drives the k-d tree's scan-
// budget bail through the whole model: prototypes spawned on a thin
// spherical shell are near-equidistant from the sphere's centre, so no
// bounding box can prune a query there and the traversal's row budget
// trips, finishing with the seeded flat scan. The winner must still match
// the linear scan.
func TestWinnerNoLocalityBailMatchesLinearScan(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewSource(31))
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.01 // every shell point spawns its own prototype
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]TrainingPair, 600)
	for i := range pairs {
		x := make([]float64, dim)
		norm := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			norm += x[j] * x[j]
		}
		scale := (0.35 + 1e-5*rng.Float64()) / math.Sqrt(norm)
		for j := range x {
			x[j] = 0.5 + scale*x[j]
		}
		pairs[i] = TrainingPair{Query: Query{Center: x, Theta: 0.1}, Answer: rng.NormFloat64()}
	}
	if _, err := m.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if m.K() < storeTreeMinK {
		t.Fatalf("K=%d too small to build a tree epoch", m.K())
	}
	if e := m.snap.Load().epoch; e == nil || e.tree == nil {
		t.Fatal("expected a k-d tree epoch")
	}
	llms := m.LLMs()
	centre := make([]float64, dim)
	for j := range centre {
		centre[j] = 0.5
	}
	for trial := 0; trial < 50; trial++ {
		x := append([]float64(nil), centre...)
		// At and near the centre of the shell: every prototype ties to
		// within the shell's jitter, so nothing prunes.
		for j := range x {
			x[j] += 1e-3 * rng.NormFloat64()
		}
		q := Query{Center: x, Theta: 0.1}
		gotIdx, gotDist, err := m.Winner(q)
		if err != nil {
			t.Fatal(err)
		}
		wantIdx, wantDist := winnerLinearScan(llms, q)
		if gotIdx != wantIdx && math.Abs(gotDist-wantDist) > 1e-9*(1+wantDist) {
			t.Fatalf("trial %d: store winner %d (dist %v), linear scan %d (dist %v)",
				trial, gotIdx, gotDist, wantIdx, wantDist)
		}
	}
}
