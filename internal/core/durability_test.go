package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"llmq/internal/wal"
)

// durableConfig is a small capped configuration that exercises everything the
// durability contract must carry: RLS solver state, WinDecay win counts and
// stamps, eviction, and an un-reachable convergence threshold so every pair
// keeps training.
func durableConfig() Config {
	cfg := DefaultConfig(3)
	cfg.Vigilance = 0.5
	cfg.MaxPrototypes = 16
	cfg.Eviction = WinDecay{HalfLife: 64}
	// Unreachable convergence: a converged model freezes and stops counting
	// steps, which would make step-count assertions depend on where the
	// stream happens to converge.
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	return cfg
}

// checkpointBytes snapshots the full training state.
func checkpointBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// canonicalState is checkpointBytes made slot-order independent: recovery
// compacts tombstoned slots away, so two models can hold identical prototypes
// under permuted slot ids. Sorting the llms array by their encoding compares
// the state, not the numbering.
func canonicalState(t *testing.T, m *Model) string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(checkpointBytes(t, m), &doc); err != nil {
		t.Fatal(err)
	}
	llms, _ := doc["llms"].([]any)
	enc := make([]string, len(llms))
	for i, l := range llms {
		b, err := json.Marshal(l)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = string(b)
	}
	sort.Strings(enc)
	doc["llms"] = enc
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestLoadTornPrefix cuts a saved model at arbitrary byte offsets — the torn
// file a non-atomic writer leaves after a crash — and requires Load to fail
// with ErrBadModelFile and a message locating the damage, never to succeed on
// or panic over a prefix.
func TestLoadTornPrefix(t *testing.T) {
	m, err := NewModel(durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(planeStream(500, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// len-1 is excluded: the document ends "}\n", so cutting only the final
	// newline still leaves complete JSON, which Load rightly accepts.
	cuts := []int{0, 1, 10, len(full) / 4, len(full) / 2, len(full) - 2}
	for _, cut := range cuts {
		_, err := Load(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrBadModelFile) {
			t.Errorf("prefix of %d/%d bytes: err = %v, want ErrBadModelFile", cut, len(full), err)
			continue
		}
		if !strings.Contains(err.Error(), "byte offset") {
			t.Errorf("prefix of %d bytes: error %q does not locate the damage", cut, err)
		}
	}
	// Corruption mid-file (a flipped structural byte) must also be located.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] = '}'
	if _, err := Load(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadModelFile) {
		t.Errorf("mid-file corruption: err = %v, want ErrBadModelFile", err)
	}
}

// TestSaveLoadSaveByteIdentical is the persistence contract for the win-decay
// state: win counts, last-win stamps and the step counter must survive a
// Save/Load cycle exactly, which the second Save proves byte for byte (any
// dropped or defaulted field would change the encoding).
func TestSaveLoadSaveByteIdentical(t *testing.T) {
	m, err := NewModel(durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(planeStream(2000, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 13)); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := m.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("Save∘Load∘Save is not the identity: win/stamp/step state was dropped or defaulted")
	}
}

// TestCheckpointRoundTrip proves the two halves of the recovery contract
// separately from the WAL: a checkpoint reloads to the same checkpoint byte
// for byte (nothing training touches is missing, RLS matrices included), and
// the reloaded model trained on more pairs stays equivalent to the original
// trained on the same pairs (nothing it carries is stale).
func TestCheckpointRoundTrip(t *testing.T) {
	pairs := planeStream(3000, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 17)
	m, err := NewModel(durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainBatch(pairs[:2000]); err != nil {
		t.Fatal(err)
	}
	cp := checkpointBytes(t, m)
	loaded, err := Load(bytes.NewReader(cp))
	if err != nil {
		t.Fatal(err)
	}
	if got := checkpointBytes(t, loaded); !bytes.Equal(cp, got) {
		t.Fatal("Checkpoint∘Load∘Checkpoint is not the identity")
	}
	if _, err := m.TrainBatch(pairs[2000:]); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TrainBatch(pairs[2000:]); err != nil {
		t.Fatal(err)
	}
	if canonicalState(t, m) != canonicalState(t, loaded) {
		t.Fatal("original and reloaded models diverged on identical continuation pairs")
	}
}

// TestRecoverDurableRoundTrip drives the Durable lifecycle end to end: train
// through the WAL, close cleanly, recover, and require the recovered model to
// equal a plain in-memory model fed the identical pair sequence.
func TestRecoverDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(1200, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 19)
	opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 300}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrainBatch(pairs[:700]); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs[700:] {
		if _, err := d.Observe(p.Query, p.Answer); err != nil {
			t.Fatal(err)
		}
	}
	want := canonicalState(t, d.Model())
	wantHash := mustStateHash(t, d.Model())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d, err = Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Model().Steps() != len(pairs) {
		t.Fatalf("recovered %d steps, want %d", d.Model().Steps(), len(pairs))
	}
	if got := canonicalState(t, d.Model()); got != want {
		t.Fatal("recovered model differs from the model at Close")
	}
	if got := mustStateHash(t, d.Model()); got != wantHash {
		t.Fatalf("recovered StateHash %s, want %s", got, wantHash)
	}
	ref, err := NewModel(durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if got := canonicalState(t, ref); got != want {
		t.Fatal("recovered model differs from a plain model fed the same pairs")
	}
	if got := mustStateHash(t, ref); got != wantHash {
		t.Fatalf("reference StateHash %s, want %s", got, wantHash)
	}
}

// mustStateHash wraps Model.StateHash for test assertions.
func mustStateHash(t *testing.T, m *Model) string {
	t.Helper()
	h, err := m.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRecoverTruncatesTornTail injects garbage at the tail of the live
// segment — the on-disk signature of a crash mid-append — and requires
// recovery to keep every intact record, truncate the tail loudly, and resume
// appending at the cut.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(200, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 23)
	opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 1 << 30}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrainBatch(pairs[:150]); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := wal.SegmentPath(dir, d.Gen())
	// Abandon d without Close — the crash — and tear the tail by hand.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logs []string
	var logMu sync.Mutex
	opts.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, format)
		logMu.Unlock()
	}
	d2, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Model().Steps() != 150 {
		t.Fatalf("recovered %d steps, want 150", d2.Model().Steps())
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "torn") {
			found = true
		}
	}
	if !found {
		t.Errorf("torn-tail truncation was silent; logs: %q", logs)
	}
	// Appending must resume cleanly at the cut.
	for _, p := range pairs[150:] {
		if _, err := d2.Observe(p.Query, p.Answer); err != nil {
			t.Fatal(err)
		}
	}
	if d2.Model().Steps() != len(pairs) {
		t.Fatalf("steps after resume = %d, want %d", d2.Model().Steps(), len(pairs))
	}
}

// TestRecoverFallsBackToPreviousSnapshot corrupts the newest snapshot and
// requires recovery to fall back one generation and replay the extra segment
// — landing on the same model, because replay is deterministic.
func TestRecoverFallsBackToPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(500, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 29)
	opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 100}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if _, err := d.Observe(p.Query, p.Answer); err != nil {
			t.Fatal(err)
		}
	}
	want := canonicalState(t, d.Model())
	wantHash := mustStateHash(t, d.Model())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := wal.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Snapshots) < 2 {
		t.Fatalf("need a fallback generation, have snapshots %v", man.Snapshots)
	}
	newest := man.Snapshots[len(man.Snapshots)-1]
	if err := os.WriteFile(wal.SnapshotPath(dir, newest), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logs []string
	opts.Logf = func(format string, args ...any) { logs = append(logs, format) }
	d2, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := canonicalState(t, d2.Model()); got != want {
		t.Fatal("fallback recovery landed on a different model")
	}
	if got := mustStateHash(t, d2.Model()); got != wantHash {
		t.Fatalf("fallback recovery StateHash %s, want %s", got, wantHash)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "falling back") {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot fallback was silent; logs: %q", logs)
	}
}

// TestRecoverMissingSegmentFails removes a segment the fallback path depends
// on: that is data loss, not a crash artifact, and recovery must refuse with
// an error naming the missing file rather than rebuild a silently wrong model.
func TestRecoverMissingSegmentFails(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(300, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 31)
	opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 100}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := wal.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := man.Snapshots[len(man.Snapshots)-1]
	// Newest snapshot unreadable AND the fallback's segment gone: nothing
	// loadable remains above the damage.
	if err := os.WriteFile(wal.SnapshotPath(dir, newest), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(wal.SegmentPath(dir, newest-1)); err != nil {
		t.Fatal(err)
	}
	opts.Logf = func(string, ...any) {}
	if _, err := Recover(dir, durableConfig(), opts); err == nil {
		t.Fatal("recovery over missing segment succeeded")
	} else if !strings.Contains(err.Error(), filepath.Base(wal.SegmentPath(dir, newest-1))) {
		t.Errorf("error %q does not name the missing segment", err)
	}
}

// TestDurableConcurrentSnapshotObserve runs live durable training, forced
// snapshot rotations, lock-free Saves and pinned-View readers against each
// other; under -race this proves snapshotting never tears the state a reader
// or the WAL order observes.
func TestDurableConcurrentSnapshotObserve(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(800, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 37)
	d, err := Recover(dir, durableConfig(), DurableOptions{
		WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // forced rotations racing the cadence-driven ones
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := d.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // lock-free readers: pinned views and Saves
		defer wg.Done()
		rng := rand.New(rand.NewSource(41))
		for {
			select {
			case <-done:
				return
			default:
			}
			v := d.View()
			if v.K() > 0 {
				q := pairs[rng.Intn(len(pairs))].Query
				if _, err := v.PredictMean(q); err != nil {
					t.Error(err)
					return
				}
			}
			if err := d.Model().Save(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, p := range pairs {
		if _, err := d.Observe(p.Query, p.Answer); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The WAL must have captured every pair despite the interleaving.
	d2, err := Recover(dir, durableConfig(), DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Model().Steps() != len(pairs) {
		t.Fatalf("recovered %d steps, want %d", d2.Model().Steps(), len(pairs))
	}
}
