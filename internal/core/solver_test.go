package core

import (
	"math"
	"testing"
)

func TestSolverString(t *testing.T) {
	if SolverRLS.String() != "rls" || SolverSGD.String() != "sgd" {
		t.Errorf("solver names: %q %q", SolverRLS, SolverSGD)
	}
	if Solver(9).String() != "unknown" {
		t.Error("unknown solver name")
	}
}

// rmseOn evaluates the model's Q1 prediction RMSE over a test stream.
func rmseOn(t *testing.T, m *Model, test []TrainingPair) float64 {
	t.Helper()
	var se float64
	for _, p := range test {
		yhat, err := m.PredictMean(p.Query)
		if err != nil {
			t.Fatal(err)
		}
		se += (yhat - p.Answer) * (yhat - p.Answer)
	}
	return math.Sqrt(se / float64(len(test)))
}

func TestSGDSolverLearnsUsably(t *testing.T) {
	// The paper-faithful SGD solver must still produce a usable model: far
	// better than predicting the global mean, even if less sharp than RLS.
	b0, bx, btheta := 0.3, []float64{0.5, -0.2}, 1.0
	train := planeStream(20000, 2, b0, bx, btheta, 21)
	test := planeStream(800, 2, b0, bx, btheta, 22)

	cfg := DefaultConfig(2)
	cfg.CoefficientSolver = SolverSGD
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, p := range train {
		mean += p.Answer
	}
	mean /= float64(len(train))
	var seMean float64
	for _, p := range test {
		seMean += (mean - p.Answer) * (mean - p.Answer)
	}
	rmseMean := math.Sqrt(seMean / float64(len(test)))
	rmseSGD := rmseOn(t, m, test)
	if rmseSGD >= rmseMean {
		t.Errorf("SGD solver RMSE %v not better than global-mean RMSE %v", rmseSGD, rmseMean)
	}
}

func TestRLSSolverOutperformsSGDOnLinearSurface(t *testing.T) {
	// Ablation: on a linear answer surface RLS recovers the coefficients and
	// must beat the first-order SGD rule with the same budget of pairs.
	b0, bx, btheta := 0.3, []float64{0.5, -0.2}, 1.0
	train := planeStream(20000, 2, b0, bx, btheta, 23)
	test := planeStream(800, 2, b0, bx, btheta, 24)

	results := make(map[Solver]float64)
	for _, solver := range []Solver{SolverRLS, SolverSGD} {
		cfg := DefaultConfig(2)
		cfg.CoefficientSolver = solver
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(train); err != nil {
			t.Fatal(err)
		}
		results[solver] = rmseOn(t, m, test)
	}
	if results[SolverRLS] >= results[SolverSGD] {
		t.Errorf("RLS RMSE %v should beat SGD RMSE %v on a linear surface", results[SolverRLS], results[SolverSGD])
	}
	if results[SolverRLS] > 0.05 {
		t.Errorf("RLS RMSE %v unexpectedly high", results[SolverRLS])
	}
}

func TestRLSRecoversExactLocalCoefficients(t *testing.T) {
	// With a single prototype (a = 1) and a linear answer surface, the RLS
	// coefficients must converge to the true global coefficients.
	b0, bx, btheta := 0.3, []float64{0.5, -0.2}, 1.0
	train := planeStream(5000, 2, b0, bx, btheta, 25)
	cfg := DefaultConfig(2)
	cfg.ResolutionA = 1 // single prototype
	cfg.Gamma = 1e-6    // learn for the whole stream
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("expected a single prototype, got %d", m.K())
	}
	l := m.LLMs()[0]
	if math.Abs(l.SlopeX[0]-bx[0]) > 0.02 || math.Abs(l.SlopeX[1]-bx[1]) > 0.02 {
		t.Errorf("slopes = %v, want %v", l.SlopeX, bx)
	}
	if math.Abs(l.SlopeTheta-btheta) > 0.1 {
		t.Errorf("θ-slope = %v, want %v", l.SlopeTheta, btheta)
	}
	// The full linear map must reproduce answers everywhere, which pins the
	// intercept at the prototype.
	test := planeStream(200, 2, b0, bx, btheta, 26)
	if rmse := rmseOn(t, m, test); rmse > 0.01 {
		t.Errorf("single-prototype RLS RMSE = %v", rmse)
	}
}
