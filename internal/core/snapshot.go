package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"llmq/internal/vector"
)

// storeSnapshot is one immutable published version of the model's serving
// state: the chunk-pointer tables of the prototype matrix, the LLM
// coefficient matrix and the win counts, and the shared read epoch with its
// drift slack and max-θ bound. A snapshot is created by protoStore.publish
// under the writer lock, installed with one atomic pointer store, and then
// never mutated — readers that loaded it keep a consistent version for as
// long as they hold the pointer, while training publishes newer versions
// alongside it. Chunks are shared by pointer across versions: the writer
// copies a chunk before its first post-publication write to a row this
// snapshot can see (rows ≥ k were appended later and are never read here),
// so the rows behind the table are frozen even though most of them are the
// same memory every other version reads. This is what makes every prediction
// method lock-free, what allows serving to pin one model version across a
// whole batch (View), and what makes publishing a version O(touched chunks)
// instead of O(K).
type storeSnapshot struct {
	chunkTable // the chunk-pointer table and its layout decoders

	dim  int // input dimensionality d
	k    int // prototype slot count (live + tombstoned), the row-scan bound
	live int // live prototypes (the K users see)

	// revived lists the live slots below the epoch's builtK that the epoch
	// does not index (tombstones reused after the build); every search scans
	// them exactly, like the appended tail. Tombstoned slots themselves need
	// no bookkeeping — their rows are masked to infinite distance, so the
	// row scans skip them without a branch.
	revived []int32

	epoch    *readEpoch // shared immutable index (nil below the size gates)
	slack    float64    // max prototype displacement vs the epoch's stale rows
	maxTheta float64    // upper bound on every θ_k (see store.go)

	steps      int
	converged  bool
	lastGamma  float64
	quietSteps int // consecutive steps with Γ ≤ γ, persisted by Save
}

// chunked wraps the snapshot's chunk table for the chunk-iterating kernels
// (the prototype rows are each chunk's prefix); the view is three words, so
// building one allocates nothing.
func (s *storeSnapshot) chunked() vector.Chunked {
	return vector.NewChunked(s.width, s.k, s.dataC)
}

// eval evaluates f_k(x, θ) (Eq. 5 / Eq. 12) from the flat rows, with the
// same operation order as LLM.Eval so the two paths are bit-identical.
func (s *storeSnapshot) eval(k int, center vector.Vec, theta float64) float64 {
	row := s.row(k)
	c := s.coefRow(k)
	v := c[0] + c[s.coefW-1]*(theta-row[s.dim])
	for i := 0; i < s.dim; i++ {
		v += c[1+i] * (center[i] - row[i])
	}
	return v
}

// evalAtPrototypeRadius evaluates f_k(x, θ_k) — the LLM restricted to its
// own radius (Theorem 3), mirroring LLM.EvalAtPrototypeRadius.
func (s *storeSnapshot) evalAtPrototypeRadius(k int, x vector.Vec) float64 {
	row := s.row(k)
	c := s.coefRow(k)
	v := c[0]
	for i := 0; i < s.dim; i++ {
		v += c[1+i] * (x[i] - row[i])
	}
	return v
}

// dataModel converts the k-th LLM into the explicit local linear regression
// of the data function g over D_k (Theorem 3), mirroring LLM.DataModel.
func (s *storeSnapshot) dataModel(k int) LocalLinear {
	row := s.row(k)
	c := s.coefRow(k)
	var dot float64
	for i := 0; i < s.dim; i++ {
		dot += c[1+i] * row[i]
	}
	return LocalLinear{
		Intercept: c[0] - dot,
		Slope:     vector.Of(c[1 : 1+s.dim]...),
		Center:    vector.Of(row[:s.dim]...),
		Theta:     row[s.dim],
	}
}

// protoQuery returns the k-th prototype as a Query value w_k = [x_k, θ_k].
func (s *storeSnapshot) protoQuery(k int) Query {
	row := s.row(k)
	return Query{Center: vector.Of(row[:s.dim]...), Theta: row[s.dim]}
}

// predictScratch carries the per-call scratch buffers of the prediction hot
// path: the assembled query-space point, the radius-query candidate list,
// the k-d tree traversal stack and the overlap set's index/weight result
// slices. Instances are pooled so a steady-state prediction performs no
// heap allocation at all; the buffers only grow, and the pool survives
// snapshot publication, so a training stream does not cool the serving
// path down.
type predictScratch struct {
	qflat   []float64
	cand    []int
	kdstack []int32
	mask    []bool
	idx     []int
	weights []float64
}

func (sc *predictScratch) qvec(w int) []float64 {
	if cap(sc.qflat) < w {
		sc.qflat = make([]float64, w)
	}
	return sc.qflat[:w]
}

var scratchPool = sync.Pool{New: func() any { return new(predictScratch) }}

// winnerQuery returns the snapshot's winner (Eq. 5) for q and the true
// (root) query-space distance.
func (s *storeSnapshot) winnerQuery(q Query, sc *predictScratch) (int, float64) {
	qflat := sc.qvec(s.width)
	copy(qflat, q.Center)
	qflat[s.width-1] = q.Theta
	k, sq := winnerOn(s.epoch, s.chunked(), qflat, s.slack, s.revived, &sc.kdstack)
	return k, math.Sqrt(sq)
}

// overlapAccumulate verifies one prototype against q — the single copy of
// the Eq. (9)/(10) membership-and-weight arithmetic, shared by the linear
// scan and every radius-query sweep so the paths cannot diverge — and
// appends it to the running overlap set when its degree is positive.
//
// The membership test ‖x − x_k‖ ≤ θ + θ_k is evaluated with the partial-
// distance kernel: the radii are known before the distance, so a row whose
// partial sum of squares already exceeds (θ + θ_k)² is abandoned mid-row.
// sq ≤ r² is equivalent to dist ≤ r (both sides non-negative, √ monotone),
// and a row exactly on the boundary has overlap degree 0 either way, so the
// cutoff never changes the resulting set — it only skips arithmetic (and
// the square root) for rows that cannot be members.
func (s *storeSnapshot) overlapAccumulate(q Query, id int, idx []int, weights []float64, total float64) ([]int, []float64, float64) {
	row := s.row(id)
	r := q.Theta + row[s.dim]
	sq, within := vector.SqDistanceWithin(q.Center, row[:s.dim], r*r)
	if !within {
		return idx, weights, total
	}
	deg := overlapDegree(math.Sqrt(sq), q.Theta, row[s.dim])
	if deg > 0 {
		idx = append(idx, id)
		weights = append(weights, deg)
		total += deg
	}
	return idx, weights, total
}

// overlapLinearRaw builds the overlap set W(q) (Eq. 10) with one scan over
// all prototype slots: the exact reference path, used below the index size
// gates and whenever the radius query cannot prune. Tombstoned slots sit at
// infinite distance and fail the membership test without a branch. The
// weights are the raw (pre-normalization) overlap degrees, accumulated in
// ascending slot order into total — the caller normalizes (overlapSet), or
// ships the raw degrees to a scatter/gather merger that re-runs the same
// accumulation across shards (View.ScatterScan). The returned slices live
// in the scratch and are valid until the next use of it.
func (s *storeSnapshot) overlapLinearRaw(q Query, sc *predictScratch) (idx []int, weights []float64, total float64) {
	idx, weights = sc.idx[:0], sc.weights[:0]
	for k := 0; k < s.k; k++ {
		idx, weights, total = s.overlapAccumulate(q, k, idx, weights, total)
	}
	sc.idx, sc.weights = idx, weights
	return idx, weights, total
}

// overlapEps widens the radius-query bound by a relative margin so the
// float rounding of the bound arithmetic (one hypot and one multiply) can
// never exclude a prototype exactly on the overlap boundary. Candidates are
// verified with the same overlapDegree arithmetic as the linear scan, so
// the widening only ever adds candidates — the resulting set and weights
// are bit-identical to overlapLinear's.
const overlapEps = 1e-12

// overlapSet builds W(q) and normalizes the weights to sum to one — the
// form every prediction method consumes. The membership sweep is
// overlapRaw's; the division happens here, last, so a scatter/gather tier
// that needs the raw degrees (ScatterScan) shares every preceding
// instruction with the local path.
func (s *storeSnapshot) overlapSet(q Query, sc *predictScratch) (idx []int, weights []float64) {
	idx, weights, total := s.overlapRaw(q, sc)
	if total > 0 {
		for i := range weights {
			weights[i] /= total
		}
	}
	return idx, weights
}

// overlapRaw builds W(q) through the epoch's radius query instead of a full
// scan, returning raw (pre-normalization) degrees like overlapLinearRaw.
// The overlap test ‖x − x_k‖ ≤ θ + θ_k becomes a query-space ball
// once θ_k is bounded by maxTheta: every overlapping prototype lies within
// R = θ + maxTheta of x, hence within rq = √(R² + max(θ, maxTheta)²) of
// [x, θ] in the query space, and within rq + slack of its own stale epoch
// position. The grid enumerates the cells covering that ball; the k-d tree
// collects every leaf whose bounding box the ball touches. Every candidate
// is then verified on the snapshot's live rows with exactly the linear
// scan's arithmetic, in ascending prototype order, so indices, weights and
// the running total match overlapLinearRaw bit for bit. Rows appended after
// the epoch build (the tail) are scanned directly.
func (s *storeSnapshot) overlapRaw(q Query, sc *predictScratch) (idx []int, weights []float64, total float64) {
	e := s.epoch
	if e == nil {
		return s.overlapLinearRaw(q, sc)
	}
	R := q.Theta + s.maxTheta
	T := q.Theta
	if s.maxTheta > T {
		T = s.maxTheta
	}
	rq := math.Sqrt(R*R + T*T)
	rq += rq*overlapEps + s.slack
	cand := sc.cand[:0]
	qflat := sc.qvec(s.width)
	copy(qflat, q.Center)
	qflat[s.width-1] = q.Theta
	if e.grid != nil {
		cand = e.grid.Range(qflat, rq, cand)
	} else {
		// Cap the enumeration at the router's own bail threshold: once the
		// candidates reach K/2 the code below answers with the straight scan
		// anyway, so a space-covering query must not pay a full verified
		// traversal whose output is discarded.
		cand, sc.kdstack = e.tree.Range(qflat, rq, cand, sc.kdstack, s.k/2)
	}
	// Revived slots are live but absent from the epoch: add them to the
	// candidate set unconditionally (they sort into slot order below, so the
	// accumulation order — and hence the float weights — match the linear
	// scan exactly; the membership verification discards non-members).
	for _, id := range s.revived {
		cand = append(cand, int(id))
	}
	sc.cand = cand
	tail := s.k - e.builtK
	if len(cand)+tail >= s.k/2 {
		// The ball covers most of the prototype set (a broad query, or a
		// workload without locality): the straight scan is cheaper than
		// gather-and-sort and returns the identical result.
		return s.overlapLinearRaw(q, sc)
	}
	idx, weights = sc.idx[:0], sc.weights[:0]
	if len(cand) >= e.builtK/16 {
		// Too many candidates for a sort to beat a sweep (a broad radius, or
		// grid cell boxes much wider than the ball): mark them in a mask and
		// sweep the built rows in id order — same verification arithmetic,
		// same accumulation order, a fraction of the cost.
		if cap(sc.mask) < e.builtK {
			sc.mask = make([]bool, e.builtK)
		}
		mask := sc.mask[:e.builtK]
		for _, id := range cand {
			mask[id] = true
		}
		for id := 0; id < e.builtK; id++ {
			if !mask[id] {
				continue
			}
			idx, weights, total = s.overlapAccumulate(q, id, idx, weights, total)
		}
		for _, id := range cand {
			mask[id] = false
		}
	} else {
		slices.Sort(cand)
		prev := -1
		for _, id := range cand {
			if id == prev {
				continue // duplicate from a colliding grid bucket
			}
			prev = id
			idx, weights, total = s.overlapAccumulate(q, id, idx, weights, total)
		}
	}
	for id := e.builtK; id < s.k; id++ {
		idx, weights, total = s.overlapAccumulate(q, id, idx, weights, total)
	}
	sc.idx, sc.weights = idx, weights
	return idx, weights, total
}

// View is an immutable, lock-free view of the model at one published
// training version. Obtain one with Model.View; every method answers from
// that version no matter how much training happens afterwards, so a batch
// of predictions pinned to one View is mutually consistent — the
// zero-downtime model-swap primitive: serve traffic from a pinned View,
// retrain or Load in the background, and re-pin when ready. The zero value
// is not valid; Views are cheap (one pointer) and safe for concurrent use.
type View struct {
	s *storeSnapshot
}

// K returns the number of live prototypes/LLMs in this version (slots
// tombstoned by eviction are not counted).
func (v View) K() int { return v.s.live }

// Steps returns how many training pairs this version had consumed.
func (v View) Steps() int { return v.s.steps }

// Converged reports whether the termination criterion had fired.
func (v View) Converged() bool { return v.s.converged }

// LastGamma returns the version's most recent termination criterion Γ.
func (v View) LastGamma() float64 { return v.s.lastGamma }

func (v View) checkQuery(q Query) error {
	if v.s.live == 0 {
		return ErrNotTrained
	}
	if q.Dim() != v.s.dim {
		return fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, q.Dim(), v.s.dim)
	}
	return nil
}

// Winner returns the index of the prototype closest to q in the query space
// (the winner of Eq. 5) and the query-space distance to it.
func (v View) Winner(q Query) (int, float64, error) {
	if err := v.checkQuery(q); err != nil {
		return 0, 0, err
	}
	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	k, dist := v.s.winnerQuery(q, sc)
	return k, dist, nil
}

// PredictMean answers a Q1 mean-value query (Algorithm 2): the predicted
// average of the output attribute over D(x, θ), computed purely from the
// trained LLMs without data access.
func (v View) PredictMean(q Query) (float64, error) {
	if err := v.checkQuery(q); err != nil {
		return 0, err
	}
	s := v.s
	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	idx, weights := s.overlapSet(q, sc)
	if len(idx) == 0 {
		// Extrapolate from the closest prototype.
		w, _ := s.winnerQuery(q, sc)
		return s.eval(w, q.Center, q.Theta), nil
	}
	var yhat float64
	for i, k := range idx {
		yhat += weights[i] * s.eval(k, q.Center, q.Theta)
	}
	return yhat, nil
}

// Regression answers a Q2 linear-regression query (Algorithm 3): the list S
// of local linear models that approximate the data function g over D(x, θ).
// Overlapping prototypes contribute one model each; when no prototype
// overlaps, the closest prototype's model is returned by extrapolation
// (Case 3).
func (v View) Regression(q Query) ([]LocalLinear, error) {
	if err := v.checkQuery(q); err != nil {
		return nil, err
	}
	s := v.s
	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	idx, weights := s.overlapSet(q, sc)
	if len(idx) == 0 {
		w, _ := s.winnerQuery(q, sc)
		model := s.dataModel(w)
		model.Weight = 0
		return []LocalLinear{model}, nil
	}
	out := make([]LocalLinear, 0, len(idx))
	for i, k := range idx {
		model := s.dataModel(k)
		model.Weight = weights[i]
		out = append(out, model)
	}
	return out, nil
}

// PredictValue predicts the data value û ≈ g(x) for a point x inside the
// subspace addressed by the query q = [x0, θ] (Eq. 14): the overlap-weighted
// fusion of the neighbouring LLMs evaluated at their own prototype radii.
func (v View) PredictValue(q Query, x []float64) (float64, error) {
	if v.s.live == 0 {
		return 0, ErrNotTrained
	}
	if q.Dim() != v.s.dim || len(x) != v.s.dim {
		return 0, fmt.Errorf("%w: query dim %d, point dim %d, model dim %d", ErrDimension, q.Dim(), len(x), v.s.dim)
	}
	s := v.s
	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	xv := vector.Vec(x)
	idx, weights := s.overlapSet(q, sc)
	if len(idx) == 0 {
		w, _ := s.winnerQuery(q, sc)
		return s.evalAtPrototypeRadius(w, xv), nil
	}
	var uhat float64
	for i, k := range idx {
		uhat += weights[i] * s.evalAtPrototypeRadius(k, xv)
	}
	return uhat, nil
}

// Neighborhood exposes the overlap set W(q) for diagnostics: the prototype
// queries that overlap q and their normalized weights.
func (v View) Neighborhood(q Query) ([]Query, []float64, error) {
	if err := v.checkQuery(q); err != nil {
		return nil, nil, err
	}
	s := v.s
	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	idx, weights := s.overlapSet(q, sc)
	qs := make([]Query, len(idx))
	for i, k := range idx {
		qs[i] = s.protoQuery(k)
	}
	return qs, append([]float64(nil), weights...), nil
}
