package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"llmq/internal/wal"
)

// TestDurableFlipsReadOnlyOnWALFault injects a WAL write failure and
// requires the fail-safe contract end to end: the failing call reports
// ErrReadOnly with the root cause, the failure is sticky across every
// further training entry point even after the fault clears, queries keep
// answering from the in-memory model, and a fresh Recover over the
// directory reproduces exactly the acknowledged pairs — the injected
// fault dropped nothing that was acked.
func TestDurableFlipsReadOnlyOnWALFault(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(400, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 41)
	var arm atomic.Bool
	injected := errors.New("injected: no space left on device")
	opts := DurableOptions{
		WAL: wal.Options{Mode: wal.SyncNone, Fault: func(op string) error {
			if arm.Load() {
				return injected
			}
			return nil
		}},
		SnapshotEvery: 1 << 30, // no rotation: the acked pairs live in the WAL tail
		Logf:          t.Logf,
	}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	acked := pairs[:300]
	if _, err := d.TrainBatch(acked); err != nil {
		t.Fatal(err)
	}
	want := canonicalState(t, d.Model())

	// The fault hits: the batch is refused with ErrReadOnly + root cause.
	arm.Store(true)
	if _, err := d.TrainBatch(pairs[300:350]); !errors.Is(err, ErrReadOnly) || !errors.Is(err, injected) {
		t.Fatalf("faulted TrainBatch: err = %v, want ErrReadOnly wrapping the injected fault", err)
	}
	if d.Failure() == nil {
		t.Fatal("Failure() nil after a WAL fault")
	}

	// Sticky: the store stays read-only even after the disk "heals".
	arm.Store(false)
	if _, err := d.Observe(pairs[350].Query, pairs[350].Answer); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Observe after fault cleared: err = %v, want ErrReadOnly", err)
	}
	if _, err := d.TrainBatch(pairs[350:360]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("TrainBatch after fault cleared: err = %v, want ErrReadOnly", err)
	}
	if err := d.Snapshot(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Snapshot on a read-only store: err = %v, want ErrReadOnly", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Sync on a read-only store: err = %v, want ErrReadOnly", err)
	}

	// Queries keep serving the in-memory model untouched.
	if got := canonicalState(t, d.Model()); got != want {
		t.Fatal("read-only flip changed the in-memory model")
	}
	if _, err := d.Model().PredictMean(acked[0].Query); err != nil {
		t.Fatalf("query on a read-only store: %v", err)
	}

	// Close reports the failure instead of pretending a clean shutdown.
	if err := d.Close(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Close on a read-only store: err = %v, want ErrReadOnly", err)
	}

	// Recovery after the fault clears: bit-identical to the model that
	// held exactly the acknowledged pairs.
	d2, err := Recover(dir, durableConfig(), DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Failure() != nil {
		t.Fatalf("fresh recovery is read-only: %v", d2.Failure())
	}
	if d2.Model().Steps() != len(acked) {
		t.Fatalf("recovered %d steps, want the %d acked pairs", d2.Model().Steps(), len(acked))
	}
	if got := canonicalState(t, d2.Model()); got != want {
		t.Fatal("recovered model differs from the state at the last ack")
	}
	// And the recovered store is writable again.
	if _, err := d2.Observe(pairs[300].Query, pairs[300].Answer); err != nil {
		t.Fatalf("training after recovery: %v", err)
	}
}

// TestDurableReadOnlyOnRotationFault makes the failure injection hit the
// rotation fsync instead of a plain append: the store must flip read-only
// the same way (a checkpoint that cannot flush its superseded segment is
// a WAL failure like any other).
func TestDurableReadOnlyOnRotationFault(t *testing.T) {
	dir := t.TempDir()
	pairs := planeStream(100, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 43)
	var arm atomic.Bool
	injected := errors.New("injected: fsync failed")
	opts := DurableOptions{
		WAL: wal.Options{Mode: wal.SyncNone, Fault: func(op string) error {
			if arm.Load() && op == "sync" {
				return injected
			}
			return nil
		}},
		SnapshotEvery: 1 << 30,
		Logf:          t.Logf,
	}
	d, err := Recover(dir, durableConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	if err := d.Snapshot(); !errors.Is(err, ErrReadOnly) || !errors.Is(err, injected) {
		t.Fatalf("faulted Snapshot: err = %v, want ErrReadOnly wrapping the injected fault", err)
	}
	arm.Store(false)
	if _, err := d.Observe(pairs[0].Query, pairs[0].Answer); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Observe after rotation fault: err = %v, want ErrReadOnly", err)
	}
	_ = d.Close()
}
