package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"llmq/internal/vector"
)

// queryGen produces the benchmark query stream; the model's prototype set is
// grown from the same distribution, as training does.
type queryGen func(rng *rand.Rand) Query

func uniformGen(dim int) queryGen {
	return func(rng *rand.Rand) Query { return randQuery(rng, dim) }
}

// clusteredGen models the paper's regime of query locality: analysts issue
// queries around data hot spots, so query centres concentrate on a mixture
// of clusters instead of filling the space uniformly. This is the workload
// shape the projection spine exploits in wide query spaces.
func clusteredGen(dim, clusters int, sigma float64, seed int64) queryGen {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		centers[i] = c
	}
	return func(rng *rand.Rand) Query {
		c := centers[rng.Intn(clusters)]
		x := make([]float64, dim)
		for j := range x {
			x[j] = c[j] + sigma*rng.NormFloat64()
		}
		return Query{Center: vector.Of(x...), Theta: 0.05 + 0.05*rng.Float64()}
	}
}

// buildBenchModel grows a model to the given prototype count by streaming
// pairs from gen, then absorbs a few update rounds so every prototype
// carries trained RLS state — the state of a converged serving model. The
// resulting m.llms layout is exactly what the pre-change winner search
// scanned: LLM structs, prototype vectors, solver matrices and per-step
// scratch slices allocated interleaved on the heap, as normal training
// produces them. Ingestion goes through TrainBatch — the bulk path that
// amortizes snapshot publication — so building a 10k-prototype fixture
// stays cheap.
func buildBenchModel(tb testing.TB, dim, protos int, vigilance float64, gen queryGen) *Model {
	tb.Helper()
	cfg := DefaultConfig(dim)
	cfg.Vigilance = vigilance
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const chunk = 2048
	pairs := make([]TrainingPair, chunk)
	for tries := 0; tries < 100*protos/chunk+1 && m.K() < protos; tries++ {
		for i := range pairs {
			pairs[i] = TrainingPair{Query: gen(rng), Answer: rng.NormFloat64()}
		}
		if _, err := m.TrainBatch(pairs); err != nil {
			tb.Fatal(err)
		}
	}
	if m.K() < protos {
		tb.Fatalf("expected %d prototypes, got %d", protos, m.K())
	}
	for round := 0; round < 3; round++ {
		ref := make([]TrainingPair, 0, len(m.llms))
		for _, l := range m.llms {
			q := Query{Center: l.CenterPrototype.Clone(), Theta: l.ThetaPrototype}
			ref = append(ref, TrainingPair{Query: q, Answer: rng.NormFloat64()})
		}
		if _, err := m.TrainBatch(ref); err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// BenchmarkWinnerSearch compares the store-backed winner search (grid-
// indexed for d+1 <= 4, k-d tree above) against the pre-change
// implementation — winnerLinearScan, the verbatim old code — running on the
// live []*LLM slice it used to run on. This is the apples-to-apples
// measurement behind the ≥3× acceptance criterion; scripts/bench.sh
// records it. d=8-uniform is the adversarial shape (little locality for the
// tree boxes to prune on, the scan-budget bail regime); d=4/d=8-clustered
// is the paper's query-locality regime across the tree's width range.
func BenchmarkWinnerSearch(b *testing.B) {
	cases := []struct {
		name      string
		dim       int
		vigilance float64
		gen       queryGen
	}{
		{"d=2", 2, 0.03, uniformGen(2)},
		{"d=4-clustered", 4, 0.05, clusteredGen(4, 150, 0.05, 5)},
		{"d=8-uniform", 8, 0.25, uniformGen(8)},
		{"d=8-clustered", 8, 0.08, clusteredGen(8, 150, 0.05, 5)},
	}
	for _, tc := range cases {
		m := buildBenchModel(b, tc.dim, 1000, tc.vigilance, tc.gen)
		qrng := rand.New(rand.NewSource(7))
		queries := make([]Query, 256)
		for i := range queries {
			queries[i] = tc.gen(qrng)
		}
		b.Run("store/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Winner(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("prechange/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				idx, dist := winnerLinearScan(m.llms, q)
				if idx < 0 || math.IsNaN(dist) {
					b.Fatal("no winner")
				}
			}
		})
	}
}

// uniformThetaGen produces uniform query centres with a controlled radius
// band — the "point query" profile of the overlap benchmarks, where the
// radii (and hence the overlap sets) stay small relative to the space.
func uniformThetaGen(dim int, thetaLo, thetaHi float64) queryGen {
	return func(rng *rand.Rand) Query {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		return Query{Center: c, Theta: thetaLo + (thetaHi-thetaLo)*rng.Float64()}
	}
}

// clusteredThetaGen is clusteredGen with a controlled radius band.
func clusteredThetaGen(dim, clusters int, sigma, thetaLo, thetaHi float64, seed int64) queryGen {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		centers[i] = c
	}
	return func(rng *rand.Rand) Query {
		c := centers[rng.Intn(clusters)]
		x := make([]float64, dim)
		for j := range x {
			x[j] = c[j] + sigma*rng.NormFloat64()
		}
		return Query{Center: x, Theta: thetaLo + (thetaHi-thetaLo)*rng.Float64()}
	}
}

// overlapBenchCases are the shared fixtures of the overlap-set and
// PredictMean-scaling benchmarks: both the grid path (d=2, width 3) and the
// spine path (d=8, width 9) at K=1k and K=10k. The vigilance per case is
// tuned so the workload actually packs that many prototypes, and the query
// radius band scales with the vigilance (the quantization resolution): a
// finer model answers correspondingly finer queries, so the overlap set
// size — the output, which no algorithm can shrink — stays roughly constant
// across K and the benchmarks measure the machinery's K-dependence alone.
var overlapBenchCases = buildOverlapBenchCases()

type overlapBenchCase struct {
	name string
	dim  int
	K    int
	vig  float64
	gen  queryGen
}

func buildOverlapBenchCases() []overlapBenchCase {
	mk := func(name string, dim, K int, vig float64, clusters int, loF, hiF float64) overlapBenchCase {
		var gen queryGen
		if clusters > 0 {
			gen = clusteredThetaGen(dim, clusters, 0.05, loF*vig, hiF*vig, 5)
		} else {
			gen = uniformThetaGen(dim, loF*vig, hiF*vig)
		}
		return overlapBenchCase{name: name, dim: dim, K: K, vig: vig, gen: gen}
	}
	return []overlapBenchCase{
		mk("d=2-uniform/K=1k", 2, 1000, 0.025, 0, 1.2, 2.4),
		mk("d=2-uniform/K=10k", 2, 10000, 0.008, 0, 1.2, 2.4),
		mk("d=2-clustered/K=1k", 2, 1000, 0.018, 150, 1.2, 2.4),
		mk("d=2-clustered/K=10k", 2, 10000, 0.0055, 150, 1.2, 2.4),
		mk("d=4-clustered/K=1k", 4, 1000, 0.05, 150, 0.5, 1.0),
		mk("d=4-clustered/K=10k", 4, 10000, 0.03, 150, 0.5, 1.0),
		mk("d=8-clustered/K=1k", 8, 1000, 0.15, 150, 0.5, 1.0),
		mk("d=8-clustered/K=10k", 8, 10000, 0.035, 150, 0.5, 1.0),
	}
}

// BenchmarkOverlapSet compares the epoch radius-query overlap path (grid
// cells for d=2, k-d tree leaf collection for d=4/d=8) against the
// pre-change full scan, on the same published snapshot. Both produce
// identical indices and weights (TestOverlapSetMatchesLinearScan); only the
// candidate enumeration differs. This is the measurement behind the ≥3×
// acceptance criterion at K=10k; scripts/bench.sh records it.
func BenchmarkOverlapSet(b *testing.B) {
	for _, tc := range overlapBenchCases {
		m := buildBenchModel(b, tc.dim, tc.K, tc.vig, tc.gen)
		s := m.snap.Load()
		qrng := rand.New(rand.NewSource(7))
		queries := make([]Query, 256)
		for i := range queries {
			queries[i] = tc.gen(qrng)
		}
		b.Run("range/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var sc predictScratch
			for i := 0; i < b.N; i++ {
				s.overlapSet(queries[i%len(queries)], &sc)
			}
		})
		b.Run("linear/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var sc predictScratch
			for i := 0; i < b.N; i++ {
				s.overlapLinearRaw(queries[i%len(queries)], &sc)
			}
		})
	}
}

// BenchmarkPredictMeanScaling measures the end-to-end Q1 prediction across
// prototype counts: with the winner search and the overlap set both served
// by the epoch index, the latency from K=1k to K=10k must grow far slower
// than the 10× prototype growth (the sub-linearity acceptance criterion).
func BenchmarkPredictMeanScaling(b *testing.B) {
	for _, tc := range overlapBenchCases {
		m := buildBenchModel(b, tc.dim, tc.K, tc.vig, tc.gen)
		qrng := rand.New(rand.NewSource(7))
		queries := make([]Query, 256)
		for i := range queries {
			queries[i] = tc.gen(qrng)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictMean(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEpochRebuild measures the cost of one read-epoch rebuild — the
// amortized write-path price behind every indexed read: the grid insert
// loop at d=2, and the k-d tree bulk build (stale-row gather, median-split
// quickselect, leaf reorder, bottom-up boxes) at d=4 and d=8, each over
// K=10k live rows. Rebuilds fire on the write path once the un-indexed
// tail reaches K/8 or the drift budget nears the prototype spacing, so
// per-pair amortization is this cost divided by at least K/8 pairs.
func BenchmarkEpochRebuild(b *testing.B) {
	for _, tc := range overlapBenchCases {
		if tc.K < 10000 {
			continue
		}
		m := buildBenchModel(b, tc.dim, tc.K, tc.vig, tc.gen)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.store.rebuildEpoch()
			}
		})
	}
}

// BenchmarkReadDuringTraining measures prediction latency while a writer
// continuously streams training pairs into the same model — the regime the
// copy-on-write snapshots exist for: readers load the latest published
// version with one atomic pointer load and never wait on the writer. The
// idle variant is the contention-free baseline.
func BenchmarkReadDuringTraining(b *testing.B) {
	const dim = 2
	gen := clusteredThetaGen(dim, 150, 0.05, 0.01, 0.02, 5)
	run := func(b *testing.B, training bool) {
		m := buildBenchModel(b, dim, 1000, 0.018, gen)
		qrng := rand.New(rand.NewSource(7))
		queries := make([]Query, 256)
		for i := range queries {
			queries[i] = gen(qrng)
		}
		done := make(chan struct{})
		var wg sync.WaitGroup
		if training {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(11))
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := m.Observe(gen(wrng), wrng.NormFloat64()); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		b.ReportAllocs()
		b.ResetTimer()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q := queries[int(i.Add(1))%len(queries)]
				if _, err := m.PredictMean(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		close(done)
		wg.Wait()
	}
	b.Run("idle", func(b *testing.B) { run(b, false) })
	b.Run("under-training", func(b *testing.B) { run(b, true) })
}
