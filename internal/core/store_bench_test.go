package core

import (
	"math"
	"math/rand"
	"testing"

	"llmq/internal/vector"
)

// queryGen produces the benchmark query stream; the model's prototype set is
// grown from the same distribution, as training does.
type queryGen func(rng *rand.Rand) Query

func uniformGen(dim int) queryGen {
	return func(rng *rand.Rand) Query { return randQuery(rng, dim) }
}

// clusteredGen models the paper's regime of query locality: analysts issue
// queries around data hot spots, so query centres concentrate on a mixture
// of clusters instead of filling the space uniformly. This is the workload
// shape the projection spine exploits in wide query spaces.
func clusteredGen(dim, clusters int, sigma float64, seed int64) queryGen {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()
		}
		centers[i] = c
	}
	return func(rng *rand.Rand) Query {
		c := centers[rng.Intn(clusters)]
		x := make([]float64, dim)
		for j := range x {
			x[j] = c[j] + sigma*rng.NormFloat64()
		}
		return Query{Center: vector.Of(x...), Theta: 0.05 + 0.05*rng.Float64()}
	}
}

// buildBenchModel grows a model to the given prototype count by streaming
// pairs from gen, then absorbs a few update rounds so every prototype
// carries trained RLS state — the state of a converged serving model. The
// resulting m.llms layout is exactly what the pre-change winner search
// scanned: LLM structs, prototype vectors, solver matrices and per-step
// scratch slices allocated interleaved on the heap, as normal training
// produces them.
func buildBenchModel(tb testing.TB, dim, protos int, vigilance float64, gen queryGen) *Model {
	tb.Helper()
	cfg := DefaultConfig(dim)
	cfg.Vigilance = vigilance
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100*protos && m.K() < protos; i++ {
		if _, err := m.Observe(gen(rng), rng.NormFloat64()); err != nil {
			tb.Fatal(err)
		}
	}
	if m.K() < protos {
		tb.Fatalf("expected %d prototypes, got %d", protos, m.K())
	}
	for round := 0; round < 3; round++ {
		for _, l := range m.llms {
			q := Query{Center: l.CenterPrototype.Clone(), Theta: l.ThetaPrototype}
			if _, err := m.Observe(q, rng.NormFloat64()); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return m
}

// BenchmarkWinnerSearch compares the store-backed winner search (grid-
// indexed for d+1 <= 4, projection-spine/flat-kernel above) against the
// pre-change implementation — winnerLinearScan, the verbatim old code —
// running on the live []*LLM slice it used to run on. This is the
// apples-to-apples measurement behind the ≥3× acceptance criterion;
// scripts/bench.sh records it. d=8-uniform is the adversarial shape (no
// projection locality, so the spine bails to the seeded flat scan);
// d=8-clustered is the paper's query-locality regime.
func BenchmarkWinnerSearch(b *testing.B) {
	cases := []struct {
		name      string
		dim       int
		vigilance float64
		gen       queryGen
	}{
		{"d=2", 2, 0.03, uniformGen(2)},
		{"d=8-uniform", 8, 0.25, uniformGen(8)},
		{"d=8-clustered", 8, 0.08, clusteredGen(8, 150, 0.05, 5)},
	}
	for _, tc := range cases {
		m := buildBenchModel(b, tc.dim, 1000, tc.vigilance, tc.gen)
		qrng := rand.New(rand.NewSource(7))
		queries := make([]Query, 256)
		for i := range queries {
			queries[i] = tc.gen(qrng)
		}
		b.Run("store/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Winner(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("prechange/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				idx, dist := winnerLinearScan(m.llms, q)
				if idx < 0 || math.IsNaN(dist) {
					b.Fatal("no winner")
				}
			}
		})
	}
}
