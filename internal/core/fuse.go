package core

import (
	"fmt"
	"math"
	"slices"
)

// Shard lifecycle primitives: Split carves one model's prototype set into N
// disjoint models and Fuse concatenates models back into one. Both copy the
// full writer state — prototypes, coefficients, win counts, eviction-clock
// stamps and the RLS solver matrices — so the children (or the fused whole)
// continue training exactly where the inputs left off. They are the
// shard-split and shard-merge building blocks of the sharded serving tier:
// the prototypes a shard trains stay inside its region (every drift, spawn
// and merge-on-evict step is a convex combination of region points), so a
// region split induces a clean prototype split, and a region merge is a
// concatenation.

// fuseEntry is one prototype's full writer state in transit.
type fuseEntry struct {
	l     *LLM
	stamp int
}

// assembleModel builds a model that starts from a prepared prototype set:
// the Load insertion loop, applied to in-memory entries. The result is
// unconverged (its criterion state resets like a post-spawn step — the
// parameter-set cardinality just changed) and enforces cfg's capacity.
func assembleModel(cfg Config, steps int, entries []fuseEntry) (*Model, error) {
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.steps = steps
	m.lastGamma = math.Inf(1)
	for i, e := range entries {
		m.llms = append(m.llms, e.l)
		m.store.addRow(e.l.CenterPrototype, e.l.ThetaPrototype)
		m.store.syncCoef(i, e.l)
		m.store.setStamp(i, e.stamp)
	}
	if cc := m.capCfg.Load(); cc.max > 0 && m.store.live > cc.max {
		m.evictLocked(-1)
	}
	m.store.rebuildEpoch()
	m.publishLocked()
	return m, nil
}

// Fuse builds one model holding every live prototype of the input models,
// concatenated in input order (each input's slots in ascending order) — the
// "union model" a sharded deployment is defined to equal: scatter/gather
// answers are property-tested bit-identical to the fused model's, because
// both accumulate the same per-prototype terms in the same shard-major
// order. The inputs are read under their writer locks (taken one at a time,
// never nested) and are not modified; the fused model owns deep copies,
// including each prototype's RLS solver state, so it can keep training.
//
// The training-step clock becomes the sum of the inputs' steps, and the
// eviction stamps — meaningful only within one model's clock — are remapped
// to their rank in the combined (stamp, input order) ordering, preserving
// relative recency per input and the uniqueness the eviction tie-break
// relies on. cfg supplies the fused model's configuration (its capacity is
// enforced immediately); every input must match its dimensionality.
func Fuse(cfg Config, ms ...*Model) (*Model, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: Fuse needs at least one model", ErrBadConfig)
	}
	var entries []fuseEntry
	steps := 0
	for i, src := range ms {
		if src.cfg.Dim != cfg.Dim {
			return nil, fmt.Errorf("%w: model %d has dim %d, fuse config has %d", ErrDimension, i, src.cfg.Dim, cfg.Dim)
		}
		src.mu.Lock()
		steps += src.steps
		for slot, l := range src.llms {
			if l == nil { // tombstoned by eviction
				continue
			}
			entries = append(entries, fuseEntry{l: l.clone(), stamp: src.store.stamp(slot)})
		}
		src.mu.Unlock()
	}
	// Remap stamps to ranks of the stable (stamp, concatenation index)
	// order: unique by construction, and ≤ the summed step clock (each
	// input's live count is bounded by its steps).
	rank := make([]int, len(entries))
	for i := range rank {
		rank[i] = i
	}
	slices.SortStableFunc(rank, func(a, b int) int {
		if d := entries[a].stamp - entries[b].stamp; d != 0 {
			return d
		}
		return a - b
	})
	for r, i := range rank {
		entries[i].stamp = r + 1
	}
	return assembleModel(cfg, steps, entries)
}

// Split partitions a model's live prototypes into n new models by the
// assign function, which maps each prototype (centre, radius) to a group in
// [0, n). Each child owns deep copies of its prototypes' full writer state
// — coefficients, win counts, stamps, RLS matrices — in the parent's slot
// order, inherits the parent's step clock (so stamps stay valid), and
// starts unconverged so it keeps absorbing its region's stream. The parent
// is read under its writer lock and left untouched; cfg comes from the
// parent's current configuration.
func Split(m *Model, n int, assign func(center []float64, theta float64) int) ([]*Model, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: Split needs a positive group count, got %d", ErrBadConfig, n)
	}
	cfg := m.Config()
	groups := make([][]fuseEntry, n)
	m.mu.Lock()
	steps := m.steps
	for slot, l := range m.llms {
		if l == nil {
			continue
		}
		g := assign(l.CenterPrototype, l.ThetaPrototype)
		if g < 0 || g >= n {
			m.mu.Unlock()
			return nil, fmt.Errorf("core: Split assign sent prototype %d to group %d of %d", slot, g, n)
		}
		groups[g] = append(groups[g], fuseEntry{l: l.clone(), stamp: m.store.stamp(slot)})
	}
	m.mu.Unlock()
	out := make([]*Model, n)
	for i := range out {
		child, err := assembleModel(cfg, steps, groups[i])
		if err != nil {
			return nil, err
		}
		out[i] = child
	}
	return out, nil
}
