package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Solver selects how the per-prototype LLM coefficients (y_k, b_k) are
// estimated from the stream of winning pairs. Both solvers minimize the same
// conditional EPE objective H of Eq. (8).
type Solver int

const (
	// SolverRLS estimates the coefficients with per-prototype recursive
	// least squares: the exact sequential solution of the local EPE, at
	// O((d+2)²) state per prototype. It is the library default because the
	// first-order SGD rule needs far more queries than a typical training
	// stream provides before the local slopes converge.
	SolverRLS Solver = iota
	// SolverSGD applies the paper's Theorem 4 update rule verbatim
	// (first-order SGD with the configured learning-rate schedule).
	SolverSGD
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverRLS:
		return "rls"
	case SolverSGD:
		return "sgd"
	default:
		return "unknown"
	}
}

// Config configures an LLM model.
type Config struct {
	// Dim is the input dimensionality d (query vectors live in R^(d+1)).
	Dim int
	// ResolutionA is the quantization coefficient a ∈ (0, 1] from which the
	// vigilance ρ = a(√d + 1) is derived (Section IV). The paper's default
	// is 0.25.
	ResolutionA float64
	// Vigilance overrides the derived ρ when positive; leave at 0 to use
	// ResolutionA.
	Vigilance float64
	// Gamma is the convergence threshold γ for the training termination
	// criterion Γ = max(Γ^J, Γ^H) ≤ γ. The paper's default is 0.01.
	Gamma float64
	// Schedule is the SGD learning-rate schedule; nil selects the paper's
	// hyperbolic schedule η_t = 1/(t+1).
	Schedule Schedule
	// InitInterceptWithAnswer controls how a newly spawned prototype's local
	// intercept y_K is initialized. The paper's Algorithm 1 initializes it to
	// zero; initializing with the observed answer (the default here) is a
	// conservative refinement that speeds convergence with a decaying global
	// learning rate and is recorded as a substitution in DESIGN.md. Set to
	// false for strict paper behaviour.
	InitInterceptWithAnswer bool
	// RateByPrototype applies the learning-rate schedule to each prototype's
	// own win count instead of the global step counter. The paper states a
	// single global schedule η_t = 1/(t+1); with a growing prototype set that
	// starves prototypes spawned late in the stream, so the default here
	// (set by DefaultConfig) is the standard per-prototype AVQ schedule.
	// Both satisfy the Robbins–Monro conditions; the difference is measured
	// by the learning-rate ablation benchmark.
	RateByPrototype bool
	// CoefficientSolver selects how the LLM coefficients are learned; see
	// Solver. The zero value is SolverRLS.
	CoefficientSolver Solver
	// MinGammaSteps is the minimum number of training pairs consumed before
	// the termination criterion may fire (the criterion is meaningless while
	// K is still growing from a cold start). Values <= 0 default to 100.
	MinGammaSteps int
	// ConvergenceWindow is the number of consecutive steps for which
	// Γ ≤ γ must hold before training terminates. A single SGD step can have
	// an arbitrarily small parameter change simply because its residual was
	// small, so requiring a run of quiet steps makes the stopping rule a
	// faithful, robust reading of the paper's "Γ is (stochastically) trapped"
	// observation. Values <= 0 default to 25.
	ConvergenceWindow int
	// MaxPrototypes, when positive, caps the live prototype count K:
	// whenever a spawn pushes K past the cap, the lowest-scoring prototypes
	// under the Eviction policy are evicted (or merged, see MergeOnEvict)
	// until K is back inside a small hysteresis band below the cap, so
	// evictions batch and the epoch rebuild they trigger amortizes. The cap
	// is what keeps a model serving a non-stationary stream bounded: stale
	// prototypes are retired instead of accumulating forever. Zero means
	// unbounded (the paper's setting). A model that intends to track drift
	// indefinitely should also keep the termination criterion from freezing
	// it (e.g. a very small Gamma or a large MinGammaSteps), since a
	// converged model ignores further observations.
	MaxPrototypes int
	// Eviction ranks prototypes for eviction when MaxPrototypes is
	// exceeded; lowest score goes first. nil defaults to WinDecay with a
	// half-life derived from the capacity. See EvictionPolicy.
	Eviction EvictionPolicy
	// MergeOnEvict folds each victim into its nearest surviving prototype
	// (win-weighted centroid in the query space, win-weighted blend of the
	// local linear coefficients) instead of discarding it — the gentler
	// alternative that keeps the victim's learned mass in the model at the
	// cost of smearing its neighbour.
	MergeOnEvict bool
}

// DefaultConfig returns the paper's default parameters for input
// dimensionality d: a = 0.25, γ = 0.01, hyperbolic learning rate.
func DefaultConfig(dim int) Config {
	return Config{
		Dim:                     dim,
		ResolutionA:             0.25,
		Gamma:                   0.01,
		Schedule:                Hyperbolic{},
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
	}
}

// validate normalizes and checks the configuration.
func (c Config) validate() (Config, error) {
	if c.Dim <= 0 {
		return c, fmt.Errorf("%w: Dim must be positive, got %d", ErrBadConfig, c.Dim)
	}
	if c.Vigilance <= 0 {
		if c.ResolutionA <= 0 || c.ResolutionA > 1 {
			return c, fmt.Errorf("%w: ResolutionA %v outside (0,1]", ErrBadConfig, c.ResolutionA)
		}
		c.Vigilance = c.ResolutionA * (math.Sqrt(float64(c.Dim)) + 1)
	}
	if c.Gamma <= 0 {
		return c, fmt.Errorf("%w: Gamma must be positive, got %v", ErrBadConfig, c.Gamma)
	}
	if c.Schedule == nil {
		c.Schedule = Hyperbolic{}
	}
	if c.MinGammaSteps <= 0 {
		c.MinGammaSteps = 100
	}
	if c.ConvergenceWindow <= 0 {
		c.ConvergenceWindow = 25
	}
	if c.MaxPrototypes < 0 {
		return c, fmt.Errorf("%w: MaxPrototypes must be non-negative, got %d", ErrBadConfig, c.MaxPrototypes)
	}
	if c.MaxPrototypes > 0 {
		c.Eviction = normalizeEviction(c.Eviction, c.MaxPrototypes)
	}
	return c, nil
}

// Model is the trained (or in-training) query-driven LLM model.
//
// A Model is safe for concurrent use, and its read side is lock-free: every
// prediction method (PredictMean, Regression, PredictValue, Winner,
// Neighborhood, PredictBatch, Save and the accessors) answers from an
// immutable storeSnapshot obtained with one atomic pointer load — no mutex,
// no reader/writer contention, no blocking behind a training stream.
// Observe/Train/TrainBatch serialize on a writer mutex, build the next
// version, and publish it with one atomic store. Versions share their row
// chunks copy-on-write (see protoStore): publishing after one training pair
// copies the chunk the winner row lives in and the chunk-pointer tables,
// not the K×(d+1) matrices, so a live training stream publishes every step
// at O(touched rows) no matter how large the prototype set has grown. Use
// View to pin one version across several calls; see View for the
// zero-downtime model-swap pattern.
type Model struct {
	cfg  Config
	snap atomic.Pointer[storeSnapshot] // published serving state

	// capCfg is the single source of truth for the three runtime-mutable
	// Config fields (MaxPrototypes, Eviction, MergeOnEvict): SetCapacity
	// replaces it with one atomic store, and every reader — the lock-free
	// Save/Config as well as the writer-side eviction path — loads it with
	// one atomic load. cfg itself is immutable after NewModel (its capacity
	// fields only record the constructor-time values), which is what lets
	// Config copy it without a lock.
	capCfg atomic.Pointer[capacityConfig]

	mu         sync.Mutex  // guards everything below (the writer state)
	llms       []*LLM      // authoritative training state (solver matrices)
	store      *protoStore // contiguous [x_k, θ_k] + coefficient mirrors
	steps      int         // training pairs consumed
	converged  bool        // termination criterion reached
	lastGamma  float64     // most recent Γ value
	quietSteps int         // consecutive steps with Γ ≤ γ
	zbuf       []float64   // RLS regressor scratch (writer-locked)
	pzbuf      []float64   // RLS gain scratch (writer-locked)
}

// TrainingPair is one observed (query, answer) pair from the stream T.
type TrainingPair struct {
	Query  Query
	Answer float64
}

// StepInfo reports what one training step did; the experiment harness uses
// the Γ trace to reproduce Figure 6.
type StepInfo struct {
	// Step is the 1-based index of the consumed pair.
	Step int
	// Winner is the prototype index that absorbed the pair.
	Winner int
	// Created is true when the pair spawned a new prototype.
	Created bool
	// Evicted is the number of prototypes evicted (or merged away) by this
	// step's capacity enforcement; zero for unbounded models.
	Evicted int
	// GammaJ and GammaH are the per-step parameter drifts of the
	// quantization and regression parameters.
	GammaJ float64
	GammaH float64
	// Gamma is max(GammaJ, GammaH).
	Gamma float64
	// K is the number of live prototypes after the step.
	K int
	// Converged is true once the termination criterion has fired.
	Converged bool
}

// capacityConfig is the atomically published mirror of the runtime-mutable
// capacity fields of Config; see Model.capCfg.
type capacityConfig struct {
	max    int
	policy EvictionPolicy
	merge  bool
}

// NewModel creates an untrained model.
func NewModel(cfg Config) (*Model, error) {
	c, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	m := &Model{cfg: c, store: newProtoStore(c.Dim, c.Vigilance)}
	m.capCfg.Store(&capacityConfig{max: c.MaxPrototypes, policy: c.Eviction, merge: c.MergeOnEvict})
	m.publishLocked() // the empty version, so reads never see a nil snapshot
	return m, nil
}

// publishLocked builds and installs the next immutable serving snapshot.
// The caller holds the writer lock (or, during construction/Load, is the
// sole owner of the model).
func (m *Model) publishLocked() {
	m.snap.Store(m.store.publish(m.cfg.Dim, m.steps, m.converged, m.lastGamma, m.quietSteps))
}

// View pins the current published model version: every method of the
// returned View answers from that version, unaffected by concurrent
// training. Views are one pointer wide — take a fresh one per request for
// the latest version, or hold one to serve a consistent batch.
func (m *Model) View() View { return View{s: m.snap.Load()} }

// Config returns the normalized configuration (with the derived vigilance).
// The capacity fields reflect any runtime SetCapacity calls; the read is
// lock-free.
func (m *Model) Config() Config {
	cfg := m.cfg // immutable after NewModel; capacity fields overlaid below
	cc := m.capCfg.Load()
	cfg.MaxPrototypes = cc.max
	cfg.Eviction = cc.policy
	cfg.MergeOnEvict = cc.merge
	return cfg
}

// K returns the current number of prototypes/LLMs.
func (m *Model) K() int { return m.View().K() }

// Steps returns how many training pairs the model has consumed.
func (m *Model) Steps() int { return m.View().Steps() }

// Converged reports whether the termination criterion has fired.
func (m *Model) Converged() bool { return m.View().Converged() }

// LastGamma returns the most recent value of the termination criterion Γ.
func (m *Model) LastGamma() float64 { return m.View().LastGamma() }

// LLM returns a deep copy of the live local linear mapping in slot k —
// the id Winner and StepInfo.Winner report — or nil when the slot is
// tombstoned or out of range. For bounded models this is the correct way
// to correlate a winner id with its mapping: LLMs() compacts tombstoned
// slots away, so its indices do not line up with slot ids once eviction
// has run.
func (m *Model) LLM(k int) *LLM {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k < 0 || k >= len(m.llms) || m.llms[k] == nil {
		return nil
	}
	return m.llms[k].clone()
}

// LLMs returns deep copies of the live trained local linear mappings,
// including their solver state, in slot order (tombstoned slots of a
// bounded model are skipped, so for an unbounded model index i is
// prototype i — for a bounded model use LLM(slot) to resolve a winner id).
// Unlike the prediction methods it reads the authoritative training
// objects, so it serializes with the writer.
func (m *Model) LLMs() []*LLM {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*LLM, 0, m.store.live)
	for _, l := range m.llms {
		if l == nil {
			continue
		}
		out = append(out, l.clone())
	}
	return out
}

// Observe consumes one training pair, applying the joint AVQ/SGD update of
// Theorem 4, and reports the step outcome. After the model has converged
// further observations are ignored (Algorithm 1 freezes the parameter set α).
func (m *Model) Observe(q Query, answer float64) (StepInfo, error) {
	if q.Dim() != m.cfg.Dim {
		return StepInfo{}, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, q.Dim(), m.cfg.Dim)
	}
	if math.IsNaN(answer) || math.IsInf(answer, 0) {
		return StepInfo{}, fmt.Errorf("core: non-finite training answer %v", answer)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	frozen := m.converged
	info := m.observeLocked(q, answer)
	if !frozen {
		// Publish the new version; a frozen model mutated nothing.
		m.publishLocked()
	}
	return info, nil
}

// observeLocked applies one training step. The caller holds the write lock
// and has validated the pair.
func (m *Model) observeLocked(q Query, answer float64) StepInfo {
	if m.converged {
		return StepInfo{
			Step: m.steps, Gamma: m.lastGamma, GammaJ: 0, GammaH: 0,
			K: m.store.live, Converged: true,
		}
	}
	m.steps++
	info := StepInfo{Step: m.steps, K: m.store.live}

	// Cold start: the first pair becomes prototype w_1.
	if m.store.live == 0 {
		m.llms = append(m.llms, newLLM(q, m.initIntercept(answer)))
		m.store.add(q.Center, q.Theta)
		m.store.syncCoef(0, m.llms[0])
		m.store.setStamp(0, m.steps)
		info.Created = true
		info.Winner = 0
		info.K = 1
		info.Gamma = math.Inf(1)
		info.GammaJ = math.Inf(1)
		info.GammaH = math.Inf(1)
		m.lastGamma = info.Gamma
		m.quietSteps = 0
		return info
	}

	// Find the winning prototype under the query-space L2 distance.
	winner, dist := m.store.winnerQuery(q)
	rateStep := m.steps
	if m.cfg.RateByPrototype {
		rateStep = m.llms[winner].Wins
	}
	eta := m.cfg.Schedule.Rate(rateStep)

	if dist > m.cfg.Vigilance {
		// Spawn a new prototype at the query (Algorithm 1, else branch). The
		// store picks the slot: a reused tombstone when one is free, the
		// appended tail otherwise.
		l := newLLM(q, m.initIntercept(answer))
		slot := m.store.spawn(q.Center, q.Theta)
		if slot == len(m.llms) {
			m.llms = append(m.llms, l)
		} else {
			m.llms[slot] = l
		}
		m.store.syncCoef(slot, l)
		m.store.setStamp(slot, m.steps)
		info.Created = true
		info.Winner = slot
		// Bounded capacity: a spawn that pushes the live count past the cap
		// evicts (or merges) the lowest-scoring prototypes, protecting the
		// slot that just spawned. The cap lives in the capCfg mirror
		// (runtime-mutable via SetCapacity); m.cfg stays immutable.
		if cc := m.capCfg.Load(); cc.max > 0 && m.store.live > cc.max {
			info.Evicted = m.evictLocked(slot)
		}
		info.K = m.store.live
		// A growth step changes the parameter-set cardinality; Γ is reported
		// as +Inf so the criterion cannot fire while K is still growing.
		info.Gamma = math.Inf(1)
		info.GammaJ = math.Inf(1)
		info.GammaH = math.Inf(1)
		m.lastGamma = info.Gamma
		m.quietSteps = 0
		return info
	}

	// Joint SGD update of the winner (Theorem 4). All three update rules use
	// the displacement (q − w_j) of the pre-update prototype.
	l := m.llms[winner]
	residual := l.Residual(q.Center, q.Theta, answer)
	diffX := q.Center.Sub(l.CenterPrototype)
	diffTheta := q.Theta - l.ThetaPrototype

	var gammaJ, gammaH float64
	// Δw_j = η (q − w_j): move the prototype toward the query.
	for i := range l.CenterPrototype {
		d := eta * diffX[i]
		l.CenterPrototype[i] += d
		gammaJ += d * d
	}
	dTheta := eta * diffTheta
	l.ThetaPrototype += dTheta
	gammaJ += dTheta * dTheta
	gammaJ = math.Sqrt(gammaJ)
	// The prototype drifted: sync its row in the flat store (and its grid
	// cell, when the move crossed a cell boundary).
	m.store.update(winner, l.CenterPrototype, l.ThetaPrototype)

	switch m.cfg.CoefficientSolver {
	case SolverSGD:
		// Δb_j = η·residual·(q − w_j).
		var db float64
		for i := range l.SlopeX {
			d := eta * residual * diffX[i]
			l.SlopeX[i] += d
			db += d * d
		}
		dbTheta := eta * residual * diffTheta
		l.SlopeTheta += dbTheta
		db += dbTheta * dbTheta
		// Δy_j = η·residual.
		dy := eta * residual
		l.Intercept += dy
		gammaH = math.Sqrt(db) + math.Abs(dy)
	default: // SolverRLS
		n := q.Dim() + 2
		if cap(m.zbuf) < n {
			m.zbuf = make([]float64, n)
			m.pzbuf = make([]float64, n)
		}
		z := m.zbuf[:n]
		z[0] = 1
		copy(z[1:], diffX)
		z[len(z)-1] = diffTheta
		gammaH = l.rlsUpdate(z, m.pzbuf[:n], residual)
	}

	l.Wins++
	m.store.syncCoef(winner, l)
	m.store.setStamp(winner, m.steps)
	info.Winner = winner
	info.GammaJ = gammaJ
	info.GammaH = gammaH
	info.Gamma = math.Max(gammaJ, gammaH)
	info.K = m.store.live
	m.lastGamma = info.Gamma

	if info.Gamma <= m.cfg.Gamma {
		m.quietSteps++
	} else {
		m.quietSteps = 0
	}
	if m.steps >= m.cfg.MinGammaSteps && m.quietSteps >= m.cfg.ConvergenceWindow {
		m.converged = true
		info.Converged = true
	}
	return info
}

func (m *Model) initIntercept(answer float64) float64 {
	if m.cfg.InitInterceptWithAnswer {
		return answer
	}
	return 0
}

// Winner returns the index of the prototype closest to q in the query space
// (the winner of Eq. 5, i.e. the LLM whose Voronoi cell q falls in) and the
// query-space distance to it.
func (m *Model) Winner(q Query) (int, float64, error) {
	return m.View().Winner(q)
}

// TrainingResult summarizes a Train run.
type TrainingResult struct {
	// Steps is the number of pairs consumed.
	Steps int
	// K is the final number of prototypes.
	K int
	// Converged is true when the termination criterion fired before the
	// stream was exhausted.
	Converged bool
	// FinalGamma is the last Γ value observed.
	FinalGamma float64
	// GammaTrace holds Γ after every step (Figure 6's y-axis).
	GammaTrace []float64
}

// Train consumes pairs in order until the termination criterion fires or the
// stream is exhausted (Algorithm 1). The write lock is taken per step, so
// concurrent readers interleave with a live training stream; use TrainBatch
// for bulk ingestion that should not yield between steps.
func (m *Model) Train(pairs []TrainingPair) (TrainingResult, error) {
	res := TrainingResult{GammaTrace: make([]float64, 0, len(pairs))}
	for _, p := range pairs {
		info, err := m.Observe(p.Query, p.Answer)
		if err != nil {
			return res, err
		}
		res.GammaTrace = append(res.GammaTrace, info.Gamma)
		if info.Converged {
			break
		}
	}
	s := m.snap.Load()
	res.Steps = s.steps
	res.K = s.live
	res.Converged = s.converged
	res.FinalGamma = s.lastGamma
	return res, nil
}

// TrainBatch consumes pairs like Train but under a single writer-lock
// acquisition and a single snapshot publication. The paper's joint AVQ/SGD
// update is inherently sequential — step t+1's winner depends on step t's
// drift — so batching does not change the math; it amortizes both the
// synchronization and the copy-on-write publication cost (each chunk is
// copied at most once for the whole batch, however many of its rows the
// batch touches), which makes it the preferred bulk-ingestion path. Concurrent readers keep answering from the previous
// published version for the duration and atomically see the post-batch
// model afterwards — a zero-downtime retrain. Pairs are validated before
// any step is applied.
func (m *Model) TrainBatch(pairs []TrainingPair) (TrainingResult, error) {
	res := TrainingResult{GammaTrace: make([]float64, 0, len(pairs))}
	for _, p := range pairs {
		if p.Query.Dim() != m.cfg.Dim {
			return res, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, p.Query.Dim(), m.cfg.Dim)
		}
		if math.IsNaN(p.Answer) || math.IsInf(p.Answer, 0) {
			return res, fmt.Errorf("core: non-finite training answer %v", p.Answer)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range pairs {
		info := m.observeLocked(p.Query, p.Answer)
		res.GammaTrace = append(res.GammaTrace, info.Gamma)
		if info.Converged {
			break
		}
	}
	m.publishLocked()
	res.Steps = m.steps
	res.K = m.store.live
	res.Converged = m.converged
	res.FinalGamma = m.lastGamma
	return res, nil
}

// PredictBatch answers many Q1 mean-value queries with a bounded worker
// pool: queries are validated up front, then min(GOMAXPROCS, len(queries))
// workers drain them over one pinned model version — the whole batch is
// answered from a single published snapshot, so the results are mutually
// consistent even while training streams in concurrently. Results are
// positional. The per-query cost is independent of the data size (the
// paper's central property), so batching exists purely to saturate cores
// under heavy query traffic, not to amortize data access.
func (m *Model) PredictBatch(queries []Query) ([]float64, error) {
	v := m.View()
	if v.K() == 0 {
		return nil, ErrNotTrained
	}
	for _, q := range queries {
		if q.Dim() != m.cfg.Dim {
			return nil, fmt.Errorf("%w: query dim %d, model dim %d", ErrDimension, q.Dim(), m.cfg.Dim)
		}
	}

	out := make([]float64, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			y, err := v.PredictMean(q)
			if err != nil {
				return nil, err
			}
			out[i] = y
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				y, err := v.PredictMean(queries[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				out[i] = y
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// PredictMean answers a Q1 mean-value query (Algorithm 2): the predicted
// average of the output attribute over D(x, θ), computed purely from the
// trained LLMs without data access.
func (m *Model) PredictMean(q Query) (float64, error) {
	return m.View().PredictMean(q)
}

// Regression answers a Q2 linear-regression query (Algorithm 3): the list S
// of local linear models (intercept, slope) that approximate the data
// function g over D(x, θ). Overlapping prototypes contribute one model each;
// when no prototype overlaps, the closest prototype's model is returned by
// extrapolation (Case 3).
func (m *Model) Regression(q Query) ([]LocalLinear, error) {
	return m.View().Regression(q)
}

// PredictValue predicts the data value û ≈ g(x) for a point x inside the
// subspace addressed by the query q = [x0, θ] (Eq. 14): the overlap-weighted
// fusion of the neighbouring LLMs evaluated at their own prototype radii.
func (m *Model) PredictValue(q Query, x []float64) (float64, error) {
	return m.View().PredictValue(q, x)
}

// PredictValueAt is a convenience wrapper for predicting g(x) with the query
// centred at x itself and the given radius.
func (m *Model) PredictValueAt(x []float64, theta float64) (float64, error) {
	q, err := NewQuery(x, theta)
	if err != nil {
		return 0, err
	}
	return m.PredictValue(q, x)
}

// Neighborhood exposes the overlap set W(q) for diagnostics: the prototype
// queries that overlap q and their normalized weights.
func (m *Model) Neighborhood(q Query) ([]Query, []float64, error) {
	return m.View().Neighborhood(q)
}
