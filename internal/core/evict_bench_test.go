package core

import (
	"fmt"
	"testing"
)

// BenchmarkStreamingEviction measures the bounded store's claim to fame:
// serving cost stays flat no matter how far past the capacity the training
// stream runs. For each query-space width (grid and k-d tree epochs) a
// capped model ingests a drifting stream of 1×, 10× and 100× its capacity,
// then three costs are sampled in that steady state:
//
//   - read: PredictMean latency over probes around the stream's current
//     window — must not grow with the stream length (the tombstone/slot-
//     reuse machinery keeps the row space, and hence every scan and epoch,
//     bounded by the capacity);
//   - observe: one more streaming pair, spawn/evict churn amortized in;
//   - rebuild: one forced epoch rebuild over the bounded survivor set.
//
// The d=2 workload runs both hard eviction and merge-on-evict (merge adds
// one exact O(K·d) nearest-survivor scan per victim to the pass, amortized
// over the spawns that refill the hysteresis band — the observe numbers
// carry it).
//
// BENCH_5.json records the trajectory; scripts/bench.sh runs this with the
// other hot-path benchmarks.
func BenchmarkStreamingEviction(b *testing.B) {
	const capacity = 512
	vig := map[int]float64{2: 0.02, 5: 0.06}
	cases := []struct {
		dim   int
		merge bool
	}{{2, false}, {2, true}, {5, false}}
	for _, tc := range cases {
		dim := tc.dim
		mode := ""
		if tc.merge {
			mode = "-merge"
		}
		for _, mult := range []int{1, 10, 100} {
			cfg := DefaultConfig(dim)
			cfg.Vigilance = vig[dim]
			cfg.Gamma = 1e-12
			cfg.MinGammaSteps = 1 << 30
			cfg.MaxPrototypes = capacity
			cfg.Eviction = WinDecay{}
			cfg.MergeOnEvict = tc.merge
			m, err := NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			stream := newDriftStream(dim, 0.2, 3e-4, int64(500+dim))
			for i := 0; i < capacity*mult; i++ {
				q, y := stream.pair()
				if _, err := m.Observe(q, y); err != nil {
					b.Fatal(err)
				}
			}
			// Probes follow the stream's current window — the hot region a
			// drifting workload actually queries.
			probeSrc := newDriftStream(dim, 0.2, 3e-4, int64(700+dim))
			probeSrc.t = stream.t
			probes := make([]Query, 512)
			for i := range probes {
				probes[i] = probeSrc.next()
				probeSrc.t = stream.t // hold the window still
			}
			suffix := fmt.Sprintf("d=%d%s/stream=%dx", dim, mode, mult)
			b.Run("read/"+suffix, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := m.PredictMean(probes[i%len(probes)]); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("observe/"+suffix, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q, y := stream.pair()
					if _, err := m.Observe(q, y); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("rebuild/"+suffix, func(b *testing.B) {
				m.mu.Lock()
				for i := 0; i < b.N; i++ {
					m.store.rebuildEpoch()
				}
				m.mu.Unlock()
			})
		}
	}
}
