package core

import (
	"math"
	"sort"

	"llmq/internal/index"
	"llmq/internal/vector"
)

// protoStore is the cache-friendly read path of the model: every prototype
// w_k = [x_k, θ_k] is packed into one contiguous row-major matrix of K rows ×
// (d+1) columns, so the winner search of Eq. (5) scans flat memory with the
// unrolled squared-distance kernel instead of chasing K heap pointers and
// taking K square roots. For low-dimensional query spaces the store also
// maintains an incremental uniform grid over the prototypes (cell size = the
// vigilance ρ, the minimum spawn distance), which drops the winner search
// below O(K) once the prototype set is large.
//
// The store mirrors the authoritative per-LLM parameters: Observe updates
// the LLM (training math needs its solver state) and then syncs the moved
// prototype row here. All methods assume the caller holds the model lock.
type protoStore struct {
	width int       // d+1: [x..., θ]
	flat  []float64 // K rows × width, row-major
	grid  *index.DynamicGrid

	// The projection spine accelerates the flat path in query spaces too
	// wide for the grid: prototypes are kept sorted by their projection onto
	// the diagonal (the component sum), with the rows themselves copied into
	// spineFlat in that order so a winner search scans one contiguous window
	// around the query's projection. By Cauchy–Schwarz the projections of
	// two points differ by at most √w times their L2 distance, so once the
	// projection gap to the running best exceeds √w·bestDist the remaining
	// rows on that side cannot win and the scan stops — typically after a
	// fraction of K.
	//
	// Between rebuilds the spine is stale: prototypes drift and new ones are
	// appended. Staleness never breaks exactness. Appended rows live in the
	// contiguous tail of flat and are scanned separately, and every pruning
	// bound is widened by the worst per-prototype displacement since the
	// last build (maxDrift): a row's live distance is at least its stale
	// distance minus its drift, so a row pruned under the widened bound
	// cannot have won, and surviving candidates are verified against the
	// live rows. Rebuilds happen on the write path once the tail or the
	// drift grows past its threshold, amortizing to O(log K) per step.
	spineProj   []float64 // sorted stale projections, built rows only
	spineIDs    []int     // prototype ids, parallel to spineProj
	spineFlat   []float64 // stale row copies in spineProj order
	spineBuiltK int       // prototype count at the last rebuild
	drift       []float64 // per-built-row displacement since the last rebuild
	maxDrift    float64   // max over drift
	vigilance   float64   // rebuild threshold scale (the prototype spacing)
}

const (
	// storeGridMaxWidth bounds the query-space dimensionality (d+1) for
	// which the ring-expanding grid search is profitable; above it the ring
	// enumeration outgrows the flat scan and the store falls back to the
	// unrolled linear kernel.
	storeGridMaxWidth = 4
	// storeGridMinK is the prototype count below which the flat scan beats
	// the grid's hashing overhead.
	storeGridMinK = 64
	// storeSpineMinK is the prototype count below which the plain flat scan
	// beats the spine's binary search and window bookkeeping.
	storeSpineMinK = 128
)

func newProtoStore(dim int, vigilance float64) *protoStore {
	s := &protoStore{width: dim + 1, vigilance: vigilance}
	if s.width <= storeGridMaxWidth {
		// Cell side = 2ρ: prototypes are at least ρ apart, so a cell holds
		// only a handful of them and the winner is almost always found in
		// ring 0 or 1 — few bucket lookups, each verifying a few candidates
		// with the flat kernel. The constructor only rejects non-positive /
		// non-finite cell sizes, which Config validation has already
		// excluded.
		if g, err := index.NewDynamicGrid(s.width, 2*vigilance); err == nil {
			s.grid = g
		}
	}
	return s
}

// k returns the number of stored prototypes.
func (s *protoStore) k() int { return len(s.flat) / s.width }

// row returns the k-th prototype row [x_k..., θ_k].
func (s *protoStore) row(k int) []float64 {
	return s.flat[k*s.width : (k+1)*s.width]
}

// add appends a prototype row and mirrors it into the grid. The new row
// joins the spine's tail until the next rebuild.
func (s *protoStore) add(center vector.Vec, theta float64) {
	s.flat = append(s.flat, center...)
	s.flat = append(s.flat, theta)
	if s.grid != nil {
		// Insert cannot fail: the row width matches the grid dimension by
		// construction.
		_, _ = s.grid.Insert(s.row(s.k() - 1))
	} else {
		s.maybeRebuildSpine()
	}
}

// update syncs the k-th row after a prototype drift step, accounting the
// displacement against the spine's staleness budget.
func (s *protoStore) update(k int, center vector.Vec, theta float64) {
	row := s.row(k)
	if s.grid == nil && k < s.spineBuiltK {
		move := math.Sqrt(vector.SqDistanceFlat(row[:s.width-1], center) +
			(row[s.width-1]-theta)*(row[s.width-1]-theta))
		s.drift[k] += move
		if s.drift[k] > s.maxDrift {
			s.maxDrift = s.drift[k]
		}
	}
	copy(row, center)
	row[s.width-1] = theta
	if s.grid != nil {
		_ = s.grid.Update(k, row)
	} else {
		s.maybeRebuildSpine()
	}
}

// maybeRebuildSpine rebuilds once the un-indexed tail reaches an eighth of
// the prototype set or the accumulated drift becomes comparable to the
// prototype spacing. Called on the write path only, so readers always see a
// consistent (if slightly stale) spine.
func (s *protoStore) maybeRebuildSpine() {
	k := s.k()
	if k < storeSpineMinK {
		return
	}
	if (k-s.spineBuiltK)*8 >= k || s.maxDrift > s.vigilance/4 {
		s.rebuildSpine()
	}
}

// projection is the spine coordinate: the component sum, i.e. the (scaled)
// projection onto the unit diagonal. By Cauchy–Schwarz,
// |sum(a) − sum(b)| ≤ √w·‖a−b‖₂, so points close in the query space are
// necessarily close in projection.
func projection(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v
	}
	return s
}

// rebuildSpine re-sorts all prototypes by their current projection and
// snapshots their rows in that order.
func (s *protoStore) rebuildSpine() {
	k := s.k()
	w := s.width
	if cap(s.spineProj) < k {
		s.spineProj = make([]float64, 0, 2*k)
		s.spineIDs = make([]int, 0, 2*k)
		s.spineFlat = make([]float64, 0, 2*k*w)
		s.drift = make([]float64, 0, 2*k)
	}
	s.spineProj = s.spineProj[:k]
	s.spineIDs = s.spineIDs[:k]
	s.spineFlat = s.spineFlat[:k*w]
	s.drift = s.drift[:k]
	proj := make([]float64, k)
	for i := 0; i < k; i++ {
		s.spineIDs[i] = i
		proj[i] = projection(s.row(i))
		s.drift[i] = 0
	}
	sort.Slice(s.spineIDs, func(a, b int) bool { return proj[s.spineIDs[a]] < proj[s.spineIDs[b]] })
	for i, id := range s.spineIDs {
		s.spineProj[i] = proj[id]
		copy(s.spineFlat[i*w:(i+1)*w], s.row(id))
	}
	s.spineBuiltK = k
	s.maxDrift = 0
}

// storeSpineProbe is how many spine rows around the query's projection are
// verified up front to seed the window cutoff.
const storeSpineProbe = 16

// winnerSpine finds the exact winner through the projection spine in three
// steps. (1) Seed: the rows appended since the last rebuild (the contiguous
// tail of flat) are scanned exactly, and the storeSpineProbe spine rows
// whose projections bracket the query's are verified — projection proximity
// correlates with spatial proximity, so the seed distance is near-optimal.
// (2) Window: any row that could still beat the seed must have live
// distance ≤ seedDist, hence stale distance ≤ C := seedDist + maxDrift, and
// by Cauchy–Schwarz a stale projection within √w·C of the query's — one
// sorted-array search on each side bounds the candidate range. (3) Verify:
// the window's stale rows are scanned contiguously with the C² cutoff
// kernel, and the few survivors are checked against their live rows. Every
// bound carries the maxDrift slack, so prototype drift between rebuilds can
// widen the window but never hide the true winner.
func (s *protoStore) winnerSpine(qflat []float64) (int, float64) {
	w := s.width
	built := s.spineBuiltK
	slack := s.maxDrift
	best, bestSq := -1, math.Inf(1)
	if tail := s.flat[built*w:]; len(tail) > 0 {
		ti, tsq := vector.ArgminSqDistance(tail, w, qflat)
		if ti >= 0 {
			best, bestSq = built+ti, tsq
		}
	}
	qproj := projection(qflat)
	pos := sort.SearchFloat64s(s.spineProj[:built], qproj)
	plo, phi := pos-storeSpineProbe, pos+storeSpineProbe
	if plo < 0 {
		plo = 0
	}
	if phi > built {
		phi = built
	}
	// Probe the stale snapshots (contiguous memory — no gather through the
	// id table) and promote the best probe to a live seed: when nothing has
	// drifted the snapshot is the live row, otherwise one gather verifies
	// it.
	staleSeedSq, probeBest := math.Inf(1), -1
	for i := plo; i < phi; i++ {
		if sq := vector.SqDistanceFlat(s.spineFlat[i*w:(i+1)*w], qflat); sq < staleSeedSq {
			staleSeedSq, probeBest = sq, i
		}
	}
	if probeBest >= 0 {
		id := s.spineIDs[probeBest]
		if slack == 0 {
			if staleSeedSq < bestSq {
				best, bestSq = id, staleSeedSq
			}
		} else if sq := vector.SqDistanceFlat(s.row(id), qflat); sq < bestSq {
			best, bestSq = id, sq
		}
	}
	// The winner's stale distance overstates its live one by at most slack,
	// and its live distance is bounded by the (live) seed's.
	cutoff := math.Sqrt(bestSq) + slack
	cutoffSq := cutoff * cutoff
	radius := math.Sqrt(float64(w)) * cutoff
	lo := sort.SearchFloat64s(s.spineProj[:built], qproj-radius)
	hi := sort.SearchFloat64s(s.spineProj[:built], qproj+radius)
	if hi-lo >= built/2 {
		// The window prunes too little to beat a straight scan — the
		// workload has no projection locality here (e.g. near-uniform
		// prototypes in a wide query space, where 1-D projections
		// concentrate). The probes still pay for themselves: they seed the
		// flat scan's partial-distance cutoff.
		if best >= 0 {
			return vector.ArgminSqDistanceSeeded(s.flat, w, qflat, best, bestSq)
		}
		return vector.ArgminSqDistance(s.flat, w, qflat)
	}
	for i := lo; i < hi; i++ {
		staleSq, within := vector.SqDistanceWithin(s.spineFlat[i*w:(i+1)*w], qflat, cutoffSq)
		if !within {
			continue
		}
		id := s.spineIDs[i]
		if slack == 0 {
			// No prototype has moved since the rebuild: the stale row is
			// the live row.
			if staleSq < bestSq {
				best, bestSq = id, staleSq
			}
			continue
		}
		if sq := vector.SqDistanceFlat(s.row(id), qflat); sq < bestSq {
			best, bestSq = id, sq
		}
	}
	return best, bestSq
}

// winner returns the index of the prototype closest to the query-space point
// qflat = [x..., θ] and the squared L2 distance to it, using the grid when
// the prototype set is large enough for it to pay off. All paths verify
// candidates with the same unrolled kernel and return a true minimum: the
// grid and flat scans break ties toward the lowest index, while the spine
// keeps its seed on exact ties, so under ties the paths can return different
// (equidistant) winners — the distance, and hence the vigilance test, is
// identical either way.
func (s *protoStore) winner(qflat []float64) (int, float64) {
	if s.grid != nil && s.k() >= storeGridMinK {
		return s.grid.Nearest(qflat)
	}
	if s.spineBuiltK > 0 {
		return s.winnerSpine(qflat)
	}
	return vector.ArgminSqDistance(s.flat, s.width, qflat)
}

// winnerQuery is the Query-typed entry point: it assembles the query-space
// point on the stack and returns the winner index plus the true (root)
// distance used by the vigilance test.
func (s *protoStore) winnerQuery(q Query) (int, float64) {
	qflat := make([]float64, s.width)
	copy(qflat, q.Center)
	qflat[s.width-1] = q.Theta
	k, sq := s.winner(qflat)
	return k, math.Sqrt(sq)
}
