package core

import (
	"fmt"
	"math"

	"llmq/internal/index"
	"llmq/internal/vector"
)

// Chunk geometry, shared with the vector kernels that scan chunked matrices.
const (
	chunkShift = vector.ChunkShift
	chunkRows  = vector.ChunkRows
	chunkMask  = vector.ChunkMask
)

// protoStore is the writer-side serving state of the model: every prototype
// w_k = [x_k, θ_k] is packed into row-major chunks of chunkRows rows ×
// (d+1) columns, with parallel coefficient chunks of chunkRows × (d+2)
// columns mirroring each LLM's [y_k, b_{X,k}, b_{Θ,k}] and per-row win
// counts — everything a prediction needs, in cache-contiguous memory,
// without chasing the per-LLM training objects.
//
// The store mirrors the authoritative per-LLM parameters: Observe updates
// the LLM (training math needs its solver state) and then syncs the moved
// prototype row and coefficient row here. All methods assume the caller
// holds the model's writer lock; readers never touch the store — they read
// immutable storeSnapshot values published from it (see snapshot.go).
//
// # Chunked copy-on-write publication
//
// Publication used to copy the whole K×(d+1) and K×(d+2) matrices per
// Observe — O(K) for a step that touches one row. The store now keeps the
// rows in fixed-size chunks and shares unchanged chunks by pointer across
// versions:
//
//   - publish copies only the chunk-pointer table (⌈K/chunkRows⌉ slice
//     pointers) into the snapshot and marks every chunk shared;
//   - a write to row i of a shared chunk first copies that one chunk
//     (copy-on-write) — unless i was appended after the last publication
//     (i >= pubK), in which case no published reader can see the row and the
//     write lands in place;
//   - chunks are allocated at full capacity up front, so appending a row
//     never relocates a chunk another version is reading.
//
// One training pair therefore publishes in O(chunkRows·d + K/chunkRows):
// the winner-row chunk copy plus the pointer tables, independent of K for
// any realistic K. A spawn appends into the tail chunk in place (the row is
// invisible to every published k) and costs no copy at all.
//
// # The read epoch
//
// Sub-O(K) searches (the winner of Eq. 5 and the overlap set W(q) of Eq. 10)
// run against a readEpoch: an immutable index over a stale copy of the
// prototype rows, rebuilt periodically on the write path and shared by
// pointer between the store and every snapshot published since the rebuild.
// Width ≤ 4 query spaces get a uniform grid (cell side 2ρ — prototypes are
// at least ρ apart, so cells hold only a handful and ring expansion stops
// after one or two rings); wider spaces get a bulk-built implicit-layout
// k-d tree (median splits, ~32–64-row leaves stored contiguously, exact
// per-node bounding boxes — see index.BulkKDTree), whose box bounds keep
// discriminating where 1-D projections concentrate.
//
// Between rebuilds the epoch is stale: prototypes drift and new ones are
// appended. Staleness never breaks exactness. Appended rows live in the
// trailing chunks of the live matrix and are scanned separately, and every
// pruning bound is widened by the worst per-prototype displacement since the
// epoch was built (maxDrift): a row's live distance is at least its stale
// distance minus its drift, so a row pruned under the widened bound cannot
// have won, and surviving candidates are verified against the live rows.
// Rebuilds happen on the write path once the tail or the drift grows past
// its threshold, amortizing to O(log K) per step. Because an epoch is never
// mutated after it is built, snapshots share it without copying, exactly as
// they share unchanged row chunks.
//
// # The max-θ invariant
//
// maxTheta is an upper bound on every stored prototype radius θ_k,
// maintained incrementally: add and update max it with the incoming θ, so it
// is monotone between rebuilds (a θ that drifts back down can leave it
// loose, which costs search radius but never exactness), and each epoch
// rebuild recomputes it exactly. It turns the overlap test
// ‖x − x_k‖ ≤ θ + θ_k into a radius query: every overlapping prototype lies
// within θ + maxTheta of the query centre, hence within
// √((θ+maxTheta)² + max(θ, maxTheta)²) of [x, θ] in the query space.
// # Tombstones and slot reuse
//
// Bounded-capacity training (Config.MaxPrototypes) evicts prototypes, but a
// slot's index must stay valid forever: published snapshots share the chunk
// tables by pointer and identify prototypes by row index. An evicted slot is
// therefore tombstoned in place — its prototype row is masked to +Inf
// (vector.MaskRow, transparent to every distance kernel) with the θ column
// set to the −1 sentinel so tombstones are detectable — and pushed onto a
// free list; the next spawn reuses the slot instead of appending, so the row
// space stays bounded by the capacity plus the eviction hysteresis no matter
// how long the stream runs. Eviction rewrites only the victims' chunks
// (copy-on-write, like any other write) and installs one fresh epoch, so a
// snapshot pinned before the eviction keeps serving its own version of every
// row.
//
// Epochs built while tombstones exist index only the live slots, carrying
// the true slot ids through the grid/tree id-indirection; a freed slot
// reused before the next rebuild is missing from the epoch and is recorded
// in revived, which every search scans exactly — the same pattern as the
// appended tail. The liveness invariant: every slot an epoch indexes is live
// for that epoch's entire lifetime, because the only way a slot dies is an
// eviction, and eviction installs a new epoch before the writer lock is
// released.
type protoStore struct {
	chunkTable

	rows      int     // number of stored prototype slots (live + tombstoned)
	live      int     // live (non-tombstoned) prototypes K
	pubK      int     // rows at the last publication; rows >= pubK are unpublished
	vigilance float64 // rebuild threshold scale (the prototype spacing)

	// free holds tombstoned slots available for reuse; revived holds live
	// slots below the epoch's builtK that the epoch does not index (reused
	// after the build), scanned exactly by every search and cleared on
	// rebuild.
	free    []int32
	revived []int32

	// shared[c] records whether any published snapshot references chunk c —
	// a write to a published row of a shared chunk must copy the chunk
	// first.
	shared []bool

	epoch    *readEpoch // immutable, shared with published snapshots
	drift    []float64  // per-built-row displacement since the epoch build
	maxDrift float64    // max over drift
	maxTheta float64    // monotone upper bound on θ_k, tightened per rebuild

	qbuf     []float64 // winnerQuery scratch (single writer)
	kdstack  []int32   // k-d tree traversal scratch (single writer)
	staleBuf []float64 // rebuildEpoch stale-row gather scratch (single writer)
	idsBuf   []int32   // rebuildEpoch live-slot id gather scratch (single writer)
}

// chunkTable is the chunk-layout decoder shared by the writer-side store
// and every published snapshot, so the layout arithmetic exists exactly
// once. Each chunk is ONE allocation laid out as
// [chunkRows×width prototype rows][chunkRows×coefW coefficient rows]
// [chunkRows win counts][chunkRows last-win step stamps] (counts and stamps
// stored as float64 — exact below 2^53): a row's prototype, coefficients,
// win count and stamp dirty together on a winner update, so keeping them in
// one buffer makes the copy-on-write copy one allocation, and referencing
// chunks through *vector.Chunk makes publication copy one word per chunk.
// The prototype rows are the prefix, so the table doubles as the
// vector.Chunked view the argmin kernels scan. The stamps are the eviction
// policies' state: they ride the same copy-on-write versioning as the rows
// they describe, so a policy never scores a prototype against another
// version's clock.
type chunkTable struct {
	width int             // d+1: [x..., θ]
	coefW int             // d+2: [y, b_X..., b_Θ]
	dataC []*vector.Chunk // the chunk pointers
}

// tombstoneTheta is the θ-column sentinel of a tombstoned slot. Real radii
// are non-negative (NewQuery validates θ ≥ 0), so θ < 0 identifies a
// tombstone; the slot's input coordinates are masked to +Inf so the
// distance kernels exclude it without any branch (see vector.MaskRow).
const tombstoneTheta = -1

// chunkFloats is the size of one chunk allocation: prototype rows,
// coefficient rows, win counts and win stamps for chunkRows rows.
func (t *chunkTable) chunkFloats() int { return chunkRows * (t.width + t.coefW + 2) }

// row returns the k-th prototype row [x_k..., θ_k].
func (t *chunkTable) row(k int) []float64 {
	j := (k & chunkMask) * t.width
	return t.dataC[k>>chunkShift].Data[j : j+t.width]
}

// coefRow returns the k-th coefficient row [y_k, b_Xk..., b_Θk].
func (t *chunkTable) coefRow(k int) []float64 {
	j := chunkRows*t.width + (k&chunkMask)*t.coefW
	return t.dataC[k>>chunkShift].Data[j : j+t.coefW]
}

// win returns the k-th prototype's absorbed-pair count.
func (t *chunkTable) win(k int) int {
	return int(t.dataC[k>>chunkShift].Data[chunkRows*(t.width+t.coefW)+(k&chunkMask)])
}

// setWin stores the k-th prototype's absorbed-pair count.
func (t *chunkTable) setWin(k, wins int) {
	t.dataC[k>>chunkShift].Data[chunkRows*(t.width+t.coefW)+(k&chunkMask)] = float64(wins)
}

// stamp returns the training-step index at which the k-th prototype last
// absorbed a pair (its spawn step until it wins one) — the recency input of
// the eviction policies.
func (t *chunkTable) stamp(k int) int {
	return int(t.dataC[k>>chunkShift].Data[chunkRows*(t.width+t.coefW+1)+(k&chunkMask)])
}

// setStamp stores the k-th prototype's last-win step stamp. The caller must
// have made the chunk writable (every call site follows a syncCoef or an
// explicit writableChunk).
func (t *chunkTable) setStamp(k, step int) {
	t.dataC[k>>chunkShift].Data[chunkRows*(t.width+t.coefW+1)+(k&chunkMask)] = float64(step)
}

// isTombstone reports whether slot k has been evicted (θ sentinel < 0).
func (t *chunkTable) isTombstone(k int) bool {
	return t.row(k)[t.width-1] < 0
}

// readEpoch is one immutable generation of the search index: either a
// uniform grid or a bulk-built k-d tree over a stale copy of the first
// builtK prototype rows. It is built on the write path and never mutated,
// so the store and any number of published snapshots reference it
// concurrently without synchronization; each referencer pairs it with its
// own live chunk table and its own drift slack.
type readEpoch struct {
	builtK int
	width  int

	// inEpoch marks which slots below builtK the epoch indexes; nil means
	// all of them (no tombstones existed at build time). Only indexed
	// slots pay into the drift budget — a slot the epoch does not cover is
	// scanned exactly against its live row anyway, so its moves cannot
	// invalidate any pruning bound (and must not inflate the slack or
	// trigger spurious rebuilds).
	inEpoch []bool

	// grid indexes the stale rows for width ≤ storeGridMaxWidth.
	grid *index.DynamicGrid

	// tree indexes the stale rows for wider query spaces, where the grid's
	// ring enumeration outgrows the flat scan: an implicit-layout k-d tree
	// whose exact per-node bounding boxes keep discriminating as the width
	// grows (the 1-D projection spine that used to live here concentrated
	// at d=8 and pruned weakly — see PERFORMANCE.md).
	tree *index.BulkKDTree
}

const (
	// storeGridMaxWidth bounds the query-space dimensionality (d+1) for
	// which the ring-expanding grid search is profitable; above it the ring
	// enumeration outgrows the flat scan and the store uses the k-d tree
	// instead.
	storeGridMaxWidth = 4
	// storeGridMinK is the prototype count below which the flat scan beats
	// the grid's hashing overhead.
	storeGridMinK = 64
	// storeTreeMinK is the prototype count below which the plain flat scan
	// beats the k-d tree's node bookkeeping.
	storeTreeMinK = 128
)

func newProtoStore(dim int, vigilance float64) *protoStore {
	return &protoStore{
		chunkTable: chunkTable{width: dim + 1, coefW: dim + 2},
		vigilance:  vigilance,
	}
}

// k returns the number of stored prototype slots (live + tombstoned).
func (s *protoStore) k() int { return s.rows }

// liveView wraps the live chunk table for the chunk-iterating kernels (the
// prototype rows are each chunk's prefix). The view is three words —
// building one allocates nothing.
func (s *protoStore) liveView() vector.Chunked {
	return vector.NewChunked(s.width, s.rows, s.dataC)
}

// writableChunk makes the chunk holding row k writable, restoring the
// copy-on-write invariant: if the chunk is referenced by a published snapshot and
// row k is visible to it (k < pubK), the chunk — prototype rows, coefficient
// rows and win counts, one buffer — is first copied afresh. Rows appended
// since the last publication are invisible to every reader and are written
// in place even inside a shared chunk.
func (s *protoStore) writableChunk(k int) {
	ci := k >> chunkShift
	if !s.shared[ci] || k >= s.pubK {
		return
	}
	buf := make([]float64, s.chunkFloats())
	copy(buf, s.dataC[ci].Data)
	s.dataC[ci] = &vector.Chunk{Data: buf}
	s.shared[ci] = false
}

// appendChunk grows the table by one empty chunk, allocated at full
// capacity so later appends into it never move memory under a reader.
func (s *protoStore) appendChunk() {
	s.dataC = append(s.dataC, &vector.Chunk{Data: make([]float64, s.chunkFloats())})
	s.shared = append(s.shared, false)
}

// minEpochK is the prototype count below which no epoch is built and every
// search falls back to the flat scan.
func (s *protoStore) minEpochK() int {
	if s.width <= storeGridMaxWidth {
		return storeGridMinK
	}
	return storeTreeMinK
}

// add appends a prototype row (with a zeroed coefficient row — the caller
// syncs the LLM's coefficients right after). The new row joins the epoch's
// tail until the next rebuild, and stays invisible to published snapshots
// (their k precedes it), so the append costs no chunk copy.
func (s *protoStore) add(center vector.Vec, theta float64) {
	s.addRow(center, theta)
	s.maybeRebuildEpoch()
}

// addRow is add without the rebuild check — the bulk-ingestion primitive
// for callers that install one epoch themselves after many appends
// (compaction), mirroring the update/updateRow split.
func (s *protoStore) addRow(center vector.Vec, theta float64) {
	k := s.rows
	if k>>chunkShift == len(s.dataC) {
		s.appendChunk()
	}
	s.rows++
	s.live++
	row := s.row(k)
	copy(row, center)
	row[s.width-1] = theta
	if theta > s.maxTheta {
		s.maxTheta = theta
	}
}

// spawn stores a new prototype and returns its slot: a tombstoned slot from
// the free list when one exists (the write copy-on-writes the chunk like
// any published-row update, and the slot joins the revived list when the
// current epoch predates it), the appended tail otherwise. The caller syncs
// coefficients into the returned slot right after.
func (s *protoStore) spawn(center vector.Vec, theta float64) int {
	n := len(s.free)
	if n == 0 {
		s.add(center, theta)
		return s.rows - 1
	}
	k := int(s.free[n-1])
	s.free = s.free[:n-1]
	s.writableChunk(k)
	row := s.row(k)
	copy(row, center)
	row[s.width-1] = theta
	if theta > s.maxTheta {
		s.maxTheta = theta
	}
	s.live++
	if s.epoch != nil && k < s.epoch.builtK {
		s.revived = append(s.revived, int32(k))
	}
	s.maybeRebuildEpoch()
	return k
}

// evictSlot tombstones slot k in place: the prototype row is masked so
// every distance kernel excludes it (the θ column keeps the detectable −1
// sentinel), the coefficient mirror and policy state are zeroed, and the
// slot joins the free list for reuse. The write copy-on-writes the chunk,
// so snapshots published before the eviction keep serving the old row. The
// caller (the model's eviction pass) installs a fresh epoch before
// releasing the writer lock — the store's own searches never run against an
// epoch that indexes a tombstoned slot.
func (s *protoStore) evictSlot(k int) {
	s.writableChunk(k)
	row := s.row(k)
	vector.MaskRow(row[:s.width-1])
	row[s.width-1] = tombstoneTheta
	coef := s.coefRow(k)
	for i := range coef {
		coef[i] = 0
	}
	s.setWin(k, 0)
	s.setStamp(k, 0)
	s.live--
	s.free = append(s.free, int32(k))
}

// update syncs the k-th prototype row after a drift step, accounting the
// displacement against the epoch's staleness budget. This is the write that
// triggers copy-on-write: the winner row usually lives in a chunk shared
// with the last published version.
func (s *protoStore) update(k int, center vector.Vec, theta float64) {
	s.updateRow(k, center, theta)
	s.maybeRebuildEpoch()
}

// updateRow is update without the rebuild check: the eviction pass moves
// merge survivors by more than the drift threshold routinely, and paying a
// rebuild per merged victim would turn its single end-of-pass rebuild into
// O(victims) rebuilds — the pass accounts the drift here (exactness between
// writes is still covered by the widened bounds) and installs one fresh
// epoch when it finishes.
func (s *protoStore) updateRow(k int, center vector.Vec, theta float64) {
	row := s.row(k)
	if e := s.epoch; e != nil && k < e.builtK && (e.inEpoch == nil || e.inEpoch[k]) {
		move := math.Sqrt(vector.SqDistanceFlat(row[:s.width-1], center) +
			(row[s.width-1]-theta)*(row[s.width-1]-theta))
		s.drift[k] += move
		if s.drift[k] > s.maxDrift {
			s.maxDrift = s.drift[k]
		}
	}
	s.writableChunk(k)
	row = s.row(k)
	copy(row, center)
	row[s.width-1] = theta
	if theta > s.maxTheta {
		s.maxTheta = theta
	}
}

// syncCoef mirrors the LLM's current coefficients and win count into the
// k-th rows of the chunk.
func (s *protoStore) syncCoef(k int, l *LLM) {
	s.writableChunk(k)
	row := s.coefRow(k)
	row[0] = l.Intercept
	copy(row[1:1+len(l.SlopeX)], l.SlopeX)
	row[s.coefW-1] = l.SlopeTheta
	s.setWin(k, l.Wins)
}

// maybeRebuildEpoch rebuilds once the un-indexed rows — the appended tail
// plus any revived slots — reach an eighth of the prototype set or the
// accumulated drift becomes comparable to the prototype spacing. Called on
// the write path only; a rebuild installs a fresh immutable epoch and
// leaves every previously published one untouched.
func (s *protoStore) maybeRebuildEpoch() {
	k := s.rows
	if s.live < s.minEpochK() {
		return
	}
	built := 0
	if s.epoch != nil {
		built = s.epoch.builtK
	}
	if (k-built+len(s.revived))*8 >= k || s.maxDrift > s.vigilance/4 {
		s.rebuildEpoch()
	}
}

// rebuildEpoch snapshots the current live prototype rows into a fresh
// immutable index (grid or k-d tree by width), resets the drift budget and
// the revived list, and re-tightens the max-θ bound exactly. It reads the
// live chunks row by row; the epoch's own storage is contiguous (grid rows
// / leaf-ordered tree matrix), so searches against the stale copy keep
// their flat-scan cache behaviour. While tombstones exist only the live
// slots are indexed, with the grid/tree id-indirection carrying the true
// slot ids; if the live count has fallen below the index size gate (a deep
// capacity shrink) the epoch is dropped and searches fall back to the exact
// flat scan, for which tombstones are transparent.
func (s *protoStore) rebuildEpoch() {
	k := s.rows
	w := s.width
	s.revived = s.revived[:0]
	if s.live < s.minEpochK() {
		s.epoch = nil
		s.drift = s.drift[:0]
		s.maxDrift = 0
		s.retightenMaxTheta()
		return
	}
	e := &readEpoch{builtK: k, width: w}
	if s.live != k {
		e.inEpoch = make([]bool, k)
		for i := 0; i < k; i++ {
			e.inEpoch[i] = !s.isTombstone(i)
		}
	}
	if w <= storeGridMaxWidth {
		// Constructor and Insert cannot fail: the width is positive, the
		// cell size was validated with the config, and every row matches the
		// grid dimension by construction. A failure means that invariant
		// broke — surface it instead of silently serving O(K) scans forever.
		g, err := index.NewDynamicGrid(w, 2*s.vigilance)
		if err != nil {
			panic(fmt.Sprintf("core: epoch grid build invariant broken: %v", err))
		}
		if s.live == k {
			for i := 0; i < k; i++ {
				_, _ = g.Insert(s.row(i))
			}
		} else {
			for i := 0; i < k; i++ {
				if s.isTombstone(i) {
					continue
				}
				if _, err := g.InsertWithID(s.row(i), int32(i)); err != nil {
					panic(fmt.Sprintf("core: epoch grid build invariant broken: %v", err))
				}
			}
		}
		e.grid = g
	} else {
		if cap(s.staleBuf) < s.live*w {
			s.staleBuf = make([]float64, s.live*w, 2*s.live*w)
		}
		stale := s.staleBuf[:0]
		var t *index.BulkKDTree
		var err error
		if s.live == k {
			for i := 0; i < k; i++ {
				stale = append(stale, s.row(i)...)
			}
			t, err = index.NewBulkKDTree(stale, w)
		} else {
			ids := s.idsBuf[:0]
			for i := 0; i < k; i++ {
				if s.isTombstone(i) {
					continue
				}
				stale = append(stale, s.row(i)...)
				ids = append(ids, int32(i))
			}
			s.idsBuf = ids
			t, err = index.NewBulkKDTreeIDs(stale, w, ids)
		}
		s.staleBuf = stale
		// The constructor cannot fail: the width is positive and the stale
		// copy is non-empty (live ≥ minEpochK) with live×w values by
		// construction. A failure means that invariant broke — surface it
		// instead of silently serving O(K) scans forever.
		if err != nil {
			panic(fmt.Sprintf("core: epoch tree build invariant broken: %v", err))
		}
		e.tree = t
	}
	s.epoch = e
	if cap(s.drift) < k {
		s.drift = make([]float64, k, 2*k)
	}
	s.drift = s.drift[:k]
	for i := range s.drift {
		s.drift[i] = 0
	}
	s.maxDrift = 0
	s.retightenMaxTheta()
}

// retightenMaxTheta recomputes the exact max over the live prototype radii
// (the tombstone sentinel is negative and never raises it).
func (s *protoStore) retightenMaxTheta() {
	mt := 0.0
	w := s.width
	for i := 0; i < s.rows; i++ {
		if t := s.row(i)[w-1]; t > mt {
			mt = t
		}
	}
	s.maxTheta = mt
}

// winnerOn returns the index of the prototype closest to the query-space
// point qflat = [x..., θ] among the live rows of the chunk table, and the
// squared L2 distance to it, using the epoch's index when one exists. Rows
// the epoch does not cover are scanned exactly first and seed the indexed
// search: the appended tail (the trailing chunks of the live matrix) and
// the revived slots (tombstones reused since the epoch build). Tombstoned
// rows are masked to infinite distance, so every scan skips them without a
// branch. stack carries the k-d tree traversal scratch (the store's own
// buffer for the writer, the prediction scratch pool's for readers), so the
// hot path allocates nothing. All paths verify candidates with the same
// unrolled kernels and return a true minimum: the grid and chunked scans
// break ties toward the lowest index, while the tree visits rows in leaf
// order, so under ties the paths can return different (equidistant) winners
// — the distance, and hence the vigilance test, is identical either way.
func winnerOn(e *readEpoch, live vector.Chunked, qflat []float64, slack float64, revived []int32, stack *[]int32) (int, float64) {
	if e == nil {
		return vector.ArgminSqDistanceChunked(live, qflat)
	}
	built := e.builtK
	best, bestSq := vector.ArgminSqDistanceChunkedRange(live, qflat, built, -1, math.Inf(1))
	for _, id := range revived {
		if sq := vector.SqDistanceFlat(live.Row(int(id)), qflat); sq < bestSq || (sq == bestSq && int(id) < best) {
			best, bestSq = int(id), sq
		}
	}
	if e.grid != nil {
		return e.grid.NearestStale(qflat, slack, live, best, bestSq)
	}
	var sq float64
	best, sq, *stack = e.tree.NearestStale(qflat, slack, live, best, bestSq, *stack)
	return best, sq
}

// winner returns the winner over the store's live rows.
func (s *protoStore) winner(qflat []float64) (int, float64) {
	return winnerOn(s.epoch, s.liveView(), qflat, s.maxDrift, s.revived, &s.kdstack)
}

// winnerQuery is the Query-typed entry point: it assembles the query-space
// point in the store's scratch row (single writer — no races) and returns
// the winner index plus the true (root) distance used by the vigilance test.
func (s *protoStore) winnerQuery(q Query) (int, float64) {
	if cap(s.qbuf) < s.width {
		s.qbuf = make([]float64, s.width)
	}
	qflat := s.qbuf[:s.width]
	copy(qflat, q.Center)
	qflat[s.width-1] = q.Theta
	k, sq := s.winner(qflat)
	return k, math.Sqrt(sq)
}

// publish builds an immutable snapshot of the serving state: the chunk
// pointer table is copied (⌈K/chunkRows⌉ slice headers — not the rows),
// every chunk is marked shared so the next write to a published row copies
// its chunk first, the current epoch is shared by pointer, and the
// drift/max-θ budgets are captured as scalars. The returned snapshot never
// changes, so readers use it without any synchronization beyond the atomic
// pointer load that handed it out.
func (s *protoStore) publish(dim, steps int, converged bool, lastGamma float64, quietSteps int) *storeSnapshot {
	dataC := make([]*vector.Chunk, len(s.dataC))
	copy(dataC, s.dataC)
	for i := range s.shared {
		s.shared[i] = true
	}
	s.pubK = s.rows
	var revived []int32
	if len(s.revived) > 0 {
		// Copied, not shared: the writer appends to its own list in place.
		revived = append(revived, s.revived...)
	}
	return &storeSnapshot{
		dim:        dim,
		chunkTable: chunkTable{width: s.width, coefW: s.coefW, dataC: dataC},
		k:          s.rows,
		live:       s.live,
		revived:    revived,
		epoch:      s.epoch,
		slack:      s.maxDrift,
		maxTheta:   s.maxTheta,
		steps:      steps,
		converged:  converged,
		lastGamma:  lastGamma,
		quietSteps: quietSteps,
	}
}
