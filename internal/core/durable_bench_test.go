package core

import (
	"fmt"
	"math/rand"
	"testing"

	"llmq/internal/wal"
)

// durableOver wraps an already-built model in a Durable appending to a fresh
// log in dir, bypassing Recover so the 1k-prototype fixture builds by direct
// insertion (the log need not cover the fixture: the benchmark measures the
// per-pair append+apply path, not recovery of the fixture itself).
// SnapshotEvery is effectively infinite so no rotation lands mid-measurement.
func durableOver(tb testing.TB, m *Model, dir string, mode wal.SyncMode) *Durable {
	tb.Helper()
	l, err := wal.Continue(dir, wal.Options{Mode: mode})
	if err != nil {
		tb.Fatal(err)
	}
	return &Durable{m: m, opts: DurableOptions{SnapshotEvery: 1 << 30}.withDefaults(), log: l}
}

// BenchmarkWALAppend measures the durable per-pair write path — WAL append
// under each sync policy, then the same winner-update Observe that
// BenchmarkObservePublish measures bare — on the K=1k fixture. The durability
// acceptance criterion compares sync=group here against
// BenchmarkObservePublish/K=1k: group fsync amortizes the flush over
// FlushBatch pairs, so durable ingestion must stay within ~2× of the
// in-memory path. sync=none bounds the pure framing+write cost; sync=always
// is the one-fsync-per-pair floor for callers that cannot tolerate losing a
// single acknowledged pair. scripts/bench.sh records it in BENCH_6.json.
func BenchmarkWALAppend(b *testing.B) {
	const dim, K, vig = 2, 1_000, 0.03
	for _, mode := range []wal.SyncMode{wal.SyncGroup, wal.SyncNone, wal.SyncAlways} {
		b.Run(fmt.Sprintf("sync=%s", mode), func(b *testing.B) {
			m := buildPublishBenchModel(b, dim, K, vig, 0.05, 0.15)
			d := durableOver(b, m, b.TempDir(), mode)
			defer d.log.Close()
			rng := rand.New(rand.NewSource(9))
			queries := make([]Query, 4096)
			for i := range queries {
				queries[i] = perturbedQuery(rng, m.View(), vig)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Observe(queries[i%len(queries)], 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures replay-on-boot: Recover over a directory whose
// newest snapshot is missing its tail, so every op re-reads and re-applies
// the whole tail through TrainBatch. ns/pair is the per-record replay cost;
// SnapshotEvery bounds the tail length, so boot time is this number times
// the configured cadence (plus one snapshot load).
func BenchmarkRecovery(b *testing.B) {
	for _, tail := range []int{4_096, 16_384} {
		b.Run(fmt.Sprintf("tail=%d", tail), func(b *testing.B) {
			dir := b.TempDir()
			cfg := durableConfig()
			pairs := planeStream(tail, 3, 0.3, []float64{0.5, -0.2, 1.1}, 1.0, 43)
			opts := DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}, SnapshotEvery: 1 << 30}
			d, err := Recover(dir, cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.TrainBatch(pairs); err != nil {
				b.Fatal(err)
			}
			if err := d.Sync(); err != nil {
				b.Fatal(err)
			}
			// Close the segment without Close's rotation: the directory must
			// keep its replay tail identical across iterations.
			if err := d.log.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Recover(dir, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				if r.Model().Steps() != tail {
					b.Fatalf("recovered %d steps, want %d", r.Model().Steps(), tail)
				}
				if err := r.log.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tail), "ns/pair")
		})
	}
}
