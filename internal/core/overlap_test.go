package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// checkOverlapAgainstLinear compares the routed overlap set (radius query
// through the epoch's grid or k-d tree when available) against the linear
// reference scan on the same snapshot. The two paths verify candidates with
// identical arithmetic in identical order, so the comparison is exact:
// same indices, bit-identical weights.
func checkOverlapAgainstLinear(t *testing.T, m *Model, q Query, stage string) {
	t.Helper()
	s := m.snap.Load()
	var scA, scB predictScratch
	gotIdx, gotW := s.overlapSet(q, &scA)
	wantIdx, wantW, wantTotal := s.overlapLinearRaw(q, &scB)
	if wantTotal > 0 {
		for i := range wantW {
			wantW[i] /= wantTotal
		}
	}
	if len(gotIdx) != len(wantIdx) {
		t.Fatalf("%s K=%d: overlap set size %d, linear %d", stage, s.k, len(gotIdx), len(wantIdx))
	}
	for i := range gotIdx {
		if gotIdx[i] != wantIdx[i] {
			t.Fatalf("%s K=%d: overlap idx[%d] = %d, linear %d", stage, s.k, i, gotIdx[i], wantIdx[i])
		}
		if gotW[i] != wantW[i] {
			t.Fatalf("%s K=%d: overlap weight[%d] = %v, linear %v (idx %d)",
				stage, s.k, i, gotW[i], wantW[i], gotIdx[i])
		}
	}
}

// TestOverlapSetMatchesLinearScan is the exactness property test of the
// radius-query overlap path: across dimensionalities (grid epochs for
// d+1 ≤ 4, k-d tree epochs above), workload shapes (uniform and clustered),
// and training stages (mid-training with drifted prototypes and un-indexed
// tails, and after further training), the grid/tree range query must
// reproduce the linear scan's W(q) exactly — indices and weights.
func TestOverlapSetMatchesLinearScan(t *testing.T) {
	vigilance := map[int]float64{1: 0.02, 2: 0.05, 3: 0.07, 5: 0.2, 8: 0.3}
	// Clustered queries concentrate, so the spawn distance must be tighter
	// for the prototype set to clear the epoch size gates.
	clusteredVigilance := map[int]float64{1: 0.01, 2: 0.03, 3: 0.05, 5: 0.08, 8: 0.08}
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for _, workload := range []string{"uniform", "clustered"} {
			gen := uniformGen(dim)
			vig := vigilance[dim]
			if workload == "clustered" {
				gen = clusteredGen(dim, 30, 0.05, int64(90+dim))
				vig = clusteredVigilance[dim]
			}
			rng := rand.New(rand.NewSource(int64(80 + dim)))
			cfg := DefaultConfig(dim)
			cfg.Vigilance = vig
			cfg.Gamma = 1e-12
			cfg.MinGammaSteps = 1 << 30
			m, err := NewModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for phase := 0; phase < 4; phase++ {
				for i := 0; i < 350; i++ {
					if _, err := m.Observe(gen(rng), rng.NormFloat64()); err != nil {
						t.Fatal(err)
					}
				}
				// Mid-training: prototypes have drifted since the last epoch
				// rebuild and fresh spawns sit in the un-indexed tail, so the
				// range query must honour the slack and scan the tail.
				for trial := 0; trial < 80; trial++ {
					checkOverlapAgainstLinear(t, m, gen(rng), workload+"/mid-training")
				}
			}
			if s := m.snap.Load(); s.epoch == nil {
				t.Fatalf("dim %d %s: K=%d never built a read epoch", dim, workload, s.k)
			} else if dim+1 > storeGridMaxWidth && s.epoch.tree == nil {
				t.Fatalf("dim %d %s: wide epoch should be a k-d tree", dim, workload)
			}
		}
	}
}

// TestOverlapSetMatchesQueryAPI cross-checks the flat-store overlap path
// against an independent reference built from the public Query API on deep
// LLM copies: same member set, weights equal to within kernel reassociation
// rounding, weights summing to 1.
func TestOverlapSetMatchesQueryAPI(t *testing.T) {
	const dim = 2
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.04
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	llms := m.LLMs()
	s := m.snap.Load()
	for trial := 0; trial < 200; trial++ {
		q := randQuery(rng, dim)
		var sc predictScratch
		idx, weights := s.overlapSet(q, &sc)
		var wantIdx []int
		var wantDeg []float64
		var total float64
		for k, l := range llms {
			if deg := q.OverlapDegree(l.PrototypeQuery()); deg > 0 {
				wantIdx = append(wantIdx, k)
				wantDeg = append(wantDeg, deg)
				total += deg
			}
		}
		if len(idx) != len(wantIdx) {
			t.Fatalf("trial %d: overlap size %d, Query API %d", trial, len(idx), len(wantIdx))
		}
		var sum float64
		for i := range idx {
			if idx[i] != wantIdx[i] {
				t.Fatalf("trial %d: idx[%d] = %d, want %d", trial, i, idx[i], wantIdx[i])
			}
			want := wantDeg[i] / total
			if math.Abs(weights[i]-want) > 1e-9 {
				t.Fatalf("trial %d: weight[%d] = %v, want %v", trial, i, weights[i], want)
			}
			sum += weights[i]
		}
		if len(idx) > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: weights sum to %v", trial, sum)
		}
	}
}

// TestPinnedViewDuringTraining is the snapshot-isolation property test, run
// under -race by CI: while a writer streams training pairs, readers pin a
// View and verify (a) the version's metadata is frozen, (b) repeating a
// prediction on the pinned View is bit-identical no matter how far training
// has advanced, and (c) a Save on the live model serializes a consistent
// version (LLM count matches its own header, never a torn mix).
func TestPinnedViewDuringTraining(t *testing.T) {
	const dim, pairs, readers = 2, 1500, 4
	cfg := DefaultConfig(dim)
	cfg.ResolutionA = 0.05
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = pairs * 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(randQuery(rand.New(rand.NewSource(1)), dim), 0.5); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				v := m.View()
				k, steps := v.K(), v.Steps()
				q := randQuery(rng, dim)
				y1, err := v.PredictMean(q)
				if err != nil {
					t.Errorf("PredictMean: %v", err)
					return
				}
				if _, err := v.Regression(q); err != nil {
					t.Errorf("Regression: %v", err)
					return
				}
				// The pinned version must not move underneath us.
				y2, err := v.PredictMean(q)
				if err != nil {
					t.Errorf("PredictMean (repeat): %v", err)
					return
				}
				if y1 != y2 {
					t.Errorf("pinned View drifted: %v then %v", y1, y2)
					return
				}
				if v.K() != k || v.Steps() != steps {
					t.Errorf("pinned View metadata drifted: K %d→%d steps %d→%d", k, v.K(), steps, v.Steps())
					return
				}
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
				loaded, err := Load(&buf)
				if err != nil {
					t.Errorf("Load of live Save: %v", err)
					return
				}
				if loaded.K() == 0 {
					t.Error("Load of live Save lost all prototypes")
					return
				}
			}
		}(int64(300 + r))
	}

	wrng := rand.New(rand.NewSource(2))
	for i := 0; i < pairs; i++ {
		if _, err := m.Observe(randQuery(wrng, dim), math.Sin(float64(i))); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	close(done)
	wg.Wait()
	if m.K() < 2 {
		t.Fatalf("expected the workload to spawn prototypes, K=%d", m.K())
	}
}

// TestViewAcrossTrainBatch verifies the zero-downtime swap semantics: a
// View pinned before a TrainBatch answers from the pre-batch version, and a
// View taken after sees the whole batch at once.
func TestViewAcrossTrainBatch(t *testing.T) {
	const dim = 2
	rng := rand.New(rand.NewSource(33))
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.05
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := make([]TrainingPair, 300)
	for i := range warm {
		warm[i] = TrainingPair{Query: randQuery(rng, dim), Answer: rng.NormFloat64()}
	}
	if _, err := m.TrainBatch(warm); err != nil {
		t.Fatal(err)
	}
	before := m.View()
	q := randQuery(rng, dim)
	yBefore, err := before.PredictMean(q)
	if err != nil {
		t.Fatal(err)
	}
	more := make([]TrainingPair, 500)
	for i := range more {
		more[i] = TrainingPair{Query: randQuery(rng, dim), Answer: rng.NormFloat64()}
	}
	if _, err := m.TrainBatch(more); err != nil {
		t.Fatal(err)
	}
	if got, _ := before.PredictMean(q); got != yBefore {
		t.Fatalf("pre-batch View changed: %v → %v", yBefore, got)
	}
	if before.Steps() == m.Steps() {
		t.Fatal("post-batch model did not advance")
	}
	after := m.View()
	if after.Steps() != m.Steps() || after.K() != m.K() {
		t.Fatalf("fresh View lags the model: steps %d vs %d", after.Steps(), m.Steps())
	}
}
