package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"llmq/internal/vector"
)

// The serialized form of a model: a stable JSON document so trained models
// can be persisted next to the DBMS and reloaded by query-processing nodes
// without retraining. Version 2 carries, beyond the prototypes and their
// coefficients, the full training clock — the step counter, per-prototype
// win counts AND last-win step stamps (so a bounded model's eviction clock
// survives a restart instead of resetting every boot), the convergence
// window state, and (Checkpoint only) the per-prototype RLS solver state —
// which is what makes "load a snapshot, replay the WAL tail" bit-identical
// to a training run that never stopped. Version-1 files still load, with
// the historical semantics (eviction clock restarted at the load step,
// fresh solver state).

type modelJSON struct {
	Version   int     `json:"version"`
	Dim       int     `json:"dim"`
	Vigilance float64 `json:"vigilance"`
	Gamma     float64 `json:"gamma"`
	Steps     int     `json:"steps"`
	Converged bool    `json:"converged"`
	// The training-relevant configuration (version ≥ 2): the coefficient
	// solver and update-rule switches, and the termination-criterion
	// windows. Version-1 files lack them and load with the historical
	// defaults (RLS, both switches on, standard windows).
	Solver                  string `json:"solver,omitempty"`
	InitInterceptWithAnswer bool   `json:"init_intercept_with_answer,omitempty"`
	RateByPrototype         bool   `json:"rate_by_prototype,omitempty"`
	MinGammaSteps           int    `json:"min_gamma_steps,omitempty"`
	ConvergenceWindow       int    `json:"convergence_window,omitempty"`
	// The convergence-criterion state (version ≥ 2), so a reloaded model
	// mid-quiet-window needs exactly as many further quiet steps as the
	// original would have. Γ can be +Inf (the step after a spawn), which
	// JSON cannot encode — the _inf flag carries that case.
	QuietSteps   int     `json:"quiet_steps,omitempty"`
	LastGamma    float64 `json:"last_gamma,omitempty"`
	LastGammaInf bool    `json:"last_gamma_inf,omitempty"`
	// Bounded-capacity configuration (absent for unbounded models, and in
	// files written before it existed — both load as unbounded).
	MaxPrototypes    int       `json:"max_prototypes,omitempty"`
	Eviction         string    `json:"eviction,omitempty"`
	EvictionHalfLife int       `json:"eviction_half_life,omitempty"`
	MergeOnEvict     bool      `json:"merge_on_evict,omitempty"`
	LLMs             []llmJSON `json:"llms"`
}

type llmJSON struct {
	Center     []float64 `json:"center"`
	Theta      float64   `json:"theta"`
	Intercept  float64   `json:"intercept"`
	SlopeX     []float64 `json:"slope_x"`
	SlopeTheta float64   `json:"slope_theta"`
	Wins       int       `json:"wins"`
	// LastWin is the training step at which the prototype last absorbed a
	// pair — the eviction policies' recency input (version ≥ 2; absent in
	// version-1 files, which restart the eviction clock at the load step).
	LastWin int `json:"last_win,omitempty"`
	// RLS is the row-major (d+2)² inverse-covariance state of the
	// recursive-least-squares solver, written by Checkpoint only; a model
	// loaded without it re-initializes the solver on the prototype's next
	// win.
	RLS []float64 `json:"rls,omitempty"`
}

const serializationVersion = 2

// ErrBadModelFile is returned when a serialized model cannot be decoded or
// fails validation.
var ErrBadModelFile = errors.New("core: invalid model file")

// parseSolver resolves the persisted solver name; the empty string is the
// default (RLS), matching version-1 files that predate the field.
func parseSolver(name string) (Solver, error) {
	switch name {
	case "", SolverRLS.String():
		return SolverRLS, nil
	case SolverSGD.String():
		return SolverSGD, nil
	default:
		return 0, fmt.Errorf("unknown solver %q", name)
	}
}

// snapDoc builds the serialized document from one published snapshot and
// one capacity mirror. When solver is non-nil it is called per live slot to
// fetch the authoritative LLM whose RLS state rides along (Checkpoint's
// writer-locked path); a nil solver omits solver state (Save's lock-free
// path, where the LLM objects cannot be read racelessly).
func (m *Model) snapDoc(s *storeSnapshot, cc *capacityConfig, quietSteps int, solver func(slot int) *LLM) modelJSON {
	doc := modelJSON{
		Version:                 serializationVersion,
		Dim:                     m.cfg.Dim,
		Vigilance:               m.cfg.Vigilance,
		Gamma:                   m.cfg.Gamma,
		Steps:                   s.steps,
		Converged:               s.converged,
		Solver:                  m.cfg.CoefficientSolver.String(),
		InitInterceptWithAnswer: m.cfg.InitInterceptWithAnswer,
		RateByPrototype:         m.cfg.RateByPrototype,
		MinGammaSteps:           m.cfg.MinGammaSteps,
		ConvergenceWindow:       m.cfg.ConvergenceWindow,
		QuietSteps:              quietSteps,
		LLMs:                    make([]llmJSON, 0, s.live),
	}
	if math.IsInf(s.lastGamma, 1) {
		doc.LastGammaInf = true
	} else {
		doc.LastGamma = s.lastGamma
	}
	// The capacity fields are runtime-mutable (SetCapacity); read them
	// through the lock-free mirror, never from m.cfg directly.
	if cc.max > 0 {
		doc.MaxPrototypes = cc.max
		doc.MergeOnEvict = cc.merge
		if p := cc.policy; p != nil {
			// Only names Load can resolve are persisted; a custom policy
			// implementation degrades to the default on reload rather than
			// producing a checkpoint Load rejects wholesale.
			if _, err := ParseEvictionPolicy(p.Name()); err == nil {
				doc.Eviction = p.Name()
			}
			if wd, ok := p.(WinDecay); ok {
				doc.EvictionHalfLife = wd.HalfLife
			}
		}
	}
	for i := 0; i < s.k; i++ {
		row := s.row(i)
		if row[s.dim] < 0 {
			continue // tombstoned slot
		}
		c := s.coefRow(i)
		lj := llmJSON{
			Center:     append([]float64(nil), row[:s.dim]...),
			Theta:      row[s.dim],
			Intercept:  c[0],
			SlopeX:     append([]float64(nil), c[1:1+s.dim]...),
			SlopeTheta: c[s.coefW-1],
			Wins:       s.win(i),
			LastWin:    s.stamp(i),
		}
		if solver != nil {
			if l := solver(i); l != nil && l.p != nil {
				lj.RLS = append([]float64(nil), l.p...)
			}
		}
		doc.LLMs = append(doc.LLMs, lj)
	}
	return doc
}

func encodeDoc(w io.Writer, doc modelJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// Save writes the model as JSON. It serializes one published snapshot —
// obtained with a single atomic load, no locking — so a model can be
// checkpointed at a consistent version while serving queries and absorbing
// a training stream. Tombstoned slots of a bounded model are compacted
// away: the file holds the live prototypes in slot order, with their win
// counts and last-win stamps, so a Save/Load round trip preserves the
// eviction clock (only the tombstone slot numbering is rebuilt). The RLS
// solver state is NOT included — it lives in the writer-locked training
// objects, which a lock-free reader cannot serialize consistently; use
// Checkpoint when the file must support bit-identical training resumption.
func (m *Model) Save(w io.Writer) error {
	// Pair the capacity mirror with the snapshot consistently: read the
	// mirror on both sides of the snapshot load and retry until it was
	// stable across it. A concurrent SetCapacity in either direction (a
	// shrink pairing a stale large set with the new small cap, or a grow
	// pairing a stale small cap with a newly grown set — which Load's
	// over-cap enforcement would then wrongly evict) changes the mirror
	// pointer and forces another iteration; SetCapacity calls are rare, so
	// the loop converges immediately. Load additionally enforces the cap,
	// so even a hand-edited file cannot serve over-cap.
	cc := m.capCfg.Load()
	s := m.snap.Load()
	for {
		cc2 := m.capCfg.Load()
		if cc2 == cc {
			break
		}
		cc = cc2
		s = m.snap.Load()
	}
	return encodeDoc(w, m.snapDoc(s, cc, s.quietSteps, nil))
}

// Checkpoint writes the model as JSON like Save, but serializes the
// authoritative writer state under the writer lock, including each
// prototype's RLS inverse-covariance — everything training touches. A model
// loaded from a Checkpoint and fed the remainder of a training stream is
// bit-identical to one that consumed the whole stream without stopping,
// which is the property the durability layer's snapshots are built on
// (core.Recover replays the WAL tail on top of the newest checkpoint).
// Checkpoint briefly serializes with training writers; readers stay
// lock-free throughout.
func (m *Model) Checkpoint(w io.Writer) error {
	m.mu.Lock()
	// Publish first so the snapshot IS the current writer state; under the
	// lock no training step can intervene.
	m.publishLocked()
	s := m.snap.Load()
	cc := m.capCfg.Load()
	doc := m.snapDoc(s, cc, m.quietSteps, func(slot int) *LLM {
		if slot >= len(m.llms) {
			return nil
		}
		return m.llms[slot]
	})
	m.mu.Unlock()
	// The document owns deep copies of everything; encoding (and the I/O
	// behind w) proceeds without stalling training.
	return encodeDoc(w, doc)
}

// StateHash returns a SHA-256 hex digest of the model's canonical
// serialized state — everything Checkpoint persists, including the solver
// state and the eviction clock. It is canonical over slot numbering: the
// prototype entries are hashed in sorted order of their serialized form, so
// a model and its Checkpoint→Load round trip (which compacts tombstones and
// permutes slots) hash identically. Two models with equal hashes are
// behaviorally identical — same answers, same future under the same
// training stream — which is what replication's divergence checks and the
// crash harness's bit-identity assertions compare.
func (m *Model) StateHash() (string, error) {
	m.mu.Lock()
	// Publish first so the document IS the current writer state, exactly as
	// Checkpoint does.
	m.publishLocked()
	s := m.snap.Load()
	cc := m.capCfg.Load()
	doc := m.snapDoc(s, cc, m.quietSteps, func(slot int) *LLM {
		if slot >= len(m.llms) {
			return nil
		}
		return m.llms[slot]
	})
	m.mu.Unlock()
	return canonicalHash(doc)
}

// canonicalHash digests a serialized document with the prototype entries in
// a slot-order-independent canonical order.
func canonicalHash(doc modelJSON) (string, error) {
	llms := make([]string, len(doc.LLMs))
	for i := range doc.LLMs {
		b, err := json.Marshal(doc.LLMs[i])
		if err != nil {
			return "", fmt.Errorf("core: hash model: %w", err)
		}
		llms[i] = string(b)
	}
	sort.Strings(llms)
	doc.LLMs = nil
	head, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("core: hash model: %w", err)
	}
	h := sha256.New()
	h.Write(head)
	for _, e := range llms {
		h.Write([]byte{'\n'})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Load reads a model previously written by Save or Checkpoint. The loaded
// model can answer queries; it can also continue training with the embedded
// configuration, resuming the eviction clock (and, for checkpoints, the
// exact solver state) where the file left off. Decode and validation
// failures return a descriptive ErrBadModelFile naming the byte offset or
// prototype that failed, so a truncated or corrupt file diagnoses itself.
func Load(r io.Reader) (*Model, error) {
	var doc modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		// InputOffset points at where decoding stopped — for the torn
		// prefix a crashed non-atomic write leaves behind, that is the
		// truncation point.
		return nil, fmt.Errorf("%w: decode failed at byte offset %d: %v", ErrBadModelFile, dec.InputOffset(), err)
	}
	if doc.Version < 1 || doc.Version > serializationVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (this build reads 1..%d)", ErrBadModelFile, doc.Version, serializationVersion)
	}
	if doc.Dim <= 0 || doc.Vigilance <= 0 || doc.Gamma <= 0 {
		return nil, fmt.Errorf("%w: non-positive dim/vigilance/gamma", ErrBadModelFile)
	}
	if doc.Steps < 0 || doc.QuietSteps < 0 {
		return nil, fmt.Errorf("%w: negative step counters (steps %d, quiet %d)", ErrBadModelFile, doc.Steps, doc.QuietSteps)
	}
	cfg := Config{
		Dim:                     doc.Dim,
		Vigilance:               doc.Vigilance,
		Gamma:                   doc.Gamma,
		Schedule:                Hyperbolic{},
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
	}
	if doc.Version >= 2 {
		solver, err := parseSolver(doc.Solver)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		cfg.CoefficientSolver = solver
		cfg.InitInterceptWithAnswer = doc.InitInterceptWithAnswer
		cfg.RateByPrototype = doc.RateByPrototype
		cfg.MinGammaSteps = doc.MinGammaSteps
		cfg.ConvergenceWindow = doc.ConvergenceWindow
	}
	if doc.MaxPrototypes > 0 {
		cfg.MaxPrototypes = doc.MaxPrototypes
		cfg.MergeOnEvict = doc.MergeOnEvict
		policy, err := ParseEvictionPolicy(doc.Eviction)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		if wd, ok := policy.(WinDecay); ok && doc.EvictionHalfLife > 0 {
			wd.HalfLife = doc.EvictionHalfLife
			policy = wd
		}
		cfg.Eviction = policy
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.steps = doc.Steps
	m.converged = doc.Converged
	m.quietSteps = doc.QuietSteps
	if doc.LastGammaInf {
		m.lastGamma = math.Inf(1)
	} else {
		m.lastGamma = doc.LastGamma
	}
	solverW := m.cfg.Dim + 2
	for i, lj := range doc.LLMs {
		if len(lj.Center) != doc.Dim || len(lj.SlopeX) != doc.Dim {
			return nil, fmt.Errorf("%w: LLM %d has wrong dimensionality", ErrBadModelFile, i)
		}
		// A negative radius is invalid (NewQuery enforces θ ≥ 0) and would
		// collide with the store's tombstone sentinel (θ < 0 marks an
		// evicted slot), splitting the prototype's liveness between the
		// indexed and linear search paths.
		if lj.Theta < 0 {
			return nil, fmt.Errorf("%w: LLM %d has negative radius %v", ErrBadModelFile, i, lj.Theta)
		}
		for _, v := range append(append([]float64{lj.Theta, lj.Intercept, lj.SlopeTheta}, lj.Center...), lj.SlopeX...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: LLM %d contains non-finite values", ErrBadModelFile, i)
			}
		}
		if lj.LastWin < 0 || lj.LastWin > doc.Steps {
			return nil, fmt.Errorf("%w: LLM %d last-win stamp %d outside [0, %d]", ErrBadModelFile, i, lj.LastWin, doc.Steps)
		}
		if lj.RLS != nil {
			if len(lj.RLS) != solverW*solverW {
				return nil, fmt.Errorf("%w: LLM %d RLS state has %d values, want %d", ErrBadModelFile, i, len(lj.RLS), solverW*solverW)
			}
			for _, v := range lj.RLS {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("%w: LLM %d RLS state contains non-finite values", ErrBadModelFile, i)
				}
			}
		}
		l := &LLM{
			CenterPrototype: vector.Of(lj.Center...),
			ThetaPrototype:  lj.Theta,
			Intercept:       lj.Intercept,
			SlopeX:          vector.Of(lj.SlopeX...),
			SlopeTheta:      lj.SlopeTheta,
			Wins:            lj.Wins,
			p:               append([]float64(nil), lj.RLS...),
		}
		if len(l.p) == 0 {
			l.p = nil // re-initialized lazily on the next RLS update
		}
		m.llms = append(m.llms, l)
		// addRow, not add: one explicit epoch build after the loop replaces
		// the O(log K) intermediate builds the per-append trigger would
		// construct and discard during a bulk load.
		m.store.addRow(l.CenterPrototype, l.ThetaPrototype)
		m.store.syncCoef(i, l)
		if lj.LastWin > 0 {
			m.store.setStamp(i, lj.LastWin)
		} else {
			// Version-1 files carry no stamps; restart the eviction clock at
			// the load step so decayed scores don't all underflow to zero
			// (which would erase the win-count ordering the policies rely
			// on).
			m.store.setStamp(i, doc.Steps)
		}
	}
	// Enforce the file's capacity before the first publication: a file can
	// carry more prototypes than its cap (a checkpoint racing a SetCapacity
	// shrink, or a hand-edited document), and a pure-serving process would
	// otherwise stay over-cap forever — no spawn ever runs to trigger the
	// eviction pass.
	if cfg.MaxPrototypes > 0 && m.store.live > cfg.MaxPrototypes {
		m.evictLocked(-1)
	}
	// The bulk load deferred the per-append epoch checks; build the one
	// epoch the loaded set needs (a no-op drop below the size gates, and a
	// cheap redundant build in the rare compacted-on-load case).
	m.store.rebuildEpoch()
	// Publish the loaded model as its first serving version.
	m.publishLocked()
	return m, nil
}
