package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// The serialized form of a model: a stable JSON document so trained models
// can be persisted next to the DBMS and reloaded by query-processing nodes
// without retraining.

type modelJSON struct {
	Version   int     `json:"version"`
	Dim       int     `json:"dim"`
	Vigilance float64 `json:"vigilance"`
	Gamma     float64 `json:"gamma"`
	Steps     int     `json:"steps"`
	Converged bool    `json:"converged"`
	// Bounded-capacity configuration (absent for unbounded models, and in
	// files written before it existed — both load as unbounded).
	MaxPrototypes    int       `json:"max_prototypes,omitempty"`
	Eviction         string    `json:"eviction,omitempty"`
	EvictionHalfLife int       `json:"eviction_half_life,omitempty"`
	MergeOnEvict     bool      `json:"merge_on_evict,omitempty"`
	LLMs             []llmJSON `json:"llms"`
}

type llmJSON struct {
	Center     []float64 `json:"center"`
	Theta      float64   `json:"theta"`
	Intercept  float64   `json:"intercept"`
	SlopeX     []float64 `json:"slope_x"`
	SlopeTheta float64   `json:"slope_theta"`
	Wins       int       `json:"wins"`
}

const serializationVersion = 1

// ErrBadModelFile is returned when a serialized model cannot be decoded or
// fails validation.
var ErrBadModelFile = errors.New("core: invalid model file")

// Save writes the model as JSON. It serializes one published snapshot —
// obtained with a single atomic load, no locking — so a model can be
// checkpointed at a consistent version while serving queries and absorbing
// a training stream. Tombstoned slots of a bounded model are compacted
// away: the file holds the live prototypes in slot order, so a Save/Load
// round trip is the rebuild-from-scratch reference of the tombstone
// machinery (and resets the eviction clock — win stamps are not persisted).
func (m *Model) Save(w io.Writer) error {
	// Pair the capacity mirror with the snapshot consistently: read the
	// mirror on both sides of the snapshot load and retry until it was
	// stable across it. A concurrent SetCapacity in either direction (a
	// shrink pairing a stale large set with the new small cap, or a grow
	// pairing a stale small cap with a newly grown set — which Load's
	// over-cap enforcement would then wrongly evict) changes the mirror
	// pointer and forces another iteration; SetCapacity calls are rare, so
	// the loop converges immediately. Load additionally enforces the cap,
	// so even a hand-edited file cannot serve over-cap.
	cc := m.capCfg.Load()
	s := m.snap.Load()
	for {
		cc2 := m.capCfg.Load()
		if cc2 == cc {
			break
		}
		cc = cc2
		s = m.snap.Load()
	}
	doc := modelJSON{
		Version:   serializationVersion,
		Dim:       m.cfg.Dim,
		Vigilance: m.cfg.Vigilance,
		Gamma:     m.cfg.Gamma,
		Steps:     s.steps,
		Converged: s.converged,
		LLMs:      make([]llmJSON, 0, s.live),
	}
	// The capacity fields are runtime-mutable (SetCapacity); read them
	// through the lock-free mirror (loaded above, before the snapshot),
	// never from m.cfg directly.
	if cc.max > 0 {
		doc.MaxPrototypes = cc.max
		doc.MergeOnEvict = cc.merge
		if p := cc.policy; p != nil {
			// Only names Load can resolve are persisted; a custom policy
			// implementation degrades to the default on reload rather than
			// producing a checkpoint Load rejects wholesale.
			if _, err := ParseEvictionPolicy(p.Name()); err == nil {
				doc.Eviction = p.Name()
			}
			if wd, ok := p.(WinDecay); ok {
				doc.EvictionHalfLife = wd.HalfLife
			}
		}
	}
	for i := 0; i < s.k; i++ {
		row := s.row(i)
		if row[s.dim] < 0 {
			continue // tombstoned slot
		}
		c := s.coefRow(i)
		doc.LLMs = append(doc.LLMs, llmJSON{
			Center:     append([]float64(nil), row[:s.dim]...),
			Theta:      row[s.dim],
			Intercept:  c[0],
			SlopeX:     append([]float64(nil), c[1:1+s.dim]...),
			SlopeTheta: c[s.coefW-1],
			Wins:       s.win(i),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. The loaded model can answer
// queries; it can also continue training with the embedded configuration.
func Load(r io.Reader) (*Model, error) {
	var doc modelJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if doc.Version != serializationVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModelFile, doc.Version)
	}
	if doc.Dim <= 0 || doc.Vigilance <= 0 || doc.Gamma <= 0 {
		return nil, fmt.Errorf("%w: non-positive dim/vigilance/gamma", ErrBadModelFile)
	}
	cfg := Config{
		Dim:                     doc.Dim,
		Vigilance:               doc.Vigilance,
		Gamma:                   doc.Gamma,
		Schedule:                Hyperbolic{},
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
	}
	if doc.MaxPrototypes > 0 {
		cfg.MaxPrototypes = doc.MaxPrototypes
		cfg.MergeOnEvict = doc.MergeOnEvict
		policy, err := ParseEvictionPolicy(doc.Eviction)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		if wd, ok := policy.(WinDecay); ok && doc.EvictionHalfLife > 0 {
			wd.HalfLife = doc.EvictionHalfLife
			policy = wd
		}
		cfg.Eviction = policy
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.steps = doc.Steps
	m.converged = doc.Converged
	for i, lj := range doc.LLMs {
		if len(lj.Center) != doc.Dim || len(lj.SlopeX) != doc.Dim {
			return nil, fmt.Errorf("%w: LLM %d has wrong dimensionality", ErrBadModelFile, i)
		}
		// A negative radius is invalid (NewQuery enforces θ ≥ 0) and would
		// collide with the store's tombstone sentinel (θ < 0 marks an
		// evicted slot), splitting the prototype's liveness between the
		// indexed and linear search paths.
		if lj.Theta < 0 {
			return nil, fmt.Errorf("%w: LLM %d has negative radius %v", ErrBadModelFile, i, lj.Theta)
		}
		for _, v := range append(append([]float64{lj.Theta, lj.Intercept, lj.SlopeTheta}, lj.Center...), lj.SlopeX...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: LLM %d contains non-finite values", ErrBadModelFile, i)
			}
		}
		l := &LLM{
			CenterPrototype: append([]float64(nil), lj.Center...),
			ThetaPrototype:  lj.Theta,
			Intercept:       lj.Intercept,
			SlopeX:          append([]float64(nil), lj.SlopeX...),
			SlopeTheta:      lj.SlopeTheta,
			Wins:            lj.Wins,
		}
		m.llms = append(m.llms, l)
		// addRow, not add: one explicit epoch build after the loop replaces
		// the O(log K) intermediate builds the per-append trigger would
		// construct and discard during a bulk load.
		m.store.addRow(l.CenterPrototype, l.ThetaPrototype)
		m.store.syncCoef(i, l)
		// Win stamps are not persisted; restart the eviction clock at the
		// load step so decayed scores don't all underflow to zero (which
		// would erase the win-count ordering the policies rely on).
		m.store.setStamp(i, doc.Steps)
	}
	// Enforce the file's capacity before the first publication: a file can
	// carry more prototypes than its cap (a checkpoint racing a SetCapacity
	// shrink, or a hand-edited document), and a pure-serving process would
	// otherwise stay over-cap forever — no spawn ever runs to trigger the
	// eviction pass.
	if cfg.MaxPrototypes > 0 && m.store.live > cfg.MaxPrototypes {
		m.evictLocked(-1)
	}
	// The bulk load deferred the per-append epoch checks; build the one
	// epoch the loaded set needs (a no-op drop below the size gates, and a
	// cheap redundant build in the rare compacted-on-load case).
	m.store.rebuildEpoch()
	// Publish the loaded model as its first serving version.
	m.publishLocked()
	return m, nil
}
