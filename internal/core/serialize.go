package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// The serialized form of a model: a stable JSON document so trained models
// can be persisted next to the DBMS and reloaded by query-processing nodes
// without retraining.

type modelJSON struct {
	Version   int       `json:"version"`
	Dim       int       `json:"dim"`
	Vigilance float64   `json:"vigilance"`
	Gamma     float64   `json:"gamma"`
	Steps     int       `json:"steps"`
	Converged bool      `json:"converged"`
	LLMs      []llmJSON `json:"llms"`
}

type llmJSON struct {
	Center     []float64 `json:"center"`
	Theta      float64   `json:"theta"`
	Intercept  float64   `json:"intercept"`
	SlopeX     []float64 `json:"slope_x"`
	SlopeTheta float64   `json:"slope_theta"`
	Wins       int       `json:"wins"`
}

const serializationVersion = 1

// ErrBadModelFile is returned when a serialized model cannot be decoded or
// fails validation.
var ErrBadModelFile = errors.New("core: invalid model file")

// Save writes the model as JSON. It takes the shared read lock, so a model
// can be checkpointed while serving queries.
func (m *Model) Save(w io.Writer) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	doc := modelJSON{
		Version:   serializationVersion,
		Dim:       m.cfg.Dim,
		Vigilance: m.cfg.Vigilance,
		Gamma:     m.cfg.Gamma,
		Steps:     m.steps,
		Converged: m.converged,
		LLMs:      make([]llmJSON, len(m.llms)),
	}
	for i, l := range m.llms {
		doc.LLMs[i] = llmJSON{
			Center:     append([]float64(nil), l.CenterPrototype...),
			Theta:      l.ThetaPrototype,
			Intercept:  l.Intercept,
			SlopeX:     append([]float64(nil), l.SlopeX...),
			SlopeTheta: l.SlopeTheta,
			Wins:       l.Wins,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. The loaded model can answer
// queries; it can also continue training with the embedded configuration.
func Load(r io.Reader) (*Model, error) {
	var doc modelJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if doc.Version != serializationVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModelFile, doc.Version)
	}
	if doc.Dim <= 0 || doc.Vigilance <= 0 || doc.Gamma <= 0 {
		return nil, fmt.Errorf("%w: non-positive dim/vigilance/gamma", ErrBadModelFile)
	}
	cfg := Config{
		Dim:                     doc.Dim,
		Vigilance:               doc.Vigilance,
		Gamma:                   doc.Gamma,
		Schedule:                Hyperbolic{},
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.steps = doc.Steps
	m.converged = doc.Converged
	for i, lj := range doc.LLMs {
		if len(lj.Center) != doc.Dim || len(lj.SlopeX) != doc.Dim {
			return nil, fmt.Errorf("%w: LLM %d has wrong dimensionality", ErrBadModelFile, i)
		}
		for _, v := range append(append([]float64{lj.Theta, lj.Intercept, lj.SlopeTheta}, lj.Center...), lj.SlopeX...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: LLM %d contains non-finite values", ErrBadModelFile, i)
			}
		}
		l := &LLM{
			CenterPrototype: append([]float64(nil), lj.Center...),
			ThetaPrototype:  lj.Theta,
			Intercept:       lj.Intercept,
			SlopeX:          append([]float64(nil), lj.SlopeX...),
			SlopeTheta:      lj.SlopeTheta,
			Wins:            lj.Wins,
		}
		m.llms = append(m.llms, l)
		m.store.add(l.CenterPrototype, l.ThetaPrototype)
	}
	return m, nil
}
