package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// The serialized form of a model: a stable JSON document so trained models
// can be persisted next to the DBMS and reloaded by query-processing nodes
// without retraining.

type modelJSON struct {
	Version   int       `json:"version"`
	Dim       int       `json:"dim"`
	Vigilance float64   `json:"vigilance"`
	Gamma     float64   `json:"gamma"`
	Steps     int       `json:"steps"`
	Converged bool      `json:"converged"`
	LLMs      []llmJSON `json:"llms"`
}

type llmJSON struct {
	Center     []float64 `json:"center"`
	Theta      float64   `json:"theta"`
	Intercept  float64   `json:"intercept"`
	SlopeX     []float64 `json:"slope_x"`
	SlopeTheta float64   `json:"slope_theta"`
	Wins       int       `json:"wins"`
}

const serializationVersion = 1

// ErrBadModelFile is returned when a serialized model cannot be decoded or
// fails validation.
var ErrBadModelFile = errors.New("core: invalid model file")

// Save writes the model as JSON. It serializes one published snapshot —
// obtained with a single atomic load, no locking — so a model can be
// checkpointed at a consistent version while serving queries and absorbing
// a training stream.
func (m *Model) Save(w io.Writer) error {
	s := m.snap.Load()
	doc := modelJSON{
		Version:   serializationVersion,
		Dim:       m.cfg.Dim,
		Vigilance: m.cfg.Vigilance,
		Gamma:     m.cfg.Gamma,
		Steps:     s.steps,
		Converged: s.converged,
		LLMs:      make([]llmJSON, s.k),
	}
	for i := 0; i < s.k; i++ {
		row := s.row(i)
		c := s.coefRow(i)
		doc.LLMs[i] = llmJSON{
			Center:     append([]float64(nil), row[:s.dim]...),
			Theta:      row[s.dim],
			Intercept:  c[0],
			SlopeX:     append([]float64(nil), c[1:1+s.dim]...),
			SlopeTheta: c[s.coefW-1],
			Wins:       s.win(i),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. The loaded model can answer
// queries; it can also continue training with the embedded configuration.
func Load(r io.Reader) (*Model, error) {
	var doc modelJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if doc.Version != serializationVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModelFile, doc.Version)
	}
	if doc.Dim <= 0 || doc.Vigilance <= 0 || doc.Gamma <= 0 {
		return nil, fmt.Errorf("%w: non-positive dim/vigilance/gamma", ErrBadModelFile)
	}
	cfg := Config{
		Dim:                     doc.Dim,
		Vigilance:               doc.Vigilance,
		Gamma:                   doc.Gamma,
		Schedule:                Hyperbolic{},
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.steps = doc.Steps
	m.converged = doc.Converged
	for i, lj := range doc.LLMs {
		if len(lj.Center) != doc.Dim || len(lj.SlopeX) != doc.Dim {
			return nil, fmt.Errorf("%w: LLM %d has wrong dimensionality", ErrBadModelFile, i)
		}
		for _, v := range append(append([]float64{lj.Theta, lj.Intercept, lj.SlopeTheta}, lj.Center...), lj.SlopeX...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: LLM %d contains non-finite values", ErrBadModelFile, i)
			}
		}
		l := &LLM{
			CenterPrototype: append([]float64(nil), lj.Center...),
			ThetaPrototype:  lj.Theta,
			Intercept:       lj.Intercept,
			SlopeX:          append([]float64(nil), lj.SlopeX...),
			SlopeTheta:      lj.SlopeTheta,
			Wins:            lj.Wins,
		}
		m.llms = append(m.llms, l)
		m.store.add(l.CenterPrototype, l.ThetaPrototype)
		m.store.syncCoef(i, l)
	}
	// Publish the loaded model as its first serving version.
	m.publishLocked()
	return m, nil
}
