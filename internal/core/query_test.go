package core

import (
	"math"
	"testing"
	"testing/quick"

	"llmq/internal/vector"
)

func mustQuery(t *testing.T, center []float64, theta float64) Query {
	t.Helper()
	q, err := NewQuery(center, theta)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewQueryValidation(t *testing.T) {
	if _, err := NewQuery(nil, 0.5); err == nil {
		t.Error("empty centre accepted")
	}
	if _, err := NewQuery([]float64{1}, -0.5); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := NewQuery([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN radius accepted")
	}
	if _, err := NewQuery([]float64{1}, math.Inf(1)); err == nil {
		t.Error("infinite radius accepted")
	}
	q := mustQuery(t, []float64{1, 2}, 0.5)
	if q.Dim() != 2 || q.Theta != 0.5 {
		t.Errorf("query = %+v", q)
	}
}

func TestQueryVectorAndDistance(t *testing.T) {
	q := mustQuery(t, []float64{1, 2}, 0.5)
	v := q.Vector()
	if !v.Equal(vector.Of(1, 2, 0.5)) {
		t.Errorf("Vector = %v", v)
	}
	o := mustQuery(t, []float64{1, 2}, 0.9)
	// Definition 5: sqrt(||x-x'||² + (θ-θ')²).
	if got := q.Distance(o); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Distance = %v, want 0.4", got)
	}
	o2 := mustQuery(t, []float64{4, 6}, 0.5)
	if got := q.Distance(o2); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
}

func TestOverlapPredicate(t *testing.T) {
	a := mustQuery(t, []float64{0, 0}, 1)
	b := mustQuery(t, []float64{1.5, 0}, 1)
	c := mustQuery(t, []float64{3, 0}, 1)
	if !a.Overlaps(b) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	// Just touching (distance == θ+θ') counts as overlapping (Definition 6).
	d := mustQuery(t, []float64{2, 0}, 1)
	if !a.Overlaps(d) {
		t.Error("touching balls should satisfy the overlap predicate")
	}
}

func TestOverlapDegree(t *testing.T) {
	a := mustQuery(t, []float64{0, 0}, 1)
	// Identical queries: degree 1.
	if got := a.OverlapDegree(a); got != 1 {
		t.Errorf("self-overlap = %v", got)
	}
	// Just touching: degree 0 (distance equals θ+θ').
	touch := mustQuery(t, []float64{2, 0}, 1)
	if got := a.OverlapDegree(touch); got != 0 {
		t.Errorf("touching overlap = %v", got)
	}
	// Disjoint: 0.
	far := mustQuery(t, []float64{5, 0}, 1)
	if got := a.OverlapDegree(far); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	// Partial overlap lies strictly between 0 and 1.
	near := mustQuery(t, []float64{0.5, 0}, 1)
	if got := a.OverlapDegree(near); got <= 0 || got >= 1 {
		t.Errorf("partial overlap = %v", got)
	}
	// Concentric with different radii: degree reflects the radius gap.
	small := mustQuery(t, []float64{0, 0}, 0.25)
	got := a.OverlapDegree(small)
	want := 1 - 0.75/1.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("concentric overlap = %v, want %v", got, want)
	}
	// Symmetric.
	if math.Abs(a.OverlapDegree(near)-near.OverlapDegree(a)) > 1e-12 {
		t.Error("overlap degree must be symmetric")
	}
}

func TestOverlapDegreeZeroRadii(t *testing.T) {
	p := mustQuery(t, []float64{1, 1}, 0)
	q := mustQuery(t, []float64{1, 1}, 0)
	r := mustQuery(t, []float64{2, 1}, 0)
	if p.OverlapDegree(q) != 1 {
		t.Error("coincident zero-radius queries should have degree 1")
	}
	if p.OverlapDegree(r) != 0 {
		t.Error("distinct zero-radius queries should have degree 0")
	}
}

func TestContains(t *testing.T) {
	q := mustQuery(t, []float64{0, 0}, 1)
	if !q.Contains([]float64{0.5, 0.5}) {
		t.Error("interior point not contained")
	}
	if !q.Contains([]float64{1, 0}) {
		t.Error("boundary point not contained")
	}
	if q.Contains([]float64{1, 1}) {
		t.Error("exterior point contained")
	}
	if q.Contains([]float64{0.5}) {
		t.Error("wrong-dimension point contained")
	}
}

func TestQueryString(t *testing.T) {
	q := mustQuery(t, []float64{0.5, 0.25}, 0.1)
	if s := q.String(); s == "" {
		t.Error("String should not be empty")
	}
}

// Property: overlap degree is always in [0,1] and symmetric.
func TestPropertyOverlapDegreeBoundedSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, ra, rb float64) bool {
		clamp := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, lim)
		}
		a := Query{Center: vector.Of(clamp(ax, 10), clamp(ay, 10)), Theta: math.Abs(clamp(ra, 5))}
		b := Query{Center: vector.Of(clamp(bx, 10), clamp(by, 10)), Theta: math.Abs(clamp(rb, 5))}
		dab := a.OverlapDegree(b)
		dba := b.OverlapDegree(a)
		if dab < 0 || dab > 1 {
			return false
		}
		return math.Abs(dab-dba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: positive overlap degree implies the overlap predicate holds.
func TestPropertyOverlapDegreeConsistentWithPredicate(t *testing.T) {
	f := func(ax, bx, ra, rb float64) bool {
		clamp := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, lim)
		}
		a := Query{Center: vector.Of(clamp(ax, 10)), Theta: math.Abs(clamp(ra, 5))}
		b := Query{Center: vector.Of(clamp(bx, 10)), Theta: math.Abs(clamp(rb, 5))}
		if a.OverlapDegree(b) > 0 && !a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
