//go:build !race

// The allocation assertion is meaningless under the race detector, whose
// instrumentation allocates on the hot path; the -race run still exercises
// the same code through the other prediction tests.

package core

import (
	"math/rand"
	"testing"
)

// TestPredictionHotPathAllocationFree asserts the steady-state prediction
// path performs no heap allocation: the scratch pool carries the overlap
// buffers AND the k-d tree traversal stack (the wide path would otherwise
// allocate a stack per query), the winner search assembles its query point
// in the scratch, and nothing in between escapes. (Regression and
// Neighborhood allocate their returned slices by contract; PredictMean,
// PredictValue and Winner return scalars and must stay clean.) The d=8 case
// explicitly verifies the tree epoch is the one being exercised, so the
// assertion cannot silently pass on the flat-scan fallback.
func TestPredictionHotPathAllocationFree(t *testing.T) {
	for _, dim := range []int{2, 8} {
		vig := 0.03
		if dim > 3 {
			vig = 0.25
		}
		m := buildBenchModel(t, dim, 1000, vig, uniformGen(dim))
		if dim+1 > storeGridMaxWidth {
			if e := m.snap.Load().epoch; e == nil || e.tree == nil {
				t.Fatalf("dim %d: expected a k-d tree epoch on the wide path", dim)
			}
		}
		rng := rand.New(rand.NewSource(55))
		queries := make([]Query, 64)
		for i := range queries {
			queries[i] = randQuery(rng, dim)
		}
		x := make([]float64, dim)
		var i int
		warm := func() {
			q := queries[i%len(queries)]
			i++
			if _, err := m.PredictMean(q); err != nil {
				t.Fatal(err)
			}
			if _, _, err := m.Winner(q); err != nil {
				t.Fatal(err)
			}
			copy(x, q.Center)
			if _, err := m.PredictValue(q, x); err != nil {
				t.Fatal(err)
			}
		}
		warm() // grow the pooled scratch once
		if avg := testing.AllocsPerRun(200, warm); avg > 0.05 {
			t.Errorf("dim %d: prediction hot path allocates %.2f objects/op, want 0", dim, avg)
		}
	}
}
