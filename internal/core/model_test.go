package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"llmq/internal/vector"
)

// planeStream generates training pairs whose answers come from a linear
// regression function of the query: y = b0 + bx·x + bθ·θ. An LLM model must
// learn this exactly (a single linear mapping suffices).
func planeStream(n, dim int, b0 float64, bx []float64, btheta float64, seed int64) []TrainingPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]TrainingPair, n)
	for i := 0; i < n; i++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = rng.Float64()
		}
		theta := 0.05 + 0.1*rng.Float64()
		y := b0 + btheta*theta
		for j := range center {
			y += bx[j] * center[j]
		}
		pairs[i] = TrainingPair{Query: Query{Center: vector.Of(center...), Theta: theta}, Answer: y}
	}
	return pairs
}

// surfaceStream generates training pairs from an arbitrary answer surface
// y = f(x, θ).
func surfaceStream(n, dim int, f func(x []float64, theta float64) float64, seed int64) []TrainingPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]TrainingPair, n)
	for i := 0; i < n; i++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = rng.Float64()
		}
		theta := 0.05 + 0.1*rng.Float64()
		pairs[i] = TrainingPair{
			Query:  Query{Center: vector.Of(center...), Theta: theta},
			Answer: f(center, theta),
		}
	}
	return pairs
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(3)
	if cfg.Dim != 3 || cfg.ResolutionA != 0.25 || cfg.Gamma != 0.01 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantVig := 0.25 * (math.Sqrt(3) + 1)
	if math.Abs(m.Config().Vigilance-wantVig) > 1e-12 {
		t.Errorf("derived vigilance = %v, want %v", m.Config().Vigilance, wantVig)
	}
	if m.Config().Schedule == nil || m.Config().MinGammaSteps != 100 {
		t.Errorf("normalized config = %+v", m.Config())
	}
}

func TestNewModelValidation(t *testing.T) {
	cases := []Config{
		{Dim: 0, ResolutionA: 0.25, Gamma: 0.01},
		{Dim: 2, ResolutionA: 0, Gamma: 0.01},
		{Dim: 2, ResolutionA: 1.5, Gamma: 0.01},
		{Dim: 2, ResolutionA: 0.25, Gamma: 0},
	}
	for i, cfg := range cases {
		if _, err := NewModel(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	// Explicit vigilance bypasses ResolutionA validation.
	if _, err := NewModel(Config{Dim: 2, Vigilance: 0.7, Gamma: 0.01}); err != nil {
		t.Errorf("explicit vigilance rejected: %v", err)
	}
}

func TestObserveValidation(t *testing.T) {
	m, _ := NewModel(DefaultConfig(2))
	if _, err := m.Observe(Query{Center: vector.Of(1), Theta: 0.1}, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("dim err = %v", err)
	}
	if _, err := m.Observe(Query{Center: vector.Of(1, 2), Theta: 0.1}, math.NaN()); err == nil {
		t.Error("NaN answer accepted")
	}
	if _, err := m.Observe(Query{Center: vector.Of(1, 2), Theta: 0.1}, math.Inf(1)); err == nil {
		t.Error("Inf answer accepted")
	}
}

func TestFirstObservationCreatesPrototype(t *testing.T) {
	m, _ := NewModel(DefaultConfig(2))
	info, err := m.Observe(Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Created || info.Winner != 0 || m.K() != 1 || m.Steps() != 1 {
		t.Errorf("info = %+v, K=%d", info, m.K())
	}
	llm := m.LLMs()[0]
	if llm.Intercept != 3 {
		t.Errorf("intercept initialized to %v, want the observed answer 3", llm.Intercept)
	}
	if !llm.CenterPrototype.Equal(vector.Of(0.5, 0.5)) || llm.ThetaPrototype != 0.1 {
		t.Errorf("prototype = %v θ=%v", llm.CenterPrototype, llm.ThetaPrototype)
	}
}

func TestPaperInterceptInitialization(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.InitInterceptWithAnswer = false
	m, _ := NewModel(cfg)
	_, _ = m.Observe(Query{Center: vector.Of(0.5), Theta: 0.1}, 3)
	if m.LLMs()[0].Intercept != 0 {
		t.Errorf("paper-mode intercept = %v, want 0", m.LLMs()[0].Intercept)
	}
}

func TestDistantQuerySpawnsPrototype(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ResolutionA = 0.1 // vigilance ≈ 0.24
	m, _ := NewModel(cfg)
	_, _ = m.Observe(Query{Center: vector.Of(0.1, 0.1), Theta: 0.1}, 1)
	info, err := m.Observe(Query{Center: vector.Of(0.9, 0.9), Theta: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Created || m.K() != 2 {
		t.Errorf("distant query should spawn a prototype: %+v K=%d", info, m.K())
	}
	if !math.IsInf(info.Gamma, 1) {
		t.Errorf("growth step must not allow convergence, Γ = %v", info.Gamma)
	}
}

func TestNearbyQueryUpdatesWinner(t *testing.T) {
	cfg := DefaultConfig(2)
	m, _ := NewModel(cfg)
	_, _ = m.Observe(Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}, 1)
	before := m.LLMs()[0]
	info, err := m.Observe(Query{Center: vector.Of(0.52, 0.5), Theta: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Created {
		t.Fatal("nearby query must not spawn a prototype")
	}
	after := m.LLMs()[0]
	if after.CenterPrototype.Equal(before.CenterPrototype) {
		t.Error("prototype did not move toward the query")
	}
	if after.Intercept == before.Intercept {
		t.Error("intercept did not update")
	}
	if after.Wins != 2 {
		t.Errorf("wins = %d", after.Wins)
	}
	if info.GammaJ <= 0 || info.GammaH <= 0 || info.Gamma != math.Max(info.GammaJ, info.GammaH) {
		t.Errorf("step drifts = %+v", info)
	}
}

func TestTrainConvergesOnStationaryStream(t *testing.T) {
	pairs := planeStream(20000, 2, 0.3, []float64{0.5, -0.2}, 1.0, 1)
	m, _ := NewModel(DefaultConfig(2))
	res, err := m.Train(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("training did not converge within %d pairs (Γ=%v)", len(pairs), res.FinalGamma)
	}
	if res.Steps >= len(pairs) {
		t.Errorf("expected early termination, used %d of %d pairs", res.Steps, len(pairs))
	}
	if res.FinalGamma > m.Config().Gamma {
		t.Errorf("final Γ = %v > γ = %v", res.FinalGamma, m.Config().Gamma)
	}
	if res.K < 1 || res.K != m.K() {
		t.Errorf("K = %d vs %d", res.K, m.K())
	}
	if len(res.GammaTrace) != res.Steps {
		t.Errorf("trace length %d != steps %d", len(res.GammaTrace), res.Steps)
	}
	if !m.Converged() {
		t.Error("model must report convergence")
	}
}

func TestObserveAfterConvergenceIsFrozen(t *testing.T) {
	pairs := planeStream(20000, 2, 0.3, []float64{0.5, -0.2}, 1.0, 2)
	m, _ := NewModel(DefaultConfig(2))
	if _, err := m.Train(pairs); err != nil {
		t.Fatal(err)
	}
	if !m.Converged() {
		t.Skip("stream did not converge; freezing behaviour untestable here")
	}
	llmsBefore := m.LLMs()
	stepsBefore := m.Steps()
	info, err := m.Observe(Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Error("post-convergence observation should report converged")
	}
	if m.Steps() != stepsBefore {
		t.Error("post-convergence observation must not consume steps")
	}
	llmsAfter := m.LLMs()
	for i := range llmsBefore {
		if !llmsBefore[i].CenterPrototype.Equal(llmsAfter[i].CenterPrototype) ||
			llmsBefore[i].Intercept != llmsAfter[i].Intercept {
			t.Fatal("parameters changed after convergence")
		}
	}
}

func TestPredictMeanOnLinearSurface(t *testing.T) {
	// Answer surface is linear in (x, θ); predictions on unseen queries must
	// be accurate after training.
	b0, bx, btheta := 0.3, []float64{0.5, -0.2}, 1.0
	pairs := planeStream(8000, 2, b0, bx, btheta, 3)
	m, _ := NewModel(DefaultConfig(2))
	if _, err := m.Train(pairs); err != nil {
		t.Fatal(err)
	}
	test := planeStream(500, 2, b0, bx, btheta, 99)
	var se float64
	for _, p := range test {
		yhat, err := m.PredictMean(p.Query)
		if err != nil {
			t.Fatal(err)
		}
		se += (yhat - p.Answer) * (yhat - p.Answer)
	}
	rmse := math.Sqrt(se / float64(len(test)))
	if rmse > 0.03 {
		t.Errorf("RMSE on linear surface = %v, want <= 0.03", rmse)
	}
}

func TestPredictMeanNonLinearSurfaceBeatsGlobalMean(t *testing.T) {
	// For a non-linear answer surface the model's prediction error must be
	// clearly below the error of always predicting the global mean.
	f := func(x []float64, theta float64) float64 {
		return math.Sin(2*math.Pi*x[0])*x[1] + theta
	}
	train := surfaceStream(12000, 2, f, 4)
	cfg := DefaultConfig(2)
	cfg.ResolutionA = 0.1 // fine enough quantization to resolve the sine period
	m, _ := NewModel(cfg)
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	test := surfaceStream(1000, 2, f, 77)
	var mean float64
	for _, p := range train {
		mean += p.Answer
	}
	mean /= float64(len(train))
	var seModel, seMean float64
	for _, p := range test {
		yhat, err := m.PredictMean(p.Query)
		if err != nil {
			t.Fatal(err)
		}
		seModel += (yhat - p.Answer) * (yhat - p.Answer)
		seMean += (mean - p.Answer) * (mean - p.Answer)
	}
	if seModel >= seMean*0.25 {
		t.Errorf("model MSE %v should be well below global-mean MSE %v", seModel/float64(len(test)), seMean/float64(len(test)))
	}
}

func TestPredictBeforeTraining(t *testing.T) {
	m, _ := NewModel(DefaultConfig(2))
	q := Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}
	if _, err := m.PredictMean(q); !errors.Is(err, ErrNotTrained) {
		t.Errorf("PredictMean err = %v", err)
	}
	if _, err := m.Regression(q); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Regression err = %v", err)
	}
	if _, err := m.PredictValue(q, []float64{0.5, 0.5}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("PredictValue err = %v", err)
	}
	if _, _, err := m.Neighborhood(q); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Neighborhood err = %v", err)
	}
}

func TestPredictDimensionErrors(t *testing.T) {
	m, _ := NewModel(DefaultConfig(2))
	_, _ = m.Observe(Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}, 1)
	bad := Query{Center: vector.Of(0.5), Theta: 0.1}
	if _, err := m.PredictMean(bad); !errors.Is(err, ErrDimension) {
		t.Errorf("PredictMean err = %v", err)
	}
	if _, err := m.Regression(bad); !errors.Is(err, ErrDimension) {
		t.Errorf("Regression err = %v", err)
	}
	good := Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}
	if _, err := m.PredictValue(good, []float64{0.1}); !errors.Is(err, ErrDimension) {
		t.Errorf("PredictValue err = %v", err)
	}
	if _, _, err := m.Neighborhood(bad); !errors.Is(err, ErrDimension) {
		t.Errorf("Neighborhood err = %v", err)
	}
}

func TestPredictMeanExtrapolatesWhenNoOverlap(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ResolutionA = 0.05
	m, _ := NewModel(cfg)
	// Single prototype near 0.2.
	for i := 0; i < 50; i++ {
		_, _ = m.Observe(Query{Center: vector.Of(0.2), Theta: 0.05}, 1.0)
	}
	// A far-away query that overlaps nothing still gets an answer from the
	// closest prototype (Case 3 of Algorithm 3).
	far := Query{Center: vector.Of(0.9), Theta: 0.01}
	qs, _, err := m.Neighborhood(far)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Fatalf("expected empty neighbourhood, got %d prototypes", len(qs))
	}
	if _, err := m.PredictMean(far); err != nil {
		t.Errorf("extrapolated PredictMean failed: %v", err)
	}
	models, err := m.Regression(far)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Weight != 0 {
		t.Errorf("extrapolated regression = %+v", models)
	}
	if _, err := m.PredictValue(far, []float64{0.9}); err != nil {
		t.Errorf("extrapolated PredictValue failed: %v", err)
	}
}

func TestRegressionRecoversLocalSlopes(t *testing.T) {
	// Data function u = g(x) = 2x over [0,1]; queries report the mean of u in
	// D(x0,θ), which for a linear g equals g(x0). The learned local models
	// must therefore have slope ≈ 2 wherever they have seen enough queries.
	g := func(x []float64, theta float64) float64 { return 2 * x[0] }
	train := surfaceStream(15000, 1, g, 5)
	m, _ := NewModel(DefaultConfig(1))
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	q := Query{Center: vector.Of(0.5), Theta: 0.2}
	models, err := m.Regression(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("no local models returned")
	}
	var weightSum float64
	for _, lm := range models {
		weightSum += lm.Weight
		// Each overlapping local model should approximate u = 2x: prediction
		// at its own centre should be close to 2*centre.
		pred := lm.Predict(lm.Center)
		want := 2 * lm.Center[0]
		if math.Abs(pred-want) > 0.15 {
			t.Errorf("local model at %v predicts %v, want ≈ %v", lm.Center, pred, want)
		}
	}
	if math.Abs(weightSum-1) > 1e-9 {
		t.Errorf("normalized weights sum to %v", weightSum)
	}
}

func TestPredictValueApproximatesDataFunction(t *testing.T) {
	// Same setting as above: û(x) should approximate g(x) = 2x.
	g := func(x []float64, theta float64) float64 { return 2 * x[0] }
	train := surfaceStream(15000, 1, g, 6)
	m, _ := NewModel(DefaultConfig(1))
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var se float64
	const n = 200
	for i := 0; i < n; i++ {
		x := 0.1 + 0.8*rng.Float64()
		uhat, err := m.PredictValueAt([]float64{x}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		se += (uhat - 2*x) * (uhat - 2*x)
	}
	rmse := math.Sqrt(se / n)
	if rmse > 0.1 {
		t.Errorf("data-value RMSE = %v", rmse)
	}
}

func TestPredictValueAtValidation(t *testing.T) {
	m, _ := NewModel(DefaultConfig(1))
	_, _ = m.Observe(Query{Center: vector.Of(0.5), Theta: 0.1}, 1)
	if _, err := m.PredictValueAt([]float64{0.5}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := m.PredictValueAt(nil, 0.1); err == nil {
		t.Error("empty point accepted")
	}
}

func TestResolutionControlsPrototypeCount(t *testing.T) {
	f := func(x []float64, theta float64) float64 { return x[0] + x[1] }
	train := surfaceStream(5000, 2, f, 7)
	countFor := func(a float64) int {
		cfg := DefaultConfig(2)
		cfg.ResolutionA = a
		m, _ := NewModel(cfg)
		if _, err := m.Train(train); err != nil {
			t.Fatal(err)
		}
		return m.K()
	}
	coarse := countFor(1.0)
	medium := countFor(0.25)
	fine := countFor(0.08)
	if coarse != 1 {
		t.Errorf("a=1 should give a single prototype, got %d", coarse)
	}
	if !(fine > medium && medium > coarse) {
		t.Errorf("K not monotone in resolution: fine=%d medium=%d coarse=%d", fine, medium, coarse)
	}
}

func TestConstantScheduleDoesNotConverge(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Schedule = Constant{Eta: 0.3}
	pairs := planeStream(3000, 2, 0.3, []float64{0.5, -0.2}, 1.0, 9)
	m, _ := NewModel(cfg)
	res, err := m.Train(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// With a non-decaying rate on a noisy stream the Γ criterion generally
	// keeps firing above γ; the training must still terminate by exhausting
	// the stream and remain usable.
	if res.Steps == 0 || m.K() == 0 {
		t.Errorf("training result = %+v", res)
	}
	if _, err := m.PredictMean(pairs[0].Query); err != nil {
		t.Errorf("prediction after constant-rate training failed: %v", err)
	}
}

func TestSchedules(t *testing.T) {
	h := Hyperbolic{}
	if math.Abs(h.Rate(1)-0.5) > 1e-12 || math.Abs(h.Rate(9)-0.1) > 1e-12 {
		t.Errorf("hyperbolic rates = %v, %v", h.Rate(1), h.Rate(9))
	}
	if h.Rate(0) != h.Rate(1) {
		t.Error("out-of-range step should clamp")
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
	c := Constant{Eta: 0.2}
	if c.Rate(1) != 0.2 || c.Rate(1000) != 0.2 {
		t.Error("constant schedule must be constant")
	}
	if !strings.Contains(c.Name(), "0.2") {
		t.Errorf("constant name = %q", c.Name())
	}
	p := PolynomialDecay{Eta0: 1, Power: 1}
	if math.Abs(p.Rate(9)-h.Rate(9)) > 1e-12 {
		t.Error("poly(1,1) must equal hyperbolic")
	}
	pd := PolynomialDecay{} // defaults
	if pd.Rate(0) <= 0 || pd.Rate(10) >= 1 {
		t.Errorf("default poly rates = %v, %v", pd.Rate(0), pd.Rate(10))
	}
	if pd.Name() == "" {
		t.Error("poly name empty")
	}
	big := PolynomialDecay{Eta0: 100, Power: 0.6}
	if big.Rate(1) > 1 {
		t.Error("rates must be clamped to 1")
	}
	// Rates decrease with t for decaying schedules.
	for tstep := 1; tstep < 100; tstep++ {
		if h.Rate(tstep+1) > h.Rate(tstep) {
			t.Fatal("hyperbolic schedule must be non-increasing")
		}
	}
}

func TestGammaTraceDecreases(t *testing.T) {
	pairs := planeStream(6000, 2, 0.3, []float64{0.5, -0.2}, 1.0, 10)
	m, _ := NewModel(DefaultConfig(2))
	res, err := m.Train(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the median Γ of an early window with a late window (ignoring
	// +Inf growth steps).
	finite := func(lo, hi int) []float64 {
		var out []float64
		for _, g := range res.GammaTrace[lo:hi] {
			if !math.IsInf(g, 1) {
				out = append(out, g)
			}
		}
		return out
	}
	if len(res.GammaTrace) < 400 {
		t.Skip("trace too short to compare windows")
	}
	early := finite(100, 200)
	late := finite(len(res.GammaTrace)-100, len(res.GammaTrace))
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(early) == 0 || len(late) == 0 {
		t.Skip("not enough finite steps in the windows")
	}
	if avg(late) >= avg(early) {
		t.Errorf("Γ did not decrease: early %v late %v", avg(early), avg(late))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pairs := planeStream(5000, 2, 0.3, []float64{0.5, -0.2}, 1.0, 11)
	m, _ := NewModel(DefaultConfig(2))
	if _, err := m.Train(pairs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != m.K() || loaded.Steps() != m.Steps() || loaded.Converged() != m.Converged() {
		t.Errorf("loaded model differs: K %d/%d steps %d/%d", loaded.K(), m.K(), loaded.Steps(), m.Steps())
	}
	// Predictions must be identical.
	test := planeStream(100, 2, 0.3, []float64{0.5, -0.2}, 1.0, 12)
	for _, p := range test {
		a, err1 := m.PredictMean(p.Query)
		b, err2 := loaded.PredictMean(p.Query)
		if err1 != nil || err2 != nil || math.Abs(a-b) > 1e-12 {
			t.Fatalf("prediction mismatch after reload: %v vs %v (%v %v)", a, b, err1, err2)
		}
	}
}

func TestLoadRejectsInvalidDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":        "hello",
		"wrong version":   `{"version": 99, "dim": 2, "vigilance": 0.5, "gamma": 0.01}`,
		"bad dims":        `{"version": 1, "dim": 0, "vigilance": 0.5, "gamma": 0.01}`,
		"bad llm dim":     `{"version": 1, "dim": 2, "vigilance": 0.5, "gamma": 0.01, "llms": [{"center": [1], "slope_x": [1, 2]}]}`,
		"non-finite vals": `{"version": 1, "dim": 1, "vigilance": 0.5, "gamma": 0.01, "llms": [{"center": [1], "theta": 1e999, "slope_x": [0]}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); !errors.Is(err, ErrBadModelFile) {
			t.Errorf("%s: err = %v, want ErrBadModelFile", name, err)
		}
	}
}

func TestLLMDataModelTheorem3(t *testing.T) {
	// Theorem 3: over D_k, g(x) ≈ y_k + b_{X,k}(x − x_k) with intercept
	// y_k − b_{X,k}·x_k and slope b_{X,k}.
	l := &LLM{
		CenterPrototype: vector.Of(0.5, 1.0),
		ThetaPrototype:  0.2,
		Intercept:       3,
		SlopeX:          vector.Of(2, -1),
		SlopeTheta:      0.7,
	}
	dm := l.DataModel()
	wantIntercept := 3.0 - (2*0.5 + (-1)*1.0)
	if math.Abs(dm.Intercept-wantIntercept) > 1e-12 {
		t.Errorf("intercept = %v, want %v", dm.Intercept, wantIntercept)
	}
	if !dm.Slope.Equal(vector.Of(2, -1)) {
		t.Errorf("slope = %v", dm.Slope)
	}
	// DataModel.Predict must agree with EvalAtPrototypeRadius everywhere.
	for _, x := range [][]float64{{0, 0}, {0.5, 1}, {1, 2}, {-3, 4}} {
		a := dm.Predict(x)
		b := l.EvalAtPrototypeRadius(vector.Of(x...))
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("DataModel.Predict(%v) = %v, EvalAtPrototypeRadius = %v", x, a, b)
		}
	}
	if dm.String() == "" || (LocalLinear{}).String() == "" {
		t.Error("String must not be empty")
	}
}

func TestLLMEval(t *testing.T) {
	l := &LLM{
		CenterPrototype: vector.Of(1),
		ThetaPrototype:  0.5,
		Intercept:       2,
		SlopeX:          vector.Of(3),
		SlopeTheta:      4,
	}
	// f(x, θ) = 2 + 3(x−1) + 4(θ−0.5).
	got := l.Eval(vector.Of(2), 1)
	if math.Abs(got-(2+3+2)) > 1e-12 {
		t.Errorf("Eval = %v", got)
	}
	if l.Residual(vector.Of(2), 1, 10) != 10-got {
		t.Error("Residual inconsistent with Eval")
	}
	if l.Dim() != 1 {
		t.Errorf("Dim = %d", l.Dim())
	}
	pq := l.PrototypeQuery()
	if pq.Theta != 0.5 || !pq.Center.Equal(vector.Of(1)) {
		t.Errorf("PrototypeQuery = %+v", pq)
	}
}

func TestLLMsReturnsDeepCopies(t *testing.T) {
	m, _ := NewModel(DefaultConfig(1))
	_, _ = m.Observe(Query{Center: vector.Of(0.5), Theta: 0.1}, 1)
	copies := m.LLMs()
	copies[0].Intercept = 999
	copies[0].CenterPrototype[0] = 999
	if m.LLMs()[0].Intercept == 999 || m.LLMs()[0].CenterPrototype[0] == 999 {
		t.Error("LLMs must return deep copies")
	}
}

func BenchmarkObserve2D(b *testing.B) {
	m, _ := NewModel(DefaultConfig(2))
	pairs := planeStream(4096, 2, 0.3, []float64{0.5, -0.2}, 1.0, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := m.Observe(p.Query, p.Answer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictMean2D(b *testing.B) {
	m, _ := NewModel(DefaultConfig(2))
	pairs := planeStream(8000, 2, 0.3, []float64{0.5, -0.2}, 1.0, 14)
	if _, err := m.Train(pairs); err != nil {
		b.Fatal(err)
	}
	q := Query{Center: vector.Of(0.4, 0.6), Theta: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictMean(q); err != nil {
			b.Fatal(err)
		}
	}
}
