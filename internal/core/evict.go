package core

import (
	"fmt"
	"math"
	"sort"
)

// Bounded-capacity streaming training: when Config.MaxPrototypes caps the
// live prototype count, a spawn that exceeds the cap triggers an eviction
// pass. The pass scores every live prototype with the configured
// EvictionPolicy, tombstones (or merges away) the lowest-scoring ones until
// the count is back inside a hysteresis band below the cap, and installs a
// fresh read epoch over the survivors — all under the writer lock, published
// like any other training step. On the chunked copy-on-write store the whole
// pass costs a handful of chunk copies plus one epoch rebuild; snapshots
// pinned before the pass keep serving their own version of every evicted
// row.

// EvictionPolicy ranks prototypes for eviction when a bounded model exceeds
// its capacity: the lowest-scoring prototypes are evicted first. Scores are
// computed at the start of an eviction pass from each prototype's absorbed
// pair count and the number of training steps since it last absorbed one —
// the two signals the store maintains per slot (copy-on-write versioned with
// the rows, so a policy never reads another version's clock).
type EvictionPolicy interface {
	// Score returns the retention score of a prototype that has absorbed
	// wins pairs, the last one sinceWin training steps ago. Higher means
	// keep.
	Score(wins, sinceWin int) float64
	// Name identifies the policy in command-line flags and serialized
	// models.
	Name() string
}

// WinDecay scores a prototype by its win count decayed by the time since
// its last win: wins · 2^(−sinceWin/HalfLife). A prototype that absorbed
// many pairs survives a dry spell proportional to its mass, so the policy
// retires regions the stream has left while keeping long-lived heavy
// prototypes through short workload excursions — the usual default for
// drifting workloads. HalfLife is in training steps; values ≤ 0 use 1024
// (Config validation derives a capacity-scaled default instead).
type WinDecay struct {
	// HalfLife is the number of training steps over which an idle
	// prototype's score halves.
	HalfLife int
}

// Score implements EvictionPolicy.
func (p WinDecay) Score(wins, sinceWin int) float64 {
	hl := p.HalfLife
	if hl <= 0 {
		hl = 1024
	}
	return float64(wins) * math.Exp2(-float64(sinceWin)/float64(hl))
}

// Name implements EvictionPolicy.
func (p WinDecay) Name() string { return "windecay" }

// Recency scores a prototype purely by how recently it absorbed a pair
// (least-recently-won evicted first), ignoring win counts entirely: the
// aggressive tracker for fast-moving workloads, where a once-heavy
// prototype the stream has abandoned is exactly what should go first.
type Recency struct{}

// Score implements EvictionPolicy.
func (Recency) Score(wins, sinceWin int) float64 { return -float64(sinceWin) }

// Name implements EvictionPolicy.
func (Recency) Name() string { return "recency" }

// ParseEvictionPolicy resolves a policy by its flag name ("windecay" or
// "recency"); the empty string selects the default (WinDecay).
func ParseEvictionPolicy(name string) (EvictionPolicy, error) {
	switch name {
	case "", "windecay":
		return WinDecay{}, nil
	case "recency":
		return Recency{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown eviction policy %q (want windecay or recency)", ErrBadConfig, name)
	}
}

// normalizeEviction fills policy defaults for a capacity of max: a nil
// policy becomes WinDecay, and a WinDecay without a half-life gets one
// scaled to the capacity (8·max steps, floored at 1024) — roughly the
// stream length over which a full prototype generation turns over.
func normalizeEviction(p EvictionPolicy, max int) EvictionPolicy {
	if p == nil {
		p = WinDecay{}
	}
	if wd, ok := p.(WinDecay); ok && wd.HalfLife <= 0 {
		hl := 8 * max
		if hl < 1024 {
			hl = 1024
		}
		return WinDecay{HalfLife: hl}
	}
	return p
}

// SetCapacity installs or changes the bounded-capacity configuration at
// runtime: the live-prototype cap, the eviction policy (nil keeps the
// current one, defaulting if none is set) and the merge-on-evict behaviour.
// If the live count already exceeds the new cap, the lowest-scoring
// prototypes are evicted (or merged) immediately and a new version is
// published — re-capping a large trained model at load time is the
// intended use. max = 0 removes the cap. SetCapacity operates even on a
// converged (frozen) model: capacity is an operational property, not a
// training step.
func (m *Model) SetCapacity(max int, policy EvictionPolicy, merge bool) error {
	if max < 0 {
		return fmt.Errorf("%w: MaxPrototypes must be non-negative, got %d", ErrBadConfig, max)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if policy == nil {
		policy = m.capCfg.Load().policy
	}
	if max > 0 {
		policy = normalizeEviction(policy, max)
	}
	// capCfg is the single source of truth for the capacity fields (m.cfg
	// stays immutable after NewModel, so lock-free readers can copy it);
	// store the new value before any eviction, so a concurrent Save never
	// pairs the old capacity block with the new prototype set.
	m.capCfg.Store(&capacityConfig{max: max, policy: policy, merge: merge})
	if max > 0 && m.store.live > max {
		m.evictLocked(-1)
		m.publishLocked()
	}
	return nil
}

// evictLocked enforces the capacity: it scores every live slot (except
// protect, the slot that just spawned — evicting the pair that triggered
// the pass would just respawn it), sorts ascending, and evicts or merges
// victims until the live count reaches the hysteresis target below the cap,
// then installs a fresh epoch over the survivors. Returns the number of
// prototypes removed. The caller holds the writer lock and publishes
// afterwards.
func (m *Model) evictLocked(protect int) int {
	cc := m.capCfg.Load()
	max := cc.max
	s := m.store
	if max <= 0 || s.live <= max {
		return 0
	}
	// Hysteresis: evict down to max − max/16 (band floored at 1 so small
	// caps still batch) so capacity enforcement runs in batches and its
	// epoch rebuild amortizes over the spawns that refill the band,
	// instead of once per spawn at the cap.
	band := max / 16
	if band < 1 {
		band = 1
	}
	target := max - band
	if target < 1 {
		target = 1
	}
	policy := normalizeEviction(cc.policy, max)
	type scored struct {
		slot  int
		stamp int
		score float64
	}
	cands := make([]scored, 0, s.live)
	for k := 0; k < s.rows; k++ {
		if k == protect || s.isTombstone(k) {
			continue
		}
		cands = append(cands, scored{k, s.stamp(k), policy.Score(s.win(k), m.steps-s.stamp(k))})
	}
	// Ties break on the last-win stamp (older loses), then the slot id.
	// Exact score ties are real — the policies map small-integer inputs
	// through float arithmetic — and the stamp is the tie-break that is
	// stable across slot renumbering: stamps are unique among live
	// prototypes (one winner per step; a merge inherits the later stamp),
	// while slot ids get permuted whenever a Load or compaction rebuilds
	// the slot space. Without this, a model recovered from a checkpoint
	// could evict a different prototype than the uncrashed run.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		if cands[i].stamp != cands[j].stamp {
			return cands[i].stamp < cands[j].stamp
		}
		return cands[i].slot < cands[j].slot
	})
	n := s.live - target
	if n > len(cands) {
		n = len(cands)
	}
	// Tombstone every victim first (saving the merge inputs), THEN install
	// the pass's single fresh index, THEN merge. Interleaving a per-victim
	// nearest-survivor scan with the tombstoning would cost O(victims ·
	// rows · d) — quadratic on a deep shrink of a large model — while this
	// order pays one rebuild (or compaction) and routes every merge query
	// through the epoch index over the survivors.
	type savedVictim struct {
		l     *LLM
		stamp int
	}
	var victims []savedVictim
	if cc.merge {
		victims = make([]savedVictim, 0, n)
	}
	for i := 0; i < n; i++ {
		v := cands[i].slot
		if cc.merge {
			victims = append(victims, savedVictim{m.llms[v], s.stamp(v)})
		}
		s.evictSlot(v)
		m.llms[v] = nil
	}
	// Steady-state eviction keeps tombstones bounded by the hysteresis
	// band, but a deep shrink (SetCapacity, or loading an over-cap file)
	// can leave the slot space dominated by tombstones — and row scans,
	// scoring passes and Save all walk every slot. Once tombstones
	// outnumber the survivors, rebuild the slot space outright. Only the
	// deep-shrink callers (protect < 0) compact: compaction renumbers
	// slots, and the spawn-driven path has already recorded the new
	// prototype's slot id in its StepInfo — that path also cannot reach a
	// majority-tombstone store, since spawning reuses free slots long
	// before tombstones outnumber the live set.
	if protect < 0 && s.rows > 2*s.live {
		m.compactLocked() // installs its own fresh epoch
	} else if s.epoch != nil {
		// The old epoch indexes the victims' stale positions; install a
		// fresh one over the survivors before the lock is released so no
		// search ever prunes against a tombstoned row's stale geometry.
		s.rebuildEpoch()
	}
	for _, v := range victims {
		m.mergeVictim(v.l, v.stamp)
	}
	if len(victims) > 0 && m.store.epoch != nil {
		// The merges moved survivors; re-tighten the epoch they drifted
		// from (the searches above stayed exact through the drift slack).
		m.store.rebuildEpoch()
	}
	return n
}

// compactLocked renumbers the store to exactly its live prototypes: a
// fresh chunk table holding the survivors in slot order, no tombstones, no
// free list, no revived slots, and a fresh epoch. Published snapshots are
// untouched — they hold their own chunk tables and epochs, and slot ids
// are only ever meaningful within one version (slot reuse already recycles
// them between versions). The caller holds the writer lock and publishes
// afterwards.
func (m *Model) compactLocked() {
	s := m.store
	ns := newProtoStore(m.cfg.Dim, m.cfg.Vigilance)
	nllms := make([]*LLM, 0, s.live)
	for k := 0; k < s.rows; k++ {
		if s.isTombstone(k) {
			continue
		}
		l := m.llms[k]
		// addRow, not add: one explicit epoch build below replaces the
		// O(log K) intermediate builds the per-append trigger would pay
		// for and discard.
		ns.addRow(l.CenterPrototype, l.ThetaPrototype)
		ns.syncCoef(len(nllms), l)
		ns.setStamp(len(nllms), s.stamp(k))
		nllms = append(nllms, l)
	}
	ns.rebuildEpoch() // drops to the flat scan below the size gate
	m.store = ns
	m.llms = nllms
}

// mergeVictim folds an already-tombstoned victim into its nearest
// surviving prototype: the survivor's prototype moves to the win-weighted
// centroid of the two (in the query space, radius included) and its local
// linear coefficients become the win-weighted blend — the victim's learned
// mass stays in the model instead of being discarded. The survivor keeps
// its own RLS solver state (the blend adjusts the coefficients; the
// inverse-covariance continues from the survivor's history) and inherits
// the later of the two win stamps. The nearest survivor comes from the
// store's epoch-accelerated winner search over the live rows — exact
// through the drift slack as earlier merges move survivors, with masked
// tombstones transparent to every path.
func (m *Model) mergeVictim(lv *LLM, stampV int) {
	s := m.store
	if cap(s.qbuf) < s.width {
		s.qbuf = make([]float64, s.width)
	}
	qflat := s.qbuf[:s.width]
	copy(qflat, lv.CenterPrototype)
	qflat[s.width-1] = lv.ThetaPrototype
	n, _ := s.winner(qflat)
	if n < 0 || m.llms[n] == nil {
		// No survivor (cannot happen while the hysteresis target is ≥ 1);
		// degrade to a plain eviction.
		return
	}
	ln := m.llms[n]
	wv, wn := float64(lv.Wins), float64(ln.Wins)
	tot := wv + wn
	if tot <= 0 {
		return
	}
	for i := range ln.CenterPrototype {
		ln.CenterPrototype[i] = (wn*ln.CenterPrototype[i] + wv*lv.CenterPrototype[i]) / tot
	}
	ln.ThetaPrototype = (wn*ln.ThetaPrototype + wv*lv.ThetaPrototype) / tot
	ln.Intercept = (wn*ln.Intercept + wv*lv.Intercept) / tot
	for i := range ln.SlopeX {
		ln.SlopeX[i] = (wn*ln.SlopeX[i] + wv*lv.SlopeX[i]) / tot
	}
	ln.SlopeTheta = (wn*ln.SlopeTheta + wv*lv.SlopeTheta) / tot
	ln.Wins += lv.Wins
	// updateRow, not update: the survivor's move is accounted against the
	// drift budget but must not trigger a rebuild per victim — evictLocked
	// installs the pass's single fresh epoch when all victims are done.
	s.updateRow(n, ln.CenterPrototype, ln.ThetaPrototype)
	s.syncCoef(n, ln)
	if stampV > s.stamp(n) {
		s.setStamp(n, stampV)
	}
}
