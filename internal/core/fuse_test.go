package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"llmq/internal/index"
	"llmq/internal/vector"
)

// scatterConfig is the shared configuration of the scatter/fuse tests: a
// vigilance that yields a few dozen prototypes and a gamma small enough
// that the models never converge (a converged model freezes, which would
// desynchronize continue-training comparisons between a parent and its
// split/fuse round trip).
func scatterConfig(dim int) Config {
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.25
	cfg.Gamma = 1e-12
	return cfg
}

func bumpySurface(x []float64, theta float64) float64 {
	y := 3 * theta
	for i, xi := range x {
		y += math.Sin(4*xi) + 0.5*float64(i+1)*xi*xi
	}
	return y
}

// reconstructScatter re-runs the single-model fusion loop over one shard's
// raw terms: normalize the degrees by their running total in slot order,
// then accumulate. It must land on the exact floats the View methods
// produce, because it is the same values in the same operation order.
func reconstructScatter(res ScatterResult) (mean, value float64) {
	var total float64
	for _, c := range res.Contribs {
		total += c.Degree
	}
	for _, c := range res.Contribs {
		w := c.Degree / total
		mean += w * c.Mean
		value += w * c.Value
	}
	return mean, value
}

// TestScatterScanReconstructsPredictions is the local half of the sharding
// bit-identity contract: merging a single model's own ScatterScan result
// must reproduce PredictMean, PredictValue and Regression bit for bit, on
// both the overlap path and the empty-overlap winner extrapolation path.
func TestScatterScanReconstructsPredictions(t *testing.T) {
	m, err := NewModel(scatterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainBatch(surfaceStream(600, 2, bumpySurface, 11)); err != nil {
		t.Fatal(err)
	}
	v := m.View()
	if v.Dim() != 2 {
		t.Fatalf("View.Dim() = %d, want 2", v.Dim())
	}
	if v.MaxTheta() <= 0 {
		t.Fatalf("View.MaxTheta() = %v, want > 0", v.MaxTheta())
	}
	rng := rand.New(rand.NewSource(12))
	overlapped, extrapolated := 0, 0
	for i := 0; i < 400; i++ {
		q := Query{
			Center: vector.Of(rng.Float64()*1.6-0.3, rng.Float64()*1.6-0.3),
			Theta:  rng.Float64() * 0.2,
		}
		at := []float64{rng.Float64(), rng.Float64()}
		res, err := v.ScatterScan(q, at, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Live != v.K() || res.MaxTheta != v.MaxTheta() {
			t.Fatalf("ScatterScan live/maxTheta = %d/%v, view says %d/%v",
				res.Live, res.MaxTheta, v.K(), v.MaxTheta())
		}
		wantMean, err := v.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		wantValue, err := v.PredictValue(q, at)
		if err != nil {
			t.Fatal(err)
		}
		wantModels, err := v.Regression(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Contribs) == 0 {
			extrapolated++
			if math.IsInf(res.WinnerDist, 1) {
				t.Fatalf("empty overlap on a live model must report a finite winner distance")
			}
			if res.WinnerMean != wantMean {
				t.Fatalf("winner mean %v, PredictMean %v", res.WinnerMean, wantMean)
			}
			if res.WinnerValue != wantValue {
				t.Fatalf("winner value %v, PredictValue %v", res.WinnerValue, wantValue)
			}
			if res.WinnerModel == nil || !reflect.DeepEqual(*res.WinnerModel, wantModels[0]) {
				t.Fatalf("winner model %+v, Regression %+v", res.WinnerModel, wantModels[0])
			}
			continue
		}
		overlapped++
		gotMean, gotValue := reconstructScatter(res)
		if gotMean != wantMean {
			t.Fatalf("reconstructed mean %v, PredictMean %v", gotMean, wantMean)
		}
		if gotValue != wantValue {
			t.Fatalf("reconstructed value %v, PredictValue %v", gotValue, wantValue)
		}
		if len(res.Contribs) != len(wantModels) {
			t.Fatalf("%d contributions, Regression returned %d models", len(res.Contribs), len(wantModels))
		}
		var total float64
		for _, c := range res.Contribs {
			total += c.Degree
		}
		for j, c := range res.Contribs {
			model := *c.Model
			model.Weight = c.Degree / total
			if !reflect.DeepEqual(model, wantModels[j]) {
				t.Fatalf("contribution %d model %+v, Regression %+v", j, model, wantModels[j])
			}
		}
	}
	if overlapped == 0 || extrapolated == 0 {
		t.Fatalf("query mix exercised only one path: %d overlapped, %d extrapolated", overlapped, extrapolated)
	}

	// An empty model scatters to nothing, with no error.
	empty, err := NewModel(scatterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := empty.View().ScatterScan(Query{Center: vector.Of(0, 0), Theta: 0.1}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 0 || len(res.Contribs) != 0 || !math.IsInf(res.WinnerDist, 1) {
		t.Fatalf("empty model scatter = %+v", res)
	}

	// Dimension mismatches are rejected.
	if _, err := v.ScatterScan(Query{Center: vector.Of(0.5), Theta: 0.1}, nil, false); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad query dim: %v", err)
	}
	if _, err := v.ScatterScan(Query{Center: vector.Of(0.5, 0.5), Theta: 0.1}, []float64{1}, false); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad at dim: %v", err)
	}
}

// TestSplitFuseRoundTrip splits a trained model into one group and fuses it
// back: the round trip must preserve every answer bit for bit, and — because
// Split and Fuse carry the full writer state including the RLS solver
// matrices — training the original and the round trip on the same further
// stream must keep them bit-identical.
func TestSplitFuseRoundTrip(t *testing.T) {
	m, err := NewModel(scatterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainBatch(surfaceStream(500, 2, bumpySurface, 21)); err != nil {
		t.Fatal(err)
	}
	kids, err := Split(m, 1, func([]float64, float64) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	child := kids[0]
	if child.K() != m.K() || child.Steps() != m.Steps() {
		t.Fatalf("split child K/steps %d/%d, parent %d/%d", child.K(), child.Steps(), m.K(), m.Steps())
	}
	if child.Converged() {
		t.Fatal("split child must start unconverged")
	}
	fused, err := Fuse(m.Config(), child)
	if err != nil {
		t.Fatal(err)
	}
	if fused.K() != m.K() || fused.Steps() != m.Steps() {
		t.Fatalf("fused K/steps %d/%d, parent %d/%d", fused.K(), fused.Steps(), m.K(), m.Steps())
	}
	compare := func(stage string) {
		t.Helper()
		rng := rand.New(rand.NewSource(22))
		for i := 0; i < 200; i++ {
			q := Query{Center: vector.Of(rng.Float64(), rng.Float64()), Theta: rng.Float64() * 0.2}
			at := []float64{rng.Float64(), rng.Float64()}
			for name, other := range map[string]*Model{"split": child, "fuse": fused} {
				pm, err1 := m.View().PredictMean(q)
				om, err2 := other.View().PredictMean(q)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if pm != om {
					t.Fatalf("%s/%s: PredictMean %v, parent %v", stage, name, om, pm)
				}
				pv, err1 := m.View().PredictValue(q, at)
				ov, err2 := other.View().PredictValue(q, at)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if pv != ov {
					t.Fatalf("%s/%s: PredictValue %v, parent %v", stage, name, ov, pv)
				}
			}
		}
	}
	compare("fresh")
	extra := surfaceStream(250, 2, bumpySurface, 23)
	for _, mm := range []*Model{m, child, fused} {
		if _, err := mm.TrainBatch(extra); err != nil {
			t.Fatal(err)
		}
	}
	if m.Converged() {
		t.Fatal("parent converged mid-test; the continue-training comparison needs an unconverged stream")
	}
	compare("continued")
}

// TestSplitByPartitionRegions splits a model along an index.Partition: every
// child prototype must lie inside its leaf's region box, the prototype count
// must be conserved, and any query whose routing set (region box distance
// within θ plus the child's MaxTheta) is a single leaf must get a
// bit-identical answer from that child alone — the point-to-point fast path
// of the sharded router.
func TestSplitByPartitionRegions(t *testing.T) {
	m, err := NewModel(scatterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pairs := surfaceStream(800, 2, bumpySurface, 31)
	if _, err := m.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	sample := make([]float64, 0, 2*len(pairs))
	for _, p := range pairs {
		sample = append(sample, p.Query.Center...)
	}
	part, err := index.NewPartition(2, 4, sample, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	kids, err := Split(m, 4, func(center []float64, _ float64) int { return part.Locate(center) })
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	extra := make([]float64, 4)
	for leaf, child := range kids {
		sum += child.K()
		extra[leaf] = child.View().MaxTheta()
		lo, hi, err := part.Region(leaf)
		if err != nil {
			t.Fatal(err)
		}
		child.mu.Lock()
		for slot, l := range child.llms {
			if l == nil {
				continue
			}
			for a, x := range l.CenterPrototype {
				if x < lo[a] || x >= hi[a] {
					t.Errorf("leaf %d slot %d: centre %v outside region [%v, %v)", leaf, slot, l.CenterPrototype, lo, hi)
				}
			}
		}
		child.mu.Unlock()
	}
	if sum != m.K() {
		t.Fatalf("children hold %d prototypes, parent %d", sum, m.K())
	}
	rng := rand.New(rand.NewSource(32))
	matched := 0
	for i := 0; i < 600; i++ {
		q := Query{Center: vector.Of(rng.Float64(), rng.Float64()), Theta: rng.Float64() * 0.05}
		leaves := part.Touching(q.Center, q.Theta, extra, nil)
		if len(leaves) != 1 || kids[leaves[0]].K() == 0 {
			continue
		}
		res, err := m.View().ScatterScan(q, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Contribs) == 0 {
			// The parent extrapolates from its global winner, which may live
			// in another region; point-to-point routing only covers the
			// overlap path. The sharded winner fallback is the router's job.
			continue
		}
		matched++
		want, err := m.View().PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kids[leaves[0]].View().PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("single-leaf query %v: child %d answered %v, parent %v", q, leaves[0], got, want)
		}
	}
	if matched < 50 {
		t.Fatalf("only %d single-leaf overlap queries; the point-to-point path is undertested", matched)
	}
}

// TestFuseStampsAndValidation covers the bookkeeping edges of Fuse and
// Split: stamp uniqueness after the rank remap, the summed step clock,
// capacity enforcement on the fused result, and argument validation.
func TestFuseStampsAndValidation(t *testing.T) {
	a, err := NewModel(scatterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(scatterConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TrainBatch(surfaceStream(300, 2, bumpySurface, 41)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TrainBatch(surfaceStream(300, 2, bumpySurface, 42)); err != nil {
		t.Fatal(err)
	}
	fused, err := Fuse(a.Config(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if fused.K() != a.K()+b.K() {
		t.Fatalf("fused K = %d, want %d", fused.K(), a.K()+b.K())
	}
	if fused.Steps() != a.Steps()+b.Steps() {
		t.Fatalf("fused steps = %d, want %d", fused.Steps(), a.Steps()+b.Steps())
	}
	seen := map[int]bool{}
	fused.mu.Lock()
	for slot, l := range fused.llms {
		if l == nil {
			continue
		}
		st := fused.store.stamp(slot)
		if st <= 0 || st > fused.steps {
			t.Errorf("slot %d stamp %d outside (0, %d]", slot, st, fused.steps)
		}
		if seen[st] {
			t.Errorf("duplicate stamp %d", st)
		}
		seen[st] = true
	}
	fused.mu.Unlock()

	// A capacity below the combined prototype count is enforced immediately.
	capCfg := a.Config()
	capCfg.MaxPrototypes = fused.K() / 2
	small, err := Fuse(capCfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if small.K() > capCfg.MaxPrototypes {
		t.Fatalf("capacity-bounded fuse holds %d prototypes, cap %d", small.K(), capCfg.MaxPrototypes)
	}

	if _, err := Fuse(a.Config()); err == nil {
		t.Fatal("Fuse with no models accepted")
	}
	wrong := a.Config()
	wrong.Dim = 3
	if _, err := Fuse(wrong, a); !errors.Is(err, ErrDimension) {
		t.Fatalf("dim-mismatched fuse: %v", err)
	}
	if _, err := Split(a, 0, func([]float64, float64) int { return 0 }); err == nil {
		t.Fatal("Split with 0 groups accepted")
	}
	if _, err := Split(a, 2, func([]float64, float64) int { return 5 }); err == nil {
		t.Fatal("out-of-range assign accepted")
	}
}
