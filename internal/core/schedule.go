package core

import (
	"fmt"
	"math"
)

// Schedule produces the SGD learning rate η_t for training step t (t >= 1).
// The paper (Section II-B) requires a slowly decreasing sequence with
// Ση_t = ∞ and Ση_t² < ∞ and adopts the hyperbolic schedule η_t = 1/(t+1).
type Schedule interface {
	// Rate returns η_t for step t >= 1.
	Rate(t int) float64
	// Name identifies the schedule in diagnostics.
	Name() string
}

// Hyperbolic is the paper's default schedule η_t = 1/(t+1).
type Hyperbolic struct{}

// Rate implements Schedule.
func (Hyperbolic) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	return 1 / float64(t+1)
}

// Name implements Schedule.
func (Hyperbolic) Name() string { return "hyperbolic" }

// Constant is a fixed learning rate, provided for the learning-rate ablation;
// it violates the Robbins–Monro conditions, so Γ does not converge to zero
// and training only stops when the pair stream is exhausted.
type Constant struct {
	// Eta is the fixed rate; it must lie in (0, 1].
	Eta float64
}

// Rate implements Schedule.
func (c Constant) Rate(int) float64 { return c.Eta }

// Name implements Schedule.
func (c Constant) Name() string { return fmt.Sprintf("constant(%g)", c.Eta) }

// PolynomialDecay is η_t = η0 / (1 + t)^power, a generalization of the
// hyperbolic schedule (power = 1, η0 = 1 reproduces it). Powers in (0.5, 1]
// satisfy the Robbins–Monro conditions.
type PolynomialDecay struct {
	Eta0  float64
	Power float64
}

// Rate implements Schedule.
func (p PolynomialDecay) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	pow := p.Power
	if pow <= 0 {
		pow = 1
	}
	eta0 := p.Eta0
	if eta0 <= 0 {
		eta0 = 1
	}
	rate := eta0 / math.Pow(float64(t+1), pow)
	if rate > 1 {
		rate = 1
	}
	return rate
}

// Name implements Schedule.
func (p PolynomialDecay) Name() string {
	return fmt.Sprintf("poly(η0=%g, p=%g)", p.Eta0, p.Power)
}
