package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"llmq/internal/vector"
)

// driftStream is the non-stationary workload of the streaming-training
// tests: query centres are drawn from a window that slides along the
// diagonal of the unit cube (ping-pong, so long streams keep moving), the
// concept-drift regime bounded-capacity training exists for. Deterministic
// for a seed.
type driftStream struct {
	rng      *rand.Rand
	dim      int
	t        int
	window   float64 // window edge length
	velocity float64 // window displacement per query
}

func newDriftStream(dim int, window, velocity float64, seed int64) *driftStream {
	return &driftStream{rng: rand.New(rand.NewSource(seed)), dim: dim, window: window, velocity: velocity}
}

// pingpong folds v into [0, 1] by reflection.
func pingpong(v float64) float64 {
	v = math.Mod(v, 2)
	if v < 0 {
		v += 2
	}
	if v > 1 {
		v = 2 - v
	}
	return v
}

func (g *driftStream) next() Query {
	pos := pingpong(g.velocity * float64(g.t))
	g.t++
	x := make([]float64, g.dim)
	for j := range x {
		x[j] = pos*(1-g.window) + g.window*g.rng.Float64()
	}
	return Query{Center: vector.Of(x...), Theta: 0.03 + 0.04*g.rng.Float64()}
}

// answer is a smooth deterministic data function so RLS states evolve
// non-trivially.
func (g *driftStream) pair() (Query, float64) {
	q := g.next()
	var s float64
	for _, v := range q.Center {
		s += v
	}
	return q, math.Sin(3*s) + 0.5*q.Theta
}

// compactReference rebuilds the model from scratch out of its live
// prototypes: a fresh unbounded model whose store holds exactly the
// surviving LLMs in slot order, with no tombstones, no free list and no
// revived slots. It is the reference the tombstone machinery must be
// bit-identical to.
func compactReference(tb testing.TB, m *Model) *Model {
	tb.Helper()
	cfg := m.cfg
	cfg.MaxPrototypes = 0
	cfg.Eviction = nil
	ref, err := NewModel(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	m.mu.Lock()
	i := 0
	for k := 0; k < m.store.rows; k++ {
		if m.store.isTombstone(k) {
			continue
		}
		l := m.llms[k].clone()
		ref.llms = append(ref.llms, l)
		ref.store.add(l.CenterPrototype, l.ThetaPrototype)
		ref.store.syncCoef(i, l)
		i++
	}
	ref.steps = m.steps
	m.mu.Unlock()
	ref.publishLocked()
	return ref
}

// probeQueries spans the whole drift path, including regions whose
// prototypes have been evicted (the extrapolation paths).
func probeQueries(dim, n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, n)
	for i := range out {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		out[i] = Query{Center: vector.Of(x...), Theta: 0.02 + 0.2*rng.Float64()}
	}
	return out
}

// assertViewsAgree requires bit-identical answers from every prediction
// method across the probe set. Winner indices may differ (the capped store
// numbers by slot, the reference compactly), so winners are compared by
// distance and the prototype behind them.
func assertViewsAgree(t *testing.T, tag string, got, want View, probes []Query) {
	t.Helper()
	for i, q := range probes {
		gm, err1 := got.PredictMean(q)
		wm, err2 := want.PredictMean(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s probe %d: PredictMean errs %v / %v", tag, i, err1, err2)
		}
		if gm != wm {
			t.Fatalf("%s probe %d: PredictMean %v (capped) != %v (reference)", tag, i, gm, wm)
		}
		x := append([]float64(nil), q.Center...)
		gv, err1 := got.PredictValue(q, x)
		wv, err2 := want.PredictValue(q, x)
		if err1 != nil || err2 != nil || gv != wv {
			t.Fatalf("%s probe %d: PredictValue %v/%v (errs %v/%v)", tag, i, gv, wv, err1, err2)
		}
		gr, err1 := got.Regression(q)
		wr, err2 := want.Regression(q)
		if err1 != nil || err2 != nil || len(gr) != len(wr) {
			t.Fatalf("%s probe %d: Regression lens %d/%d (errs %v/%v)", tag, i, len(gr), len(wr), err1, err2)
		}
		for j := range gr {
			if gr[j].Intercept != wr[j].Intercept || gr[j].Theta != wr[j].Theta ||
				gr[j].Weight != wr[j].Weight || !gr[j].Slope.Equal(wr[j].Slope) ||
				!gr[j].Center.Equal(wr[j].Center) {
				t.Fatalf("%s probe %d: Regression model %d diverged: %+v vs %+v", tag, i, j, gr[j], wr[j])
			}
		}
		// Winner distances agree to the last ulp only: which unrolled kernel
		// computed the winning row's distance (the chunked tail/revived scan
		// vs the epoch's live verification) depends on rebuild timing, which
		// legitimately differs between the capped model and the rebuilt
		// reference, and the kernels associate the partial sums differently.
		// The prediction values above are the bit-exactness contract; the
		// distance gets a one-ulp-scale tolerance.
		_, gd, err1 := got.Winner(q)
		_, wd, err2 := want.Winner(q)
		if err1 != nil || err2 != nil || math.Abs(gd-wd) > 1e-12*(1+wd) {
			t.Fatalf("%s probe %d: winner distance %v/%v (errs %v/%v)", tag, i, gd, wd, err1, err2)
		}
	}
}

// TestCappedStoreMatchesCompactedReference is the streaming-training
// exactness property: a bounded model trained on a drifting stream — with
// tombstoned slots, slot reuse, id-indirected epochs and revived-slot scans
// all in play — must answer every prediction bit-identically to a model
// rebuilt from scratch out of its surviving prototypes. Covers the grid
// (d=2) and k-d tree (d=5) epoch paths, both eviction policies, and both
// hard eviction and merge.
func TestCappedStoreMatchesCompactedReference(t *testing.T) {
	cases := []struct {
		name   string
		dim    int
		vig    float64
		max    int
		policy EvictionPolicy
		merge  bool
	}{
		{"d2-windecay", 2, 0.03, 200, WinDecay{}, false},
		{"d2-recency-merge", 2, 0.03, 200, Recency{}, true},
		{"d5-windecay-merge", 5, 0.07, 200, WinDecay{}, true},
		{"d5-recency", 5, 0.07, 200, Recency{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(tc.dim)
			cfg.Vigilance = tc.vig
			cfg.Gamma = 1e-12
			cfg.MinGammaSteps = 1 << 30
			cfg.MaxPrototypes = tc.max
			cfg.Eviction = tc.policy
			cfg.MergeOnEvict = tc.merge
			m, err := NewModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stream := newDriftStream(tc.dim, 0.2, 3e-4, int64(1000+tc.dim))
			probes := probeQueries(tc.dim, 120, int64(2000+tc.dim))
			evicted, spawned := 0, 0
			for step := 0; step < 4000; step++ {
				q, y := stream.pair()
				info, err := m.Observe(q, y)
				if err != nil {
					t.Fatal(err)
				}
				evicted += info.Evicted
				if info.Created {
					spawned++
				}
				if info.K > tc.max {
					t.Fatalf("step %d: live K=%d exceeds cap %d", step, info.K, tc.max)
				}
				if step == 1500 || step == 3999 {
					assertViewsAgree(t, tc.name, m.View(), compactReference(t, m).View(), probes)
				}
			}
			if evicted == 0 {
				t.Fatalf("drifting stream caused no evictions (K=%d, spawned=%d) — the test exercised nothing", m.K(), spawned)
			}
			m.mu.Lock()
			rows, live := m.store.rows, m.store.live
			m.mu.Unlock()
			if live > tc.max {
				t.Fatalf("live=%d exceeds cap %d", live, tc.max)
			}
			if rows >= spawned {
				t.Fatalf("rows=%d, spawned=%d: tombstoned slots were never reused", rows, spawned)
			}
			if rows > tc.max+tc.max/4+8 {
				t.Fatalf("rows=%d grew far past the cap %d: slot reuse is not bounding the store", rows, tc.max)
			}
			if m.snap.Load().epoch == nil {
				t.Fatalf("no read epoch active at K=%d — the indexed paths were not exercised", live)
			}
			// Force the revived-slot path: stream until a reused slot is
			// pending between epoch rebuilds (live but not indexed), then
			// re-verify exactness in exactly that state.
			revivedPending := false
			for i := 0; i < 6000 && !revivedPending; i++ {
				q, y := stream.pair()
				if _, err := m.Observe(q, y); err != nil {
					t.Fatal(err)
				}
				revivedPending = len(m.snap.Load().revived) > 0
			}
			if !revivedPending {
				t.Fatal("never caught a revived slot pending between rebuilds")
			}
			assertViewsAgree(t, tc.name+"-revived", m.View(), compactReference(t, m).View(), probes)
			// No tombstone may ever surface through the public API.
			v := m.View()
			for _, q := range probes {
				qs, _, err := v.Neighborhood(q)
				if err != nil {
					t.Fatal(err)
				}
				for _, pq := range qs {
					if pq.Theta < 0 {
						t.Fatalf("tombstone leaked into Neighborhood: %+v", pq)
					}
				}
			}
		})
	}
}

// TestPinnedViewSurvivesEvictionBursts is the pinned-View safety property:
// a View pinned before an eviction burst keeps answering from its own
// version — same predictions bit for bit, same K, no tombstone sentinels —
// while the writer evicts, merges, reuses slots and rebuilds epochs
// underneath it. Run with -race (CI does) alongside the interleaved-ops
// tests.
func TestPinnedViewSurvivesEvictionBursts(t *testing.T) {
	const dim = 2
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.03
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	cfg.MaxPrototypes = 150
	cfg.Eviction = Recency{}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := newDriftStream(dim, 0.2, 5e-4, 7)
	for i := 0; i < 1500; i++ {
		q, y := stream.pair()
		if _, err := m.Observe(q, y); err != nil {
			t.Fatal(err)
		}
	}

	v := m.View()
	baseK := v.K()
	probes := probeQueries(dim, 150, 77)
	want := make([]float64, len(probes))
	for i, q := range probes {
		if want[i], err = v.PredictMean(q); err != nil {
			t.Fatal(err)
		}
	}

	// Writer: a further drift leg that forces spawn/evict churn, plus a
	// capacity shrink — the harshest version change a pinned reader can sit
	// across. Readers: hammer the pinned view concurrently.
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				i := rng.Intn(len(probes))
				got, err := v.PredictMean(probes[i])
				if err != nil {
					t.Errorf("pinned PredictMean: %v", err)
					return
				}
				if got != want[i] {
					t.Errorf("pinned view drifted: probe %d got %v want %v", i, got, want[i])
					return
				}
				if k := v.K(); k != baseK {
					t.Errorf("pinned view K changed: %d -> %d", baseK, k)
					return
				}
				qs, _, err := v.Neighborhood(probes[i])
				if err != nil {
					t.Errorf("pinned Neighborhood: %v", err)
					return
				}
				for _, pq := range qs {
					if pq.Theta < 0 {
						t.Errorf("tombstone leaked into pinned Neighborhood: %+v", pq)
						return
					}
				}
			}
		}(int64(300 + r))
	}
	evicted := 0
	for i := 0; i < 3000; i++ {
		q, y := stream.pair()
		info, err := m.Observe(q, y)
		if err != nil {
			t.Fatal(err)
		}
		evicted += info.Evicted
		if i == 1500 {
			if err := m.SetCapacity(60, WinDecay{}, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
	if evicted == 0 {
		t.Fatal("no evictions during the burst — the test exercised nothing")
	}
	if k := m.K(); k > 60 {
		t.Fatalf("live model K=%d exceeds the shrunk cap", k)
	}
	if k := v.K(); k != baseK {
		t.Fatalf("pinned view K changed after the bursts: %d -> %d", baseK, k)
	}
	// And the pinned version still answers identically after everything.
	for i, q := range probes {
		got, err := v.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("pinned view drifted after bursts: probe %d got %v want %v", i, got, want[i])
		}
	}
}

// TestSetCapacityShrink covers runtime re-capping: shrinking an unbounded
// trained model evicts down to the cap immediately, publishes, and the
// shrunken model still matches its compacted reference exactly.
func TestSetCapacityShrink(t *testing.T) {
	const dim = 2
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.03
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2500; i++ {
		if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	before := m.K()
	if before <= 100 {
		t.Fatalf("fixture too small: K=%d", before)
	}
	if err := m.SetCapacity(-1, nil, false); err == nil {
		t.Fatal("negative capacity should fail")
	}
	if err := m.SetCapacity(100, WinDecay{}, false); err != nil {
		t.Fatal(err)
	}
	if k := m.K(); k > 100 {
		t.Fatalf("SetCapacity(100) left K=%d", k)
	}
	// A deep shrink must compact the slot space, not leave O(peak-K)
	// tombstones for every future scan and scoring pass to walk.
	m.mu.Lock()
	rows, live := m.store.rows, m.store.live
	m.mu.Unlock()
	if rows != live {
		t.Fatalf("deep shrink left %d slots for %d live prototypes — slot space not compacted", rows, live)
	}
	probes := probeQueries(dim, 120, 11)
	assertViewsAgree(t, "shrunk", m.View(), compactReference(t, m).View(), probes)
	// Removing the cap lets K grow again.
	if err := m.SetCapacity(0, nil, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if m.K() <= 100 {
		t.Fatalf("uncapped model did not grow: K=%d", m.K())
	}
}

// TestCappedSaveLoadRoundTrip: Save compacts tombstones away; the loaded
// model serves identical predictions and keeps the capacity configuration.
func TestCappedSaveLoadRoundTrip(t *testing.T) {
	const dim = 2
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.03
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	cfg.MaxPrototypes = 120
	cfg.Eviction = WinDecay{HalfLife: 500}
	cfg.MergeOnEvict = true
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := newDriftStream(dim, 0.2, 5e-4, 21)
	for i := 0; i < 2500; i++ {
		q, y := stream.pair()
		if _, err := m.Observe(q, y); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != m.K() {
		t.Fatalf("loaded K=%d, want %d", loaded.K(), m.K())
	}
	lc := loaded.Config()
	if lc.MaxPrototypes != 120 || !lc.MergeOnEvict {
		t.Fatalf("capacity config lost in round trip: %+v", lc)
	}
	if wd, ok := lc.Eviction.(WinDecay); !ok || wd.HalfLife != 500 {
		t.Fatalf("eviction policy lost in round trip: %#v", lc.Eviction)
	}
	for _, q := range probeQueries(dim, 150, 31) {
		a, err := m.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictMean(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("prediction diverged after reload: %v vs %v", a, b)
		}
	}
}

// TestLoadEnforcesCapacity: a model file carrying more prototypes than its
// cap (a checkpoint racing a SetCapacity shrink, or a hand-edited file)
// must load at or under the cap — a pure-serving process never spawns, so
// Load is its only chance to enforce the budget.
func TestLoadEnforcesCapacity(t *testing.T) {
	const dim = 2
	cfg := DefaultConfig(dim)
	cfg.Vigilance = 0.03
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		if _, err := m.Observe(randQuery(rng, dim), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if m.K() <= 50 {
		t.Fatalf("fixture too small: K=%d", m.K())
	}
	// Forge the over-cap file: an unbounded checkpoint with a cap patched
	// in, exactly what a Save racing a shrink can produce.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	forged := bytes.Replace(buf.Bytes(), []byte(`"steps":`),
		[]byte(`"max_prototypes": 50, "eviction": "recency", "steps":`), 1)
	loaded, err := Load(bytes.NewReader(forged))
	if err != nil {
		t.Fatal(err)
	}
	if k := loaded.K(); k > 50 {
		t.Fatalf("loaded model serves K=%d over its cap of 50", k)
	}
	if got := loaded.Config().MaxPrototypes; got != 50 {
		t.Fatalf("loaded cap = %d, want 50", got)
	}
	if _, err := loaded.PredictMean(randQuery(rng, dim)); err != nil {
		t.Fatal(err)
	}
}

// TestSaveConfigRaceWithSetCapacity pins the lock-free capacity-config
// mirror: Save and Config are documented lock-free and must stay race-free
// against concurrent SetCapacity calls (run with -race; this failed before
// the capCfg atomic mirror existed). It also checks a checkpoint never
// pairs inconsistent capacity fields.
func TestSaveConfigRaceWithSetCapacity(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Vigilance = 0.05
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 600; i++ {
		if _, err := m.Observe(randQuery(rng, 2), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
				c := m.Config()
				if c.MaxPrototypes > 0 && c.Eviction == nil {
					t.Error("Config returned a cap with no policy")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		max := 50 + i%3*25
		if err := m.SetCapacity(max, Recency{}, i%2 == 0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetCapacity(0, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestLoadRejectsNegativeRadius: θ < 0 is both invalid (NewQuery enforces
// θ ≥ 0) and the tombstone sentinel — a file carrying one must be rejected,
// not half-loaded as a slot the indexed and linear paths disagree about.
func TestLoadRejectsNegativeRadius(t *testing.T) {
	doc := `{"version":1,"dim":1,"vigilance":0.1,"gamma":0.01,"steps":1,
		"llms":[{"center":[0.5],"theta":-0.5,"intercept":1,"slope_x":[0],"slope_theta":0,"wins":1}]}`
	if _, err := Load(bytes.NewReader([]byte(doc))); err == nil {
		t.Fatal("negative-radius prototype should be rejected")
	}
}

// TestSaveSkipsUnknownPolicyName: a custom EvictionPolicy whose Name()
// Load cannot resolve must degrade to the default on a save/load round
// trip, not poison the checkpoint.
type exoticPolicy struct{}

// Score implements EvictionPolicy.
func (exoticPolicy) Score(wins, sinceWin int) float64 { return float64(wins) }

// Name implements EvictionPolicy.
func (exoticPolicy) Name() string { return "exotic" }

func TestSaveSkipsUnknownPolicyName(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxPrototypes = 50
	cfg.Eviction = exoticPolicy{}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		if _, err := m.Observe(randQuery(rng, 2), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("checkpoint with a custom policy must stay loadable: %v", err)
	}
	lc := loaded.Config()
	if lc.MaxPrototypes != 50 || lc.Eviction == nil {
		t.Fatalf("cap or default policy lost: %+v", lc)
	}
}

// TestEvictionPolicyScores pins the policy semantics the docs promise.
func TestEvictionPolicyScores(t *testing.T) {
	wd := WinDecay{HalfLife: 100}
	if a, b := wd.Score(10, 0), wd.Score(10, 100); b != a/2 {
		t.Fatalf("WinDecay half-life broken: %v then %v", a, b)
	}
	if wd.Score(100, 0) <= wd.Score(10, 0) {
		t.Fatal("WinDecay must rank heavier prototypes above lighter ones")
	}
	r := Recency{}
	if r.Score(1000, 50) >= r.Score(1, 10) {
		t.Fatal("Recency must ignore wins and rank by last-win time")
	}
	if _, err := ParseEvictionPolicy("windecay"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseEvictionPolicy("recency"); err != nil {
		t.Fatal(err)
	}
	if p, err := ParseEvictionPolicy(""); err != nil || p.Name() != "windecay" {
		t.Fatalf("empty policy name should default to windecay, got %v/%v", p, err)
	}
	if _, err := ParseEvictionPolicy("nope"); err == nil {
		t.Fatal("unknown policy name should fail")
	}
}
