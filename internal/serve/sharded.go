package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"llmq/internal/core"
	"llmq/internal/exec"
	"llmq/internal/resilience"
	"llmq/internal/shard"
)

// Sharded serving: a server can be backed by a shard.Sharded set instead of
// one model — queries scatter to the shards owning the query's region and
// gather the union model's answer; /train partitions pairs across the
// shards. Every model-backed server additionally speaks the shard wire
// protocol (/shard/scan, /shard/train, /shard/meta), so any instance can be
// a shard behind a remote router.

// NewSharded creates a server whose APPROX surface is a sharded model set.
// The executor is required and answers EXACT statements from this
// process's relation copy — the relation itself is not sharded, only the
// model's query space.
func NewSharded(e *exec.Executor, sh *shard.Sharded, opts ...Option) (*Server, error) {
	if sh == nil {
		return nil, errors.New("serve: sharded set is required")
	}
	s, err := New(e, nil, opts...)
	if err != nil {
		return nil, err
	}
	if sh.Dim() != len(e.InputNames()) {
		return nil, fmt.Errorf("serve: sharded set dim %d does not match the relation's %d input attributes",
			sh.Dim(), len(e.InputNames()))
	}
	s.sharded = sh
	return s, nil
}

// Sharded returns the sharded set backing this server, or nil.
func (s *Server) Sharded() *shard.Sharded { return s.sharded }

// readerFor returns the per-request prediction surface: the sharded
// scatter/gather reader pinned to the current routing epoch, the follower
// or primary model, or nil when neither exists.
func (s *Server) readerFor(r *http.Request) modelReader {
	if s.sharded != nil {
		return s.sharded.Reader(r.Context())
	}
	if m := s.modelNow(); m != nil {
		return m
	}
	return nil
}

// trained reports whether the APPROX surface has any prototypes to answer
// from (the 409 gate of parseStatement).
func (s *Server) trained() bool {
	if s.sharded != nil {
		return s.sharded.Stats().Live > 0
	}
	m := s.modelNow()
	return m != nil && m.K() > 0
}

// handleShardScan answers POST /shard/scan: one shard's raw fusion terms
// for a query, from the model's current published version. Scans are
// query-class work and admit against the query semaphore.
func (s *Server) handleShardScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	m := s.modelNow()
	if m == nil {
		writeError(w, http.StatusConflict, errors.New("no model loaded to scan"))
		return
	}
	var req shard.ScanRequest
	if status, err := decodeBody(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	q, err := core.NewQuery(req.Center, req.Theta)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.admitQuery.Acquire(r.Context(), 1); err != nil {
		s.shedQuery(w, r, err)
		return
	}
	defer s.admitQuery.Release(1)
	res, err := m.View().ScatterScan(q, req.At, req.Models)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrDimension) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleShardMeta answers GET /shard/meta: the shard's state and routing
// bound. A follower that has not bootstrapped yet answers 503 so a priming
// router retries.
func (s *Server) handleShardMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	m := s.modelNow()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no model loaded yet"))
		return
	}
	v := m.View()
	writeJSON(w, http.StatusOK, shard.Meta{
		Dim:       m.Config().Dim,
		Live:      v.K(),
		Steps:     v.Steps(),
		Converged: v.Converged(),
		MaxTheta:  v.MaxTheta(),
		Durable:   s.durableNow() != nil,
	})
}

// handleShardTrain answers POST /shard/train: the shard-protocol twin of
// /train, returning the routing bound alongside the train outcome so the
// router's cached bound follows the prototypes it just created.
func (s *Server) handleShardTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	model, durable := s.modelNow(), s.durableNow()
	if s.replica != nil && durable == nil {
		writeError(w, http.StatusMisdirectedRequest,
			fmt.Errorf("this instance is a read-only follower; POST %s to the primary at %s", shard.PathTrain, s.replica.Primary()))
		return
	}
	if model == nil {
		writeError(w, http.StatusConflict, errors.New("no model loaded to train"))
		return
	}
	if durable != nil {
		if cause := durable.Failure(); cause != nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("store is read-only after a WAL failure: %v", cause))
			return
		}
	}
	// The wire pair shape matches /train's, so the public request type
	// decodes both.
	var req TrainRequest
	if status, err := decodeBody(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	pairs, status, err := convertPairs(req.Pairs)
	if err != nil {
		writeError(w, status, err)
		return
	}
	weight := int64(len(pairs))
	if err := s.admitTrain.Acquire(r.Context(), weight); err != nil {
		if errors.Is(err, resilience.ErrOverloaded) {
			shed(w, http.StatusTooManyRequests, s.admitTrain.RetryAfter(),
				errors.New("overloaded: training admission queue is full, retry later"))
			return
		}
		s.writeAnswerError(w, r, err)
		return
	}
	defer s.admitTrain.Release(weight)
	before := model.Steps()
	var res core.TrainingResult
	if durable != nil {
		res, err = durable.TrainBatch(pairs)
	} else {
		res, err = model.TrainBatch(pairs)
	}
	if err != nil {
		if errors.Is(err, core.ErrReadOnly) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, shard.TrainShardResponse{
		TrainStats: shard.TrainStats{
			Accepted:  res.Steps - before,
			Steps:     res.Steps,
			K:         res.K,
			Converged: res.Converged,
		},
		MaxTheta: model.View().MaxTheta(),
	})
}

// convertPairs validates a /train body's pairs into core training pairs,
// returning the HTTP status to use on error.
func convertPairs(in []TrainPair) ([]core.TrainingPair, int, error) {
	if len(in) == 0 {
		return nil, http.StatusBadRequest, errors.New("missing pairs")
	}
	if len(in) > maxTrainPairs {
		return nil, http.StatusBadRequest,
			fmt.Errorf("request has %d pairs, limit is %d", len(in), maxTrainPairs)
	}
	pairs := make([]core.TrainingPair, len(in))
	for i, p := range in {
		q, err := core.NewQuery(p.Center, p.Theta)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("pair %d: %w", i, err)
		}
		pairs[i] = core.TrainingPair{Query: q, Answer: p.Answer}
	}
	return pairs, 0, nil
}

// handleShardedTrain is the sharded branch of POST /train: the pairs are
// partitioned by their query centre's region and trained into the owning
// shards concurrently, each shard under its own writer lock (and WAL, when
// durable).
func (s *Server) handleShardedTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if status, err := decodeBody(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	pairs, status, err := convertPairs(req.Pairs)
	if err != nil {
		writeError(w, status, err)
		return
	}
	weight := int64(len(pairs))
	if err := s.admitTrain.Acquire(r.Context(), weight); err != nil {
		if errors.Is(err, resilience.ErrOverloaded) {
			shed(w, http.StatusTooManyRequests, s.admitTrain.RetryAfter(),
				errors.New("overloaded: training admission queue is full, retry later"))
			return
		}
		s.writeAnswerError(w, r, err)
		return
	}
	defer s.admitTrain.Release(weight)
	start := time.Now()
	st, err := s.sharded.TrainBatch(r.Context(), pairs)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, core.ErrReadOnly):
			status = http.StatusServiceUnavailable
		case errors.Is(err, r.Context().Err()):
			s.writeAnswerError(w, r, err)
			return
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Accepted:   st.Accepted,
		Steps:      st.Steps,
		Prototypes: st.K,
		Converged:  st.Converged,
		Durable:    s.sharded.Stats().Durable,
		Elapsed:    time.Since(start).String(),
	})
}

// ShardReady is one shard's readiness inside a sharded /readyz body.
type ShardReady struct {
	ID     int    `json:"id"`
	Status string `json:"status"`
	Cause  string `json:"cause,omitempty"`
}

// shardedReady aggregates per-shard health into the /readyz response: one
// degraded shard degrades the whole set, with the response naming every
// shard that is not ready (a router cannot answer boundary-straddling
// queries without all of a query's shards).
func (s *Server) shardedReady(r *http.Request, resp *ReadyResponse) bool {
	hs := s.sharded.Health(r.Context())
	degraded := false
	for id, h := range hs {
		resp.Shards = append(resp.Shards, ShardReady{ID: id, Status: h.Status, Cause: h.Cause})
		if h.Status != "ready" {
			degraded = true
			cause := fmt.Sprintf("shard %d %s", id, h.Status)
			if h.Cause != "" {
				cause += ": " + h.Cause
			}
			if resp.Cause != "" {
				resp.Cause += "; "
			}
			resp.Cause += cause
		}
	}
	if degraded {
		resp.Status = "degraded"
	}
	return degraded
}
