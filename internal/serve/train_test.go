package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"llmq/internal/core"
	"llmq/internal/wal"
)

func postTrain(t *testing.T, s *Server, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/train", bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func trainPairs(n int) []TrainPair {
	pairs := make([]TrainPair, n)
	for i := range pairs {
		f := float64(i) / float64(n)
		pairs[i] = TrainPair{Center: []float64{f, 1 - f}, Theta: 0.1, Answer: 2 * f}
	}
	return pairs
}

func TestTrainEndpoint(t *testing.T) {
	s := newServer(t, true)
	before := s.model.Steps()
	rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(10)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp TrainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 10 || resp.Steps != before+10 {
		t.Errorf("response %+v, want 10 accepted on top of %d steps", resp, before)
	}
	if resp.Durable {
		t.Error("plain in-memory server reported durable training")
	}
	if s.model.Steps() != before+10 {
		t.Errorf("model advanced to %d steps, want %d", s.model.Steps(), before+10)
	}
}

func TestTrainEndpointErrors(t *testing.T) {
	s := newServer(t, true)
	// Wrong method.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/train", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /train: status %d", rec.Code)
	}
	// No model to train.
	if rec := postTrain(t, newServer(t, false), TrainRequest{Pairs: trainPairs(1)}); rec.Code != http.StatusConflict {
		t.Errorf("modelless /train: status %d, want 409", rec.Code)
	}
	// Malformed body.
	req := httptest.NewRequest(http.MethodPost, "/train", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", rec.Code)
	}
	// Empty and oversized batches.
	if rec := postTrain(t, s, TrainRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", rec.Code)
	}
	if rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(maxTrainPairs + 1)}); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d", rec.Code)
	}
	// Dimension mismatch inside a pair.
	bad := TrainRequest{Pairs: []TrainPair{{Center: []float64{0.5}, Theta: 0.1, Answer: 1}}}
	if rec := postTrain(t, s, bad); rec.Code != http.StatusBadRequest {
		t.Errorf("dim-mismatched pair: status %d", rec.Code)
	}
}

// TestTrainEndpointDurable routes /train through a Durable and checks the
// pairs actually reach the WAL: a recovery from the data directory sees them.
func TestTrainEndpointDurable(t *testing.T) {
	dir := t.TempDir()
	plain := newServer(t, false)
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.1
	opts := core.DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}}
	d, err := core.Recover(dir, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(plain.exec, d)
	if err != nil {
		t.Fatal(err)
	}
	rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(25)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp TrainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Durable || resp.Accepted != 25 {
		t.Errorf("response %+v, want 25 durable accepts", resp)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := core.Recover(dir, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Model().Steps() != 25 {
		t.Errorf("recovered %d steps, want 25", d2.Model().Steps())
	}
}
