// Package serve exposes a trained LLM model and the exact executor of one
// relation as an HTTP analytics service — the deployment shape sketched in
// the paper's Figure 2, where the trained model sits between the analyst
// tools and the DBMS and answers queries without forwarding them to the
// engine.
//
// Endpoints:
//
//	POST /query       {"sql": "SELECT APPROX AVG(u) FROM t WITHIN 0.1 OF (0.5, 0.5)"}
//	                  → the parsed statement's answer (model-based for APPROX,
//	                    exact otherwise)
//	POST /query/batch {"sql": ["...", "..."]}
//	                  → positional answers, evaluated concurrently over a
//	                    bounded worker pool (the model is safe for concurrent
//	                    reads, and the exact executor never mutates the table)
//	POST /train       {"pairs": [{"center": [0.5, 0.5], "theta": 0.1, "answer": 1.2}]}
//	                  → ingest training pairs into the served model; with a
//	                    durable store (serve -data-dir) each pair is WAL-logged
//	                    before it is applied, so ingested traffic survives a
//	                    crash — without one, training is volatile
//	GET  /model       → model metadata (K, steps, convergence, vigilance)
//	GET  /healthz     → liveness probe
//
// The handler is a plain http.Handler so it can be mounted into any mux.
// Individual requests already run on separate goroutines under net/http;
// the batch endpoint additionally parallelizes within one request, so a
// single analyst submitting a query sheet saturates the cores too.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"llmq/internal/core"
	"llmq/internal/exec"
	"llmq/internal/sqlfront"
)

// Server answers analytics statements over one relation.
type Server struct {
	exec    *exec.Executor
	model   *core.Model
	durable *core.Durable // non-nil when /train must WAL-log before applying
	mux     *http.ServeMux
}

const (
	// maxBatchStatements caps one /query/batch request: a single POST must
	// not be able to monopolize every worker for an unbounded stretch.
	maxBatchStatements = 4096
	// maxTrainPairs caps one /train request for the same reason; larger
	// streams just POST repeatedly (the durable log orders them anyway).
	maxTrainPairs = 4096
	// maxBodyBytes bounds request bodies before JSON decoding; generous for
	// maxBatchStatements full-length statements.
	maxBodyBytes = 4 << 20
)

// New creates a server. The executor is required; the model may be nil, in
// which case APPROX statements are rejected with 409.
func New(e *exec.Executor, m *core.Model) (*Server, error) {
	if e == nil {
		return nil, errors.New("serve: executor is required")
	}
	if m != nil && m.K() > 0 && m.Config().Dim != len(e.InputNames()) {
		return nil, fmt.Errorf("serve: model dim %d does not match the relation's %d input attributes",
			m.Config().Dim, len(e.InputNames()))
	}
	s := &Server{exec: e, model: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/query/batch", s.handleBatch)
	s.mux.HandleFunc("/train", s.handleTrain)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// NewDurable creates a server whose model is backed by a durable store:
// queries answer from the model's lock-free published versions as usual,
// while /train routes every pair through the write-ahead log before it is
// applied, so ingested training traffic survives a crash and is replayed on
// the next boot. The caller owns the Durable's lifecycle (Close on
// shutdown, for the final checkpoint).
func NewDurable(e *exec.Executor, d *core.Durable) (*Server, error) {
	if d == nil {
		return nil, errors.New("serve: durable store is required")
	}
	if e != nil && d.Model().Config().Dim != len(e.InputNames()) {
		// Unlike a plain model (checked only once trained), a durable model
		// always has a definite dimensionality — an empty one still replays
		// and ingests pairs of exactly its configured dim.
		return nil, fmt.Errorf("serve: durable model dim %d does not match the relation's %d input attributes",
			d.Model().Config().Dim, len(e.InputNames()))
	}
	s, err := New(e, d.Model())
	if err != nil {
		return nil, err
	}
	s.durable = d
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// LocalModelJSON describes one element of a Q2 answer.
type LocalModelJSON struct {
	Intercept float64   `json:"intercept"`
	Slope     []float64 `json:"slope"`
	Center    []float64 `json:"center"`
	Theta     float64   `json:"theta"`
	Weight    float64   `json:"weight"`
}

// QueryResponse is the body returned by POST /query.
type QueryResponse struct {
	Kind    string           `json:"kind"`
	Approx  bool             `json:"approx"`
	Mean    *float64         `json:"mean,omitempty"`
	Value   *float64         `json:"value,omitempty"`
	Models  []LocalModelJSON `json:"models,omitempty"`
	Tuples  int              `json:"tuples,omitempty"`
	Elapsed string           `json:"elapsed"`
}

// ModelInfo is the body returned by GET /model.
type ModelInfo struct {
	Loaded     bool    `json:"loaded"`
	Prototypes int     `json:"prototypes,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	Converged  bool    `json:"converged,omitempty"`
	Vigilance  float64 `json:"vigilance,omitempty"`
	Dim        int     `json:"dim,omitempty"`
	// Durable reports whether /train traffic is write-ahead logged.
	Durable bool `json:"durable,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	info := ModelInfo{}
	if s.model != nil {
		// One pinned View, so K/Steps/Converged describe the same version
		// even while training publishes concurrently.
		v := s.model.View()
		cfg := s.model.Config()
		info = ModelInfo{
			Loaded:     true,
			Prototypes: v.K(),
			Steps:      v.Steps(),
			Converged:  v.Converged(),
			Vigilance:  cfg.Vigilance,
			Dim:        cfg.Dim,
			Durable:    s.durable != nil,
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// modelReader is the prediction surface the statement evaluator needs. Both
// *core.Model (always answering from the latest published version) and
// core.View (pinned to one version) satisfy it; the batch endpoint pins a
// View so every statement of one request is answered by the same model
// version even while training or a model swap runs concurrently.
type modelReader interface {
	PredictMean(core.Query) (float64, error)
	Regression(core.Query) ([]core.LocalLinear, error)
	PredictValue(core.Query, []float64) (float64, error)
}

// reader returns the per-request prediction surface, or nil when the server
// has no model (parseStatement rejects APPROX statements in that case, and
// exact statements never touch it).
func (s *Server) reader() modelReader {
	if s.model == nil {
		return nil
	}
	return s.model
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing sql"))
		return
	}
	stmt, status, err := s.parseStatement(req.SQL)
	if err != nil {
		writeError(w, status, err)
		return
	}
	resp, err := s.answer(stmt, s.reader())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, exec.ErrEmptySubspace) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseStatement parses and validates one SQL statement against the served
// relation and model, returning the HTTP status to use on error.
func (s *Server) parseStatement(sql string) (*sqlfront.Statement, int, error) {
	stmt, err := sqlfront.Parse(sql)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(stmt.Center) != len(s.exec.InputNames()) {
		return nil, http.StatusBadRequest,
			fmt.Errorf("query centre has %d coordinates, relation has %d input attributes",
				len(stmt.Center), len(s.exec.InputNames()))
	}
	if stmt.Approx && (s.model == nil || s.model.K() == 0) {
		return nil, http.StatusConflict, errors.New("no trained model loaded for APPROX statements")
	}
	return stmt, http.StatusOK, nil
}

// TrainPair is one training observation in a POST /train body: the query
// (centre and radius) and the answer the engine produced for it.
type TrainPair struct {
	Center []float64 `json:"center"`
	Theta  float64   `json:"theta"`
	Answer float64   `json:"answer"`
}

// TrainRequest is the body of POST /train.
type TrainRequest struct {
	Pairs []TrainPair `json:"pairs"`
}

// TrainResponse is the body returned by POST /train.
type TrainResponse struct {
	// Accepted is the number of pairs applied (a converged model freezes
	// its parameters and absorbs none — check Converged).
	Accepted   int    `json:"accepted"`
	Steps      int    `json:"steps"`
	Prototypes int    `json:"prototypes"`
	Converged  bool   `json:"converged"`
	Durable    bool   `json:"durable"`
	Elapsed    string `json:"elapsed"`
}

// handleTrain ingests training pairs into the served model. With a durable
// store every pair is appended to the write-ahead log before it is applied
// (and periodic checkpoints rotate the log); without one the pairs train the
// in-memory model only and die with the process. Either way the batch is
// applied under one writer-lock acquisition while queries keep answering
// lock-free from the previous published version.
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.model == nil {
		writeError(w, http.StatusConflict, errors.New("no model loaded to train"))
		return
	}
	var req TrainRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing pairs"))
		return
	}
	if len(req.Pairs) > maxTrainPairs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("request has %d pairs, limit is %d", len(req.Pairs), maxTrainPairs))
		return
	}
	pairs := make([]core.TrainingPair, len(req.Pairs))
	for i, p := range req.Pairs {
		q, err := core.NewQuery(p.Center, p.Theta)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("pair %d: %w", i, err))
			return
		}
		pairs[i] = core.TrainingPair{Query: q, Answer: p.Answer}
	}
	start := time.Now()
	before := s.model.Steps()
	var (
		res core.TrainingResult
		err error
	)
	if s.durable != nil {
		res, err = s.durable.TrainBatch(pairs)
	} else {
		res, err = s.model.TrainBatch(pairs)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Accepted:   res.Steps - before,
		Steps:      res.Steps,
		Prototypes: res.K,
		Converged:  res.Converged,
		Durable:    s.durable != nil,
		Elapsed:    time.Since(start).String(),
	})
}

// BatchRequest is the body of POST /query/batch.
type BatchRequest struct {
	SQL []string `json:"sql"`
}

// BatchItem is one positional result of a batch: either the statement's
// answer or its error string.
type BatchItem struct {
	*QueryResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body returned by POST /query/batch.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// Elapsed is the wall-clock time of the whole batch; with the bounded
	// worker pool it approaches (slowest statement) + (total work / cores).
	Elapsed string `json:"elapsed"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if len(req.SQL) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing sql statements"))
		return
	}
	if len(req.SQL) > maxBatchStatements {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d statements, limit is %d", len(req.SQL), maxBatchStatements))
		return
	}
	start := time.Now()
	// Pin one model version for the whole batch: the answers are mutually
	// consistent even while a training stream or a zero-downtime model swap
	// publishes newer versions mid-request.
	var reader modelReader
	if s.model != nil {
		reader = s.model.View()
	}
	items := make([]BatchItem, len(req.SQL))
	// The request context cancels when the client disconnects or the server
	// shuts down: the pool stops claiming statements mid-sheet instead of
	// finishing a batch nobody will read.
	if err := exec.ForEachParallelCtx(r.Context(), len(req.SQL), func(i int) {
		stmt, _, err := s.parseStatement(req.SQL[i])
		if err != nil {
			items[i] = BatchItem{Error: err.Error()}
			return
		}
		resp, err := s.answer(stmt, reader)
		if err != nil {
			items[i] = BatchItem{Error: err.Error()}
			return
		}
		items[i] = BatchItem{QueryResponse: resp}
	}); err != nil {
		// The client is gone; there is nobody to write a body to.
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Results: items,
		Elapsed: time.Since(start).String(),
	})
}

func (s *Server) answer(stmt *sqlfront.Statement, model modelReader) (*QueryResponse, error) {
	start := time.Now()
	resp := &QueryResponse{Kind: stmt.Kind.String(), Approx: stmt.Approx}
	rq := exec.RadiusQuery{Center: stmt.Center, Theta: stmt.Theta, P: stmt.Norm}

	finish := func() *QueryResponse {
		resp.Elapsed = time.Since(start).String()
		return resp
	}

	switch stmt.Kind {
	case sqlfront.StmtMean:
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return nil, err
			}
			y, err := model.PredictMean(q)
			if err != nil {
				return nil, err
			}
			resp.Mean = &y
			return finish(), nil
		}
		res, err := s.exec.Mean(rq)
		if err != nil {
			return nil, err
		}
		resp.Mean = &res.Mean
		resp.Tuples = res.Count
		return finish(), nil

	case sqlfront.StmtRegression:
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return nil, err
			}
			locals, err := model.Regression(q)
			if err != nil {
				return nil, err
			}
			for _, lm := range locals {
				resp.Models = append(resp.Models, LocalModelJSON{
					Intercept: lm.Intercept,
					Slope:     lm.Slope,
					Center:    lm.Center,
					Theta:     lm.Theta,
					Weight:    lm.Weight,
				})
			}
			return finish(), nil
		}
		res, err := s.exec.Regression(rq)
		if err != nil {
			return nil, err
		}
		resp.Models = []LocalModelJSON{{
			Intercept: res.Intercept,
			Slope:     res.Slope,
			Center:    stmt.Center,
			Theta:     stmt.Theta,
			Weight:    1,
		}}
		resp.Tuples = res.Count
		return finish(), nil

	case sqlfront.StmtValue:
		if len(stmt.At) != len(stmt.Center) {
			return nil, fmt.Errorf("AT point has %d coordinates, centre has %d", len(stmt.At), len(stmt.Center))
		}
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return nil, err
			}
			u, err := model.PredictValue(q, stmt.At)
			if err != nil {
				return nil, err
			}
			resp.Value = &u
			return finish(), nil
		}
		res, err := s.exec.Regression(rq)
		if err != nil {
			return nil, err
		}
		u := res.Predict(stmt.At)
		resp.Value = &u
		resp.Tuples = res.Count
		return finish(), nil
	}
	return nil, fmt.Errorf("unsupported statement kind %v", stmt.Kind)
}
