// Package serve exposes a trained LLM model and the exact executor of one
// relation as an HTTP analytics service — the deployment shape sketched in
// the paper's Figure 2, where the trained model sits between the analyst
// tools and the DBMS and answers queries without forwarding them to the
// engine.
//
// Endpoints:
//
//	POST /query       {"sql": "SELECT APPROX AVG(u) FROM t WITHIN 0.1 OF (0.5, 0.5)"}
//	                  → the parsed statement's answer (model-based for APPROX,
//	                    exact otherwise)
//	POST /query/batch {"sql": ["...", "..."]}
//	                  → a streaming NDJSON response: one result frame per
//	                    statement in statement order, each flushed as soon as
//	                    its prefix of the sheet has been answered, then a
//	                    trailer frame — statements evaluate concurrently over
//	                    a bounded worker pool (the model is safe for
//	                    concurrent reads, and the exact executor never mutates
//	                    the table), and a client that hangs up mid-stream
//	                    cancels the rest of the sheet and frees its admission
//	                    weight immediately (see BatchFrame / ReadBatchStream)
//	POST /train       {"pairs": [{"center": [0.5, 0.5], "theta": 0.1, "answer": 1.2}]}
//	                  → ingest training pairs into the served model; with a
//	                    durable store (serve -data-dir) each pair is WAL-logged
//	                    before it is applied, so ingested traffic survives a
//	                    crash — without one, training is volatile
//	GET  /model       → model metadata (K, steps, convergence, vigilance)
//	GET  /healthz     → liveness probe (is the process up at all)
//	GET  /readyz      → readiness probe: ready / overloaded / read-only /
//	                    recovering, so an orchestrator can stop routing
//	                    traffic to a degraded instance without killing it
//
// The handler is a plain http.Handler so it can be mounted into any mux.
// Individual requests already run on separate goroutines under net/http;
// the batch endpoint additionally parallelizes within one request, so a
// single analyst submitting a query sheet saturates the cores too. With
// Limits.BatchWindow set, concurrent single /query requests are coalesced
// the other way around: requests arriving within the (adaptive) window form
// one sheet over a single pinned model version, and identical statements
// collapse to one evaluation — the micro-batcher that keeps hot-spot
// traffic from paying per-request execution (see batcher).
//
// # Overload behaviour
//
// The server survives flood, stall and disk failure by shedding instead of
// queueing (see Limits):
//
//   - Admission control: a weighted semaphore per endpoint class — query
//     (/query and /query/batch share it, a batch sheet costing its
//     statement count) and train (costing the pair count). A request that
//     cannot be admitted within the wait budget gets 429 + Retry-After.
//   - Deadlines: every query request's context carries QueryTimeout; the
//     exact executors and batch pools observe it (exec.*Ctx), so an
//     admitted request completes or dies by its deadline — never later.
//   - Brownout: while the admission queue is saturated, EXACT statements —
//     the expensive relation scans — are shed first (503) while APPROX
//     statements keep answering from the model's lock-free read path. With
//     Limits.DegradeExact, EXACT-eligible statements are instead answered
//     from the model with "degraded": true — the paper's own pitch (the
//     model absorbs traffic the engine cannot) applied as a resilience
//     mechanism.
//   - Fail-safe writes: a WAL failure flips the durable store read-only
//     (core.ErrReadOnly); /train answers 503 naming the root cause, /readyz
//     reports "read-only", and queries keep serving.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"llmq/internal/core"
	"llmq/internal/exec"
	"llmq/internal/replica"
	"llmq/internal/resilience"
	"llmq/internal/shard"
	"llmq/internal/sqlfront"
)

// Server answers analytics statements over one relation.
type Server struct {
	exec    *exec.Executor
	model   *core.Model
	durable *core.Durable // non-nil when /train must WAL-log before applying
	// replica is non-nil on a follower (NewFollower): the model and, after
	// promotion, the durable store are read from it per request, because a
	// re-bootstrap or a promotion swaps them at runtime.
	replica *replica.Replica
	// sharded is non-nil on a scatter/gather front-end (NewSharded): the
	// APPROX surface is the union of the set's shards instead of one model.
	sharded *shard.Sharded
	mux     *http.ServeMux

	limits     Limits
	admitQuery *resilience.Semaphore
	admitTrain *resilience.Semaphore
	lastSat    atomic.Int64 // unixnano of the last observed queue saturation
	// coalescer micro-batches single /query statements; nil unless
	// Limits.BatchWindow is set.
	coalescer *batcher
}

// modelNow returns the model serving this request. On a primary it is
// fixed; on a follower it changes across re-bootstraps and promotion, so
// handlers must not cache it beyond one request.
func (s *Server) modelNow() *core.Model {
	if s.replica != nil {
		if d := s.replica.Durable(); d != nil {
			return d.Model()
		}
		return s.replica.Model()
	}
	return s.model
}

// durableNow returns the durable store accepting writes, or nil — always
// nil on a follower until it is promoted.
func (s *Server) durableNow() *core.Durable {
	if s.replica != nil {
		return s.replica.Durable()
	}
	return s.durable
}

const (
	// maxBatchStatements caps one /query/batch request: a single POST must
	// not be able to monopolize every worker for an unbounded stretch.
	maxBatchStatements = 4096
	// maxTrainPairs caps one /train request for the same reason; larger
	// streams just POST repeatedly (the durable log orders them anyway).
	maxTrainPairs = 4096
	// maxBodyBytes bounds request bodies before JSON decoding; generous for
	// maxBatchStatements full-length statements.
	maxBodyBytes = 4 << 20
)

// Limits bounds what one server instance will take on at once; the zero
// value of each field takes the default noted. DefaultLimits returns the
// resolved defaults.
type Limits struct {
	// QueryConcurrency is the admission capacity of the query class in
	// statements: /query costs 1, /query/batch costs its statement count
	// (clamped to half the capacity, so one maximal sheet can never
	// starve single statements out entirely). Default 4×GOMAXPROCS, at
	// least 16.
	QueryConcurrency int
	// TrainConcurrency is the admission capacity of the train class in
	// pairs. Default 2×maxTrainPairs (one batch applying, one decoding).
	TrainConcurrency int
	// AdmitWait is the bounded wait budget: how long a request may wait
	// for admission before it is shed with 429. Default 100ms; negative
	// sheds immediately when full.
	AdmitWait time.Duration
	// QueryTimeout is the per-request deadline attached to the context of
	// /query and /query/batch. Default 30s; negative disables it.
	QueryTimeout time.Duration
	// DegradeExact answers EXACT-eligible statements from the model
	// (marked "degraded": true) during brownout instead of shedding them.
	DegradeExact bool
	// BrownoutHold keeps brownout active this long past the last observed
	// queue saturation, so the EXACT path does not flap at the boundary.
	// Default 1s.
	BrownoutHold time.Duration
	// MaxReplicationLag is the replication lag, in training records, past
	// which a follower reports not-ready on /readyz (it still serves
	// queries — the flag exists so an orchestrator can route staleness-
	// sensitive traffic away). Default 4096; negative disables the check.
	MaxReplicationLag int
	// BatchWindow micro-batches the single-statement /query path:
	// concurrent requests arriving within the window — after each passed
	// its own brownout check and admission — coalesce into one sheet
	// executed over a single pinned model version, with identical
	// statements collapsed to one evaluation. The window adapts downward
	// (to BatchWindow/16) while arrivals are sparse. 0, the default,
	// disables coalescing; 0.5–2ms is the intended range.
	BatchWindow time.Duration
	// BatchMaxSheet caps one coalesced sheet's statement count; a full
	// sheet is cut immediately instead of waiting the window out. Default
	// 64 when BatchWindow is set.
	BatchMaxSheet int
}

// DefaultLimits returns the limits a Server runs with when none are given.
func DefaultLimits() Limits { return Limits{}.withDefaults() }

func (l Limits) withDefaults() Limits {
	if l.QueryConcurrency <= 0 {
		l.QueryConcurrency = 4 * runtime.GOMAXPROCS(0)
		if l.QueryConcurrency < 16 {
			l.QueryConcurrency = 16
		}
	}
	if l.TrainConcurrency <= 0 {
		l.TrainConcurrency = 2 * maxTrainPairs
	}
	switch {
	case l.AdmitWait == 0:
		l.AdmitWait = 100 * time.Millisecond
	case l.AdmitWait < 0:
		l.AdmitWait = 0
	}
	switch {
	case l.QueryTimeout == 0:
		l.QueryTimeout = 30 * time.Second
	case l.QueryTimeout < 0:
		l.QueryTimeout = 0
	}
	if l.BrownoutHold <= 0 {
		l.BrownoutHold = time.Second
	}
	switch {
	case l.MaxReplicationLag == 0:
		l.MaxReplicationLag = 4096
	case l.MaxReplicationLag < 0:
		l.MaxReplicationLag = math.MaxInt
	}
	if l.BatchWindow < 0 {
		l.BatchWindow = 0
	}
	if l.BatchWindow > 0 {
		if l.BatchMaxSheet <= 0 {
			l.BatchMaxSheet = 64
		}
		if l.BatchMaxSheet > maxBatchStatements {
			l.BatchMaxSheet = maxBatchStatements
		}
	}
	return l
}

// Option configures a Server at construction.
type Option func(*Server)

// WithLimits replaces the default overload limits.
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l.withDefaults() }
}

// New creates a server. The executor is required; the model may be nil, in
// which case APPROX statements are rejected with 409.
func New(e *exec.Executor, m *core.Model, opts ...Option) (*Server, error) {
	if e == nil {
		return nil, errors.New("serve: executor is required")
	}
	if m != nil && m.K() > 0 && m.Config().Dim != len(e.InputNames()) {
		return nil, fmt.Errorf("serve: model dim %d does not match the relation's %d input attributes",
			m.Config().Dim, len(e.InputNames()))
	}
	s := &Server{exec: e, model: m, mux: http.NewServeMux(), limits: DefaultLimits()}
	for _, opt := range opts {
		opt(s)
	}
	s.admitQuery = resilience.NewSemaphore(int64(s.limits.QueryConcurrency), s.limits.AdmitWait)
	s.admitTrain = resilience.NewSemaphore(int64(s.limits.TrainConcurrency), s.limits.AdmitWait)
	if s.limits.BatchWindow > 0 {
		s.coalescer = newBatcher(s)
	}
	s.mux.Handle("/query", resilience.WithTimeout(http.HandlerFunc(s.handleQuery), s.limits.QueryTimeout))
	s.mux.Handle("/query/batch", resilience.WithTimeout(http.HandlerFunc(s.handleBatch), s.limits.QueryTimeout))
	s.mux.HandleFunc("/train", s.handleTrain)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc(shard.PathScan, s.handleShardScan)
	s.mux.HandleFunc(shard.PathMeta, s.handleShardMeta)
	s.mux.HandleFunc(shard.PathTrain, s.handleShardTrain)
	s.mux.HandleFunc(replica.PathSnapshot, s.handleReplicateSnapshot)
	s.mux.HandleFunc(replica.PathWAL, s.handleReplicateWAL)
	s.mux.HandleFunc(replica.PathHash, s.handleReplicateHash)
	s.mux.HandleFunc(replica.PathPromote, s.handlePromote)
	return s, nil
}

// NewDurable creates a server whose model is backed by a durable store:
// queries answer from the model's lock-free published versions as usual,
// while /train routes every pair through the write-ahead log before it is
// applied, so ingested training traffic survives a crash and is replayed on
// the next boot. The caller owns the Durable's lifecycle (Close on
// shutdown, for the final checkpoint).
func NewDurable(e *exec.Executor, d *core.Durable, opts ...Option) (*Server, error) {
	if d == nil {
		return nil, errors.New("serve: durable store is required")
	}
	if e != nil && d.Model().Config().Dim != len(e.InputNames()) {
		// Unlike a plain model (checked only once trained), a durable model
		// always has a definite dimensionality — an empty one still replays
		// and ingests pairs of exactly its configured dim.
		return nil, fmt.Errorf("serve: durable model dim %d does not match the relation's %d input attributes",
			d.Model().Config().Dim, len(e.InputNames()))
	}
	s, err := New(e, d.Model(), opts...)
	if err != nil {
		return nil, err
	}
	s.durable = d
	return s, nil
}

// NewFollower creates a server backed by a replica of a remote primary:
// queries answer from the follower's own model (which the replication loop
// trains as WAL records arrive), /train is refused with 421 naming the
// primary, /readyz reports the replication role and lag, and POST /promote
// turns the instance into a writable primary in place. The caller drives
// the replica's Run loop; the server only reads it. The model's
// dimensionality cannot be validated up front (it arrives with the first
// snapshot), so a mismatched follower surfaces errors per statement.
func NewFollower(e *exec.Executor, rep *replica.Replica, opts ...Option) (*Server, error) {
	if rep == nil {
		return nil, errors.New("serve: replica is required")
	}
	s, err := New(e, nil, opts...)
	if err != nil {
		return nil, err
	}
	s.replica = rep
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// LocalModelJSON describes one element of a Q2 answer.
type LocalModelJSON struct {
	Intercept float64   `json:"intercept"`
	Slope     []float64 `json:"slope"`
	Center    []float64 `json:"center"`
	Theta     float64   `json:"theta"`
	Weight    float64   `json:"weight"`
}

// QueryResponse is the body returned by POST /query.
type QueryResponse struct {
	Kind   string           `json:"kind"`
	Approx bool             `json:"approx"`
	Mean   *float64         `json:"mean,omitempty"`
	Value  *float64         `json:"value,omitempty"`
	Models []LocalModelJSON `json:"models,omitempty"`
	Tuples int              `json:"tuples,omitempty"`
	// FVU and R2 are the in-subspace goodness-of-fit metrics of an exact
	// Q2 (REGRESSION / VALUE) execution — the fraction of variance
	// unexplained and the coefficient of determination — so remote clients
	// see the same fit diagnostics the local CLI prints. Absent on APPROX
	// answers (the model has no per-query residuals to report).
	FVU *float64 `json:"fvu,omitempty"`
	R2  *float64 `json:"r2,omitempty"`
	// Degraded marks an EXACT-eligible statement that was answered from
	// the model because the server was in brownout (Limits.DegradeExact).
	Degraded bool   `json:"degraded,omitempty"`
	Elapsed  string `json:"elapsed"`
}

// ModelInfo is the body returned by GET /model.
type ModelInfo struct {
	Loaded     bool    `json:"loaded"`
	Prototypes int     `json:"prototypes,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	Converged  bool    `json:"converged,omitempty"`
	Vigilance  float64 `json:"vigilance,omitempty"`
	Dim        int     `json:"dim,omitempty"`
	// Durable reports whether /train traffic is write-ahead logged.
	Durable bool `json:"durable,omitempty"`
	// Shards is the shard count of a sharded set (0 on a single-model
	// server); Prototypes and Steps are then totals across the shards.
	Shards int `json:"shards,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// shed refuses a request with a well-formed overload response: the given
// status plus a Retry-After header (integer seconds, at least 1) sized to
// the admission queue depth, the format resilience.Do's backoff honors.
func shed(w http.ResponseWriter, status int, retryAfter time.Duration, err error) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, status, err)
}

// decodeBody JSON-decodes a bounded request body into v, mapping the
// error: a body past maxBodyBytes is 413 naming the limit (the
// *http.MaxBytesError MaxBytesReader injects), anything else malformed is
// 400. A zero status means the decode succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v)
	if err == nil {
		return 0, nil
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit)
	}
	return http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyResponse is the body returned by GET /readyz.
type ReadyResponse struct {
	// Status is "ready", "overloaded" (admission queue saturated),
	// "read-only" (the durable store took a WAL failure and stopped
	// accepting training), "recovering" (boot-time WAL replay still
	// running, served by the recovering stub handler), or — on a follower —
	// "bootstrapping" (no model yet), "lagging" (replication lag past
	// Limits.MaxReplicationLag) or "diverged" (state hash mismatched the
	// primary's; the follower is re-bootstrapping and must not be promoted).
	Status string `json:"status"`
	// Cause names the root failure for the read-only and diverged states.
	Cause string `json:"cause,omitempty"`
	// Role is "primary", "follower" or "promoting".
	Role string `json:"role,omitempty"`
	// ReplicationLag is the follower's lag behind the primary in training
	// records (primary steps at last contact minus local steps).
	ReplicationLag *int `json:"replication_lag_records,omitempty"`
	// Shards carries per-shard readiness on a sharded front-end; one
	// degraded shard makes the whole set "degraded", with Cause naming it.
	Shards []ShardReady `json:"shards,omitempty"`
}

// handleReady is the readiness probe: distinct from /healthz liveness so an
// orchestrator can stop routing new traffic to an overloaded or read-only
// instance without restarting a process that is still serving queries.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	resp := ReadyResponse{Role: "primary"}
	if s.replica != nil {
		st := s.replica.Status()
		resp.Role = st.Role
		if st.Role != "primary" {
			lag := st.Lag
			resp.ReplicationLag = &lag
			switch {
			case st.Diverged != nil:
				resp.Status, resp.Cause = "diverged", st.Diverged.Error()
				writeJSON(w, http.StatusServiceUnavailable, resp)
				return
			case !st.Bootstrapped:
				resp.Status = "bootstrapping"
				writeJSON(w, http.StatusServiceUnavailable, resp)
				return
			case lag > s.limits.MaxReplicationLag:
				resp.Status = "lagging"
				writeJSON(w, http.StatusServiceUnavailable, resp)
				return
			}
		}
	}
	if d := s.durableNow(); d != nil {
		if cause := d.Failure(); cause != nil {
			resp.Status, resp.Cause = "read-only", cause.Error()
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
	}
	if s.sharded != nil && s.shardedReady(r, &resp) {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if s.brownout() {
		resp.Status = "overloaded"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	resp.Status = "ready"
	writeJSON(w, http.StatusOK, resp)
}

// Recovering returns the stub handler a listener serves while boot-time
// recovery (WAL replay, dataset load) is still running: /healthz answers
// 200 (the process is alive), /readyz answers 503 "recovering", and every
// other route is refused with 503 so clients back off rather than time
// out. cmd/llmq serve binds its port immediately and swaps the real
// handler in once recovery finishes.
func Recovering() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "recovering"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		shed(w, http.StatusServiceUnavailable, 2*time.Second, errors.New("recovering: the server is replaying its write-ahead log"))
	})
	return mux
}

// brownout reports whether the server is under sustained admission
// pressure: the query class's waiting line holds at least a full capacity
// of work now, or did within the last BrownoutHold (hysteresis, so the
// EXACT path does not flap at the saturation boundary).
func (s *Server) brownout() bool {
	if s.admitQuery.Saturated() {
		s.lastSat.Store(time.Now().UnixNano())
		return true
	}
	last := s.lastSat.Load()
	return last != 0 && time.Since(time.Unix(0, last)) < s.limits.BrownoutHold
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	info := ModelInfo{}
	if s.sharded != nil {
		st := s.sharded.Stats()
		writeJSON(w, http.StatusOK, ModelInfo{
			Loaded:     st.Live > 0,
			Prototypes: st.Live,
			Steps:      st.Steps,
			Converged:  st.Converged,
			Dim:        st.Dim,
			Durable:    st.Durable,
			Shards:     s.sharded.Shards(),
		})
		return
	}
	if m := s.modelNow(); m != nil {
		// One pinned View, so K/Steps/Converged describe the same version
		// even while training publishes concurrently.
		v := m.View()
		cfg := m.Config()
		info = ModelInfo{
			Loaded:     true,
			Prototypes: v.K(),
			Steps:      v.Steps(),
			Converged:  v.Converged(),
			Vigilance:  cfg.Vigilance,
			Dim:        cfg.Dim,
			Durable:    s.durableNow() != nil,
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// modelReader is the prediction surface the statement evaluator needs. Both
// *core.Model (always answering from the latest published version) and
// core.View (pinned to one version) satisfy it; the batch endpoint pins a
// View so every statement of one request is answered by the same model
// version even while training or a model swap runs concurrently.
type modelReader interface {
	PredictMean(core.Query) (float64, error)
	Regression(core.Query) ([]core.LocalLinear, error)
	PredictValue(core.Query, []float64) (float64, error)
}

// degradable reports whether a statement that asked for EXACT execution
// could instead be answered by the model: every statement kind has an
// APPROX twin, so the only requirement is a trained model (or sharded set)
// of the right dimensionality (parseStatement already validated the
// dimensions).
func (s *Server) degradable() bool {
	return s.limits.DegradeExact && s.trained()
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req QueryRequest
	if status, err := decodeBody(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing sql"))
		return
	}
	stmt, status, err := s.parseStatement(req.SQL)
	if err != nil {
		writeError(w, status, err)
		return
	}
	// Brownout: shed the expensive relation scans first — or answer them
	// from the model when degradation is armed — while APPROX statements
	// ride through on the lock-free read path.
	degraded := false
	if !stmt.Approx && s.brownout() {
		if !s.degradable() {
			shed(w, http.StatusServiceUnavailable, s.admitQuery.RetryAfter(),
				errors.New("overloaded: exact statements are browned out, retry later or use APPROX"))
			return
		}
		degraded = true
	}
	if err := s.admitQuery.Acquire(r.Context(), 1); err != nil {
		s.shedQuery(w, r, err)
		return
	}
	defer s.admitQuery.Release(1)
	// With the micro-batcher armed, the admitted statement joins the open
	// coalescing sheet instead of executing alone — the shed/brownout
	// decisions above already happened per-request, so only work the server
	// agreed to do ever reaches a sheet.
	var resp *QueryResponse
	if s.coalescer != nil {
		resp, err = s.coalescer.do(r.Context(), stmt, degraded)
	} else {
		resp, err = s.answer(r.Context(), stmt, s.readerFor(r), degraded)
	}
	if err != nil {
		s.writeAnswerError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// shedQuery maps an admission failure: overload is 429 + Retry-After; a
// dead request context means the client is gone or the deadline passed
// before admission, which writeAnswerError maps.
func (s *Server) shedQuery(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, resilience.ErrOverloaded) {
		shed(w, http.StatusTooManyRequests, s.admitQuery.RetryAfter(),
			errors.New("overloaded: admission queue is full, retry later"))
		return
	}
	s.writeAnswerError(w, r, err)
}

// writeAnswerError maps an execution error to a response: an expired
// deadline is 504 (the admitted request ran out of its time budget), a
// client disconnect gets no body (nobody is reading), an empty subspace is
// 404, everything else 500.
func (s *Server) writeAnswerError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errors.New("query deadline exceeded"))
	case errors.Is(err, context.Canceled):
		// The client hung up; there is nobody to write a body to.
	case errors.Is(err, exec.ErrEmptySubspace):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// parseStatement parses and validates one SQL statement against the served
// relation and model, returning the HTTP status to use on error.
func (s *Server) parseStatement(sql string) (*sqlfront.Statement, int, error) {
	stmt, err := sqlfront.Parse(sql)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(stmt.Center) != len(s.exec.InputNames()) {
		return nil, http.StatusBadRequest,
			fmt.Errorf("query centre has %d coordinates, relation has %d input attributes",
				len(stmt.Center), len(s.exec.InputNames()))
	}
	if stmt.Approx && !s.trained() {
		return nil, http.StatusConflict, errors.New("no trained model loaded for APPROX statements")
	}
	return stmt, http.StatusOK, nil
}

// TrainPair is one training observation in a POST /train body: the query
// (centre and radius) and the answer the engine produced for it.
type TrainPair struct {
	Center []float64 `json:"center"`
	Theta  float64   `json:"theta"`
	Answer float64   `json:"answer"`
}

// TrainRequest is the body of POST /train.
type TrainRequest struct {
	Pairs []TrainPair `json:"pairs"`
}

// TrainResponse is the body returned by POST /train.
type TrainResponse struct {
	// Accepted is the number of pairs applied (a converged model freezes
	// its parameters and absorbs none — check Converged).
	Accepted   int    `json:"accepted"`
	Steps      int    `json:"steps"`
	Prototypes int    `json:"prototypes"`
	Converged  bool   `json:"converged"`
	Durable    bool   `json:"durable"`
	Elapsed    string `json:"elapsed"`
}

// handleTrain ingests training pairs into the served model. With a durable
// store every pair is appended to the write-ahead log before it is applied
// (and periodic checkpoints rotate the log); without one the pairs train the
// in-memory model only and die with the process. Either way the batch is
// applied under one writer-lock acquisition while queries keep answering
// lock-free from the previous published version. Admission is weighted by
// the pair count; a read-only durable store (WAL failure) answers 503 with
// the root cause.
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.sharded != nil {
		s.handleShardedTrain(w, r)
		return
	}
	model, durable := s.modelNow(), s.durableNow()
	if s.replica != nil && durable == nil {
		// A follower's state is defined as "exactly what the primary
		// shipped"; local writes would silently fork it. 421 tells the
		// client it talked to the wrong instance, and where the right one is.
		writeError(w, http.StatusMisdirectedRequest,
			fmt.Errorf("this instance is a read-only follower; POST /train to the primary at %s", s.replica.Primary()))
		return
	}
	if model == nil {
		writeError(w, http.StatusConflict, errors.New("no model loaded to train"))
		return
	}
	if durable != nil {
		if cause := durable.Failure(); cause != nil {
			// Fail fast before decoding: the store cannot take the pairs.
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("store is read-only after a WAL failure: %v", cause))
			return
		}
	}
	var req TrainRequest
	if status, err := decodeBody(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	pairs, status, err := convertPairs(req.Pairs)
	if err != nil {
		writeError(w, status, err)
		return
	}
	weight := int64(len(pairs))
	if err := s.admitTrain.Acquire(r.Context(), weight); err != nil {
		if errors.Is(err, resilience.ErrOverloaded) {
			shed(w, http.StatusTooManyRequests, s.admitTrain.RetryAfter(),
				errors.New("overloaded: training admission queue is full, retry later"))
			return
		}
		s.writeAnswerError(w, r, err)
		return
	}
	defer s.admitTrain.Release(weight)
	start := time.Now()
	before := model.Steps()
	var res core.TrainingResult
	if durable != nil {
		res, err = durable.TrainBatch(pairs)
	} else {
		res, err = model.TrainBatch(pairs)
	}
	if err != nil {
		if errors.Is(err, core.ErrReadOnly) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Accepted:   res.Steps - before,
		Steps:      res.Steps,
		Prototypes: res.K,
		Converged:  res.Converged,
		Durable:    durable != nil,
		Elapsed:    time.Since(start).String(),
	})
}

// BatchRequest is the body of POST /query/batch.
type BatchRequest struct {
	SQL []string `json:"sql"`
}

// batchWeight is what a sheet of n statements costs against the query
// admission class: its statement count, clamped to half the capacity so
// one maximal sheet leaves room for single statements (two can still fill
// the server, and a third then waits its budget like anything else).
func (s *Server) batchWeight(n int) int64 {
	half := s.admitQuery.Capacity() / 2
	if half < 1 {
		half = 1
	}
	if w := int64(n); w < half {
		return w
	}
	return half
}

// pinnedReader returns a prediction surface pinned for one whole sheet: a
// single published model version (core.View), so the answers are mutually
// consistent even while a training stream or a zero-downtime model swap
// publishes newer versions mid-sheet. A sharded front-end pins the routing
// epoch instead — every statement of the sheet routes through the same
// partition and backend set even across a concurrent shard split or merge
// (per-shard versions still advance between statements). Nil when there is
// no model; EXACT statements never touch the reader.
func (s *Server) pinnedReader(ctx context.Context) modelReader {
	if s.sharded != nil {
		return s.sharded.Reader(ctx)
	}
	if m := s.modelNow(); m != nil {
		return m.View()
	}
	return nil
}

// handleBatch streams a statement sheet's answers as NDJSON: admission and
// validation first (refusals are plain status-coded JSON — nothing has
// streamed yet), then a 200 whose body is one result frame per statement
// in statement order, each flushed as its prefix completes, and a trailer.
// Two failure paths matter: a statement the pool never reached (deadline,
// shutdown) still gets a per-statement error frame, and a client that
// stops reading cancels the rest of the sheet AND releases the sheet's
// admission weight immediately — an abandoned stream must not hold
// capacity for work that no longer has an audience.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req BatchRequest
	if status, err := decodeBody(w, r, &req); status != 0 {
		writeError(w, status, err)
		return
	}
	if len(req.SQL) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing sql statements"))
		return
	}
	if len(req.SQL) > maxBatchStatements {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d statements, limit is %d", len(req.SQL), maxBatchStatements))
		return
	}
	ticket, err := s.admitQuery.AcquireTicket(r.Context(), s.batchWeight(len(req.SQL)))
	if err != nil {
		s.shedQuery(w, r, err)
		return
	}
	// Released exactly once: here on the normal path, or early below when
	// the client goes away mid-stream (Ticket.Release is idempotent).
	defer ticket.Release()
	if r.Context().Err() != nil {
		// The client was already gone before a byte streamed; write nothing.
		return
	}
	// The brownout decision is taken once per sheet, at admission: every
	// EXACT statement of the sheet is then either degraded or refused
	// per-item, while the APPROX statements always run.
	brown := s.brownout()
	degradable := s.degradable()
	start := time.Now()
	n := len(req.SQL)
	// ctx cancels with the request (disconnect, deadline, shutdown) and on
	// the first write error, so a dead stream stops claiming statements.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	reader := s.pinnedReader(ctx)
	frames := make([]BatchFrame, n)
	ran := make([]bool, n)
	completed := make(chan int, n) // buffered: the pool never blocks on a slow writer
	var poolErr error
	go func() {
		defer close(completed)
		poolErr = exec.ForEachParallelStream(ctx, n, func(i int) {
			frames[i] = s.batchFrame(ctx, i, req.SQL[i], reader, brown, degradable)
			ran[i] = true
		}, completed)
	}()
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	clientGone := func() {
		cancel()
		ticket.Release()
		for range completed {
		} // let the pool goroutine finish and exit
	}
	wrote, werr := streamFrames(w, n, completed, func(i int) BatchFrame { return frames[i] })
	if werr != nil {
		clientGone()
		return
	}
	// The pool is done (completed is closed). Statements it never claimed —
	// the sheet's deadline or the server's shutdown got there first — still
	// owe their positional frame.
	enc := json.NewEncoder(w)
	for ; wrote < n; wrote++ {
		f := frames[wrote]
		if !ran[wrote] {
			msg := "statement not executed"
			switch {
			case errors.Is(poolErr, context.DeadlineExceeded):
				msg = "query deadline exceeded"
			case poolErr != nil:
				msg = poolErr.Error()
			}
			f = errorFrame(wrote, msg)
		}
		if err := enc.Encode(f); err != nil {
			clientGone()
			return
		}
	}
	if err := enc.Encode(BatchFrame{Done: true, Results: n, TotalElapsed: time.Since(start).String()}); err != nil {
		clientGone()
	}
}

// batchFrame evaluates one statement of a sheet into its result frame,
// applying the sheet's brownout decision per statement.
func (s *Server) batchFrame(ctx context.Context, i int, sql string, reader modelReader, brown, degradable bool) BatchFrame {
	stmt, _, err := s.parseStatement(sql)
	if err != nil {
		return errorFrame(i, err.Error())
	}
	degraded := false
	if !stmt.Approx && brown {
		if !degradable {
			return errorFrame(i, "overloaded: exact statements are browned out, retry later or use APPROX")
		}
		degraded = true
	}
	resp, err := s.answer(ctx, stmt, reader, degraded)
	if err != nil {
		return errorFrame(i, err.Error())
	}
	return resultFrame(i, resp)
}

// answer evaluates one parsed statement. EXACT statements run through the
// context-aware executors, so a vanished client or an expired deadline
// stops the relation scan; with degraded set (brownout + DegradeExact) an
// EXACT statement is answered from the model instead and marked so.
func (s *Server) answer(ctx context.Context, stmt *sqlfront.Statement, model modelReader, degraded bool) (*QueryResponse, error) {
	start := time.Now()
	approx := stmt.Approx || degraded
	resp := &QueryResponse{Kind: stmt.Kind.String(), Approx: approx, Degraded: degraded}
	rq := exec.RadiusQuery{Center: stmt.Center, Theta: stmt.Theta, P: stmt.Norm}

	finish := func() *QueryResponse {
		resp.Elapsed = time.Since(start).String()
		return resp
	}

	switch stmt.Kind {
	case sqlfront.StmtMean:
		if approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return nil, err
			}
			y, err := model.PredictMean(q)
			if err != nil {
				return nil, err
			}
			resp.Mean = &y
			return finish(), nil
		}
		res, err := s.exec.MeanCtx(ctx, rq)
		if err != nil {
			return nil, err
		}
		resp.Mean = &res.Mean
		resp.Tuples = res.Count
		return finish(), nil

	case sqlfront.StmtRegression:
		if approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return nil, err
			}
			locals, err := model.Regression(q)
			if err != nil {
				return nil, err
			}
			for _, lm := range locals {
				resp.Models = append(resp.Models, LocalModelJSON{
					Intercept: lm.Intercept,
					Slope:     lm.Slope,
					Center:    lm.Center,
					Theta:     lm.Theta,
					Weight:    lm.Weight,
				})
			}
			return finish(), nil
		}
		res, err := s.exec.RegressionCtx(ctx, rq)
		if err != nil {
			return nil, err
		}
		resp.Models = []LocalModelJSON{{
			Intercept: res.Intercept,
			Slope:     res.Slope,
			Center:    stmt.Center,
			Theta:     stmt.Theta,
			Weight:    1,
		}}
		resp.Tuples = res.Count
		resp.FVU, resp.R2 = &res.FVU, &res.CoD
		return finish(), nil

	case sqlfront.StmtValue:
		if len(stmt.At) != len(stmt.Center) {
			return nil, fmt.Errorf("AT point has %d coordinates, centre has %d", len(stmt.At), len(stmt.Center))
		}
		if approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return nil, err
			}
			u, err := model.PredictValue(q, stmt.At)
			if err != nil {
				return nil, err
			}
			resp.Value = &u
			return finish(), nil
		}
		res, err := s.exec.RegressionCtx(ctx, rq)
		if err != nil {
			return nil, err
		}
		u := res.Predict(stmt.At)
		resp.Value = &u
		resp.Tuples = res.Count
		resp.FVU, resp.R2 = &res.FVU, &res.CoD
		return finish(), nil
	}
	return nil, fmt.Errorf("unsupported statement kind %v", stmt.Kind)
}
