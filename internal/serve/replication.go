package serve

// Replication endpoints — the primary side of internal/replica's
// protocol, plus the promotion trigger on the follower side:
//
//	GET  /replicate/snapshot          → stream the newest checkpoint
//	                                    generation (X-Llmq-Gen names it)
//	GET  /replicate/wal?gen=G&off=O   → long-poll WAL records past the
//	                                    (generation, offset) cursor;
//	                                    200 carries either chunk bytes or a
//	                                    bare generation bump (rotation),
//	                                    204 an expired poll window, 410 a
//	                                    GCed cursor (re-bootstrap)
//	GET  /replicate/hash[?gen=G]      → the canonical state hash the
//	                                    primary recorded at boundary G, or
//	                                    the live state's hash without gen
//	POST /promote                     → turn this follower into a writable
//	                                    primary (refused while diverged)
//
// Every response carries X-Llmq-Boot (the store's boot ID — a change means
// the log identity changed and shipped cursors are void) and X-Llmq-Steps
// (the primary's current training-step count, which is what followers
// compute their lag against). The replication endpoints require a durable
// store: a memory-only server has no log to ship and answers 409. A
// promoted follower serves them too — it has a real Durable by then — so
// surviving followers can re-target it.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"llmq/internal/core"
	"llmq/internal/replica"
	"llmq/internal/wal"
)

const (
	// maxPollWait caps a /replicate/wal long-poll window.
	maxPollWait = 30 * time.Second
	// maxShipChunk caps the bytes one /replicate/wal response may carry.
	maxShipChunk = 4 << 20
	// shipPollInterval is how often a long poll re-reads the tail while
	// waiting for records.
	shipPollInterval = 15 * time.Millisecond
)

// replicationSource returns the durable store whose log this instance can
// ship, writing a 409 and returning nil when there is none.
func (s *Server) replicationSource(w http.ResponseWriter) *core.Durable {
	d := s.durableNow()
	if d == nil {
		writeError(w, http.StatusConflict,
			errors.New("replication requires a durable store (serve -data-dir); this instance has none"))
		return nil
	}
	return d
}

// stampReplication sets the headers every replication response carries.
func stampReplication(w http.ResponseWriter, d *core.Durable) {
	w.Header().Set(replica.HeaderBoot, d.BootID())
	w.Header().Set(replica.HeaderSteps, strconv.Itoa(d.Model().Steps()))
}

func (s *Server) handleReplicateSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	d := s.replicationSource(w)
	if d == nil {
		return
	}
	gen, err := d.EnsureSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("snapshot: %w", err))
		return
	}
	// Snapshot files are immutable once published (written atomically,
	// then only ever GCed), so an open handle streams a consistent
	// generation even if the store rotates or GCs it mid-transfer.
	f, err := os.Open(wal.SnapshotPath(d.Dir(), gen))
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("snapshot %d: %w", gen, err))
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("snapshot %d: %w", gen, err))
		return
	}
	stampReplication(w, d)
	w.Header().Set(replica.HeaderGen, strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// handleReplicateWAL ships WAL bytes past a cursor. The contract mirrors
// wal.TailRead's: a 200 carries either complete CRC-valid records (the
// cursor advances by exactly the body length) or, when the cursor's
// generation is sealed and consumed, a bare bump to the next generation
// with an empty body — never both, so a follower can treat "data" and
// "rotate" as distinct events. 204 means the poll window expired with
// nothing new; 410 means the cursor's generation was GCed and the follower
// must re-bootstrap.
func (s *Server) handleReplicateWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	d := s.replicationSource(w)
	if d == nil {
		return
	}
	q := r.URL.Query()
	gen, genErr := strconv.ParseUint(q.Get("gen"), 10, 64)
	off, offErr := strconv.ParseInt(q.Get("off"), 10, 64)
	if genErr != nil || offErr != nil || off < 0 {
		writeError(w, http.StatusBadRequest, errors.New("gen and off query parameters are required non-negative integers"))
		return
	}
	var wait time.Duration
	if ws := q.Get("wait"); ws != "" {
		ms, err := strconv.Atoi(ws)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, errors.New("wait must be a non-negative integer of milliseconds"))
			return
		}
		if wait = time.Duration(ms) * time.Millisecond; wait > maxPollWait {
			wait = maxPollWait
		}
	}
	max := wal.DefaultTailChunk
	if ms := q.Get("max"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("max must be a positive integer of bytes"))
			return
		}
		if max = n; max > maxShipChunk {
			max = maxShipChunk
		}
	}
	cur := wal.Cursor{Gen: gen, Off: off}
	deadline := time.Now().Add(wait)
	for {
		chunk, err := wal.TailRead(d.Dir(), cur, max)
		if err != nil {
			stampReplication(w, d)
			if errors.Is(err, wal.ErrCursorGone) {
				writeError(w, http.StatusGone, err)
			} else {
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		if len(chunk.Data) > 0 || chunk.Next != cur {
			stampReplication(w, d)
			w.Header().Set(replica.HeaderNextGen, strconv.FormatUint(chunk.Next.Gen, 10))
			w.Header().Set(replica.HeaderNextOff, strconv.FormatInt(chunk.Next.Off, 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(chunk.Data)))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(chunk.Data)
			return
		}
		if r.Context().Err() != nil || !time.Now().Before(deadline) {
			stampReplication(w, d)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		interval := shipPollInterval
		if rem := time.Until(deadline); rem < interval {
			interval = rem
		}
		select {
		case <-r.Context().Done():
		case <-time.After(interval):
		}
	}
}

func (s *Server) handleReplicateHash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	d := s.replicationSource(w)
	if d == nil {
		return
	}
	stampReplication(w, d)
	if gs := r.URL.Query().Get("gen"); gs != "" {
		gen, err := strconv.ParseUint(gs, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, errors.New("gen must be a non-negative integer"))
			return
		}
		bh, ok := d.BoundaryHash(gen)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("no boundary hash recorded for generation %d (not a boundary this process crossed, or aged out)", gen))
			return
		}
		writeJSON(w, http.StatusOK, replica.HashResponse{Gen: bh.Gen, Steps: bh.Steps, Hash: bh.Hash})
		return
	}
	steps, hash, err := d.StateHash()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("state hash: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, replica.HashResponse{Steps: steps, Hash: hash})
}

// handlePromote turns a follower into a writable primary in place: the
// replication loop is stopped, the mirrored log sealed and resumed as this
// instance's durable store. Idempotent once promoted. A primary that was
// never a follower answers 409; a diverged or not-yet-bootstrapped
// follower refuses with the replica's descriptive error.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.replica == nil {
		writeError(w, http.StatusConflict, errors.New("this instance is already a primary, not a follower"))
		return
	}
	if _, err := s.replica.Promote(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready", Role: "primary"})
}
