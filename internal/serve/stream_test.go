package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// recordingWriter is a ResponseWriter that logs the write/flush interleaving
// and can start failing after a fixed number of successful writes — a
// deterministic stand-in for a client that disconnected mid-stream.
type recordingWriter struct {
	header http.Header
	events []string
	buf    bytes.Buffer
	// failAfter is how many writes succeed before every further write
	// errors; negative means never fail.
	failAfter int
	writes    int
}

func (w *recordingWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *recordingWriter) WriteHeader(int) {}

func (w *recordingWriter) Write(p []byte) (int, error) {
	if w.failAfter >= 0 && w.writes >= w.failAfter {
		return 0, errors.New("broken pipe")
	}
	w.writes++
	w.events = append(w.events, "write")
	return w.buf.Write(p)
}

func (w *recordingWriter) Flush() { w.events = append(w.events, "flush") }

// TestStreamFramesOrderAndFlush feeds completions out of order (2, 0, 1)
// and checks the wire carries frames strictly in statement order, each
// followed by its own flush: frame 2's completion alone must not put
// anything on the wire, and frame 1's completion releases both 1 and 2.
func TestStreamFramesOrderAndFlush(t *testing.T) {
	w := &recordingWriter{failAfter: -1}
	completed := make(chan int)
	go func() {
		completed <- 2
		completed <- 0
		completed <- 1
		close(completed)
	}()
	wrote, err := streamFrames(w, 3, completed, func(i int) BatchFrame {
		return errorFrame(i, fmt.Sprintf("e%d", i))
	})
	if err != nil || wrote != 3 {
		t.Fatalf("streamFrames = (%d, %v), want (3, nil)", wrote, err)
	}
	want := []string{"write", "flush", "write", "flush", "write", "flush"}
	if fmt.Sprint(w.events) != fmt.Sprint(want) {
		t.Errorf("event interleaving %v, want %v (one flush per frame)", w.events, want)
	}
	sc := bufio.NewScanner(&w.buf)
	for i := 0; sc.Scan(); i++ {
		f, err := ParseBatchFrame(sc.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if f.Done || *f.Index != i || f.Error != fmt.Sprintf("e%d", i) {
			t.Fatalf("line %d carries frame %+v", i, f)
		}
	}
}

// TestStreamFramesStopsOnWriteError checks the backpressure half of the
// contract: the first failed write ends the stream with exactly the
// contiguous prefix on the wire, and the reported count matches it.
func TestStreamFramesStopsOnWriteError(t *testing.T) {
	w := &recordingWriter{failAfter: 1}
	completed := make(chan int, 3)
	completed <- 0
	completed <- 1
	completed <- 2
	close(completed)
	wrote, err := streamFrames(w, 3, completed, func(i int) BatchFrame { return errorFrame(i, "x") })
	if err == nil {
		t.Fatal("write error was swallowed")
	}
	if wrote != 1 {
		t.Fatalf("wrote = %d, want 1 (the contiguous prefix that made it out)", wrote)
	}
}

func TestReadBatchStreamContract(t *testing.T) {
	result0 := `{"index":0,"error":"boom"}`
	result1 := `{"index":1,"kind":"AVG","approx":true,"mean":1.5,"elapsed":"1ms"}`
	trailer := `{"done":true,"results":2,"total_elapsed":"2ms"}`
	join := func(lines ...string) io.Reader {
		return strings.NewReader(strings.Join(lines, "\n") + "\n")
	}

	t.Run("happy path with blank lines", func(t *testing.T) {
		var visited []int
		tr, err := ReadBatchStream(join(result0, "", result1, trailer), func(f BatchFrame) error {
			visited = append(visited, *f.Index)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Results != 2 || tr.TotalElapsed != "2ms" {
			t.Errorf("trailer %+v", tr)
		}
		if fmt.Sprint(visited) != "[0 1]" {
			t.Errorf("visited %v", visited)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		if _, err := ReadBatchStream(join(result0, result1), nil); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("out of order", func(t *testing.T) {
		if _, err := ReadBatchStream(join(result1, result0, trailer), nil); err == nil {
			t.Error("index 1 before 0 accepted")
		}
	})
	t.Run("trailer count mismatch", func(t *testing.T) {
		if _, err := ReadBatchStream(join(result0, trailer), nil); err == nil {
			t.Error("trailer claiming 2 results over a 1-frame stream accepted")
		}
	})
	t.Run("junk after trailer", func(t *testing.T) {
		if _, err := ReadBatchStream(join(result0, result1, trailer, result0), nil); err == nil {
			t.Error("frame after the trailer accepted")
		}
	})
	t.Run("visit error propagates", func(t *testing.T) {
		boom := errors.New("stop")
		if _, err := ReadBatchStream(join(result0, result1, trailer), func(BatchFrame) error { return boom }); !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestParseBatchFrameRejectsMalformedShapes(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{}`,                                 // neither result nor trailer
		`{"index":0}`,                        // result with neither answer nor error
		`{"index":-1,"error":"x"}`,           // negative index
		`{"index":0,"done":true,"mean":1}`,   // both result and trailer
		`{"index":0,"error":"x","mean":1.5}`, // both an answer and an error
		`{"done":true,"results":-3}`,         // negative trailer count
	} {
		if _, err := ParseBatchFrame([]byte(bad)); err == nil {
			t.Errorf("ParseBatchFrame(%s) accepted", bad)
		}
	}
}

// FuzzParseBatchFrame fuzzes the client-side frame parser: any input either
// errors or yields a frame that survives a marshal/parse round trip intact —
// the parser must never panic and never accept a frame it would not
// re-accept from its own encoding.
func FuzzParseBatchFrame(f *testing.F) {
	f.Add([]byte(`{"index":0,"error":"boom"}`))
	f.Add([]byte(`{"index":3,"kind":"AVG","approx":true,"mean":0.25,"elapsed":"1ms"}`))
	f.Add([]byte(`{"index":1,"kind":"REGRESSION","models":[{"intercept":1,"slope":[2],"center":[0.5],"theta":0.1,"weight":1}],"fvu":0.1,"r2":0.9,"elapsed":"2ms"}`))
	f.Add([]byte(`{"done":true,"results":7,"total_elapsed":"3ms"}`))
	f.Add([]byte(`{"index":-1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := ParseBatchFrame(line)
		if err != nil {
			return
		}
		b, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		fr2, err := ParseBatchFrame(b)
		if err != nil {
			t.Fatalf("round trip rejected %s: %v", b, err)
		}
		if (fr.Index == nil) != (fr2.Index == nil) || (fr.Index != nil && *fr.Index != *fr2.Index) ||
			fr.Done != fr2.Done || fr.Error != fr2.Error || fr.Results != fr2.Results ||
			fr.TotalElapsed != fr2.TotalElapsed {
			t.Fatalf("round trip changed the frame: %+v vs %+v", fr, fr2)
		}
	})
}

// TestBatchStreamOverHTTP runs the full stack over a real connection: a
// mixed sheet streams back as NDJSON that the shared client-side reader
// accepts, in order, with the trailer accounting for every frame.
func TestBatchStreamOverHTTP(t *testing.T) {
	s := newServer(t, true)
	ts := httptest.NewServer(s)
	defer ts.Close()
	sheet := BatchRequest{SQL: []string{
		"SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
		"SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.3, 0.7)",
		"garbage",
		"SELECT REGRESSION(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
	}}
	body, err := json.Marshal(sheet)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("Content-Type %q", ct)
	}
	n := 0
	trailer, err := ReadBatchStream(resp.Body, func(f BatchFrame) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || trailer.Results != 4 {
		t.Fatalf("got %d frames, trailer claims %d, want 4", n, trailer.Results)
	}
}

// TestBatchDisconnectMidStream simulates a client that stops reading after
// a few frames: the handler must (a) have put only well-formed, in-order
// frames on the wire, (b) release the sheet's admission weight immediately
// rather than when the sheet would have finished, and (c) leave no pool
// goroutines behind.
func TestBatchDisconnectMidStream(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{QueryConcurrency: 8}))
	sqls := make([]string, 256)
	for i := range sqls {
		sqls[i] = "SELECT AVG(u) FROM r1 WITHIN 0.45 OF (0.5, 0.5)"
	}
	body, err := json.Marshal(BatchRequest{SQL: sqls})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	w := &recordingWriter{failAfter: 4}
	req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(body))
	s.ServeHTTP(w, req) // returns only after the pool goroutine exited
	// (a) the partial stream is well-formed: a contiguous, parseable prefix.
	sc := bufio.NewScanner(&w.buf)
	i := 0
	for ; sc.Scan(); i++ {
		f, err := ParseBatchFrame(sc.Bytes())
		if err != nil {
			t.Fatalf("frame %d on the wire is malformed: %v", i, err)
		}
		if f.Done || *f.Index != i {
			t.Fatalf("frame %d out of order: %+v", i, f)
		}
	}
	if i != 4 {
		t.Fatalf("%d frames made it out before the broken pipe, want 4", i)
	}
	// (b) the weight came back through the early release, not a trailer.
	if inflight, _, _ := s.admitQuery.Stats(); inflight != 0 {
		t.Fatalf("disconnected batch still holds %d admission weight", inflight)
	}
	// (c) no pool workers or streaming goroutines leaked.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after disconnect", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
