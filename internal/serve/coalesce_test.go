package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/sqlfront"
)

// bitEq compares two optional floats at the bit level: the coalescing
// contract is bit-identity, not epsilon-closeness.
func bitEq(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || math.Float64bits(*a) == math.Float64bits(*b)
}

func bitsEqSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// diffAnswer reports the first semantic difference between two query
// responses, ignoring only Elapsed (wall-clock, not part of the answer).
func diffAnswer(got, want *QueryResponse) string {
	switch {
	case (got == nil) != (want == nil):
		return fmt.Sprintf("one answer is nil: got %+v, want %+v", got, want)
	case got == nil:
		return ""
	case got.Kind != want.Kind:
		return fmt.Sprintf("kind %q != %q", got.Kind, want.Kind)
	case got.Approx != want.Approx:
		return fmt.Sprintf("approx %v != %v", got.Approx, want.Approx)
	case got.Degraded != want.Degraded:
		return fmt.Sprintf("degraded %v != %v", got.Degraded, want.Degraded)
	case got.Tuples != want.Tuples:
		return fmt.Sprintf("tuples %d != %d", got.Tuples, want.Tuples)
	case !bitEq(got.Mean, want.Mean):
		return fmt.Sprintf("mean %v != %v", got.Mean, want.Mean)
	case !bitEq(got.Value, want.Value):
		return fmt.Sprintf("value %v != %v", got.Value, want.Value)
	case !bitEq(got.FVU, want.FVU):
		return fmt.Sprintf("fvu %v != %v", got.FVU, want.FVU)
	case !bitEq(got.R2, want.R2):
		return fmt.Sprintf("r2 %v != %v", got.R2, want.R2)
	case len(got.Models) != len(want.Models):
		return fmt.Sprintf("%d models != %d", len(got.Models), len(want.Models))
	}
	for i := range got.Models {
		g, w := got.Models[i], want.Models[i]
		if math.Float64bits(g.Intercept) != math.Float64bits(w.Intercept) ||
			math.Float64bits(g.Theta) != math.Float64bits(w.Theta) ||
			math.Float64bits(g.Weight) != math.Float64bits(w.Weight) ||
			!bitsEqSlice(g.Slope, w.Slope) || !bitsEqSlice(g.Center, w.Center) {
			return fmt.Sprintf("model %d: %+v != %+v", i, g, w)
		}
	}
	return ""
}

// randomStmt draws a statement over the 2-D test relation: all three kinds,
// APPROX-heavy (the batcher's target traffic) but with EXACT mixed in, since
// both ride coalesced sheets.
func randomStmt(rng *rand.Rand) *sqlfront.Statement {
	st := &sqlfront.Statement{
		Output: "u",
		Table:  "r1",
		Theta:  0.08 + 0.1*rng.Float64(),
		Center: []float64{0.2 + 0.6*rng.Float64(), 0.2 + 0.6*rng.Float64()},
		Norm:   2,
		Approx: rng.Intn(4) != 0,
	}
	switch rng.Intn(3) {
	case 0:
		st.Kind = sqlfront.StmtMean
	case 1:
		st.Kind = sqlfront.StmtRegression
	default:
		st.Kind = sqlfront.StmtValue
		st.At = []float64{st.Center[0] + 0.01, st.Center[1] - 0.01}
	}
	return st
}

// TestCoalescedAnswersBitIdenticalUnderLiveTraining is the coalescing
// correctness property: while the model absorbs a live training stream,
// randomized interleaved floods of statements go through the micro-batcher,
// and every coalesced answer must be bit-identical to an uncoalesced
// re-evaluation of the same statement on the same pinned read surface. The
// sheet pins one View per cut; training publishes new versions concurrently,
// so any leakage of "current model" into a sheet's evaluation — or any
// nondeterminism in the collapse fan-out — shows up as a bit difference.
// Runs under -race in CI, which also checks the batcher's locking.
func TestCoalescedAnswersBitIdenticalUnderLiveTraining(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{BatchWindow: 2 * time.Millisecond, BatchMaxSheet: 8}))
	b := s.coalescer

	// Live training stream: keep publishing new model versions for the
	// whole flood, the regime the View pinning exists for.
	stop := make(chan struct{})
	var trainWG sync.WaitGroup
	trainWG.Add(1)
	go func() {
		defer trainWG.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			q, err := core.NewQuery([]float64{rng.Float64(), rng.Float64()}, 0.1)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.model.Observe(q, rng.NormFloat64()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	defer trainWG.Wait()
	defer close(stop)

	rng := rand.New(rand.NewSource(42))
	// A small hot pool plus fresh statements: duplicates force the collapse
	// path, fresh ones the general coalescing path.
	pool := make([]*sqlfront.Statement, 6)
	for i := range pool {
		pool[i] = randomStmt(rng)
	}
	const rounds, flood = 12, 16
	for round := 0; round < rounds; round++ {
		stmts := make([]*sqlfront.Statement, flood)
		for i := range stmts {
			if rng.Intn(2) == 0 {
				stmts[i] = pool[rng.Intn(len(pool))]
			} else {
				stmts[i] = randomStmt(rng)
			}
		}
		var wg sync.WaitGroup
		for _, stmt := range stmts {
			wg.Add(1)
			go func(stmt *sqlfront.Statement) {
				defer wg.Done()
				p := b.submit(context.Background(), stmt, false)
				out := <-p.done
				// Reference: the uncoalesced path on the sheet's own pinned
				// surface. Errors must match too (same statement, same
				// surface, same outcome).
				want, werr := s.answer(context.Background(), stmt, out.reader, false)
				if (out.err != nil) != (werr != nil) {
					t.Errorf("coalesced err %v, reference err %v", out.err, werr)
					return
				}
				if out.err != nil {
					if out.err.Error() != werr.Error() {
						t.Errorf("coalesced err %q, reference err %q", out.err, werr)
					}
					return
				}
				if d := diffAnswer(out.resp, want); d != "" {
					t.Errorf("coalesced answer differs from the pinned reference: %s", d)
				}
			}(stmt)
		}
		wg.Wait()
	}
	if b.coalesced.Load() == 0 {
		t.Error("the flood never coalesced a sheet; the property was not exercised")
	}
	if b.collapsed.Load() == 0 {
		t.Error("the flood never collapsed a duplicate; the property was not exercised")
	}
	t.Logf("sheets=%d coalesced=%d collapsed=%d", b.sheets.Load(), b.coalesced.Load(), b.collapsed.Load())
}
