package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/synth"
	"llmq/internal/workload"
)

// newServer builds a server over a small synthetic relation, optionally with
// a trained model.
func newServer(t *testing.T, withModel bool, opts ...Option) *Server {
	t.Helper()
	pts, err := synth.Generate(synth.R1Config(5000, 2, 31))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("r1", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	tab, err := cat.LoadDataset("r1", ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var m *core.Model
	if withModel {
		gen, err := workload.NewGenerator(workload.GenConfig{
			Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.12, ThetaStdDev: 0.02, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := workload.NewHarness(e, gen)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.ResolutionA = 0.1
		m, _, _, err = h.TrainModel(cfg, 1500)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(e, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postQuery(t *testing.T, s *Server, sql string) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestNewRequiresExecutor(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil executor accepted")
	}
}

func TestHealthAndModelEndpoints(t *testing.T) {
	s := newServer(t, true)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/model", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("model status = %d", rec.Code)
	}
	var info ModelInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.Prototypes == 0 || info.Dim != 2 {
		t.Errorf("model info = %+v", info)
	}
	// Wrong method.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/model", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /model status = %d", rec.Code)
	}
}

func TestModelEndpointWithoutModel(t *testing.T) {
	s := newServer(t, false)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/model", nil))
	var info ModelInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Loaded {
		t.Error("model reported loaded without one")
	}
}

func TestExactAndApproxMeanQueries(t *testing.T) {
	s := newServer(t, true)
	exact := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
	if exact.Code != http.StatusOK {
		t.Fatalf("exact status = %d body %s", exact.Code, exact.Body.String())
	}
	var exactResp QueryResponse
	if err := json.Unmarshal(exact.Body.Bytes(), &exactResp); err != nil {
		t.Fatal(err)
	}
	if exactResp.Mean == nil || exactResp.Tuples == 0 || exactResp.Approx {
		t.Errorf("exact response = %+v", exactResp)
	}
	approx := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
	if approx.Code != http.StatusOK {
		t.Fatalf("approx status = %d body %s", approx.Code, approx.Body.String())
	}
	var approxResp QueryResponse
	if err := json.Unmarshal(approx.Body.Bytes(), &approxResp); err != nil {
		t.Fatal(err)
	}
	if approxResp.Mean == nil || !approxResp.Approx || approxResp.Tuples != 0 {
		t.Errorf("approx response = %+v", approxResp)
	}
	// The two answers should agree loosely (same subspace).
	if diff := *exactResp.Mean - *approxResp.Mean; diff > 1 || diff < -1 {
		t.Errorf("exact %v vs approx %v diverge wildly", *exactResp.Mean, *approxResp.Mean)
	}
}

func TestRegressionAndValueQueries(t *testing.T) {
	s := newServer(t, true)
	for _, sql := range []string{
		"SELECT REGRESSION(u ON x1, x2) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
		"SELECT APPROX REGRESSION(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
	} {
		rec := postQuery(t, s, sql)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d body %s", sql, rec.Code, rec.Body.String())
		}
		var resp QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Models) == 0 || resp.Kind != "regression" {
			t.Errorf("%s: response %+v", sql, resp)
		}
	}
	for _, sql := range []string{
		"SELECT VALUE(u) FROM r1 AT (0.5, 0.5) WITHIN 0.15 OF (0.5, 0.5)",
		"SELECT APPROX VALUE(u) FROM r1 AT (0.5, 0.5) WITHIN 0.15 OF (0.5, 0.5)",
	} {
		rec := postQuery(t, s, sql)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d body %s", sql, rec.Code, rec.Body.String())
		}
		var resp QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Value == nil || resp.Kind != "value" {
			t.Errorf("%s: response %+v", sql, resp)
		}
	}
}

func TestQueryErrorPaths(t *testing.T) {
	s := newServer(t, false)
	// Method not allowed.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", rec.Code)
	}
	// Bad JSON.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", rec.Code)
	}
	// Missing SQL.
	if rec := postQuery(t, s, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("empty sql status = %d", rec.Code)
	}
	// Parse error.
	if rec := postQuery(t, s, "DROP TABLE r1"); rec.Code != http.StatusBadRequest {
		t.Errorf("parse error status = %d", rec.Code)
	}
	// Wrong dimensionality.
	if rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5)"); rec.Code != http.StatusBadRequest {
		t.Errorf("wrong dim status = %d", rec.Code)
	}
	// APPROX without a model.
	if rec := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"); rec.Code != http.StatusConflict {
		t.Errorf("approx without model status = %d", rec.Code)
	}
	// Empty subspace maps to 404.
	if rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.0001 OF (55, 55)"); rec.Code != http.StatusNotFound {
		t.Errorf("empty subspace status = %d", rec.Code)
	}
}
