package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/index"
	"llmq/internal/shard"
	"llmq/internal/synth"
)

// newShardedServer builds a sharded server over the synthetic relation:
// `shards` fresh local models behind a partition of [0,1]^2.
func newShardedServer(t *testing.T, shards int, opts ...Option) (*Server, *shard.Sharded) {
	t.Helper()
	e := newShardedExecutor(t)
	part, backends := newShardParts(t, shards)
	sh, err := shard.New(part, backends)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(e, sh, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, sh
}

func newShardedExecutor(t *testing.T) *exec.Executor {
	t.Helper()
	pts, err := synth.Generate(synth.R1Config(5000, 2, 31))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("r1", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := engine.NewCatalog().LoadDataset("r1", ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newShardParts(t *testing.T, shards int) (*index.Partition, []shard.Backend) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	sample := make([]float64, 0, 400)
	for i := 0; i < 200; i++ {
		sample = append(sample, rng.Float64(), rng.Float64())
	}
	part, err := index.NewPartition(2, shards, sample, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]shard.Backend, shards)
	for i := range backends {
		cfg := core.DefaultConfig(2)
		cfg.Vigilance = 0.25
		cfg.Gamma = 1e-12
		m, err := core.NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = shard.NewLocal(m)
	}
	return part, backends
}

func shardedTrainBody(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var req TrainRequest
	for i := 0; i < n; i++ {
		req.Pairs = append(req.Pairs, TrainPair{
			Center: []float64{rng.Float64(), rng.Float64()},
			Theta:  0.05 + 0.1*rng.Float64(),
			Answer: rng.NormFloat64(),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestShardedServerEndToEnd drives the sharded HTTP surface: /train
// partitions pairs across the shards, /model aggregates the set, APPROX
// statements answer bit-identically to the sharded reader, and /readyz
// reports every shard.
func TestShardedServerEndToEnd(t *testing.T) {
	s, sh := newShardedServer(t, 2)

	// APPROX before any training is refused like a model-less server.
	rec := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
	if rec.Code != http.StatusConflict {
		t.Fatalf("untrained APPROX status = %d", rec.Code)
	}
	// EXACT works regardless — the relation is not sharded.
	rec = postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
	if rec.Code != http.StatusOK {
		t.Fatalf("exact status = %d: %s", rec.Code, rec.Body)
	}

	const pairs = 600
	req := httptest.NewRequest(http.MethodPost, "/train", bytes.NewReader(shardedTrainBody(t, pairs, 7)))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("train status = %d: %s", rec.Code, rec.Body)
	}
	var tr TrainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Accepted != pairs || tr.Steps != pairs {
		t.Fatalf("train response %+v, want %d accepted and steps", tr, pairs)
	}
	for id, b := range sh.Backends() {
		if b.Stats().Live == 0 {
			t.Fatalf("shard %d got no prototypes; /train did not partition", id)
		}
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/model", nil))
	var info ModelInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.Shards != 2 || info.Steps != pairs || info.Prototypes != sh.Stats().Live {
		t.Fatalf("sharded /model = %+v", info)
	}

	rec = postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)")
	if rec.Code != http.StatusOK {
		t.Fatalf("approx status = %d: %s", rec.Code, rec.Body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	want, err := sh.PredictMean(core.Query{Center: []float64{0.5, 0.5}, Theta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Approx || qr.Mean == nil || *qr.Mean != want {
		t.Fatalf("approx answer %+v, sharded reader says %v", qr, want)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz status = %d: %s", rec.Code, rec.Body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || len(ready.Shards) != 2 {
		t.Fatalf("sharded /readyz = %+v", ready)
	}
	for _, sr := range ready.Shards {
		if sr.Status != "ready" {
			t.Fatalf("healthy shard reported %+v", sr)
		}
	}
}

// unhealthyBackend is a shard stub whose health probe reports a failure.
type unhealthyBackend struct {
	shard.Backend
	health shard.Health
}

func (u unhealthyBackend) Health(context.Context) shard.Health { return u.health }

// TestShardedReadyDegradation is satellite coverage for the aggregated
// /readyz: one read-only shard degrades the whole set, and the response
// names the shard and its cause.
func TestShardedReadyDegradation(t *testing.T) {
	e := newShardedExecutor(t)
	part, backends := newShardParts(t, 2)
	backends[1] = unhealthyBackend{
		Backend: backends[1],
		health:  shard.Health{Status: "read-only", Cause: "wal append: disk full"},
	}
	sh, err := shard.New(part, backends)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(e, sh)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz status = %d: %s", rec.Code, rec.Body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", ready.Status)
	}
	if !strings.Contains(ready.Cause, "shard 1 read-only") || !strings.Contains(ready.Cause, "disk full") {
		t.Fatalf("cause %q does not name the failing shard", ready.Cause)
	}
	if len(ready.Shards) != 2 || ready.Shards[0].Status != "ready" || ready.Shards[1].Status != "read-only" {
		t.Fatalf("per-shard readiness = %+v", ready.Shards)
	}
}

// TestShardWireEndpoints checks that every model-backed server speaks the
// shard protocol, so it can stand behind a remote router: /shard/meta,
// /shard/scan and /shard/train against a plain single-model server.
func TestShardWireEndpoints(t *testing.T) {
	s := newServer(t, true)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, shard.PathMeta, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("meta status = %d: %s", rec.Code, rec.Body)
	}
	var meta shard.Meta
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Dim != 2 || meta.Live == 0 || meta.MaxTheta <= 0 {
		t.Fatalf("meta = %+v", meta)
	}

	scan, _ := json.Marshal(shard.ScanRequest{Center: []float64{0.5, 0.5}, Theta: 0.2, Models: true})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, shard.PathScan, bytes.NewReader(scan)))
	if rec.Code != http.StatusOK {
		t.Fatalf("scan status = %d: %s", rec.Code, rec.Body)
	}
	var res core.ScatterResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Live != meta.Live || (len(res.Contribs) == 0 && res.WinnerModel == nil) {
		t.Fatalf("scan result = %+v", res)
	}

	trainBody, _ := json.Marshal(shard.TrainShardRequest{Pairs: []shard.WirePair{
		{Center: []float64{0.3, 0.7}, Theta: 0.1, Answer: 1.5},
	}})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, shard.PathTrain, bytes.NewReader(trainBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("shard train status = %d: %s", rec.Code, rec.Body)
	}
	var tr shard.TrainShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Steps != meta.Steps+1 || tr.MaxTheta <= 0 {
		t.Fatalf("shard train response = %+v (was at %d steps)", tr, meta.Steps)
	}

	// A model-less server refuses scans with 409 and meta with 503.
	bare := newServer(t, false)
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, shard.PathScan, bytes.NewReader(scan)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("model-less scan status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, shard.PathMeta, nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("model-less meta status = %d", rec.Code)
	}
}
