package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Streaming /query/batch wire format. A batch response is NDJSON — one JSON
// object per line — so a client can act on early statements while late ones
// are still executing, instead of waiting for the whole sheet to buffer.
// The stream is: one result frame per statement, in statement order, each
// flushed as soon as every earlier statement has been answered; then one
// trailer frame. The frame grammar is enforced by ParseBatchFrame and the
// ordering by ReadBatchStream, which the llmq client and the tests share.

// NDJSONContentType is the Content-Type of a streaming /query/batch
// response.
const NDJSONContentType = "application/x-ndjson"

// maxFrameBytes bounds one NDJSON line on the consuming side; a frame past
// it is a protocol error, not an allocation. Generous for a wide exact-Q2
// answer (a few hundred bytes) and even for an APPROX regression carrying
// every overlapping local model.
const maxFrameBytes = 8 << 20

// BatchFrame is one line of a streaming /query/batch response: either a
// result frame (Index set, exactly one of the embedded answer or Error
// present) or the final trailer frame (Done set, with the stream totals).
type BatchFrame struct {
	// Index is the 0-based position of the statement this frame answers;
	// nil on the trailer frame. Result frames arrive in index order.
	Index *int `json:"index,omitempty"`
	// QueryResponse is the statement's answer, exactly the /query body.
	*QueryResponse
	// Error is the statement's positional error (parse failure, brownout
	// refusal, deadline, empty subspace, ...); the sheet keeps streaming.
	Error string `json:"error,omitempty"`
	// Done marks the trailer frame, always the last line of the stream; a
	// stream that ends without one was truncated.
	Done bool `json:"done,omitempty"`
	// Results is the trailer's count of result frames streamed before it.
	Results int `json:"results,omitempty"`
	// TotalElapsed is the trailer's wall-clock time of the whole sheet.
	TotalElapsed string `json:"total_elapsed,omitempty"`
}

// resultFrame builds a result frame answering statement i.
func resultFrame(i int, resp *QueryResponse) BatchFrame {
	return BatchFrame{Index: &i, QueryResponse: resp}
}

// errorFrame builds a result frame carrying statement i's positional error.
func errorFrame(i int, msg string) BatchFrame {
	return BatchFrame{Index: &i, Error: msg}
}

// ParseBatchFrame parses and validates one NDJSON line of a /query/batch
// stream. It rejects frames that are neither a result nor a trailer, both
// at once, or a result frame carrying neither an answer nor an error — the
// shapes a correct server never emits, so a client treats them as a broken
// stream rather than guessing.
func ParseBatchFrame(line []byte) (BatchFrame, error) {
	var f BatchFrame
	if err := json.Unmarshal(line, &f); err != nil {
		return BatchFrame{}, fmt.Errorf("invalid batch frame: %w", err)
	}
	switch {
	case f.Done && f.Index != nil:
		return BatchFrame{}, errors.New("invalid batch frame: both a result index and a trailer marker")
	case !f.Done && f.Index == nil:
		return BatchFrame{}, errors.New("invalid batch frame: neither a result index nor a trailer marker")
	case f.Index != nil && *f.Index < 0:
		return BatchFrame{}, fmt.Errorf("invalid batch frame: negative index %d", *f.Index)
	case f.Index != nil && f.Error == "" && f.QueryResponse == nil:
		return BatchFrame{}, fmt.Errorf("invalid batch frame %d: neither an answer nor an error", *f.Index)
	case f.Index != nil && f.Error != "" && f.QueryResponse != nil:
		return BatchFrame{}, fmt.Errorf("invalid batch frame %d: both an answer and an error", *f.Index)
	case f.Done && f.Results < 0:
		return BatchFrame{}, fmt.Errorf("invalid batch trailer: negative result count %d", f.Results)
	}
	return f, nil
}

// ReadBatchStream consumes a streaming /query/batch body: visit (optional)
// is called once per result frame, in statement order, as frames arrive —
// so a caller printing or aggregating answers does so incrementally. It
// enforces the stream contract: every frame parses, result indices are
// exactly 0,1,2,..., the trailer is the last line and its Results matches
// the frames seen. The trailer is returned; any violation (including a
// stream that ends without a trailer — a mid-sheet disconnect seen from
// the client side) is an error.
func ReadBatchStream(r io.Reader, visit func(BatchFrame) error) (BatchFrame, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxFrameBytes)
	next := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		f, err := ParseBatchFrame(line)
		if err != nil {
			return BatchFrame{}, err
		}
		if f.Done {
			if f.Results != next {
				return BatchFrame{}, fmt.Errorf("batch trailer claims %d results, stream carried %d", f.Results, next)
			}
			// The trailer must be the last line; anything after it is junk.
			for sc.Scan() {
				if len(bytes.TrimSpace(sc.Bytes())) != 0 {
					return BatchFrame{}, errors.New("batch stream continues past the trailer")
				}
			}
			if err := sc.Err(); err != nil {
				return BatchFrame{}, err
			}
			return f, nil
		}
		if *f.Index != next {
			return BatchFrame{}, fmt.Errorf("batch frame index %d, want %d (frames must arrive in statement order)", *f.Index, next)
		}
		next++
		if visit != nil {
			if err := visit(f); err != nil {
				return BatchFrame{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return BatchFrame{}, err
	}
	return BatchFrame{}, fmt.Errorf("batch stream truncated after %d frames (no trailer)", next)
}

// streamFrames writes result frames to w in statement order as statements
// complete: completed feeds finished indices in any order, and each frame
// is encoded and flushed the moment every earlier statement's frame is out
// — per-statement flushing, not per-sheet buffering. It returns how many
// frames were written and the first write error; on a write error the
// caller owns cancelling the rest of the sheet (backpressure: a client
// that stopped reading stops the statements it will never see). Exactly
// the contiguous prefix [0, wrote) of frames has been written on return.
func streamFrames(w http.ResponseWriter, n int, completed <-chan int, frame func(i int) BatchFrame) (wrote int, err error) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ready := make([]bool, n)
	next := 0
	for i := range completed {
		ready[i] = true
		for next < n && ready[next] {
			if err := enc.Encode(frame(next)); err != nil {
				return next, err
			}
			next++
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	return next, nil
}
