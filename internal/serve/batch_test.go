package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postBatch(t *testing.T, s *Server, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// decodeStream reads a recorded /query/batch NDJSON body through the shared
// stream reader, returning the positional result frames and the trailer.
func decodeStream(t *testing.T, rec *httptest.ResponseRecorder) ([]BatchFrame, BatchFrame) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("Content-Type %q, want %q", ct, NDJSONContentType)
	}
	var frames []BatchFrame
	trailer, err := ReadBatchStream(rec.Body, func(f BatchFrame) error {
		frames = append(frames, f)
		return nil
	})
	if err != nil {
		t.Fatalf("reading batch stream: %v", err)
	}
	return frames, trailer
}

func TestBatchEndpoint(t *testing.T) {
	s := newServer(t, true)
	rec := postBatch(t, s, BatchRequest{SQL: []string{
		"SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
		"SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.3, 0.7)",
		"SELECT APPROX REGRESSION(u) FROM r1 WITHIN 0.15 OF (0.6, 0.4)",
		"NOT SQL AT ALL",
		"SELECT AVG(u) FROM r1 WITHIN 0.000001 OF (0.9, 0.9)", // empty subspace
		"SELECT REGRESSION(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	frames, trailer := decodeStream(t, rec)
	if len(frames) != 6 || trailer.Results != 6 {
		t.Fatalf("got %d frames (trailer claims %d), want 6", len(frames), trailer.Results)
	}
	if trailer.TotalElapsed == "" {
		t.Error("trailer is missing total_elapsed")
	}
	if frames[0].Error != "" || frames[0].Mean == nil {
		t.Errorf("approx mean result: %+v", frames[0])
	}
	if frames[1].Error != "" || frames[1].Mean == nil || frames[1].Tuples == 0 {
		t.Errorf("exact mean result: %+v", frames[1])
	}
	if frames[2].Error != "" || len(frames[2].Models) == 0 {
		t.Errorf("approx regression result: %+v", frames[2])
	}
	if frames[3].Error == "" {
		t.Error("unparsable statement should report an error")
	}
	if frames[4].Error == "" {
		t.Error("empty subspace should report an error")
	}
	// Exact Q2 carries its fit diagnostics on the batch path.
	if frames[5].Error != "" || frames[5].FVU == nil || frames[5].R2 == nil {
		t.Errorf("exact regression result should carry fvu and r2: %+v", frames[5])
	}
	if frames[2].FVU != nil {
		t.Errorf("approx regression should not carry fvu: %+v", frames[2])
	}

	// Positional answers must match the single-statement endpoint.
	single := httptest.NewRequest(http.MethodPost, "/query",
		bytes.NewReader([]byte(`{"sql": "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"}`)))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, single)
	var one QueryResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if *one.Mean != *frames[0].Mean {
		t.Errorf("batch mean %v != single mean %v", *frames[0].Mean, *one.Mean)
	}
}

func TestBatchEndpointLarge(t *testing.T) {
	s := newServer(t, true)
	sqls := make([]string, 64)
	for i := range sqls {
		sqls[i] = "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"
	}
	rec := postBatch(t, s, BatchRequest{SQL: sqls})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	frames, _ := decodeStream(t, rec)
	if len(frames) != 64 {
		t.Fatalf("got %d frames, want 64", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if *frames[i].Mean != *frames[0].Mean {
			t.Fatalf("identical statements disagree at %d", i)
		}
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	s := newServer(t, false)
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/query/batch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", rec.Code)
	}
	// Bad body: still a plain status-coded JSON refusal, not a stream.
	req = httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("pre-stream refusal Content-Type %q, want application/json", ct)
	}
	// Empty list.
	if rec := postBatch(t, s, BatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty list status %d", rec.Code)
	}
	// Oversized sheet.
	if rec := postBatch(t, s, BatchRequest{SQL: make([]string, maxBatchStatements+1)}); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized sheet status %d", rec.Code)
	}
	// APPROX without a model reports per-statement error frames, not a
	// request error.
	rec = postBatch(t, s, BatchRequest{SQL: []string{"SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	frames, _ := decodeStream(t, rec)
	if len(frames) != 1 || frames[0].Error == "" {
		t.Errorf("expected a per-statement error frame, got %+v", frames)
	}
	if !strings.Contains(frames[0].Error, "model") {
		t.Errorf("error frame %q should name the missing model", frames[0].Error)
	}
}

// TestBatchEndpointClientGone verifies an abandoned /query/batch request
// stops before the stream starts: with the request context already
// cancelled the handler claims no statements and writes no body at all.
func TestBatchEndpointClientGone(t *testing.T) {
	s := newServer(t, true)
	sqls := make([]string, 64)
	for i := range sqls {
		sqls[i] = "SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"
	}
	b, err := json.Marshal(BatchRequest{SQL: sqls})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the pool started
	req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled batch wrote %d body bytes, want none", rec.Body.Len())
	}
	// The admission weight went back despite the early return.
	if inflight, _, _ := s.admitQuery.Stats(); inflight != 0 {
		t.Fatalf("cancelled batch left %d admission weight held", inflight)
	}
}
