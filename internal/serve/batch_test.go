package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postBatch(t *testing.T, s *Server, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestBatchEndpoint(t *testing.T) {
	s := newServer(t, true)
	rec := postBatch(t, s, BatchRequest{SQL: []string{
		"SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)",
		"SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.3, 0.7)",
		"SELECT APPROX REGRESSION(u) FROM r1 WITHIN 0.15 OF (0.6, 0.4)",
		"NOT SQL AT ALL",
		"SELECT AVG(u) FROM r1 WITHIN 0.000001 OF (0.9, 0.9)", // empty subspace
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Mean == nil {
		t.Errorf("approx mean result: %+v", resp.Results[0])
	}
	if resp.Results[1].Error != "" || resp.Results[1].Mean == nil || resp.Results[1].Tuples == 0 {
		t.Errorf("exact mean result: %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" || len(resp.Results[2].Models) == 0 {
		t.Errorf("approx regression result: %+v", resp.Results[2])
	}
	if resp.Results[3].Error == "" {
		t.Error("unparsable statement should report an error")
	}
	if resp.Results[4].Error == "" {
		t.Error("empty subspace should report an error")
	}

	// Positional answers must match the single-statement endpoint.
	single := httptest.NewRequest(http.MethodPost, "/query",
		bytes.NewReader([]byte(`{"sql": "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"}`)))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, single)
	var one QueryResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if *one.Mean != *resp.Results[0].Mean {
		t.Errorf("batch mean %v != single mean %v", *resp.Results[0].Mean, *one.Mean)
	}
}

func TestBatchEndpointLarge(t *testing.T) {
	s := newServer(t, true)
	sqls := make([]string, 64)
	for i := range sqls {
		sqls[i] = "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"
	}
	rec := postBatch(t, s, BatchRequest{SQL: sqls})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(resp.Results); i++ {
		if *resp.Results[i].Mean != *resp.Results[0].Mean {
			t.Fatalf("identical statements disagree at %d", i)
		}
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	s := newServer(t, false)
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/query/batch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", rec.Code)
	}
	// Bad body.
	req = httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body status %d", rec.Code)
	}
	// Empty list.
	if rec := postBatch(t, s, BatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty list status %d", rec.Code)
	}
	// APPROX without a model reports per-item errors, not a request error.
	rec = postBatch(t, s, BatchRequest{SQL: []string{"SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error == "" {
		t.Errorf("expected a per-item error, got %+v", resp.Results)
	}
}

// TestBatchEndpointClientGone verifies an abandoned /query/batch request
// stops the worker pool: with the request context already cancelled the
// handler claims no statements and writes no body.
func TestBatchEndpointClientGone(t *testing.T) {
	s := newServer(t, true)
	sqls := make([]string, 64)
	for i := range sqls {
		sqls[i] = "SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"
	}
	b, err := json.Marshal(BatchRequest{SQL: sqls})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the pool started
	req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled batch wrote %d body bytes, want none", rec.Body.Len())
	}
}
