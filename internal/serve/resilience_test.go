package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/wal"
)

// TestMethodNotAllowedEverywhere sweeps every mounted endpoint with a wrong
// method and requires a well-formed 405 — probes and misconfigured clients
// must never fall through to a handler body.
func TestMethodNotAllowedEverywhere(t *testing.T) {
	s := newServer(t, false)
	cases := []struct{ method, path string }{
		{http.MethodGet, "/query"},
		{http.MethodDelete, "/query"},
		{http.MethodGet, "/query/batch"},
		{http.MethodPut, "/query/batch"},
		{http.MethodGet, "/train"},
		{http.MethodPost, "/model"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/readyz"},
		{http.MethodDelete, "/readyz"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(c.method, c.path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, rec.Code)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s %s: body %q is not a JSON error", c.method, c.path, rec.Body.String())
		}
	}
}

// TestBodyTooLarge413 sends bodies past maxBodyBytes to every decoding
// endpoint and requires 413 with the limit named in the message, not a
// generic 400 that would tell the client to fix its JSON.
func TestBodyTooLarge413(t *testing.T) {
	// A model-backed server, so /train reaches its body decode (the
	// modelless 409 would otherwise win).
	s := newServer(t, true)
	huge := `{"sql": "` + strings.Repeat("a", maxBodyBytes+1) + `"}`
	for _, path := range []string{"/query", "/query/batch", "/train"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(huge)))
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, rec.Code)
		}
		if want := strconv.Itoa(maxBodyBytes); !strings.Contains(rec.Body.String(), want) {
			t.Errorf("%s: 413 body %q does not name the %s-byte limit", path, rec.Body.String(), want)
		}
	}
}

// TestReadyzStates walks the readiness probe through its states: ready on a
// healthy server, overloaded while the admission queue reports saturation,
// and read-only after a WAL fault — each with the right status code.
func TestReadyzStates(t *testing.T) {
	s := newServer(t, false, WithLimits(Limits{BrownoutHold: 50 * time.Millisecond}))
	getReady := func() (int, ReadyResponse) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var r ReadyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
			t.Fatalf("readyz body %q: %v", rec.Body.String(), err)
		}
		return rec.Code, r
	}
	if code, r := getReady(); code != http.StatusOK || r.Status != "ready" {
		t.Fatalf("healthy readyz = %d %+v", code, r)
	}
	// Overload: an observed saturation holds brownout for BrownoutHold.
	s.lastSat.Store(time.Now().UnixNano())
	if code, r := getReady(); code != http.StatusServiceUnavailable || r.Status != "overloaded" {
		t.Fatalf("saturated readyz = %d %+v", code, r)
	}
	time.Sleep(60 * time.Millisecond)
	if code, r := getReady(); code != http.StatusOK || r.Status != "ready" {
		t.Fatalf("readyz after brownout hold = %d %+v", code, r)
	}
}

// TestShedWith429AndRetryAfter fills the query admission class and requires
// the next request to shed as 429 with a Retry-After header holding integer
// seconds ≥ 1 — the exact format resilience.ParseRetryAfter (and any
// standard client) consumes.
func TestShedWith429AndRetryAfter(t *testing.T) {
	s := newServer(t, false, WithLimits(Limits{QueryConcurrency: 1, AdmitWait: -1}))
	// Hold the only admission slot so the HTTP request cannot be admitted.
	if err := s.admitQuery.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer s.admitQuery.Release(1)
	rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d body %s, want 429", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || !strings.Contains(eb.Error, "overloaded") {
		t.Errorf("429 body %q should be a JSON overload error", rec.Body.String())
	}
}

// TestBrownoutShedsExactKeepsApprox puts the server in brownout and
// requires the asymmetry the tentpole promises: EXACT statements shed with
// 503 while APPROX statements keep answering from the model.
func TestBrownoutShedsExactKeepsApprox(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{BrownoutHold: time.Minute}))
	s.lastSat.Store(time.Now().UnixNano())
	if rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("EXACT under brownout: status %d, want 503", rec.Code)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Error("EXACT brownout shed is missing Retry-After")
	}
	rec := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)")
	if rec.Code != http.StatusOK {
		t.Errorf("APPROX under brownout: status %d body %s, want 200", rec.Code, rec.Body.String())
	}
}

// TestDegradeExactAnswersFromModel arms Limits.DegradeExact and requires a
// browned-out EXACT statement to come back 200 from the model, marked
// "degraded": true — and the same statement un-marked once the brownout
// lifts.
func TestDegradeExactAnswersFromModel(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{DegradeExact: true, BrownoutHold: time.Minute}))
	const sql = "SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"
	exact := postQuery(t, s, sql)
	if exact.Code != http.StatusOK {
		t.Fatalf("healthy exact: status %d", exact.Code)
	}
	var before QueryResponse
	if err := json.Unmarshal(exact.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if before.Degraded || before.Approx {
		t.Fatalf("healthy exact answered %+v, want exact and not degraded", before)
	}

	s.lastSat.Store(time.Now().UnixNano())
	rec := postQuery(t, s, sql)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded exact: status %d body %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !resp.Approx || resp.Mean == nil {
		t.Fatalf("degraded response %+v, want a model answer marked degraded", resp)
	}
	// The degraded answer is the model's view of the same subspace: loosely
	// consistent with the exact one.
	if diff := *resp.Mean - *before.Mean; diff > 1 || diff < -1 {
		t.Errorf("degraded mean %v vs exact %v diverge wildly", *resp.Mean, *before.Mean)
	}
	// Degradation also reaches the batch path, per statement.
	brec := postBatch(t, s, BatchRequest{SQL: []string{sql, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"}})
	if brec.Code != http.StatusOK {
		t.Fatalf("batch under degrade: status %d", brec.Code)
	}
	frames, _ := decodeStream(t, brec)
	if len(frames) != 2 || frames[0].QueryResponse == nil || !frames[0].Degraded {
		t.Errorf("batch frames %+v, want the EXACT statement degraded", frames)
	}
	if frames[1].QueryResponse == nil || frames[1].Degraded {
		t.Errorf("batch frames %+v, want the APPROX statement answered un-degraded", frames)
	}
}

// TestBrownoutWithoutModelShedsBatchItems is the no-model corner of the
// batch brownout: EXACT items are refused per-item (the sheet itself still
// answers 200 with positional errors), because there is nothing to degrade
// to.
func TestBrownoutWithoutModelShedsBatchItems(t *testing.T) {
	s := newServer(t, false, WithLimits(Limits{DegradeExact: true, BrownoutHold: time.Minute}))
	s.lastSat.Store(time.Now().UnixNano())
	rec := postBatch(t, s, BatchRequest{SQL: []string{"SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	frames, _ := decodeStream(t, rec)
	if len(frames) != 1 || !strings.Contains(frames[0].Error, "browned out") {
		t.Errorf("batch frames %+v, want a browned-out statement error", frames)
	}
}

// TestQueryDeadline504 gives the server a deadline that has effectively
// already passed and requires the 504 mapping — the admitted-but-too-slow
// signal, distinct from the 429 shed.
func TestQueryDeadline504(t *testing.T) {
	s := newServer(t, false, WithLimits(Limits{QueryTimeout: time.Nanosecond}))
	rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("504 body %q should name the deadline", rec.Body.String())
	}
}

// TestTrainReadOnlyAfterWALFault drives the fail-safe write path over HTTP:
// a WAL fault mid-/train answers 503 naming the root cause, the failure is
// sticky, /readyz flips to read-only, and queries keep serving.
func TestTrainReadOnlyAfterWALFault(t *testing.T) {
	dir := t.TempDir()
	plain := newServer(t, false)
	var arm atomic.Bool
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.1
	d, err := core.Recover(dir, cfg, core.DurableOptions{WAL: wal.Options{
		Mode: wal.SyncNone,
		Fault: func(string) error {
			if arm.Load() {
				return errors.New("injected: disk gone")
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s, err := NewDurable(plain.exec, d)
	if err != nil {
		t.Fatal(err)
	}
	if rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(10)}); rec.Code != http.StatusOK {
		t.Fatalf("healthy train: status %d body %s", rec.Code, rec.Body.String())
	}
	arm.Store(true)
	rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(5)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("faulted train: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "injected: disk gone") {
		t.Errorf("503 body %q should name the root cause", rec.Body.String())
	}
	// Sticky after the fault clears, and fast-failed before decoding.
	arm.Store(false)
	if rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(5)}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("train after fault cleared: status %d, want sticky 503", rec.Code)
	}
	// Readiness reports the read-only state with its cause.
	rrec := httptest.NewRecorder()
	s.ServeHTTP(rrec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var ready ReadyResponse
	if err := json.Unmarshal(rrec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if rrec.Code != http.StatusServiceUnavailable || ready.Status != "read-only" || !strings.Contains(ready.Cause, "injected") {
		t.Errorf("readyz = %d %+v, want 503 read-only with the injected cause", rrec.Code, ready)
	}
	// Queries are untouched by the write-side failure.
	if rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"); rec.Code != http.StatusOK {
		t.Errorf("query on a read-only server: status %d", rec.Code)
	}
}

// TestFloodKeepsGoroutinesBounded hammers a capacity-2 server with 40×
// its capacity under -race and pins the resource contract: every response
// is a well-formed 200 or 429, and the goroutine count returns to its
// baseline — sustained sheds must not leak admission waiters.
func TestFloodKeepsGoroutinesBounded(t *testing.T) {
	s := newServer(t, false, WithLimits(Limits{QueryConcurrency: 2, AdmitWait: 5 * time.Millisecond}))
	ts := httptest.NewServer(s)
	defer ts.Close()
	base := runtime.NumGoroutine()

	const flood = 80
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	body := []byte(`{"sql": "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}`)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				other.Add(1)
				return
			}
			defer resp.Body.Close()
			payload, _ := io.ReadAll(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" || !json.Valid(payload) {
					other.Add(1)
					return
				}
				shed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := ok.Load() + shed.Load(); got != flood || other.Load() != 0 {
		t.Fatalf("flood outcomes: %d ok + %d shed + %d malformed, want %d well-formed", ok.Load(), shed.Load(), other.Load(), flood)
	}
	if ok.Load() == 0 {
		t.Error("flood starved every request; some should have been admitted")
	}
	// The goroutine count settles back: no admission waiter or handler leaked.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+10 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+10 {
		t.Errorf("goroutines grew from %d to %d after the flood drained", base, n)
	}
}

// TestTrainAdmissionWeightedByPairs fills the train class and checks a
// /train POST sheds with 429 + Retry-After while the query class stays
// open — the two admission classes are independent.
func TestTrainAdmissionWeightedByPairs(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{TrainConcurrency: 8, AdmitWait: -1}))
	if err := s.admitTrain.Acquire(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	defer s.admitTrain.Release(8)
	rec := postTrain(t, s, TrainRequest{Pairs: trainPairs(4)})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("train while full: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 train shed is missing Retry-After")
	}
	if rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"); rec.Code != http.StatusOK {
		t.Errorf("query while the train class is full: status %d, want 200", rec.Code)
	}
}

// TestBatchWeightClamp pins the sheet-cost policy: a maximal sheet costs at
// most half the query capacity, so single statements keep a lane.
func TestBatchWeightClamp(t *testing.T) {
	s := newServer(t, false, WithLimits(Limits{QueryConcurrency: 8}))
	for n, want := range map[int]int64{1: 1, 3: 3, 4: 4, 5: 4, maxBatchStatements: 4} {
		if got := s.batchWeight(n); got != want {
			t.Errorf("batchWeight(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestRecoveringHandler checks the boot-time stub: alive on /healthz,
// "recovering" on /readyz, and a 503 + Retry-After shed everywhere else.
func TestRecoveringHandler(t *testing.T) {
	h := Recovering()
	get := func(method, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec
	}
	if rec := get(http.MethodGet, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("recovering healthz = %d, want 200", rec.Code)
	}
	rec := get(http.MethodGet, "/readyz")
	var ready ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusServiceUnavailable || ready.Status != "recovering" {
		t.Errorf("recovering readyz = %d %+v", rec.Code, ready)
	}
	if rec := get(http.MethodPost, "/query"); rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Errorf("recovering /query = %d (Retry-After %q), want a 503 shed", rec.Code, rec.Header().Get("Retry-After"))
	}
}

// TestLimitsDefaults pins the Limits zero-value resolution, including the
// negative sentinels for "disabled".
func TestLimitsDefaults(t *testing.T) {
	l := DefaultLimits()
	if l.QueryConcurrency < 16 || l.TrainConcurrency != 2*maxTrainPairs ||
		l.AdmitWait != 100*time.Millisecond || l.QueryTimeout != 30*time.Second || l.BrownoutHold != time.Second {
		t.Errorf("DefaultLimits() = %+v", l)
	}
	off := Limits{AdmitWait: -1, QueryTimeout: -1}.withDefaults()
	if off.AdmitWait != 0 || off.QueryTimeout != 0 {
		t.Errorf("negative sentinels resolved to %+v, want both disabled (0)", off)
	}
	if fmt.Sprint(off.QueryConcurrency) == "0" {
		t.Error("disabled timeouts must not disable concurrency defaults")
	}
}
