// Package chaostest attacks a real llmq serving stack — live TCP listener,
// the production timeout/admission configuration path — with the failure
// modes the overload tentpole claims to survive: slow-loris connections,
// mid-body disconnects, floods far past the admission cap, and injected
// WAL write failures. Each test pins the acceptance contract: bounded
// goroutine and memory growth, admitted requests completing within their
// deadline, shed requests answered with well-formed 429/503 + Retry-After,
// and bit-identical recovery once a disk fault clears.
//
// The tests scale down under -short so CI can run the harness on every
// push next to the WAL crashtest.
package chaostest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/resilience"
	"llmq/internal/serve"
	"llmq/internal/synth"
	"llmq/internal/wal"
	"llmq/internal/workload"
)

// scale shrinks an attack dimension under -short: full size locally, small
// in CI smoke runs.
func scale(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// buildEnv loads a synthetic relation into the engine and optionally trains
// a model over it — the serving substrate every chaos server attacks.
func buildEnv(t *testing.T, rows int, withModel bool) (*exec.Executor, *core.Model) {
	t.Helper()
	pts, err := synth.Generate(synth.R1Config(rows, 2, 17))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("r1", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := engine.NewCatalog().LoadDataset("r1", ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var m *core.Model
	if withModel {
		gen, err := workload.NewGenerator(workload.GenConfig{
			Dim: 2, CenterLo: 0, CenterHi: 1, ThetaMean: 0.12, ThetaStdDev: 0.02, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := workload.NewHarness(e, gen)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.ResolutionA = 0.1
		m, _, _, err = h.TrainModel(cfg, 1200)
		if err != nil {
			t.Fatal(err)
		}
	}
	return e, m
}

// startServer binds a real TCP listener over the handler with the given
// connection-phase timeouts — the same resilience.NewHTTPServer production
// uses — and returns the base URL. Shutdown is registered as cleanup.
func startServer(t *testing.T, h http.Handler, tmo resilience.ServerTimeouts) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := resilience.NewHTTPServer(h, tmo)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return "http://" + ln.Addr().String()
}

// newClient returns an HTTP client whose connection pool dies with the
// test, so idle keep-alive goroutines never pollute another test's
// goroutine accounting.
func newClient(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// settleGoroutines polls until the goroutine count falls back to base+slack
// or the deadline passes, then asserts it did — the leak detector behind
// every attack.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+slack && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+slack {
		t.Errorf("goroutines: %d at baseline, %d after the attack drained (slack %d) — something leaked", base, n, slack)
	}
}

// heapAlloc reads the live-heap size after a forced GC.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestChaosSlowLoris opens a crowd of connections that trickle a partial
// request header and then stall forever. The connection-phase timeouts must
// evict every one of them — the server closes the socket, goroutines
// return to baseline, and a well-behaved probe is answered throughout.
func TestChaosSlowLoris(t *testing.T) {
	e, _ := buildEnv(t, 3000, false)
	s, err := serve.New(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmo := resilience.ServerTimeouts{ReadHeader: 300 * time.Millisecond, Read: 500 * time.Millisecond, Idle: 500 * time.Millisecond}
	url := startServer(t, s, tmo)
	client := newClient(t)
	base := runtime.NumGoroutine()

	n := scale(64, 16)
	conns := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", strings.TrimPrefix(url, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		// A partial request line + one header, then silence.
		fmt.Fprintf(c, "POST /query HTTP/1.1\r\nHost: chaos\r\n")
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// A well-behaved client is served while the loris crowd hangs.
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz during slow-loris: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during slow-loris: status %d", resp.StatusCode)
	}

	// Every stalled connection is evicted by the header timeout: the read
	// side observes the server's close well inside 10× the timeout.
	evictDeadline := time.Now().Add(3 * time.Second)
	for _, c := range conns {
		_ = c.SetReadDeadline(evictDeadline)
		if _, err := c.Read(make([]byte, 1)); err == nil {
			// A response byte also means the server gave up on the request.
			continue
		} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("a slow-loris connection was still open 3s past the 300ms header timeout")
		}
	}
	settleGoroutines(t, base, 12)
}

// TestChaosMidBodyDisconnect declares a body it never finishes sending and
// hangs up mid-POST, repeatedly. The server must absorb every torn request
// without leaking handlers and keep answering.
func TestChaosMidBodyDisconnect(t *testing.T) {
	e, _ := buildEnv(t, 3000, false)
	s, err := serve.New(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmo := resilience.ServerTimeouts{ReadHeader: 300 * time.Millisecond, Read: 500 * time.Millisecond, Idle: 500 * time.Millisecond}
	url := startServer(t, s, tmo)
	client := newClient(t)
	base := runtime.NumGoroutine()

	n := scale(64, 16)
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", strings.TrimPrefix(url, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "POST /query HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"sql\": \"SELECT")
		c.Close()
	}
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz after mid-body disconnects: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after mid-body disconnects: status %d", resp.StatusCode)
	}
	settleGoroutines(t, base, 12)
}

// TestChaosFlood slams the query endpoint with 10× the admission capacity
// in flight at once and holds the full acceptance contract: every response
// is a well-formed 200/429/503 (sheds carrying Retry-After), admitted
// requests finish inside the query deadline, some requests are actually
// admitted, and goroutines and live heap return to baseline afterwards.
func TestChaosFlood(t *testing.T) {
	e, _ := buildEnv(t, 5000, false)
	const capacity = 4
	const queryTimeout = 2 * time.Second
	s, err := serve.New(e, nil, serve.WithLimits(serve.Limits{
		QueryConcurrency: capacity,
		AdmitWait:        20 * time.Millisecond,
		QueryTimeout:     queryTimeout,
	}))
	if err != nil {
		t.Fatal(err)
	}
	url := startServer(t, s, resilience.ServerTimeouts{})
	client := newClient(t)
	base := runtime.NumGoroutine()
	heapBefore := heapAlloc()

	rounds := scale(8, 3)
	body := []byte(`{"sql": "SELECT AVG(u) FROM r1 WITHIN 0.3 OF (0.5, 0.5)"}`)
	var ok, shed, malformed atomic.Int64
	var slow atomic.Int64
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 10*capacity; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					malformed.Add(1)
					return
				}
				defer resp.Body.Close()
				payload, _ := io.ReadAll(resp.Body)
				if !json.Valid(payload) {
					malformed.Add(1)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					// Admitted work completes within its deadline (plus
					// response-write slack).
					if time.Since(start) > queryTimeout+5*time.Second {
						slow.Add(1)
					}
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						malformed.Add(1)
						return
					}
					shed.Add(1)
				case http.StatusGatewayTimeout:
					ok.Add(1) // admitted but out of budget: a valid, bounded outcome
				default:
					malformed.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	total := int64(rounds * 10 * capacity)
	if got := ok.Load() + shed.Load(); got != total || malformed.Load() != 0 {
		t.Fatalf("flood outcomes: %d ok + %d shed + %d malformed, want %d well-formed", ok.Load(), shed.Load(), malformed.Load(), total)
	}
	if ok.Load() == 0 {
		t.Error("the flood starved every request; the admission cap should still admit some")
	}
	if slow.Load() != 0 {
		t.Errorf("%d admitted requests blew far past the %v deadline", slow.Load(), queryTimeout)
	}
	// Drop the keep-alive pool first: idle connections pin a pair of
	// goroutines each on both sides and are not a leak.
	client.CloseIdleConnections()
	settleGoroutines(t, base, 16)
	if after := heapAlloc(); after > heapBefore+64<<20 {
		t.Errorf("live heap grew from %d to %d bytes across the flood", heapBefore, after)
	}
}

// TestChaosBrownoutApproxSurvives saturates the admission queue with heavy
// exact batch sheets and probes through the congestion: EXACT single
// statements must be observed shedding (brownout) while APPROX statements
// keep getting real answers from the model.
func TestChaosBrownoutApproxSurvives(t *testing.T) {
	e, m := buildEnv(t, 20000, true)
	s, err := serve.New(e, m, serve.WithLimits(serve.Limits{
		QueryConcurrency: 4,
		AdmitWait:        500 * time.Millisecond,
		QueryTimeout:     10 * time.Second,
		BrownoutHold:     200 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	url := startServer(t, s, resilience.ServerTimeouts{})
	client := newClient(t)

	// The congestion generators: concurrent sheets of wide exact scans,
	// each costing half the query capacity, looping until told to stop.
	// (Cleanup order matters: raise the stop flag, then wait the senders.)
	var stop atomic.Bool
	var wg sync.WaitGroup
	defer wg.Wait()
	defer stop.Store(true)
	sheet := make([]string, 192)
	for i := range sheet {
		sheet[i] = "SELECT AVG(u) FROM r1 WITHIN 0.45 OF (0.5, 0.5)"
	}
	sheetBody, _ := json.Marshal(serve.BatchRequest{SQL: sheet})
	for i := 0; i < scale(16, 8); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := client.Post(url+"/query/batch", "application/json", bytes.NewReader(sheetBody))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	exactBody := []byte(`{"sql": "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}`)
	approxBody := []byte(`{"sql": "SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}`)
	var exactShed, approxOK bool
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !(exactShed && approxOK) {
		if resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(exactBody)); err == nil {
			if resp.StatusCode == http.StatusServiceUnavailable {
				exactShed = true
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(approxBody)); err == nil {
			if resp.StatusCode == http.StatusOK {
				var qr serve.QueryResponse
				if json.NewDecoder(resp.Body).Decode(&qr) == nil && qr.Mean != nil {
					approxOK = true
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if !exactShed {
		t.Error("never observed an EXACT statement shed with 503 under sustained saturation")
	}
	if !approxOK {
		t.Error("APPROX statements stopped answering during the brownout")
	}
}

// TestChaosWALFaultReadOnlyAndRecovery injects a WAL write failure under a
// live durable server: /train flips to 503 naming the cause, /readyz
// reports read-only, queries keep serving — and once the process is
// restarted over the same directory, the model is bit-identical to the
// state at the last acknowledged train and writable again.
func TestChaosWALFaultReadOnlyAndRecovery(t *testing.T) {
	dir := t.TempDir()
	e, _ := buildEnv(t, 3000, false)
	var arm atomic.Bool
	walOpts := func() wal.Options {
		return wal.Options{Mode: wal.SyncNone, Fault: func(string) error {
			if arm.Load() {
				return errors.New("injected: device failed")
			}
			return nil
		}}
	}
	cfg := core.DefaultConfig(2)
	cfg.ResolutionA = 0.1
	d, err := core.Recover(dir, cfg, core.DurableOptions{WAL: walOpts(), SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewDurable(e, d)
	if err != nil {
		t.Fatal(err)
	}
	url := startServer(t, s, resilience.ServerTimeouts{})
	client := newClient(t)

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := client.Post(url+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		return resp, payload
	}
	pairs := func(lo, n int) serve.TrainRequest {
		req := serve.TrainRequest{Pairs: make([]serve.TrainPair, n)}
		for i := range req.Pairs {
			f := float64(lo+i) / 512
			req.Pairs[i] = serve.TrainPair{Center: []float64{f, 1 - f}, Theta: 0.1, Answer: 2 * f}
		}
		return req
	}

	if resp, body := post("/train", pairs(0, 200)); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy train: status %d body %s", resp.StatusCode, body)
	}
	var want bytes.Buffer
	if err := d.Model().Save(&want); err != nil {
		t.Fatal(err)
	}

	// The disk fails: concurrent training traffic is refused 503 with the
	// root cause, and none of it dirties the model.
	arm.Store(true)
	var wg sync.WaitGroup
	var non503 atomic.Int64
	for i := 0; i < scale(16, 4); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post("/train", pairs(200+8*i, 8))
			if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "injected") {
				non503.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if non503.Load() != 0 {
		t.Fatalf("%d faulted /train requests did not answer 503 + root cause", non503.Load())
	}

	// Readiness names the state; queries ride through unaffected.
	resp, body := func() (*http.Response, []byte) {
		resp, err := client.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "read-only") {
		t.Fatalf("readyz during fault: %d %s", resp.StatusCode, body)
	}
	if resp, body := post("/query", serve.QueryRequest{SQL: "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query on read-only server: status %d body %s", resp.StatusCode, body)
	}
	if got := canonicalModel(t, d.Model()); got != want.String() {
		t.Fatal("refused training traffic dirtied the in-memory model")
	}

	// The "restart": close (reporting the failure), recover over the same
	// directory with a healthy disk, and require the acked state bit for
	// bit plus a writable store.
	arm.Store(false)
	if err := d.Close(); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("Close on the failed store: err = %v, want ErrReadOnly", err)
	}
	d2, err := core.Recover(dir, cfg, core.DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := canonicalModel(t, d2.Model()); got != want.String() {
		t.Fatal("recovered model differs from the state at the last acknowledged train")
	}
	if d2.Failure() != nil {
		t.Fatalf("fresh recovery is read-only: %v", d2.Failure())
	}
	q, err := core.NewQuery([]float64{0.5, 0.5}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Observe(q, 1.0); err != nil {
		t.Fatalf("training after recovery: %v", err)
	}
}

// canonicalModel serializes a model through its persistence path — the
// byte-for-byte identity the recovery contract is stated in.
func canonicalModel(t *testing.T, m *core.Model) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
