package serve

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"llmq/internal/exec"
	"llmq/internal/sqlfront"
)

// batcher coalesces concurrent single-statement /query requests into batch
// sheets: requests arriving within one batching window (Limits.BatchWindow)
// are cut into a sheet that executes over a single pinned model version via
// the shared worker pool, instead of each request pinning, traversing and
// tearing down on its own. Identical statements inside a sheet — the
// hot-spot shape of heavy user traffic — are collapsed to one evaluation
// whose answer fans out to every waiter, which is where the big win lives:
// k users asking the popular query cost one prediction, bit-identically
// (same pinned View, same deterministic read path).
//
// The batcher sits INSIDE the admission boundary: a request only reaches
// submit after its own brownout check and its own admission grant, so shed
// and degrade decisions stay per-request and a refused EXACT statement
// never poisons (or rides along with) anyone else's sheet.
//
// The window adapts to the arrival rate: a sheet that closed with a single
// waiter halves the window (sparse traffic should not pay latency for
// coalescing that is not happening, down to maxWindow/16), and a sheet
// that actually coalesced doubles it back toward the configured budget.
type batcher struct {
	s        *Server
	maxSheet int
	// maxWindow is the configured budget, minWindow the adaptive floor;
	// window is the current adaptive value in nanoseconds.
	maxWindow time.Duration
	minWindow time.Duration
	window    atomic.Int64

	mu      sync.Mutex
	gen     uint64 // sheets cut so far; guards stale window timers
	pending []*pendingStmt

	// Counters for tests and the cost model: sheets cut, statements that
	// shared a sheet with at least one other, and statements answered by a
	// duplicate's evaluation.
	sheets    atomic.Int64
	coalesced atomic.Int64
	collapsed atomic.Int64
}

// pendingStmt is one parked /query statement waiting for its sheet.
type pendingStmt struct {
	ctx      context.Context
	stmt     *sqlfront.Statement
	degraded bool
	// done carries the outcome; buffered so a waiter that gave up (its own
	// deadline or disconnect) never blocks the sheet's delivery.
	done chan coalesceOutcome
}

// coalesceOutcome is what a sheet delivers to each of its statements.
type coalesceOutcome struct {
	resp *QueryResponse
	err  error
	// reader is the sheet's pinned prediction surface; the bit-identity
	// property test re-evaluates against exactly this surface.
	reader modelReader
	// sheet is the statement count of the sheet that answered this.
	sheet int
}

func newBatcher(s *Server) *batcher {
	b := &batcher{
		s:         s,
		maxSheet:  s.limits.BatchMaxSheet,
		maxWindow: s.limits.BatchWindow,
		minWindow: s.limits.BatchWindow / 16,
	}
	if b.minWindow <= 0 {
		b.minWindow = 1
	}
	b.window.Store(int64(b.maxWindow))
	return b
}

// do parks one admitted statement, waits for its sheet's answer, and
// returns it — or returns early with ctx.Err() when the request dies first
// (its slot in the sheet then resolves into the buffered channel and is
// garbage collected; nothing leaks).
func (b *batcher) do(ctx context.Context, stmt *sqlfront.Statement, degraded bool) (*QueryResponse, error) {
	p := b.submit(ctx, stmt, degraded)
	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// submit parks a statement on the open sheet. The first arrival arms the
// window timer; a sheet reaching maxSheet is cut immediately (overflow
// split) without waiting the window out.
func (b *batcher) submit(ctx context.Context, stmt *sqlfront.Statement, degraded bool) *pendingStmt {
	p := &pendingStmt{ctx: ctx, stmt: stmt, degraded: degraded, done: make(chan coalesceOutcome, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, p)
	switch {
	case len(b.pending) >= b.maxSheet:
		sheet := b.cutLocked()
		b.mu.Unlock()
		b.run(sheet)
	case len(b.pending) == 1:
		gen := b.gen
		delay := time.Duration(b.window.Load())
		b.mu.Unlock()
		time.AfterFunc(delay, func() { b.expire(gen) })
	default:
		b.mu.Unlock()
	}
	return p
}

// expire is the window timer: it cuts the sheet it was armed for. A timer
// whose sheet was already cut by overflow finds the generation advanced
// and does nothing — the next sheet has its own timer.
func (b *batcher) expire(gen uint64) {
	b.mu.Lock()
	if gen != b.gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	sheet := b.cutLocked()
	b.mu.Unlock()
	b.run(sheet)
}

// cutLocked detaches the open sheet, advances the generation and adapts
// the window to what the sheet proved about the arrival rate.
func (b *batcher) cutLocked() []*pendingStmt {
	sheet := b.pending
	b.pending = nil
	b.gen++
	w := time.Duration(b.window.Load())
	if len(sheet) <= 1 {
		if w /= 2; w < b.minWindow {
			w = b.minWindow
		}
	} else {
		if w *= 2; w > b.maxWindow {
			w = b.maxWindow
		}
	}
	b.window.Store(int64(w))
	return sheet
}

// run executes one sheet: pin a prediction surface once (a model View, or
// a sharded route epoch), group duplicate statements, evaluate each group
// once over the shared pool, and fan the outcomes out. The sheet runs
// under its own QueryTimeout-bounded context — not any one member's — so
// one member's disconnect cannot kill a shared evaluation; a singleton
// group still runs under its own request context, so a lone statement's
// deadline behaves exactly like the uncoalesced path.
func (b *batcher) run(sheet []*pendingStmt) {
	b.sheets.Add(1)
	if len(sheet) > 1 {
		b.coalesced.Add(int64(len(sheet)))
	}
	ctx := context.Background()
	cancel := func() {}
	if t := b.s.limits.QueryTimeout; t > 0 {
		ctx, cancel = context.WithTimeout(ctx, t)
	}
	defer cancel()
	reader := b.s.pinnedReader(ctx)

	groups := make(map[string][]*pendingStmt, len(sheet))
	order := make([]string, 0, len(sheet))
	for _, p := range sheet {
		k := coalesceKey(p.stmt, p.degraded)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	b.collapsed.Add(int64(len(sheet) - len(order)))

	_ = exec.ForEachParallelCtx(ctx, len(order), func(gi int) {
		members := groups[order[gi]]
		ectx := ctx
		if len(members) == 1 {
			one := members[0]
			if err := one.ctx.Err(); err != nil {
				// The lone waiter is already gone or past its deadline:
				// skip the evaluation, deliver its own context error (the
				// handler maps it to 504 / silence for this statement only).
				one.done <- coalesceOutcome{err: err, reader: reader, sheet: len(sheet)}
				return
			}
			ectx = one.ctx
		}
		resp, err := b.s.answer(ectx, members[0].stmt, reader, members[0].degraded)
		out := coalesceOutcome{resp: resp, err: err, reader: reader, sheet: len(sheet)}
		for _, p := range members {
			p.done <- out
		}
	})
}

// coalesceKey is the duplicate-collapse identity of a statement: two
// statements share an evaluation iff every field that reaches the answer
// path matches exactly (float equality at the bit level — the coalesced
// answer must be bit-identical to the uncoalesced one, so "close enough"
// is not an equivalence). The table name is deliberately excluded: a
// server serves one relation and the evaluator never reads it.
func coalesceKey(stmt *sqlfront.Statement, degraded bool) string {
	k := make([]byte, 0, 24+8*(len(stmt.Center)+len(stmt.At)))
	flags := byte(0)
	if stmt.Approx {
		flags |= 1
	}
	if degraded {
		flags |= 2
	}
	k = append(k, byte(stmt.Kind), flags, byte(len(stmt.At)))
	k = binary.LittleEndian.AppendUint64(k, math.Float64bits(stmt.Theta))
	k = binary.LittleEndian.AppendUint64(k, math.Float64bits(stmt.Norm))
	for _, c := range stmt.Center {
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(c))
	}
	for _, a := range stmt.At {
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(a))
	}
	k = append(k, stmt.Output...)
	k = append(k, 0)
	for _, in := range stmt.Inputs {
		k = append(k, in...)
		k = append(k, 0)
	}
	return string(k)
}
