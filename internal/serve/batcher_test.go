package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"llmq/internal/sqlfront"
)

// approxMean builds a parsed APPROX AVG statement at the given centre, the
// white-box unit the batcher tests park directly.
func approxMean(cx, cy float64) *sqlfront.Statement {
	return &sqlfront.Statement{
		Kind:   sqlfront.StmtMean,
		Output: "u",
		Table:  "r1",
		Theta:  0.15,
		Center: []float64{cx, cy},
		Norm:   2,
		Approx: true,
	}
}

// TestBatcherLoneWaiterWindowExpiry: a single request must not wait past the
// window — the timer cuts a one-statement sheet — and a run of lone waiters
// walks the adaptive window down to its floor, so sparse traffic stops
// paying coalescing latency it gets nothing for.
func TestBatcherLoneWaiterWindowExpiry(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{BatchWindow: time.Millisecond}))
	b := s.coalescer
	if b == nil {
		t.Fatal("BatchWindow > 0 did not arm the coalescer")
	}
	for i := 0; i < 10; i++ {
		rec := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		var resp QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Mean == nil {
			t.Fatalf("query %d: bad body %s", i, rec.Body.String())
		}
	}
	if got := b.sheets.Load(); got != 10 {
		t.Errorf("10 sequential queries cut %d sheets, want 10 singletons", got)
	}
	if got := b.coalesced.Load(); got != 0 {
		t.Errorf("sequential queries reported %d coalesced statements", got)
	}
	if got := time.Duration(b.window.Load()); got != b.minWindow {
		t.Errorf("after 10 singleton sheets the window is %v, want the floor %v", got, b.minWindow)
	}
	if b.minWindow != time.Millisecond/16 {
		t.Errorf("minWindow = %v, want maxWindow/16", b.minWindow)
	}
}

// TestBatcherOverflowSplit parks more statements than the sheet cap with an
// effectively infinite window: only the cap can cut, so the flood must split
// into exact cap-sized sheets, every waiter answered from a sheet of that
// size, and the window (coalescing traffic) pinned at its configured budget.
func TestBatcherOverflowSplit(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{BatchWindow: time.Hour, BatchMaxSheet: 4}))
	b := s.coalescer
	pends := make([]*pendingStmt, 8)
	for i := range pends {
		// Distinct centres: this test is about splitting, not collapsing.
		pends[i] = b.submit(context.Background(), approxMean(0.1+0.1*float64(i), 0.5), false)
	}
	for i, p := range pends {
		out := <-p.done
		if out.err != nil {
			t.Fatalf("statement %d: %v", i, out.err)
		}
		if out.resp == nil || out.resp.Mean == nil {
			t.Fatalf("statement %d: empty answer %+v", i, out.resp)
		}
		if out.sheet != 4 {
			t.Errorf("statement %d rode a sheet of %d, want 4", i, out.sheet)
		}
	}
	if got := b.sheets.Load(); got != 2 {
		t.Errorf("8 statements over cap 4 cut %d sheets, want 2", got)
	}
	if got := b.coalesced.Load(); got != 8 {
		t.Errorf("coalesced = %d, want all 8", got)
	}
	if got := b.collapsed.Load(); got != 0 {
		t.Errorf("distinct statements reported %d collapsed", got)
	}
	if got := time.Duration(b.window.Load()); got != time.Hour {
		t.Errorf("window = %v, want the configured budget after coalescing sheets", got)
	}
}

// TestBatcherMemberDeadline cuts a sheet holding one live and one expired
// statement: the expired one gets its own context error (the handler maps it
// to 504) while the live one is answered — a deadline inside a coalesced
// sheet is strictly per-statement.
func TestBatcherMemberDeadline(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{BatchWindow: time.Hour, BatchMaxSheet: 2}))
	b := s.coalescer
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	pLive := b.submit(context.Background(), approxMean(0.4, 0.5), false)
	pDead := b.submit(expired, approxMean(0.6, 0.5), false) // overflow-cuts the sheet
	outLive, outDead := <-pLive.done, <-pDead.done
	if outLive.err != nil || outLive.resp == nil || outLive.resp.Mean == nil {
		t.Fatalf("live statement: (%+v, %v)", outLive.resp, outLive.err)
	}
	if !errors.Is(outDead.err, context.DeadlineExceeded) {
		t.Fatalf("expired statement err = %v, want DeadlineExceeded", outDead.err)
	}
	if outDead.resp != nil {
		t.Fatalf("expired statement still got an answer: %+v", outDead.resp)
	}
	if outLive.sheet != 2 || outDead.sheet != 2 {
		t.Errorf("sheet sizes %d/%d, want 2/2", outLive.sheet, outDead.sheet)
	}
}

// TestBatcherQueryDeadlineMapsTo504 is the HTTP face of the same property:
// with the batcher armed, a /query whose budget is already spent answers 504
// exactly like the uncoalesced path.
func TestBatcherQueryDeadlineMapsTo504(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{QueryTimeout: time.Nanosecond, BatchWindow: time.Millisecond}))
	rec := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

// TestBatcherBrownoutRefusesExactOutsideSheets: during brownout an EXACT
// statement is refused before it can touch the batcher, and concurrent
// APPROX statements coalesce and answer normally — a browned-out member
// never poisons a sheet because it never joins one.
func TestBatcherBrownoutRefusesExactOutsideSheets(t *testing.T) {
	s := newServer(t, true, WithLimits(Limits{BatchWindow: 2 * time.Millisecond, BrownoutHold: time.Minute}))
	s.lastSat.Store(time.Now().UnixNano()) // force the brownout signal
	const approxN = 6
	codes := make([]int, approxN)
	var wg sync.WaitGroup
	for i := 0; i < approxN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postQuery(t, s, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
			codes[i] = rec.Code
		}(i)
	}
	rec := postQuery(t, s, "SELECT AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)")
	wg.Wait()
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("browned-out EXACT answered %d, want 503: %s", rec.Code, rec.Body.String())
	}
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("APPROX %d answered %d during brownout, want 200", i, c)
		}
	}
	if got := s.coalescer.sheets.Load(); got == 0 {
		t.Error("no sheet was ever cut for the APPROX flood")
	}
}
