package wal

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(i int) Record {
	return Record{
		Center: []float64{float64(i), 0.5 * float64(i), -1.25},
		Theta:  0.1 * float64(i+1),
		Answer: 3.5 - float64(i),
	}
}

func encodeSegment(t *testing.T, records ...Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range records {
		before := len(buf)
		buf = appendRecord(buf, r)
		if got, want := len(buf)-before, r.EncodedLen(); got != want {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", got, want)
		}
	}
	return buf
}

func recordsEqual(a, b Record) bool {
	if len(a.Center) != len(b.Center) {
		return false
	}
	for i := range a.Center {
		if math.Float64bits(a.Center[i]) != math.Float64bits(b.Center[i]) {
			return false
		}
	}
	return math.Float64bits(a.Theta) == math.Float64bits(b.Theta) &&
		math.Float64bits(a.Answer) == math.Float64bits(b.Answer)
}

func TestRecordRoundTrip(t *testing.T) {
	records := []Record{
		testRecord(0),
		testRecord(1),
		{Center: []float64{}, Theta: 0, Answer: 0},
		{Center: []float64{math.NaN(), math.Inf(1)}, Theta: math.SmallestNonzeroFloat64, Answer: -0.0},
	}
	buf := encodeSegment(t, records...)
	sc := NewScanner(bytes.NewReader(buf))
	for i, want := range records {
		if !sc.Next() {
			t.Fatalf("scan stopped at record %d: %v", i, sc.Err())
		}
		if got := sc.Record(); !recordsEqual(got, want) {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
	if sc.Next() {
		t.Fatal("scanner produced a record past the end")
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("clean stream ended with error: %v", err)
	}
	if got, want := sc.ValidSize(), int64(len(buf)); got != want {
		t.Fatalf("ValidSize %d, want %d", got, want)
	}
}

// TestScannerCorruption drives every corruption class through the scanner
// and checks the two recovery-critical outputs: the records before the
// corruption still decode, and ValidSize/Offset point exactly at the last
// intact record boundary (the truncation point).
func TestScannerCorruption(t *testing.T) {
	r0, r1 := testRecord(0), testRecord(1)
	clean := encodeSegment(t, r0, r1)
	first := int64(r0.EncodedLen()) // boundary after record 0

	cases := map[string]struct {
		mutate     func([]byte) []byte
		wantIntact int // records that must still decode
	}{
		"torn header": {func(b []byte) []byte {
			return b[:first+3]
		}, 1},
		"torn payload": {func(b []byte) []byte {
			return b[:int64(len(b))-5]
		}, 1},
		"payload bit flip": {func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		}, 1},
		"stored checksum flip": {func(b []byte) []byte {
			b[first+4] ^= 0x01
			return b
		}, 1},
		"implausible length": {func(b []byte) []byte {
			b[first] = 0xff
			b[first+1] = 0xff
			b[first+2] = 0xff
			b[first+3] = 0x7f
			return b
		}, 1},
		"first record corrupt": {func(b []byte) []byte {
			b[frameHeaderLen] ^= 0x01 // kind byte of record 0
			return b
		}, 0},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), clean...))
			sc := NewScanner(bytes.NewReader(buf))
			n := 0
			for sc.Next() {
				n++
			}
			if n != tc.wantIntact {
				t.Fatalf("decoded %d records, want %d", n, tc.wantIntact)
			}
			err := sc.Err()
			if err == nil {
				t.Fatal("corruption not reported")
			}
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("error %v does not wrap ErrCorruptRecord", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not a *CorruptError", err)
			}
			wantOff := int64(0)
			if tc.wantIntact == 1 {
				wantOff = first
			}
			if ce.Offset != wantOff {
				t.Fatalf("corruption located at offset %d, want %d", ce.Offset, wantOff)
			}
			if sc.ValidSize() != wantOff {
				t.Fatalf("ValidSize %d, want %d", sc.ValidSize(), wantOff)
			}
		})
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	// A failing writer must leave the previous content and no temp litter.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("writer error not propagated: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "hello" {
		t.Fatalf("failed write clobbered the target: %q", b)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

// TestListIgnoresTempFilesRemoveTempCleans pins the division of labor: List
// must leave temp files alone (it runs concurrently with live rotations —
// the replication shipper polls it, and deleting a rotation's in-flight
// temp file would fail the snapshot rename and flip the primary
// read-only), while RemoveTemp, called only from exclusive boot paths,
// clears the crash litter.
func TestListIgnoresTempFilesRemoveTempCleans(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "snap-000001.json.123.tmp")
	if err := os.WriteFile(stray, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(SnapshotPath(dir, 1), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Snapshots) != 1 || m.Snapshots[0] != 1 {
		t.Fatalf("manifest %+v, want snapshot generation 1 only", m)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatal("List must not touch temp files; a live rotation may own them")
	}
	if err := RemoveTemp(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray temp file survived RemoveTemp")
	}
	if _, err := os.Stat(SnapshotPath(dir, 1)); err != nil {
		t.Fatal("RemoveTemp deleted a published snapshot")
	}
}

// TestLogRotateAndReplay drives the full generation lifecycle: append,
// rotate twice (checking old generations are retired), and verify that both
// the newest-snapshot recovery plan and the fallback plan (previous
// snapshot + two segments) see a consistent record history.
func TestLogRotateAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var logged []Record
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			r := testRecord(len(logged))
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
			logged = append(logged, r)
		}
	}
	rotate := func(snapshot string) {
		t.Helper()
		if err := l.Rotate(func(w io.Writer) error {
			_, err := io.WriteString(w, snapshot)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	appendN(3)
	rotate("snap after 3")
	if l.Gen() != 1 {
		t.Fatalf("generation %d after first rotation, want 1", l.Gen())
	}
	appendN(2)
	rotate("snap after 5")
	appendN(4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation to generation 2 retires generation 0; generation 1 stays as
	// the fallback.
	if want := []uint64{1, 2}; len(m.Snapshots) != 2 || m.Snapshots[0] != want[0] || m.Snapshots[1] != want[1] {
		t.Fatalf("snapshots %v, want %v", m.Snapshots, want)
	}
	if want := []uint64{1, 2}; len(m.Segments) != 2 || m.Segments[0] != want[0] || m.Segments[1] != want[1] {
		t.Fatalf("segments %v, want %v", m.Segments, want)
	}
	if b, err := os.ReadFile(SnapshotPath(dir, 2)); err != nil || string(b) != "snap after 5" {
		t.Fatalf("snapshot 2 holds %q, %v", b, err)
	}

	replayGen := func(gen uint64) []Record {
		t.Helper()
		var got []Record
		n, corrupt, err := Replay(SegmentPath(dir, gen), func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil || corrupt != nil {
			t.Fatalf("replay gen %d: n=%d corrupt=%v err=%v", gen, n, corrupt, err)
		}
		return got
	}
	// Newest plan: snapshot 2 (covers records 0..4) + segment 2 (records 5..8).
	if got := replayGen(2); len(got) != 4 || !recordsEqual(got[0], logged[5]) {
		t.Fatalf("segment 2 replay mismatch: %d records", len(got))
	}
	// Fallback plan: snapshot 1 (covers 0..2) + segment 1 (3..4) + segment 2.
	if got := replayGen(1); len(got) != 2 || !recordsEqual(got[0], logged[3]) {
		t.Fatalf("segment 1 replay mismatch: %d records", len(got))
	}
}

// TestContinueAfterInterruptedRotation reproduces a crash between the
// snapshot rename and the next segment's creation: Continue must open an
// empty segment matching the newest snapshot, not resurrect the old tail.
func TestContinueAfterInterruptedRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the interruption: snapshot generation 1 exists, segment 1
	// does not.
	if err := os.WriteFile(SnapshotPath(dir, 1), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Continue(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Gen() != 1 {
		t.Fatalf("resumed at generation %d, want 1", l.Gen())
	}
	if fi, err := os.Stat(SegmentPath(dir, 1)); err != nil || fi.Size() != 0 {
		t.Fatalf("segment 1 not created empty: %v", err)
	}
}

func TestTruncateTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	buf := encodeSegment(t, testRecord(0), testRecord(1))
	// A torn third record: header + part of the payload.
	torn := append(append([]byte(nil), buf...), 0x20, 0, 0, 0, 1, 2, 3, 4, 0xAA)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	n, corrupt, err := Replay(path, func(Record) error { return nil })
	if err != nil || corrupt == nil || n != 2 {
		t.Fatalf("replay of torn segment: n=%d corrupt=%v err=%v", n, corrupt, err)
	}
	if err := TruncateTorn(path, corrupt.Offset); err != nil {
		t.Fatal(err)
	}
	n, corrupt, err = Replay(path, func(Record) error { return nil })
	if err != nil || corrupt != nil || n != 2 {
		t.Fatalf("replay after truncation: n=%d corrupt=%v err=%v", n, corrupt, err)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != int64(len(buf)) {
		t.Fatalf("truncated to %d bytes, want %d", fi.Size(), len(buf))
	}
}

// TestReplayCallbackError checks a callback error aborts the replay verbatim
// (recovery uses this to surface invalid-but-checksummed records).
func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	if err := os.WriteFile(path, encodeSegment(t, testRecord(0), testRecord(1)), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n, corrupt, err := Replay(path, func(Record) error { return boom })
	if !errors.Is(err, boom) || corrupt != nil || n != 0 {
		t.Fatalf("callback error not propagated: n=%d corrupt=%v err=%v", n, corrupt, err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"": SyncGroup, "group": SyncGroup, "always": SyncAlways, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("fsync-maybe"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestWriterSticky checks that a closed writer rejects further appends
// instead of silently dropping them.
func TestWriterSticky(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(1)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestGroupSyncFlushBatch checks the inline group-fsync path: FlushBatch
// appends force a sync without waiting for the timer.
func TestGroupSyncFlushBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{Mode: SyncGroup, FlushBatch: 2, FlushInterval: 1000000000})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.w.mu.Lock()
	pending := l.w.pending
	l.w.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d records pending after hitting the flush batch twice", pending)
	}
}
