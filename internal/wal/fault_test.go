package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// TestFaultHookInjectsWriteErrors proves the Options.Fault hook turns an
// append into the injected I/O error and that the writer's sticky-error
// contract holds afterwards: every further append fails with the first
// error even once the hook is disarmed, because a log that may have a
// hole must not keep growing.
func TestFaultHookInjectsWriteErrors(t *testing.T) {
	dir := t.TempDir()
	var arm atomic.Bool
	injected := errors.New("injected: no space left on device")
	l, err := Continue(dir, Options{Mode: SyncNone, Fault: func(op string) error {
		if arm.Load() && op == "write" {
			return injected
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := Record{Center: []float64{0.5}, Theta: 0.1, Answer: 1}
	if err := l.Append(rec); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	arm.Store(true)
	if err := l.Append(rec); !errors.Is(err, injected) {
		t.Fatalf("faulted append: err = %v, want the injected error", err)
	}
	arm.Store(false)
	if err := l.Append(rec); !errors.Is(err, injected) {
		t.Fatalf("append after fault cleared: err = %v, want the sticky first error", err)
	}
	// The record appended before the fault is intact on disk.
	n, corrupt, err := Replay(SegmentPath(dir, 0), func(Record) error { return nil })
	if err != nil || corrupt != nil || n != 1 {
		t.Fatalf("replay after fault: n=%d corrupt=%v err=%v, want exactly the 1 healthy record", n, corrupt, err)
	}
}

// TestFaultHookInjectsSyncErrors injects a failure into the fsync path:
// the append that triggers the inline group fsync reports it, and it is
// sticky.
func TestFaultHookInjectsSyncErrors(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("injected: fsync I/O error")
	l, err := Continue(dir, Options{
		Mode:       SyncGroup,
		FlushBatch: 2,
		Fault: func(op string) error {
			if op == "sync" {
				return injected
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := Record{Center: []float64{0.5}, Theta: 0.1, Answer: 1}
	if err := l.Append(rec); err != nil {
		t.Fatalf("first append (below the flush batch): %v", err)
	}
	if err := l.Append(rec); !errors.Is(err, injected) {
		t.Fatalf("append at the flush batch: err = %v, want the injected fsync error", err)
	}
	if err := l.Sync(); !errors.Is(err, injected) {
		t.Fatalf("sync after fault: err = %v, want sticky", err)
	}
}

// TestFaultHookOffIsInert double-checks the nil hook costs nothing and
// changes nothing: a log written with a never-firing hook matches one
// written without any.
func TestFaultHookOffIsInert(t *testing.T) {
	rec := Record{Center: []float64{0.25, 0.75}, Theta: 0.2, Answer: -3}
	write := func(dir string, opts Options) []byte {
		l, err := Continue(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "wal-000000.log"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := write(t.TempDir(), Options{Mode: SyncNone})
	hooked := write(t.TempDir(), Options{Mode: SyncNone, Fault: func(string) error { return nil }})
	if string(plain) != string(hooked) {
		t.Error("a never-firing fault hook changed the bytes on disk")
	}
}
