package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

func TestCapacityRecordRoundTrip(t *testing.T) {
	records := []Record{
		{Kind: KindCapacity, MaxPrototypes: 128, Eviction: "windecay", EvictionHalfLife: 512, Merge: true},
		{Kind: KindCapacity, MaxPrototypes: 0, Eviction: "", EvictionHalfLife: 0, Merge: false},
		{Kind: KindCapacity, MaxPrototypes: 7, Eviction: "recency"},
	}
	buf := encodeSegment(t, records...)
	sc := NewScanner(bytes.NewReader(buf))
	for i, want := range records {
		if !sc.Next() {
			t.Fatalf("scan stopped at record %d: %v", i, sc.Err())
		}
		got := sc.Record()
		if got.Kind != KindCapacity || got.MaxPrototypes != want.MaxPrototypes ||
			got.Eviction != want.Eviction || got.EvictionHalfLife != want.EvictionHalfLife ||
			got.Merge != want.Merge {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
	if sc.Next() || sc.Err() != nil {
		t.Fatalf("stream should end cleanly: %v", sc.Err())
	}
}

func TestCapacityRecordMixedStream(t *testing.T) {
	records := []Record{
		testRecord(0),
		{Kind: KindCapacity, MaxPrototypes: 16, Eviction: "windecay", Merge: true},
		testRecord(1),
	}
	buf := encodeSegment(t, records...)
	sc := NewScanner(bytes.NewReader(buf))
	var kinds []Kind
	for sc.Next() {
		kinds = append(kinds, sc.Record().Kind)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(kinds) != 3 || kinds[0] != KindPair || kinds[1] != KindCapacity || kinds[2] != KindPair {
		t.Fatalf("kinds = %v", kinds)
	}
}

// decodeChunk scans a TailChunk's bytes back into records, failing the test
// on any framing error — shipped chunks must contain only complete records.
func decodeChunk(t *testing.T, data []byte) []Record {
	t.Helper()
	sc := NewScanner(bytes.NewReader(data))
	var out []Record
	for sc.Next() {
		out = append(out, sc.Record())
	}
	if sc.Err() != nil {
		t.Fatalf("chunk does not scan cleanly: %v", sc.Err())
	}
	if sc.ValidSize() != int64(len(data)) {
		t.Fatalf("chunk has %d trailing unscanned bytes", int64(len(data))-sc.ValidSize())
	}
	return out
}

// TestTailReadResume is the Scanner resume contract: a reader that stopped
// at ValidSize mid-write sees exactly the records it has not yet seen —
// across an in-progress torn tail and across a rotation boundary.
func TestTailReadResume(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	appendN := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := l.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	appendN(0, 5)
	cur := Cursor{}
	ch, err := TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeChunk(t, ch.Data)
	if len(got) != 5 {
		t.Fatalf("first read yielded %d records, want 5", len(got))
	}
	for i, r := range got {
		if !recordsEqual(r, testRecord(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	cur = ch.Next

	// Nothing new: the cursor must not move.
	ch, err = TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Data) != 0 || ch.Next != cur {
		t.Fatalf("idle read returned %d bytes, next %v (cursor %v)", len(ch.Data), ch.Next, cur)
	}

	// Simulate a torn in-progress append: a record whose tail has not hit
	// the file yet. The reader must ship only the records before it.
	appendN(5, 7)
	full := encodeSegment(t, testRecord(7))
	seg := SegmentPath(dir, 0)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	ch, err = TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	got = decodeChunk(t, ch.Data)
	if len(got) != 2 || !recordsEqual(got[0], testRecord(5)) || !recordsEqual(got[1], testRecord(6)) {
		t.Fatalf("torn-tail read yielded %d records: %+v", len(got), got)
	}
	cur = ch.Next

	// The torn record is invisible until its last bytes land.
	ch, err = TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Data) != 0 || ch.Next != cur {
		t.Fatalf("read past torn tail returned %d bytes", len(ch.Data))
	}
	if _, err := f.Write(full[len(full)-3:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ch, err = TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	got = decodeChunk(t, ch.Data)
	if len(got) != 1 || !recordsEqual(got[0], testRecord(7)) {
		t.Fatalf("completed record read yielded %+v", got)
	}
	cur = ch.Next

	// Rotation boundary: the sealed segment hands the reader a bare
	// generation bump, then records appended after the rotation flow from
	// the new segment.
	if err := l.Rotate(func(w io.Writer) error { _, err := w.Write([]byte("{}")); return err }); err != nil {
		t.Fatal(err)
	}
	appendN(8, 10)
	ch, err = TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Data) != 0 || ch.Next != (Cursor{Gen: 1}) {
		t.Fatalf("sealed segment read = %d bytes, next %v, want bare bump to gen 1", len(ch.Data), ch.Next)
	}
	cur = ch.Next
	ch, err = TailRead(dir, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	got = decodeChunk(t, ch.Data)
	if len(got) != 2 || !recordsEqual(got[0], testRecord(8)) || !recordsEqual(got[1], testRecord(9)) {
		t.Fatalf("post-rotation read yielded %+v", got)
	}
}

// TestTailReadChunkBudget: a small byte budget splits the stream without
// ever splitting a record.
func TestTailReadChunkBudget(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Budget of ~1.5 records: every read must make progress in whole
	// records.
	budget := testRecord(0).EncodedLen() * 3 / 2
	var all []Record
	cur := Cursor{}
	for len(all) < n {
		ch, err := TailRead(dir, cur, budget)
		if err != nil {
			t.Fatal(err)
		}
		recs := decodeChunk(t, ch.Data)
		if len(recs) == 0 {
			t.Fatalf("no progress at %v with %d records to go", cur, n-len(all))
		}
		all = append(all, recs...)
		cur = ch.Next
	}
	for i, r := range all {
		if !recordsEqual(r, testRecord(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestTailReadCursorGone(t *testing.T) {
	dir := t.TempDir()
	l, err := Continue(dir, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := func(w io.Writer) error { _, err := w.Write([]byte("{}")); return err }
	// Two rotations GC generation 0.
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := TailRead(dir, Cursor{Gen: 0}, 0); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("GCed generation error = %v, want ErrCursorGone", err)
	}
	// An offset past the segment's size means the writer truncated a torn
	// tail behind the reader.
	if _, err := TailRead(dir, Cursor{Gen: 2, Off: 1 << 20}, 0); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("past-end offset error = %v, want ErrCursorGone", err)
	}
}
