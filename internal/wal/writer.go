package wal

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// SyncMode selects how appended records reach stable storage.
type SyncMode int

const (
	// SyncGroup (the default) batches fsyncs: an append is flushed to the
	// OS immediately but fsynced only when FlushBatch records have
	// accumulated or FlushInterval has elapsed since the first unsynced
	// one, whichever comes first. A crash loses at most the unsynced tail,
	// which recovery truncates at the last intact record.
	SyncGroup SyncMode = iota
	// SyncAlways fsyncs every append before it returns: nothing
	// acknowledged is ever lost, at the cost of one disk flush per pair.
	SyncAlways
	// SyncNone never fsyncs explicitly; durability is whatever the OS page
	// cache provides. For bulk loads whose source can be replayed anyway.
	SyncNone
)

// String names the mode as accepted by ParseSyncMode.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "group"
	}
}

// ParseSyncMode resolves a -wal-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want group, always or none)", s)
	}
}

// Options configures the append side of a log.
type Options struct {
	// Mode is the fsync policy; the zero value is SyncGroup.
	Mode SyncMode
	// FlushInterval caps how long an appended record may stay unsynced
	// under SyncGroup; ≤ 0 defaults to 10ms.
	FlushInterval time.Duration
	// FlushBatch caps how many records may accumulate unsynced under
	// SyncGroup before an append fsyncs inline; ≤ 0 defaults to 256.
	FlushBatch int
	// Fault, when non-nil, is consulted before every physical segment
	// write and fsync with the operation name ("write" or "sync"); a
	// non-nil return is treated as that operation's I/O error, including
	// the writer's sticky-error behaviour. It exists so the chaos and
	// crash harnesses can inject disk failures (ENOSPC, dying device)
	// without a faulty filesystem; production paths leave it nil.
	Fault func(op string) error
}

func (o Options) withDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = 10 * time.Millisecond
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = 256
	}
	return o
}

// writer appends framed records to one segment file. Append errors are
// sticky: after any write or fsync failure every further call returns the
// first error, because a log with a hole in it must not keep growing.
type writer struct {
	mu      sync.Mutex
	f       *os.File
	opts    Options
	buf     []byte // encode scratch
	pending int    // records written since the last fsync
	timer   *time.Timer
	err     error
}

func newWriter(f *os.File, opts Options) *writer {
	return &writer{f: f, opts: opts.withDefaults()}
}

// append encodes and writes one record, applying the sync policy.
func (w *writer) append(r Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = appendRecord(w.buf[:0], r)
	if err := w.physWrite(w.buf); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.pending++
	switch w.opts.Mode {
	case SyncAlways:
		return w.syncLocked()
	case SyncGroup:
		if w.pending >= w.opts.FlushBatch {
			return w.syncLocked()
		}
		if w.timer == nil {
			w.timer = time.AfterFunc(w.opts.FlushInterval, w.timerSync)
		}
	}
	return nil
}

// timerSync is the deferred group fsync; a failure is recorded sticky and
// surfaces on the next append or sync.
func (w *writer) timerSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.timer = nil
	if w.err == nil && w.pending > 0 {
		_ = w.syncLocked()
	}
}

// physWrite performs one segment write, routed through the fault hook.
func (w *writer) physWrite(b []byte) error {
	if f := w.opts.Fault; f != nil {
		if err := f("write"); err != nil {
			return err
		}
	}
	_, err := w.f.Write(b)
	return err
}

// physSync performs one segment fsync, routed through the fault hook.
func (w *writer) physSync() error {
	if f := w.opts.Fault; f != nil {
		if err := f("sync"); err != nil {
			return err
		}
	}
	return w.f.Sync()
}

// syncLocked fsyncs the segment and clears the pending count and timer.
func (w *writer) syncLocked() error {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if err := w.physSync(); err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: fsync: %w", err)
		}
		return w.err
	}
	w.pending = 0
	return nil
}

// sync forces any pending records to stable storage. It overrides the
// policy — even under SyncNone — because rotation relies on the superseded
// segment being durable before the snapshot that replaces it is published.
func (w *writer) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 {
		return nil
	}
	return w.syncLocked()
}

// close syncs and closes the segment file.
func (w *writer) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	var firstErr error
	if w.err == nil {
		if err := w.physSync(); err != nil {
			firstErr = fmt.Errorf("wal: fsync on close: %w", err)
		}
	} else {
		firstErr = w.err
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	w.err = fmt.Errorf("wal: writer is closed")
	return firstErr
}
