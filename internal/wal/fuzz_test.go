package wal

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzWALRecord checks the three framing invariants recovery depends on, for
// arbitrary record contents:
//
//  1. encode → scan round-trips the record bit-exactly (NaN included);
//  2. flipping any single bit of the payload region is rejected by the
//     checksum, with ValidSize pointing at the preceding record boundary;
//  3. any strict prefix of the encoding (a torn append) never yields the
//     record and never panics — the scanner reports a torn frame.
func FuzzWALRecord(f *testing.F) {
	f.Add(uint8(3), 0.5, 1.25, -3.0, uint16(9))
	f.Add(uint8(0), 0.0, 0.0, 0.0, uint16(0))
	f.Add(uint8(8), math.Inf(1), math.NaN(), math.SmallestNonzeroFloat64, uint16(65535))
	f.Add(uint8(15), -0.0, 1e300, -1e-300, uint16(8))
	f.Fuzz(func(t *testing.T, dimSeed uint8, theta, answer, c0 float64, flip uint16) {
		dim := int(dimSeed % 16)
		center := make([]float64, dim)
		x := c0
		for i := range center {
			center[i] = x
			x = x*1.5 + 1 // deterministic spread from the one seeded value
		}
		rec := Record{Center: center, Theta: theta, Answer: answer}
		enc := appendRecord(nil, rec)
		if len(enc) != rec.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), rec.EncodedLen())
		}

		// Round trip.
		sc := NewScanner(bytes.NewReader(enc))
		if !sc.Next() {
			t.Fatalf("clean record rejected: %v", sc.Err())
		}
		if got := sc.Record(); !recordsEqual(got, rec) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
		}
		if sc.Next() || sc.Err() != nil {
			t.Fatalf("trailing state after one record: %v", sc.Err())
		}
		if sc.ValidSize() != int64(len(enc)) {
			t.Fatalf("ValidSize %d, want %d", sc.ValidSize(), len(enc))
		}

		// Single-bit corruption in the payload region must fail the CRC.
		// (Header flips are covered by the prefix sweep and unit tests; a
		// length-field flip can legally present as a torn frame instead.)
		payloadLen := len(enc) - frameHeaderLen
		pos := frameHeaderLen + int(flip)%payloadLen
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 1 << (flip % 8)
		sc = NewScanner(bytes.NewReader(bad))
		if sc.Next() {
			t.Fatalf("bit flip at byte %d decoded as a valid record", pos)
		}
		if err := sc.Err(); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("bit flip at byte %d: error %v does not wrap ErrCorruptRecord", pos, err)
		}
		if sc.ValidSize() != 0 {
			t.Fatalf("bit flip at byte %d: ValidSize %d, want 0", pos, sc.ValidSize())
		}

		// Torn-append sweep: a strict prefix must never produce the record.
		cut := int(flip) % len(enc)
		sc = NewScanner(bytes.NewReader(enc[:cut]))
		if sc.Next() {
			t.Fatalf("torn prefix of %d bytes decoded as a valid record", cut)
		}
		if sc.ValidSize() != 0 {
			t.Fatalf("torn prefix of %d bytes: ValidSize %d, want 0", cut, sc.ValidSize())
		}
		if cut == 0 {
			if sc.Err() != nil {
				t.Fatalf("empty input is a clean boundary, got %v", sc.Err())
			}
		} else if !errors.Is(sc.Err(), ErrCorruptRecord) {
			t.Fatalf("torn prefix of %d bytes: error %v does not wrap ErrCorruptRecord", cut, sc.Err())
		}
	})
}

// FuzzScannerBytes feeds raw bytes straight into the scanner: it must never
// panic, never allocate for an implausible length, and always report a
// ValidSize at a true record boundary within the input.
func FuzzScannerBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x20, 0, 0, 0, 1, 2, 3, 4})
	f.Add(appendRecord(nil, Record{Center: []float64{1, 2}, Theta: 0.5, Answer: 3}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		n := 0
		for sc.Next() {
			n++
		}
		valid := sc.ValidSize()
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("ValidSize %d outside input of %d bytes", valid, len(data))
		}
		// Rescanning the valid prefix must reproduce exactly the same records
		// with no error — that is the contract TruncateTorn relies on.
		sc = NewScanner(bytes.NewReader(data[:valid]))
		m := 0
		for sc.Next() {
			m++
		}
		if m != n || sc.Err() != nil {
			t.Fatalf("valid prefix rescans to %d records, err %v; want %d, nil", m, sc.Err(), n)
		}
	})
}
