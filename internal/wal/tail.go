package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// Cursor addresses a position in a data directory's log: a byte offset into
// one generation's segment. The zero cursor is the start of segment 0. A
// cursor produced by TailRead always sits on a record boundary, so a reader
// that resumes from it never sees a half record.
type Cursor struct {
	// Gen is the segment generation.
	Gen uint64
	// Off is the byte offset into that segment.
	Off int64
}

// String renders the cursor for logs and errors.
func (c Cursor) String() string { return fmt.Sprintf("gen %d off %d", c.Gen, c.Off) }

// ErrCursorGone reports that a cursor can no longer be served from the
// directory: its segment was garbage-collected by rotation, or the segment
// shrank below the offset (the writer crashed and recovery truncated a torn
// tail the cursor had already advanced past). Either way the reader's copy
// has no future in this log — it must re-bootstrap from a snapshot.
var ErrCursorGone = errors.New("wal: cursor is no longer served by this log")

// DefaultTailChunk is the default byte budget of one TailRead.
const DefaultTailChunk = 256 << 10

// TailChunk is the result of one TailRead: zero or more complete framed
// records and the cursor to resume from.
type TailChunk struct {
	// Data holds complete framed records — a byte-exact slice of the
	// segment — or nil when nothing new was readable.
	Data []byte
	// Next is the cursor after Data. Next.Gen > the request's generation
	// (with empty Data) signals a rotation boundary: the old segment is
	// fully consumed and sealed, and reading resumes at the next
	// generation's start. Next equal to the request cursor means nothing
	// new yet — poll again.
	Next Cursor
}

// TailRead reads complete records from the segment at cur, up to max bytes
// (DefaultTailChunk if max <= 0). It ships only the CRC-valid prefix of
// what is on disk — an in-progress append's torn tail is left for the next
// call — so the bytes it returns are final: they will never be truncated by
// the writer's own crash recovery once the segment seals. One call returns
// either data within cur.Gen, or a bare generation bump once the sealed
// segment is fully consumed, never both.
//
// Errors: ErrCursorGone when the cursor's segment was GCed or truncated
// below cur.Off; ErrCorruptRecord when a sealed segment ends in bytes that
// do not scan (storage corruption — a sealed segment ends on a record
// boundary by construction).
func TailRead(dir string, cur Cursor, max int) (TailChunk, error) {
	if max <= 0 {
		max = DefaultTailChunk
	}
	// One retry: detecting "sealed" after seeing no new bytes must re-check
	// the size, because records may have landed between the stat and the
	// rotation that sealed the segment.
	for attempt := 0; ; attempt++ {
		chunk, tornSealed, err := tailReadOnce(dir, cur, max)
		if err != nil {
			return TailChunk{}, err
		}
		if len(chunk.Data) > 0 || chunk.Next != cur {
			return chunk, nil
		}
		if !tornSealed {
			return chunk, nil
		}
		if attempt > 0 {
			// Still unscannable after the re-read: a sealed segment ends on
			// a record boundary by construction, so this is storage
			// corruption, not an append in flight.
			return TailChunk{}, &CorruptError{Offset: cur.Off, Reason: fmt.Sprintf("sealed segment %d ends in unscannable bytes", cur.Gen)}
		}
	}
}

func tailReadOnce(dir string, cur Cursor, max int) (TailChunk, bool, error) {
	path := SegmentPath(dir, cur.Gen)
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return TailChunk{}, false, err
		}
		// Rotation GC deleted the generation (or it never existed): the
		// cursor is too far behind to serve incrementally.
		return TailChunk{}, false, fmt.Errorf("%w: segment %d is gone", ErrCursorGone, cur.Gen)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return TailChunk{}, false, err
	}
	size := fi.Size()
	if cur.Off > size {
		return TailChunk{}, false, fmt.Errorf("%w: segment %d is %d bytes, cursor offset %d (torn tail truncated behind the reader)",
			ErrCursorGone, cur.Gen, size, cur.Off)
	}
	if size > cur.Off {
		data, err := readValid(f, cur.Off, size, max)
		if err != nil {
			return TailChunk{}, false, err
		}
		if len(data) > 0 {
			return TailChunk{Data: data, Next: Cursor{Gen: cur.Gen, Off: cur.Off + int64(len(data))}}, false, nil
		}
	}
	// No complete new record. The segment is sealed — its bytes final — once
	// any newer generation exists: Rotate fsyncs the tail before publishing
	// snapshot gen+1.
	m, err := List(dir)
	if err != nil {
		return TailChunk{}, false, err
	}
	sealed := false
	for _, g := range m.Segments {
		sealed = sealed || g > cur.Gen
	}
	for _, g := range m.Snapshots {
		sealed = sealed || g > cur.Gen
	}
	if !sealed {
		// Live tail: either fully consumed or ending in an in-progress
		// append. Poll again.
		return TailChunk{Next: cur}, false, nil
	}
	if size > cur.Off {
		// Sealed segments end at a record boundary; leftover unscannable
		// bytes are corruption, not a pending write. (The caller retries
		// once first — the bytes may simply have landed after our scan.)
		return TailChunk{Next: cur}, true, nil
	}
	return TailChunk{Next: Cursor{Gen: cur.Gen + 1}}, false, nil
}

// readValid reads up to max bytes at off and returns the prefix that scans
// as complete records. If the first record alone overflows max, the budget
// is retried at the largest legal record size so progress is always
// possible.
func readValid(f *os.File, off, size int64, max int) ([]byte, error) {
	for {
		n := size - off
		if n > int64(max) {
			n = int64(max)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
			return nil, fmt.Errorf("wal: tail read: %w", err)
		}
		sc := NewScanner(bytes.NewReader(buf))
		for sc.Next() {
		}
		if valid := sc.ValidSize(); valid > 0 {
			return buf[:valid], nil
		}
		if errors.Is(sc.Err(), ErrCorruptRecord) && n == size-off {
			// The whole remainder is on the table and still no record
			// completes: a torn in-progress append (or, on a sealed
			// segment, corruption — the caller decides which).
			return nil, nil
		}
		if n == size-off || n >= int64(maxRecordLen+frameHeaderLen) {
			return nil, nil
		}
		max = maxRecordLen + frameHeaderLen
	}
}
