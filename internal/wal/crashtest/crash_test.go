package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/wal"
)

// The harness trains with a configuration that cannot converge (a Γ
// threshold no float drift satisfies and an unreachable minimum-steps gate),
// so Steps() of any recovered model equals exactly the number of durable
// pairs — the quantity the prefix-consistency check is built on. The bounded
// capacity with a short half-life forces evictions (and, in the merge
// variant, merges) to happen many times mid-stream, which is where slot
// renumbering after a recovery could diverge from the uncrashed run if the
// eviction order were not stamp-keyed.
func trainConfig(merge bool) core.Config {
	return core.Config{
		Dim:                     3,
		Vigilance:               0.5,
		Gamma:                   1e-12,
		MinGammaSteps:           1 << 30,
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
		MaxPrototypes:           24,
		Eviction:                core.WinDecay{HalfLife: 64},
		MergeOnEvict:            merge,
	}
}

// genPairs generates the deterministic training stream both the child
// trainer and the parent's reference runs consume; determinism is what lets
// two processes agree on "the first M pairs".
func genPairs(seed int64, n int) []core.TrainingPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]core.TrainingPair, n)
	for i := range pairs {
		c := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		q, err := core.NewQuery(c, 0.3*rng.Float64())
		if err != nil {
			panic(err)
		}
		pairs[i] = core.TrainingPair{
			Query:  q,
			Answer: c[0] + 2*c[1] - c[2] + 0.1*rng.NormFloat64(),
		}
	}
	return pairs
}

// stateHash wraps core.Model.StateHash — the canonical slot-order-
// independent digest of the full training state (RLS solver matrices
// included) — for the bit-identity assertions: recovery compacts tombstoned
// slots away, so the recovered and uncrashed models hold the same
// prototypes under permuted slot ids, and a byte-level file comparison
// would false-alarm on the permutation.
func stateHash(t *testing.T, m *core.Model) string {
	t.Helper()
	h, err := m.StateHash()
	if err != nil {
		t.Fatalf("state hash: %v", err)
	}
	return h
}

// TestCrashChild is the child trainer the harness SIGKILLs; it only runs
// when the harness re-executes the test binary with the environment set, and
// skips otherwise. It recovers whatever state the previous incarnation left,
// continues the deterministic stream from the recovered step count, paced so
// kills land mid-stream, and drops a completion marker once the whole stream
// has been consumed and closed cleanly.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("LLMQ_CRASHTEST_DIR")
	if dir == "" {
		t.Skip("crashtest child entry point; driven by TestCrashRecovery")
	}
	n, _ := strconv.Atoi(os.Getenv("LLMQ_CRASHTEST_N"))
	seed, _ := strconv.ParseInt(os.Getenv("LLMQ_CRASHTEST_SEED"), 10, 64)
	snapEvery, _ := strconv.Atoi(os.Getenv("LLMQ_CRASHTEST_SNAP_EVERY"))
	paceUS, _ := strconv.Atoi(os.Getenv("LLMQ_CRASHTEST_PACE_US"))
	merge := os.Getenv("LLMQ_CRASHTEST_MERGE") == "1"
	done := os.Getenv("LLMQ_CRASHTEST_DONE")

	d, err := core.Recover(dir, trainConfig(merge), core.DurableOptions{
		SnapshotEvery: snapEvery,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("child recover: %v", err)
	}
	pairs := genPairs(seed, n)
	start := d.Model().Steps()
	for _, p := range pairs[start:] {
		if _, err := d.Observe(p.Query, p.Answer); err != nil {
			t.Fatalf("child observe: %v", err)
		}
		time.Sleep(time.Duration(paceUS) * time.Microsecond)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("child close: %v", err)
	}
	if err := os.WriteFile(done, []byte("ok"), 0o644); err != nil {
		t.Fatalf("child done marker: %v", err)
	}
}

// chopNewestSegment truncates up to chop bytes off the newest WAL segment —
// the on-disk state a power loss leaves when the tail was written but not
// yet synced (a plain SIGKILL cannot produce it: the page cache survives the
// process). Recovery must truncate to the last intact record and carry on.
func chopNewestSegment(t *testing.T, dir string, chop int64) {
	t.Helper()
	man, err := wal.List(dir)
	if err != nil || len(man.Segments) == 0 {
		return
	}
	path := wal.SegmentPath(dir, man.Segments[len(man.Segments)-1])
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		return
	}
	size := fi.Size() - chop
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatalf("chop segment: %v", err)
	}
}

// verifyPrefix recovers the directory and requires the result to be
// bit-identical to a fresh model trained on exactly the recovered number of
// pairs — the durability contract: a crash may lose an unsynced suffix, but
// what survives is always a clean prefix of the stream, never a mangled
// in-between state.
func verifyPrefix(t *testing.T, dir string, pairs []core.TrainingPair, merge bool, snapEvery int) int {
	t.Helper()
	d, err := core.Recover(dir, trainConfig(merge), core.DurableOptions{
		SnapshotEvery: snapEvery,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("verify recover: %v", err)
	}
	m := d.Model().Steps()
	if m > len(pairs) {
		t.Fatalf("recovered %d steps from a %d-pair stream", m, len(pairs))
	}
	got := stateHash(t, d.Model())
	if err := d.Close(); err != nil {
		t.Fatalf("verify close: %v", err)
	}
	ref, err := core.NewModel(trainConfig(merge))
	if err != nil {
		t.Fatalf("reference model: %v", err)
	}
	if _, err := ref.TrainBatch(pairs[:m]); err != nil {
		t.Fatalf("reference train: %v", err)
	}
	if want := stateHash(t, ref); got != want {
		t.Fatalf("recovered model diverges from the clean run after %d pairs: hash %s, want %s", m, got, want)
	}
	return m
}

// TestCrashRecovery is the fault-injection harness: it repeatedly runs the
// child trainer against one data directory, SIGKILLs it at a random point
// (sometimes also tearing the unsynced tail of the newest segment), and
// after every kill proves the recovered model is bit-identical to a clean
// run over the durable prefix. The loop ends when a child survives to
// consume the whole stream; the final recovery must then hold all of it.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness spawns child processes; skipped in -short mode")
	}
	for _, tc := range []struct {
		name  string
		merge bool
	}{
		{"evict", false},
		{"merge", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const (
				n         = 3000
				seed      = 42
				snapEvery = 73
				paceUS    = 100
				maxRounds = 80
			)
			base := t.TempDir()
			dataDir := filepath.Join(base, "data")
			doneMarker := filepath.Join(base, "done")
			pairs := genPairs(seed, n)
			rng := rand.New(rand.NewSource(7))
			killed := 0
			rounds := 0
			for ; rounds < maxRounds; rounds++ {
				if _, err := os.Stat(doneMarker); err == nil {
					break
				}
				var out bytes.Buffer
				cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$")
				cmd.Stdout = &out
				cmd.Stderr = &out
				cmd.Env = append(os.Environ(),
					"LLMQ_CRASHTEST_DIR="+dataDir,
					"LLMQ_CRASHTEST_DONE="+doneMarker,
					fmt.Sprintf("LLMQ_CRASHTEST_N=%d", n),
					fmt.Sprintf("LLMQ_CRASHTEST_SEED=%d", seed),
					fmt.Sprintf("LLMQ_CRASHTEST_SNAP_EVERY=%d", snapEvery),
					fmt.Sprintf("LLMQ_CRASHTEST_PACE_US=%d", paceUS),
					fmt.Sprintf("LLMQ_CRASHTEST_MERGE=%d", boolToInt(tc.merge)),
				)
				if err := cmd.Start(); err != nil {
					t.Fatalf("start child: %v", err)
				}
				waitCh := make(chan error, 1)
				go func() { waitCh <- cmd.Wait() }()
				delay := 20*time.Millisecond + time.Duration(rng.Int63n(int64(130*time.Millisecond)))
				select {
				case err := <-waitCh:
					if err != nil {
						t.Fatalf("child failed on its own: %v\n%s", err, out.String())
					}
				case <-time.After(delay):
					_ = cmd.Process.Kill()
					<-waitCh
					killed++
				}
				if rng.Intn(2) == 0 {
					chopNewestSegment(t, dataDir, 1+rng.Int63n(80))
				}
				m := verifyPrefix(t, dataDir, pairs, tc.merge, snapEvery)
				t.Logf("round %d: %d/%d pairs durable", rounds, m, n)
			}
			if _, err := os.Stat(doneMarker); err != nil {
				t.Fatalf("child never completed the stream in %d rounds", rounds)
			}
			if killed == 0 {
				t.Logf("warning: no child was killed mid-stream; kills=%d rounds=%d", killed, rounds)
			}
			if m := verifyPrefix(t, dataDir, pairs, tc.merge, snapEvery); m != n {
				t.Fatalf("clean completion recovered %d of %d pairs", m, n)
			}
		})
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
