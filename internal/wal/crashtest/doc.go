// Package crashtest is the fault-injection proof of the durability layer:
// its test re-executes the test binary as a child trainer that streams pairs
// through core.Recover's Durable wrapper, SIGKILLs it at random points
// (sometimes additionally chopping bytes off the newest WAL segment, the
// on-disk signature of a power loss tearing an unsynced tail), recovers, and
// requires the recovered model to be bit-identical to a clean never-crashed
// run over the same durable prefix — checkpoints, rotations, evictions,
// merges and solver state included. The package holds no library code; it
// exists so the harness can be invoked as its own `go test` target in CI.
package crashtest
