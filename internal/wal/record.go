// Package wal implements the durability substrate of the streaming trainer:
// an append-only write-ahead log of training pairs plus atomically written,
// generation-numbered model snapshots, managed together so that a process
// killed at any instant recovers — newest valid snapshot, then replay of the
// log tail — to exactly the state it had durably reached.
//
// The package is deliberately model-agnostic: a record is a raw training
// pair ([]float64 centre, radius, answer), a snapshot is whatever bytes the
// caller's write callback produces, and recovery hands the caller a plan
// (candidate snapshots newest-first, log segments oldest-first) instead of
// interpreting either. internal/core layers Recover/Durable on top.
//
// # On-disk format
//
// A log segment is a sequence of records, each framed as
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC-32C (Castagnoli) of the payload
//	payload
//
// with the payload encoding one training pair (a kind byte for forward
// compatibility, the dimensionality as a uvarint, then the centre
// coordinates, radius and answer as raw IEEE-754 bits). The frame makes the
// expected crash artifact — a torn write at the tail — detectable: a read
// that runs out of bytes mid-record, or whose checksum does not match, stops
// the scan at the last intact record boundary instead of propagating garbage
// into the model.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Record is one logged training pair: the query centre x, the query radius
// θ and the observed answer y. Records are value-complete — replaying them
// in order through the trainer reproduces the training run.
type Record struct {
	// Center is the query centre x ∈ R^d.
	Center []float64
	// Theta is the query radius θ.
	Theta float64
	// Answer is the observed query answer y.
	Answer float64
}

// recordKindPair tags a training-pair payload; other kinds are reserved so
// the format can grow without breaking old readers (which reject unknown
// kinds as corruption, the safe failure for a durability log).
const recordKindPair = 1

// maxRecordLen bounds a single record payload. Training pairs are tiny (a
// few hundred bytes even at high dimensionality); a length prefix beyond
// this is certainly corruption and must not drive a giant allocation.
const maxRecordLen = 1 << 20

// frameHeaderLen is the fixed framing overhead per record: the payload
// length and its CRC-32C.
const frameHeaderLen = 8

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord tags every framing/decoding failure of the record
// scanner; CorruptError carries the offset and reason.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// CorruptError reports where and why a log scan stopped: the byte offset of
// the record that failed to decode (which is also the size of the valid
// prefix — the offset to truncate a torn tail at) and what failed.
type CorruptError struct {
	// Offset is the file offset of the first byte of the bad record; all
	// records before it decoded cleanly.
	Offset int64
	// Reason describes what failed (short read, checksum mismatch, bad
	// length, bad payload).
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorruptRecord) work.
func (e *CorruptError) Unwrap() error { return ErrCorruptRecord }

// appendRecord appends the framed encoding of r to dst and returns the
// extended slice.
func appendRecord(dst []byte, r Record) []byte {
	payload := len(dst) + frameHeaderLen
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	dst = append(dst, recordKindPair)
	dst = binary.AppendUvarint(dst, uint64(len(r.Center)))
	for _, v := range r.Center {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Theta))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Answer))
	binary.LittleEndian.PutUint32(dst[payload-frameHeaderLen:], uint32(len(dst)-payload))
	binary.LittleEndian.PutUint32(dst[payload-4:], crc32.Checksum(dst[payload:], castagnoli))
	return dst
}

// EncodedLen returns the on-disk size of the record: frame header plus
// payload.
func (r Record) EncodedLen() int {
	return frameHeaderLen + 1 + uvarintLen(uint64(len(r.Center))) + 8*(len(r.Center)+2)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodePayload parses one record payload (the bytes after the frame
// header). It is strict: unknown kinds, short bodies and trailing garbage
// are all errors — a checksummed payload that still fails to parse means a
// writer bug or deliberate tampering, and either way must not be replayed.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, errors.New("empty payload")
	}
	if p[0] != recordKindPair {
		return Record{}, fmt.Errorf("unknown record kind %d", p[0])
	}
	p = p[1:]
	dim, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, errors.New("bad dimensionality varint")
	}
	p = p[n:]
	if dim > maxRecordLen/8 {
		return Record{}, fmt.Errorf("implausible dimensionality %d", dim)
	}
	want := 8 * (int(dim) + 2)
	if len(p) != want {
		return Record{}, fmt.Errorf("payload body is %d bytes, want %d for dim %d", len(p), want, dim)
	}
	r := Record{Center: make([]float64, dim)}
	for i := range r.Center {
		r.Center[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	r.Theta = math.Float64frombits(binary.LittleEndian.Uint64(p[8*dim:]))
	r.Answer = math.Float64frombits(binary.LittleEndian.Uint64(p[8*dim+8:]))
	return r, nil
}

// Scanner reads framed records sequentially from a byte stream, tracking
// the offset of every record boundary so a torn tail can be located and
// truncated precisely.
type Scanner struct {
	r      io.Reader
	off    int64 // offset of the next unread byte
	valid  int64 // offset just past the last cleanly decoded record
	head   [frameHeaderLen]byte
	buf    []byte
	err    error
	record Record
}

// NewScanner returns a scanner over r, which should read from the start of
// a log segment.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: r}
}

// Next advances to the next record, returning false at the end of the
// stream — clean or torn; Err distinguishes. After Next returns true,
// Record returns the decoded record.
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	start := s.off
	n, err := io.ReadFull(s.r, s.head[:])
	s.off += int64(n)
	if err == io.EOF {
		return false // clean end exactly at a record boundary
	}
	if err != nil {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeaderLen)}
		return false
	}
	length := binary.LittleEndian.Uint32(s.head[:4])
	sum := binary.LittleEndian.Uint32(s.head[4:])
	if length > maxRecordLen {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("implausible payload length %d", length)}
		return false
	}
	if cap(s.buf) < int(length) {
		s.buf = make([]byte, length)
	}
	payload := s.buf[:length]
	n, err = io.ReadFull(s.r, payload)
	s.off += int64(n)
	if err != nil {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("torn payload (%d of %d bytes)", n, length)}
		return false
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
		return false
	}
	rec, err := decodePayload(payload)
	if err != nil {
		s.err = &CorruptError{Offset: start, Reason: err.Error()}
		return false
	}
	s.record = rec
	s.valid = s.off
	return true
}

// Record returns the record decoded by the last successful Next. The centre
// slice is owned by the caller (freshly allocated per record).
func (s *Scanner) Record() Record { return s.record }

// Err returns nil after a clean end-of-stream, or the *CorruptError that
// stopped the scan.
func (s *Scanner) Err() error { return s.err }

// ValidSize returns the offset just past the last cleanly decoded record —
// the size to truncate a torn segment to.
func (s *Scanner) ValidSize() int64 { return s.valid }
