// Package wal implements the durability substrate of the streaming trainer:
// an append-only write-ahead log of training pairs plus atomically written,
// generation-numbered model snapshots, managed together so that a process
// killed at any instant recovers — newest valid snapshot, then replay of the
// log tail — to exactly the state it had durably reached.
//
// The package is deliberately model-agnostic: a record is a raw training
// pair ([]float64 centre, radius, answer), a snapshot is whatever bytes the
// caller's write callback produces, and recovery hands the caller a plan
// (candidate snapshots newest-first, log segments oldest-first) instead of
// interpreting either. internal/core layers Recover/Durable on top.
//
// # On-disk format
//
// A log segment is a sequence of records, each framed as
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC-32C (Castagnoli) of the payload
//	payload
//
// with the payload carrying a kind byte followed by the kind's body: a
// training pair (dimensionality as a uvarint, then the centre coordinates,
// radius and answer as raw IEEE-754 bits) or an admin record such as a
// runtime capacity change. The frame makes the
// expected crash artifact — a torn write at the tail — detectable: a read
// that runs out of bytes mid-record, or whose checksum does not match, stops
// the scan at the last intact record boundary instead of propagating garbage
// into the model.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Record is one logged event. Most records are training pairs (the query
// centre x, the query radius θ and the observed answer y); KindCapacity
// records log runtime re-capacity commands so that replay — recovery or a
// replication follower — re-applies them at exactly the same point in the
// training order. Records are value-complete: replaying them in order
// through the trainer reproduces the training run.
type Record struct {
	// Kind tags the payload. The zero value encodes as KindPair so existing
	// pair-constructing call sites stay valid.
	Kind Kind

	// Center is the query centre x ∈ R^d (KindPair).
	Center []float64
	// Theta is the query radius θ (KindPair).
	Theta float64
	// Answer is the observed query answer y (KindPair).
	Answer float64

	// MaxPrototypes is the new capacity bound (KindCapacity); 0 disables
	// the bound.
	MaxPrototypes int
	// Eviction names the eviction policy (KindCapacity); empty keeps the
	// model's current policy.
	Eviction string
	// EvictionHalfLife is the win-decay half-life in steps (KindCapacity);
	// 0 lets the applier derive it from the capacity.
	EvictionHalfLife int
	// Merge is the merge-on-evict setting (KindCapacity).
	Merge bool
}

// Kind discriminates record payloads. Unknown kinds are rejected as
// corruption — the safe failure for a durability log.
type Kind byte

const (
	// KindPair is a training pair; it is the zero Record's effective kind.
	KindPair Kind = 1
	// KindCapacity is a runtime SetCapacity command.
	KindCapacity Kind = 2
)

// effective maps the zero value to KindPair so Record{Center: ...} literals
// written before kinds existed still encode as pairs.
func (k Kind) effective() Kind {
	if k == 0 {
		return KindPair
	}
	return k
}

// maxRecordLen bounds a single record payload. Training pairs are tiny (a
// few hundred bytes even at high dimensionality); a length prefix beyond
// this is certainly corruption and must not drive a giant allocation.
const maxRecordLen = 1 << 20

// frameHeaderLen is the fixed framing overhead per record: the payload
// length and its CRC-32C.
const frameHeaderLen = 8

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord tags every framing/decoding failure of the record
// scanner; CorruptError carries the offset and reason.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// CorruptError reports where and why a log scan stopped: the byte offset of
// the record that failed to decode (which is also the size of the valid
// prefix — the offset to truncate a torn tail at) and what failed.
type CorruptError struct {
	// Offset is the file offset of the first byte of the bad record; all
	// records before it decoded cleanly.
	Offset int64
	// Reason describes what failed (short read, checksum mismatch, bad
	// length, bad payload).
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorruptRecord) work.
func (e *CorruptError) Unwrap() error { return ErrCorruptRecord }

// appendRecord appends the framed encoding of r to dst and returns the
// extended slice.
func appendRecord(dst []byte, r Record) []byte {
	payload := len(dst) + frameHeaderLen
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	switch r.Kind.effective() {
	case KindCapacity:
		dst = append(dst, byte(KindCapacity))
		dst = binary.AppendUvarint(dst, uint64(r.MaxPrototypes))
		dst = binary.AppendUvarint(dst, uint64(r.EvictionHalfLife))
		if r.Merge {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = append(dst, r.Eviction...)
	default:
		dst = append(dst, byte(KindPair))
		dst = binary.AppendUvarint(dst, uint64(len(r.Center)))
		for _, v := range r.Center {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Theta))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Answer))
	}
	binary.LittleEndian.PutUint32(dst[payload-frameHeaderLen:], uint32(len(dst)-payload))
	binary.LittleEndian.PutUint32(dst[payload-4:], crc32.Checksum(dst[payload:], castagnoli))
	return dst
}

// EncodedLen returns the on-disk size of the record: frame header plus
// payload.
func (r Record) EncodedLen() int {
	if r.Kind.effective() == KindCapacity {
		return frameHeaderLen + 1 + uvarintLen(uint64(r.MaxPrototypes)) +
			uvarintLen(uint64(r.EvictionHalfLife)) + 1 + len(r.Eviction)
	}
	return frameHeaderLen + 1 + uvarintLen(uint64(len(r.Center))) + 8*(len(r.Center)+2)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodePayload parses one record payload (the bytes after the frame
// header). It is strict: unknown kinds, short bodies and trailing garbage
// are all errors — a checksummed payload that still fails to parse means a
// writer bug or deliberate tampering, and either way must not be replayed.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, errors.New("empty payload")
	}
	switch Kind(p[0]) {
	case KindPair:
	case KindCapacity:
		return decodeCapacity(p[1:])
	default:
		return Record{}, fmt.Errorf("unknown record kind %d", p[0])
	}
	p = p[1:]
	dim, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, errors.New("bad dimensionality varint")
	}
	p = p[n:]
	if dim > maxRecordLen/8 {
		return Record{}, fmt.Errorf("implausible dimensionality %d", dim)
	}
	want := 8 * (int(dim) + 2)
	if len(p) != want {
		return Record{}, fmt.Errorf("payload body is %d bytes, want %d for dim %d", len(p), want, dim)
	}
	r := Record{Kind: KindPair, Center: make([]float64, dim)}
	for i := range r.Center {
		r.Center[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	r.Theta = math.Float64frombits(binary.LittleEndian.Uint64(p[8*dim:]))
	r.Answer = math.Float64frombits(binary.LittleEndian.Uint64(p[8*dim+8:]))
	return r, nil
}

// decodeCapacity parses a KindCapacity payload body (the bytes after the
// kind byte). The trailing bytes, if any, are the policy name.
func decodeCapacity(p []byte) (Record, error) {
	r := Record{Kind: KindCapacity}
	max, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, errors.New("bad capacity varint")
	}
	p = p[n:]
	half, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, errors.New("bad half-life varint")
	}
	p = p[n:]
	if len(p) == 0 {
		return Record{}, errors.New("capacity record missing merge byte")
	}
	if p[0] > 1 {
		return Record{}, fmt.Errorf("bad merge byte %d", p[0])
	}
	// Capacities live in memory as ints; a value that does not round-trip is
	// corruption, not a configuration.
	if max > uint64(maxRecordLen) || half > uint64(maxRecordLen)*8 {
		return Record{}, fmt.Errorf("implausible capacity %d / half-life %d", max, half)
	}
	r.MaxPrototypes = int(max)
	r.EvictionHalfLife = int(half)
	r.Merge = p[0] == 1
	r.Eviction = string(p[1:])
	return r, nil
}

// Scanner reads framed records sequentially from a byte stream, tracking
// the offset of every record boundary so a torn tail can be located and
// truncated precisely.
type Scanner struct {
	r      io.Reader
	off    int64 // offset of the next unread byte
	valid  int64 // offset just past the last cleanly decoded record
	head   [frameHeaderLen]byte
	buf    []byte
	err    error
	record Record
}

// NewScanner returns a scanner over r, which should read from the start of
// a log segment.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: r}
}

// Next advances to the next record, returning false at the end of the
// stream — clean or torn; Err distinguishes. After Next returns true,
// Record returns the decoded record.
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	start := s.off
	n, err := io.ReadFull(s.r, s.head[:])
	s.off += int64(n)
	if err == io.EOF {
		return false // clean end exactly at a record boundary
	}
	if err != nil {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeaderLen)}
		return false
	}
	length := binary.LittleEndian.Uint32(s.head[:4])
	sum := binary.LittleEndian.Uint32(s.head[4:])
	if length > maxRecordLen {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("implausible payload length %d", length)}
		return false
	}
	if cap(s.buf) < int(length) {
		s.buf = make([]byte, length)
	}
	payload := s.buf[:length]
	n, err = io.ReadFull(s.r, payload)
	s.off += int64(n)
	if err != nil {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("torn payload (%d of %d bytes)", n, length)}
		return false
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		s.err = &CorruptError{Offset: start, Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
		return false
	}
	rec, err := decodePayload(payload)
	if err != nil {
		s.err = &CorruptError{Offset: start, Reason: err.Error()}
		return false
	}
	s.record = rec
	s.valid = s.off
	return true
}

// Record returns the record decoded by the last successful Next. The centre
// slice is owned by the caller (freshly allocated per record).
func (s *Scanner) Record() Record { return s.record }

// Err returns nil after a clean end-of-stream, or the *CorruptError that
// stopped the scan.
func (s *Scanner) Err() error { return s.err }

// ValidSize returns the offset just past the last cleanly decoded record —
// the size to truncate a torn segment to.
func (s *Scanner) ValidSize() int64 { return s.valid }
