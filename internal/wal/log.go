package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Directory layout. One data directory holds generation-numbered files:
//
//	snap-000003.json   model snapshot generation 3 (covers segments < 3)
//	wal-000003.log     records appended after snapshot 3 was taken
//
// Generation g of the snapshot captures the model state after every record
// in segments 0..g-1; segment g holds the records observed since. Rotation
// (writing snapshot g+1) keeps generation g around as a fallback — if
// snapshot g+1 turns out to be unreadable at boot, recovery loads snapshot
// g and replays segments g and g+1, which reproduces the same state because
// replay is deterministic — and deletes generations ≤ g−1. A directory with
// no snapshot at all recovers from scratch iff segment 0 is still present.

const (
	snapPattern = "snap-%06d.json"
	segPattern  = "wal-%06d.log"
	tmpSuffix   = ".tmp"
)

// SnapshotPath returns the path of the generation-gen snapshot file.
func SnapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf(snapPattern, gen))
}

// SegmentPath returns the path of the generation-gen log segment.
func SegmentPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, gen))
}

// Manifest lists what a data directory holds, as generation numbers.
type Manifest struct {
	// Snapshots holds the snapshot generations present, ascending.
	Snapshots []uint64
	// Segments holds the log-segment generations present, ascending.
	Segments []uint64
}

// List scans a data directory (creating it if absent) and returns its
// manifest. Temporary files from snapshot writes are skipped, never touched
// — List must be safe concurrently with a rotation in flight (the
// replication shipper's TailRead polls it against a live directory), so a
// temp file it sees may be a rotation's about-to-be-renamed snapshot, not
// crash litter. Boot paths that own the directory exclusively call
// RemoveTemp for the cleanup.
func List(dir string) (Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("wal: create data dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Manifest{}, fmt.Errorf("wal: read data dir: %w", err)
	}
	var m Manifest
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == tmpSuffix {
			continue
		}
		var gen uint64
		if n, err := fmt.Sscanf(name, snapPattern, &gen); err == nil && n == 1 && name == fmt.Sprintf(snapPattern, gen) {
			m.Snapshots = append(m.Snapshots, gen)
		} else if n, err := fmt.Sscanf(name, segPattern, &gen); err == nil && n == 1 && name == fmt.Sprintf(segPattern, gen) {
			m.Segments = append(m.Segments, gen)
		}
	}
	sort.Slice(m.Snapshots, func(i, j int) bool { return m.Snapshots[i] < m.Snapshots[j] })
	sort.Slice(m.Segments, func(i, j int) bool { return m.Segments[i] < m.Segments[j] })
	return m, nil
}

// RemoveTemp deletes leftover temporary files from snapshot writes a crash
// interrupted — they were never published, so they are garbage. Only a
// caller that owns the directory exclusively (a boot path, before any
// writer or replication shipper runs) may call it: under a live Log, a
// temp file may belong to a rotation in flight.
func RemoveTemp(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: read data dir: %w", err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == tmpSuffix {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("wal: remove temp file: %w", err)
			}
		}
	}
	return nil
}

// WriteFileAtomic writes a file so that a crash at any point leaves either
// the previous file (or no file) or the complete new one, never a torn
// prefix: the content goes to a temporary sibling, is fsynced, renamed over
// the target, and the directory entry is fsynced. The write callback
// produces the content.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("wal: create temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("wal: rename into place: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a power failure. Some filesystems refuse to fsync directories;
// that is reported, not swallowed, because rotation's deletion of old
// generations depends on the rename being durable first.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}

// Replay streams every record of the segment at path through fn in order.
// It returns the number of records delivered and, when the segment ends in
// a torn or corrupt record instead of a clean boundary, the *CorruptError
// locating it (records before the corruption are still delivered). An error
// from fn aborts the replay and is returned verbatim.
func Replay(path string, fn func(Record) error) (int, *CorruptError, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	sc := NewScanner(f)
	n := 0
	for sc.Next() {
		if err := fn(sc.Record()); err != nil {
			return n, nil, err
		}
		n++
	}
	var corrupt *CorruptError
	if err := sc.Err(); err != nil {
		errors.As(err, &corrupt)
	}
	return n, corrupt, nil
}

// TruncateTorn cuts the segment at path down to size bytes — the ValidSize
// of a scan that hit a torn tail — and fsyncs it, so the next scan ends at
// a clean record boundary.
func TruncateTorn(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: reopen after truncate: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync after truncate: %w", err)
	}
	return nil
}

// Log is the append side of a data directory: the open tail segment plus
// the rotation machinery. It is safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	gen  uint64 // generation of the open tail segment
	w    *writer
}

// Continue opens the data directory's newest segment for appending,
// creating segment 0 in a fresh directory (or the segment matching the
// newest snapshot when rotation was interrupted between the snapshot
// rename and the segment creation). The caller must have finished recovery
// first — any torn tail must already be truncated, because appending after
// a torn record would bury it mid-segment where recovery refuses to
// truncate.
func Continue(dir string, opts Options) (*Log, error) {
	m, err := List(dir)
	if err != nil {
		return nil, err
	}
	// Boot owns the directory exclusively, so interrupted-write litter is
	// safe to clear here — and must not be cleared anywhere less exclusive.
	if err := RemoveTemp(dir); err != nil {
		return nil, err
	}
	var gen uint64
	if n := len(m.Segments); n > 0 {
		gen = m.Segments[n-1]
	}
	if n := len(m.Snapshots); n > 0 && m.Snapshots[n-1] > gen {
		// Crash between the snapshot rename and the new segment creation:
		// the snapshot supersedes every existing segment, so the tail
		// segment it expects is simply empty. Create it.
		gen = m.Snapshots[n-1]
	}
	f, err := os.OpenFile(SegmentPath(dir, gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	return &Log{dir: dir, opts: opts.withDefaults(), gen: gen, w: newWriter(f, opts)}, nil
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Gen returns the generation of the open tail segment (equal to the newest
// snapshot's generation once one exists).
func (l *Log) Gen() uint64 { return l.gen }

// Append logs one record under the configured sync policy. The record is
// durable once the policy has fsynced it; under SyncGroup that is within
// FlushInterval/FlushBatch, and a crash before then loses it (recovery
// truncates the torn tail).
func (l *Log) Append(r Record) error { return l.w.append(r) }

// Sync forces every appended record to stable storage regardless of the
// sync policy.
func (l *Log) Sync() error { return l.w.sync() }

// Rotate publishes a snapshot of the current state and retires the log it
// supersedes: the tail segment is fsynced, writeSnapshot's content becomes
// snapshot generation gen+1 via an atomic temp-fsync-rename, a fresh empty
// segment gen+1 takes over appends, and generations ≤ gen−1 — now two
// snapshots behind — are deleted. The caller must guarantee writeSnapshot
// captures exactly the state after every record appended so far (i.e. no
// concurrent appends), which is what makes "newest snapshot + tail replay"
// equal the uncrashed model.
func (l *Log) Rotate(writeSnapshot func(io.Writer) error) error {
	// The superseded segment must be durable before the snapshot that
	// replaces it exists: if the snapshot rename landed but the segment's
	// tail did not, a fallback recovery from the previous generation would
	// replay a hole.
	if err := l.w.sync(); err != nil {
		return err
	}
	next := l.gen + 1
	if err := WriteFileAtomic(SnapshotPath(l.dir, next), writeSnapshot); err != nil {
		return err
	}
	f, err := os.OpenFile(SegmentPath(l.dir, next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open next segment: %w", err)
	}
	if err := l.w.close(); err != nil {
		f.Close()
		return err
	}
	l.w = newWriter(f, l.opts)
	l.gen = next
	// Only after the new generation is fully in place are the old ones
	// expendable; a crash anywhere above leaves extra files, never missing
	// ones, and List/recovery tolerate extras.
	if next >= 2 {
		cutoff := next - 2
		m, err := List(l.dir)
		if err != nil {
			return nil // best-effort cleanup; the files are only garbage
		}
		for _, g := range m.Snapshots {
			if g <= cutoff {
				_ = os.Remove(SnapshotPath(l.dir, g))
			}
		}
		for _, g := range m.Segments {
			if g <= cutoff {
				_ = os.Remove(SegmentPath(l.dir, g))
			}
		}
	}
	return nil
}

// Close syncs and closes the tail segment. It does not snapshot; callers
// that want a clean shutdown (so the next boot replays nothing) call
// Rotate first.
func (l *Log) Close() error { return l.w.close() }
