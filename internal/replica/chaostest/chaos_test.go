// Package chaostest is the replication fault-injection harness: a child
// process plays the primary — durable store, HTTP serving, live paced
// training — and the parent keeps one persistent follower replicating
// through a reverse proxy while it SIGKILLs the primary mid-stream, tears
// the unsynced tail of the primary's newest WAL segment between
// incarnations, and lets connections break mid-chunk. Every primary
// restart flips the boot ID, forcing the follower to re-bootstrap; every
// round the stream continues from whatever prefix survived. The exit
// criterion is the strongest one available: the promoted follower's
// canonical state hash equals a never-crashed reference trained on exactly
// the same prefix of the deterministic stream.
package chaostest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/replica"
	"llmq/internal/resilience"
	"llmq/internal/serve"
	"llmq/internal/synth"
	"llmq/internal/wal"
)

// trainConfig cannot converge, so Steps() counts durable pairs exactly; the
// tight merging capacity keeps slot churn high, which is where replication
// could diverge if replay order or the admin records were mishandled.
func trainConfig() core.Config {
	return core.Config{
		Dim:                     2,
		Vigilance:               0.5,
		Gamma:                   1e-12,
		MinGammaSteps:           1 << 30,
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
		MaxPrototypes:           16,
		Eviction:                core.WinDecay{HalfLife: 64},
		MergeOnEvict:            true,
	}
}

func genPairs(seed int64, n int) []core.TrainingPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]core.TrainingPair, n)
	for i := range pairs {
		c := []float64{rng.Float64(), rng.Float64()}
		q, err := core.NewQuery(c, 0.3*rng.Float64())
		if err != nil {
			panic(err)
		}
		pairs[i] = core.TrainingPair{Query: q, Answer: c[0] - 2*c[1] + 0.1*rng.NormFloat64()}
	}
	return pairs
}

func newExecutor(t *testing.T) *exec.Executor {
	t.Helper()
	pts, err := synth.Generate(synth.R1Config(300, 2, 31))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("r1", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := engine.NewCatalog().LoadDataset("r1", ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func stateHash(t *testing.T, m *core.Model) string {
	t.Helper()
	h, err := m.StateHash()
	if err != nil {
		t.Fatalf("state hash: %v", err)
	}
	return h
}

// TestReplChaosChild is the primary the harness SIGKILLs: it recovers the
// shared data directory, serves the replication endpoints on an ephemeral
// port (published through the addr file), trains the deterministic stream
// from the recovered step count at a pace that keeps kills landing
// mid-stream, drops the done marker once the stream is complete — and then
// keeps serving, so the follower can finish catching up from a live
// primary.
func TestReplChaosChild(t *testing.T) {
	dir := os.Getenv("LLMQ_REPLCHAOS_DIR")
	if dir == "" {
		t.Skip("replication chaos child entry point; driven by TestReplicationChaos")
	}
	n, _ := strconv.Atoi(os.Getenv("LLMQ_REPLCHAOS_N"))
	seed, _ := strconv.ParseInt(os.Getenv("LLMQ_REPLCHAOS_SEED"), 10, 64)
	snapEvery, _ := strconv.Atoi(os.Getenv("LLMQ_REPLCHAOS_SNAP_EVERY"))
	paceUS, _ := strconv.Atoi(os.Getenv("LLMQ_REPLCHAOS_PACE_US"))
	addrFile := os.Getenv("LLMQ_REPLCHAOS_ADDRFILE")
	done := os.Getenv("LLMQ_REPLCHAOS_DONE")

	d, err := core.Recover(dir, trainConfig(), core.DurableOptions{
		// SyncNone + the parent's tail-chopping stands in for real power
		// loss; SIGKILL alone cannot lose page-cache bytes.
		WAL:           wal.Options{Mode: wal.SyncNone},
		SnapshotEvery: snapEvery,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("child recover: %v", err)
	}
	s, err := serve.NewDurable(newExecutor(t), d)
	if err != nil {
		t.Fatalf("child serve: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	go func() { _ = http.Serve(ln, s) }()
	// Publish the address atomically so the parent never reads a torn file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr file: %v", err)
	}

	pairs := genPairs(seed, n)
	start := d.Model().Steps()
	for _, p := range pairs[start:] {
		if _, err := d.Observe(p.Query, p.Answer); err != nil {
			t.Fatalf("child observe: %v", err)
		}
		time.Sleep(time.Duration(paceUS) * time.Microsecond)
	}
	if err := os.WriteFile(done, []byte("ok"), 0o644); err != nil {
		t.Fatalf("child done marker: %v", err)
	}
	// Keep serving so the follower can drain the tail; the parent kills us.
	time.Sleep(time.Hour)
}

// chopNewestSegment simulates power loss on the primary: up to chop bytes of
// the newest WAL segment vanish (a plain SIGKILL cannot lose them — the page
// cache survives the process). The follower may already hold the chopped
// bytes; the restarted primary's fresh boot ID is what keeps that from
// silently forking the two.
func chopNewestSegment(t *testing.T, dir string, chop int64) {
	t.Helper()
	man, err := wal.List(dir)
	if err != nil || len(man.Segments) == 0 {
		return
	}
	path := wal.SegmentPath(dir, man.Segments[len(man.Segments)-1])
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		return
	}
	size := fi.Size() - chop
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatalf("chop segment: %v", err)
	}
}

// proxyTarget is the one mutable cell of the reverse proxy the follower
// replicates through: each child incarnation swaps its address in, and
// killing a child breaks every in-flight chunk mid-body.
type proxyTarget struct {
	mu   sync.Mutex
	host string
}

func (p *proxyTarget) set(host string) { p.mu.Lock(); p.host = host; p.mu.Unlock() }
func (p *proxyTarget) get() string     { p.mu.Lock(); defer p.mu.Unlock(); return p.host }

// TestReplicationChaos runs the harness. It stays on in -short mode with a
// trimmed stream — replication faults are exactly what CI exists to catch —
// and scales up locally.
func TestReplicationChaos(t *testing.T) {
	n := 4000
	maxRounds := 60
	if testing.Short() {
		n = 1200
		maxRounds = 30
	}
	const (
		seed      = 42
		snapEvery = 97
		paceUS    = 150
	)
	base := t.TempDir()
	primaryDir := filepath.Join(base, "primary")
	followDir := filepath.Join(base, "follower")
	addrFile := filepath.Join(base, "addr")
	doneMarker := filepath.Join(base, "done")
	pairs := genPairs(seed, n)

	// The follower speaks to a stable URL; the proxy behind it follows the
	// child of the hour. A dead backend surfaces as transport errors and
	// 502s — both retried by the catch-up loop.
	var target proxyTarget
	proxy := &httputil.ReverseProxy{
		Director: func(req *http.Request) {
			req.URL = &url.URL{Scheme: "http", Host: target.get(), Path: req.URL.Path, RawQuery: req.URL.RawQuery}
		},
		ErrorLog: nil,
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pln.Close()
	go func() { _ = http.Serve(pln, proxy) }()

	rep, err := replica.Open(replica.Options{
		Dir:      followDir,
		Primary:  "http://" + pln.Addr().String(),
		PollWait: 200 * time.Millisecond,
		Backoff:  resilience.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Tries: 2},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	repDone := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { defer close(repDone); _ = rep.Run(ctx) }()
	defer func() { cancel(); <-repDone }()

	rng := rand.New(rand.NewSource(11))
	killed := 0
	var child *osexec.Cmd
	var childWait chan error
	startChild := func() {
		t.Helper()
		_ = os.Remove(addrFile)
		var out bytes.Buffer
		child = osexec.Command(os.Args[0], "-test.run", "^TestReplChaosChild$")
		child.Stdout = &out
		child.Stderr = &out
		child.Env = append(os.Environ(),
			"LLMQ_REPLCHAOS_DIR="+primaryDir,
			"LLMQ_REPLCHAOS_ADDRFILE="+addrFile,
			"LLMQ_REPLCHAOS_DONE="+doneMarker,
			fmt.Sprintf("LLMQ_REPLCHAOS_N=%d", n),
			fmt.Sprintf("LLMQ_REPLCHAOS_SEED=%d", seed),
			fmt.Sprintf("LLMQ_REPLCHAOS_SNAP_EVERY=%d", snapEvery),
			fmt.Sprintf("LLMQ_REPLCHAOS_PACE_US=%d", paceUS),
		)
		if err := child.Start(); err != nil {
			t.Fatalf("start child: %v", err)
		}
		childWait = make(chan error, 1)
		go func(c *osexec.Cmd, ch chan error) { ch <- c.Wait() }(child, childWait)
		// Wait for the child to publish its listener, then point the proxy
		// at it. A child that dies this early fails the round loudly.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				target.set(string(b))
				return
			}
			select {
			case werr := <-childWait:
				t.Fatalf("child died before listening: %v\n%s", werr, out.String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("child never published its address\n%s", out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	killChild := func() {
		_ = child.Process.Kill()
		<-childWait
	}

	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		if _, err := os.Stat(doneMarker); err == nil {
			break
		}
		startChild()
		// Let the primary train and the follower stream for a while, then
		// SIGKILL the primary mid-stream — mid-chunk for whatever long poll
		// is in flight through the proxy.
		delay := 100*time.Millisecond + time.Duration(rng.Int63n(int64(500*time.Millisecond)))
		select {
		case werr := <-childWait:
			if werr != nil {
				t.Fatalf("child failed on its own: %v", werr)
			}
		case <-time.After(delay):
			if _, err := os.Stat(doneMarker); err == nil {
				// The stream completed; keep this incarnation as the live
				// primary for the final catch-up.
				break
			}
			killChild()
			killed++
			if rng.Intn(2) == 0 {
				chopNewestSegment(t, primaryDir, 1+rng.Int63n(120))
			}
			continue
		}
		break
	}
	if _, err := os.Stat(doneMarker); err != nil {
		t.Fatalf("child never completed the %d-pair stream in %d rounds", n, rounds)
	}
	if child.ProcessState != nil {
		// The last child exited (clean completion raced the timer); restart
		// one so the follower has a live primary to finish catching up from.
		startChild()
	}
	t.Logf("stream complete after %d rounds, %d kills; follower at %d steps", rounds, killed, rep.Status().Steps)

	// The follower must converge on the full stream from the live primary.
	deadline := time.Now().Add(60 * time.Second)
	for rep.Status().Steps < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := rep.Status().Steps; got != n {
		t.Fatalf("follower converged to %d steps, want %d (status %+v)", got, n, rep.Status())
	}

	// Failover: kill the primary for good and promote the follower.
	killChild()
	d, err := rep.Promote()
	if err != nil {
		t.Fatalf("promotion after primary loss: %v", err)
	}
	got := stateHash(t, d.Model())

	// The chaos proof: bit-identity with a reference that never crashed,
	// never replicated, never recovered.
	ref, err := core.NewModel(trainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if want := stateHash(t, ref); got != want {
		t.Fatalf("promoted follower hash %s, never-crashed reference %s", got, want)
	}
	// And the promoted mirror must stand on its own disk: close it and
	// recover the directory cold.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := core.Recover(followDir, trainConfig(), core.DurableOptions{Logf: t.Logf})
	if err != nil {
		t.Fatalf("recover promoted mirror: %v", err)
	}
	defer d2.Close()
	if h := stateHash(t, d2.Model()); h != got {
		t.Fatalf("cold-recovered mirror hash %s, promoted %s", h, got)
	}
	if killed == 0 {
		t.Log("warning: no primary was killed mid-stream this run")
	}
}

// TestDivergedFollowerRefusesFailover is the guard-rail chaos case: the
// follower's state is forked behind the replica's back, the next boundary
// check flags it, the primary then dies — and promotion must refuse with a
// descriptive error instead of crowning a diverged copy.
func TestDivergedFollowerRefusesFailover(t *testing.T) {
	pairs := genPairs(89, 400)
	dir := t.TempDir()
	d, err := core.Recover(dir, trainConfig(), core.DurableOptions{
		WAL:           wal.Options{Mode: wal.SyncNone},
		SnapshotEvery: 100,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s, err := serve.NewDurable(newExecutor(t), d)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = http.Serve(ln, s) }()
	defer ln.Close()

	if _, err := d.TrainBatch(pairs[:50]); err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Open(replica.Options{
		Dir:      t.TempDir(),
		Primary:  "http://" + ln.Addr().String(),
		PollWait: 150 * time.Millisecond,
		// Slow retries hold the diverged state open across the primary's
		// death below instead of racing into a re-bootstrap.
		Backoff: resilience.Backoff{Base: 5 * time.Second, Max: 5 * time.Second, Tries: 1},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() { defer close(repDone); _ = rep.Run(ctx) }()
	defer func() { cancel(); <-repDone }()

	deadline := time.Now().Add(20 * time.Second)
	for rep.Status().Steps < 50 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Fork the follower, then push the primary across a rotation boundary
	// so the shipped bump triggers the hash comparison.
	if _, err := rep.Model().TrainBatch(pairs[399:]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrainBatch(pairs[50:250]); err != nil {
		t.Fatal(err)
	}
	for rep.Status().Diverged == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rep.Status().Diverged == nil {
		t.Fatal("forked follower was never flagged as diverged")
	}
	ln.Close() // the primary dies; failover pressure is on
	if _, err := rep.Promote(); err == nil {
		t.Fatal("diverged follower accepted promotion")
	} else {
		t.Logf("refusal (as required): %v", err)
		for _, want := range []string{"refusing promotion", "diverged"} {
			if !bytes.Contains([]byte(err.Error()), []byte(want)) {
				t.Fatalf("refusal error %q does not mention %q", err, want)
			}
		}
	}
}
