package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/replica"
	"llmq/internal/resilience"
	"llmq/internal/serve"
	"llmq/internal/synth"
	"llmq/internal/wal"
)

// trainConfig cannot converge (Γ below float drift, unreachable minimum
// steps), so Steps() counts durable pairs exactly; the tight capacity keeps
// evictions and merges churning mid-stream, which is what makes the
// bit-identity assertions meaningful.
func trainConfig() core.Config {
	return core.Config{
		Dim:                     2,
		Vigilance:               0.5,
		Gamma:                   1e-12,
		MinGammaSteps:           1 << 30,
		InitInterceptWithAnswer: true,
		RateByPrototype:         true,
		MaxPrototypes:           16,
		Eviction:                core.WinDecay{HalfLife: 64},
		MergeOnEvict:            true,
	}
}

func genPairs(seed int64, n int) []core.TrainingPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]core.TrainingPair, n)
	for i := range pairs {
		c := []float64{rng.Float64(), rng.Float64()}
		q, err := core.NewQuery(c, 0.3*rng.Float64())
		if err != nil {
			panic(err)
		}
		pairs[i] = core.TrainingPair{Query: q, Answer: c[0] - 2*c[1] + 0.1*rng.NormFloat64()}
	}
	return pairs
}

func newExecutor(t testing.TB) *exec.Executor {
	t.Helper()
	pts, err := synth.Generate(synth.R1Config(500, 2, 31))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("r1", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := engine.NewCatalog().LoadDataset("r1", ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// primary is an in-process durable serving instance to replicate from.
type primary struct {
	d  *core.Durable
	ts *httptest.Server
}

func newPrimary(t testing.TB, dir string, snapEvery int) *primary {
	t.Helper()
	d, err := core.Recover(dir, trainConfig(), core.DurableOptions{
		WAL:           wal.Options{Mode: wal.SyncNone},
		SnapshotEvery: snapEvery,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewDurable(newExecutor(t), d)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return &primary{d: d, ts: ts}
}

// fastOpts are replica options tuned for test turnaround: short polls and
// an aggressive retry schedule.
func fastOpts(dir, url string) replica.Options {
	return replica.Options{
		Dir:      dir,
		Primary:  url,
		PollWait: 150 * time.Millisecond,
		Backoff:  resilience.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Tries: 2},
	}
}

func startReplica(t testing.TB, opts replica.Options) (*replica.Replica, context.CancelFunc) {
	t.Helper()
	rep, err := replica.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = rep.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return rep, cancel
}

func waitSteps(t testing.TB, rep *replica.Replica, want int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if st := rep.Status(); st.Steps >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower stuck at %d steps, want %d", rep.Status().Steps, want)
}

func hashOf(t *testing.T, m *core.Model) string {
	t.Helper()
	h, err := m.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFollowerCatchUpAndPromote is the happy-path lifecycle: bootstrap from
// the primary's snapshot, stream the live training tail across several
// rotations, match the primary bit for bit, then promote and carry on
// training durably over the mirrored directory.
func TestFollowerCatchUpAndPromote(t *testing.T) {
	pairs := genPairs(71, 1200)
	p := newPrimary(t, t.TempDir(), 100)
	if _, err := p.d.TrainBatch(pairs[:400]); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	rep, _ := startReplica(t, fastOpts(fdir, p.ts.URL))
	if err := rep.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Keep training while the follower streams — records must flow through
	// the live tail, not just the bootstrap snapshot.
	if _, err := p.d.TrainBatch(pairs[400:800]); err != nil {
		t.Fatal(err)
	}
	waitSteps(t, rep, 800)
	if got, want := hashOf(t, rep.Model()), hashOf(t, p.d.Model()); got != want {
		t.Fatalf("follower hash %s, primary %s", got, want)
	}
	st := rep.Status()
	if st.Role != "follower" || !st.Bootstrapped || st.Bootstraps != 1 || st.Diverged != nil {
		t.Fatalf("status = %+v", st)
	}

	// Promote and continue the stream on the new primary.
	d2, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status().Role != "primary" {
		t.Fatalf("role after promotion = %q", rep.Status().Role)
	}
	if _, err := d2.TrainBatch(pairs[800:]); err != nil {
		t.Fatal(err)
	}
	want := hashOf(t, d2.Model())
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// The mirrored directory must recover the full stream on its own.
	d3, err := core.Recover(fdir, trainConfig(), core.DurableOptions{WAL: wal.Options{Mode: wal.SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.Model().Steps() != len(pairs) {
		t.Fatalf("recovered %d steps from the promoted mirror, want %d", d3.Model().Steps(), len(pairs))
	}
	if got := hashOf(t, d3.Model()); got != want {
		t.Fatalf("recovered mirror hash %s, want %s", got, want)
	}
	// And equal a reference that never replicated at all.
	ref, err := core.NewModel(trainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if got := hashOf(t, ref); got != want {
		t.Fatalf("reference hash %s, want %s", got, want)
	}
}

// TestFollowerRestartResumesLocally: a stopped follower restarts from its
// own mirror (no snapshot re-ship) and catches up on what it missed.
func TestFollowerRestartResumesLocally(t *testing.T) {
	pairs := genPairs(73, 900)
	p := newPrimary(t, t.TempDir(), 100)
	if _, err := p.d.TrainBatch(pairs[:300]); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	rep, cancel := startReplica(t, fastOpts(fdir, p.ts.URL))
	waitSteps(t, rep, 300)
	cancel()
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the follower is down.
	if _, err := p.d.TrainBatch(pairs[300:]); err != nil {
		t.Fatal(err)
	}
	rep2, _ := startReplica(t, fastOpts(fdir, p.ts.URL))
	waitSteps(t, rep2, len(pairs))
	st := rep2.Status()
	if st.Bootstraps != 0 {
		t.Fatalf("restart re-bootstrapped (%d times) instead of resuming its mirror", st.Bootstraps)
	}
	if got, want := hashOf(t, rep2.Model()), hashOf(t, p.d.Model()); got != want {
		t.Fatalf("follower hash %s, primary %s", got, want)
	}
}

// TestFollowerRebootstrapsWhenCursorGone: a follower that was down long
// enough for the primary to GC its generation gets 410 and rebuilds from a
// fresh snapshot instead of failing forever.
func TestFollowerRebootstrapsWhenCursorGone(t *testing.T) {
	pairs := genPairs(79, 1200)
	p := newPrimary(t, t.TempDir(), 50)
	if _, err := p.d.TrainBatch(pairs[:100]); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	rep, cancel := startReplica(t, fastOpts(fdir, p.ts.URL))
	waitSteps(t, rep, 100)
	cancel()
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	// Many small batches force many rotations, so the follower's generation
	// is GCed out from under its cursor (retention is two generations).
	for i := 100; i < len(pairs); i += 50 {
		if _, err := p.d.TrainBatch(pairs[i : i+50]); err != nil {
			t.Fatal(err)
		}
	}
	rep2, _ := startReplica(t, fastOpts(fdir, p.ts.URL))
	waitSteps(t, rep2, len(pairs))
	if st := rep2.Status(); st.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want exactly 1 (410 recovery)", st.Bootstraps)
	}
	if got, want := hashOf(t, rep2.Model()), hashOf(t, p.d.Model()); got != want {
		t.Fatalf("follower hash %s, primary %s", got, want)
	}
}

// TestCapacityChangeReplicates: a runtime SetCapacity on the primary is an
// admin WAL record, so it ships and re-caps the follower at exactly its
// point in the stream.
func TestCapacityChangeReplicates(t *testing.T) {
	pairs := genPairs(83, 600)
	p := newPrimary(t, t.TempDir(), 1<<30)
	fdir := t.TempDir()
	rep, _ := startReplica(t, fastOpts(fdir, p.ts.URL))
	if _, err := p.d.TrainBatch(pairs[:200]); err != nil {
		t.Fatal(err)
	}
	if err := p.d.SetCapacity(8, core.WinDecay{HalfLife: 32}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.d.TrainBatch(pairs[200:]); err != nil {
		t.Fatal(err)
	}
	waitSteps(t, rep, len(pairs))
	if got := rep.Model().Config().MaxPrototypes; got != 8 {
		t.Fatalf("follower capacity %d, want 8", got)
	}
	if got, want := hashOf(t, rep.Model()), hashOf(t, p.d.Model()); got != want {
		t.Fatalf("follower hash %s, primary %s", got, want)
	}
}

// TestDivergedFollowerRefusesPromotion injects the fault replication exists
// to catch: the follower's model is perturbed behind the replica's back, the
// next boundary hash check flags it, and promotion is refused with a
// descriptive error until a re-bootstrap has cleaned it up.
func TestDivergedFollowerRefusesPromotion(t *testing.T) {
	pairs := genPairs(89, 400)
	p := newPrimary(t, t.TempDir(), 100)
	if _, err := p.d.TrainBatch(pairs[:50]); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	opts := fastOpts(fdir, p.ts.URL)
	// A slow retry schedule holds the diverged state open long enough to
	// assert on before the automatic re-bootstrap clears it.
	opts.Backoff = resilience.Backoff{Base: 2 * time.Second, Max: 2 * time.Second, Tries: 1}
	rep, _ := startReplica(t, opts)
	waitSteps(t, rep, 50)

	// Fork the follower: train one pair locally that the primary never saw.
	if _, err := rep.Model().TrainBatch(pairs[399:]); err != nil {
		t.Fatal(err)
	}
	// Drive the primary across a rotation boundary; the shipped bump makes
	// the follower verify its (now forked) state hash.
	if _, err := p.d.TrainBatch(pairs[50:250]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for rep.Status().Diverged == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := rep.Status()
	if st.Diverged == nil {
		t.Fatal("forked follower was never flagged as diverged")
	}
	if _, err := rep.Promote(); err == nil {
		t.Fatal("diverged follower accepted promotion")
	} else if !strings.Contains(err.Error(), "refusing promotion") || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("promotion refusal is not descriptive: %v", err)
	}
	// The re-bootstrap heals it: divergence clears, the stream catches up,
	// and promotion becomes possible again.
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := rep.Status(); st.Diverged == nil && st.Bootstraps >= 2 && st.Steps >= 250 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := rep.Status(); st.Diverged != nil || st.Steps < 250 {
		t.Fatalf("follower did not heal: %+v", st)
	}
	if got, want := hashOf(t, rep.Model()), hashOf(t, p.d.Model()); got != want {
		t.Fatalf("healed follower hash %s, primary %s", got, want)
	}
	if _, err := rep.Promote(); err != nil {
		t.Fatalf("healed follower refused promotion: %v", err)
	}
}

// TestAutoPromoteOnPrimaryLoss: with PromoteAfter set, losing the primary
// past the grace window turns the follower into a primary on its own.
func TestAutoPromoteOnPrimaryLoss(t *testing.T) {
	pairs := genPairs(97, 300)
	p := newPrimary(t, t.TempDir(), 100)
	if _, err := p.d.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(t.TempDir(), p.ts.URL)
	opts.PromoteAfter = 300 * time.Millisecond
	promoted := make(chan *core.Durable, 1)
	opts.OnPromote = func(d *core.Durable) { promoted <- d }
	rep, _ := startReplica(t, opts)
	waitSteps(t, rep, len(pairs))
	want := hashOf(t, p.d.Model())
	p.ts.Close() // the primary vanishes

	select {
	case d := <-promoted:
		if got := hashOf(t, d.Model()); got != want {
			t.Fatalf("auto-promoted hash %s, want %s", got, want)
		}
		if rep.Status().Role != "primary" {
			t.Fatalf("role = %q after auto-promotion", rep.Status().Role)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("follower never auto-promoted after losing the primary")
	}
}

// TestServeFollowerEndpoints covers the follower's HTTP surface: /readyz
// roles and lag, /train's 421 redirect-by-error, and POST /promote flipping
// the instance writable in place.
func TestServeFollowerEndpoints(t *testing.T) {
	pairs := genPairs(101, 200)
	p := newPrimary(t, t.TempDir(), 100)
	if _, err := p.d.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	rep, _ := startReplica(t, fastOpts(t.TempDir(), p.ts.URL))
	fs, err := serve.NewFollower(newExecutor(t), rep)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fs)
	t.Cleanup(fts.Close)
	waitSteps(t, rep, len(pairs))

	var ready serve.ReadyResponse
	getJSON(t, fts.URL+"/readyz", http.StatusOK, &ready)
	if ready.Role != "follower" || ready.ReplicationLag == nil {
		t.Fatalf("readyz = %+v", ready)
	}

	// Local training is misdirected: the follower names its primary.
	body := bytes.NewReader([]byte(`{"pairs":[{"center":[0.5,0.5],"theta":0.1,"answer":1}]}`))
	resp, err := http.Post(fts.URL+"/train", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("/train on a follower = %d, want 421", resp.StatusCode)
	}
	if !strings.Contains(string(msg), p.ts.URL) {
		t.Fatalf("421 body does not name the primary: %s", msg)
	}

	// APPROX queries answer from the replicated model meanwhile.
	q := bytes.NewReader([]byte(`{"sql":"SELECT APPROX AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)"}`))
	resp, err = http.Post(fts.URL+"/query", "application/json", q)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("APPROX query on a follower = %d, want 200", resp.StatusCode)
	}

	// Promote over HTTP; the instance becomes a writable primary in place.
	resp, err = http.Post(fts.URL+"/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/promote = %d, want 200", resp.StatusCode)
	}
	getJSON(t, fts.URL+"/readyz", http.StatusOK, &ready)
	if ready.Role != "primary" {
		t.Fatalf("role after /promote = %q", ready.Role)
	}
	resp, err = http.Post(fts.URL+"/train", "application/json",
		bytes.NewReader([]byte(`{"pairs":[{"center":[0.5,0.5],"theta":0.1,"answer":1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/train after promotion = %d, want 200", resp.StatusCode)
	}
	if d := rep.Durable(); d == nil || d.Model().Steps() != len(pairs)+1 {
		t.Fatalf("promoted durable did not take the trained pair")
	}
	if err := rep.Durable().Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeReadyzBootstrapping: a follower that cannot reach its primary
// reports not-ready with the bootstrapping status rather than lying.
func TestServeReadyzBootstrapping(t *testing.T) {
	rep, _ := startReplica(t, fastOpts(t.TempDir(), "http://127.0.0.1:1")) // nothing listens there
	fs, err := serve.NewFollower(newExecutor(t), rep)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fs)
	t.Cleanup(fts.Close)
	var ready serve.ReadyResponse
	getJSON(t, fts.URL+"/readyz", http.StatusServiceUnavailable, &ready)
	if ready.Status != "bootstrapping" || ready.Role != "follower" {
		t.Fatalf("readyz = %+v", ready)
	}
}

// TestReplicateWALProtocol exercises the wire contract directly: data
// responses advance the cursor by the body length, an up-to-date cursor
// gets 204 within the poll budget, and a nonsense cursor gets 410.
func TestReplicateWALProtocol(t *testing.T) {
	pairs := genPairs(103, 50)
	p := newPrimary(t, t.TempDir(), 1<<30)
	if _, err := p.d.TrainBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if err := p.d.Sync(); err != nil {
		t.Fatal(err)
	}
	get := func(q string) *http.Response {
		t.Helper()
		resp, err := http.Get(p.ts.URL + replica.PathWAL + q)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := get("?gen=0&off=0")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("cold cursor: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get(replica.HeaderNextGen) != "0" ||
		resp.Header.Get(replica.HeaderNextOff) != fmt.Sprint(len(body)) {
		t.Fatalf("cursor headers %s/%s do not match a %d-byte body",
			resp.Header.Get(replica.HeaderNextGen), resp.Header.Get(replica.HeaderNextOff), len(body))
	}
	if resp.Header.Get(replica.HeaderBoot) == "" || resp.Header.Get(replica.HeaderSteps) == "" {
		t.Fatal("missing boot/steps stamps")
	}

	resp = get(fmt.Sprintf("?gen=0&off=%d&wait=30", len(body)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up cursor: status %d, want 204", resp.StatusCode)
	}

	resp = get("?gen=0&off=99999999")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("impossible cursor: status %d, want 410", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantStatus, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
