// Package replica implements the follower side of primary/follower
// replication: it bootstraps a model from the primary's newest checkpoint
// snapshot, then byte-mirrors the primary's write-ahead log into a local
// data directory — same generation numbering, same offsets — applying every
// shipped record through the live training path as it lands. Because the
// WAL totally orders training and replay is deterministic, a caught-up
// follower is bit-identical to the primary (verified with canonical state
// hashes at every snapshot boundary), and promotion is nothing more than
// sealing the local log and wrapping the in-memory model into a
// core.Durable over the mirrored directory.
//
// # Cursor invariants
//
// The replication cursor is a (generation, byte offset) pair into the
// primary's log. The primary ships only CRC-valid complete records (the
// wal.TailRead contract), so the cursor always sits on a record boundary
// and the shipped bytes are final — a primary crash can truncate only its
// unshipped torn tail, never bytes a follower already holds. The one
// exception is a primary restart: recovery may truncate an unsynced tail
// that WAS shipped (followers can legitimately run ahead of the primary's
// fsync horizon — that is the safe direction for failover). Every
// replication response therefore carries the primary's boot ID; a change
// forces the follower to re-bootstrap rather than trust a cursor into a
// rewritten log.
//
// # Divergence
//
// Divergence is checked, not assumed: at every rotation boundary the
// follower compares its own canonical state hash (core.Model.StateHash)
// against the hash the primary recorded when it crossed the same boundary.
// A mismatch marks the follower diverged — it keeps serving reads, loudly
// refuses promotion, and re-bootstraps from a fresh snapshot.
package replica

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"llmq/internal/core"
	"llmq/internal/resilience"
	"llmq/internal/wal"
)

// Replication protocol surface, shared by the follower (this package) and
// the primary's HTTP handlers (internal/serve).
const (
	// PathSnapshot streams the newest checkpoint generation (GET).
	PathSnapshot = "/replicate/snapshot"
	// PathWAL long-polls WAL records past a (gen, off) cursor (GET).
	PathWAL = "/replicate/wal"
	// PathHash serves boundary/current canonical state hashes (GET).
	PathHash = "/replicate/hash"
	// PathPromote promotes a follower to writable primary (POST).
	PathPromote = "/promote"

	// HeaderGen carries the snapshot's generation on PathSnapshot.
	HeaderGen = "X-Llmq-Gen"
	// HeaderBoot carries the primary's boot ID on every replication
	// response; a change means the primary restarted.
	HeaderBoot = "X-Llmq-Boot"
	// HeaderSteps carries the primary's current training-step count.
	HeaderSteps = "X-Llmq-Steps"
	// HeaderNextGen and HeaderNextOff carry the cursor after a PathWAL
	// response's chunk.
	HeaderNextGen = "X-Llmq-Next-Gen"
	HeaderNextOff = "X-Llmq-Next-Off"
)

// HashResponse is PathHash's JSON body.
type HashResponse struct {
	// Gen is the boundary generation (0 for the current-state variant).
	Gen uint64 `json:"gen,omitempty"`
	// Steps is the training-step count the hash was taken at.
	Steps int `json:"steps"`
	// Hash is the canonical core.Model.StateHash.
	Hash string `json:"hash"`
}

// Options configures a Replica.
type Options struct {
	// Dir is the local data directory the primary's log is mirrored into.
	Dir string
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8080").
	Primary string
	// Client issues the replication requests; nil uses a client without a
	// global timeout (requests are bound to Run's context; a global timeout
	// shorter than PollWait would kill every long poll).
	Client *http.Client
	// PollWait is the long-poll window requested from the primary; ≤ 0
	// defaults to 10s.
	PollWait time.Duration
	// ChunkBytes caps the WAL bytes fetched per request; ≤ 0 defaults to
	// wal.DefaultTailChunk.
	ChunkBytes int
	// PromoteAfter auto-promotes the follower once this long has passed
	// without any successful primary contact; 0 disables auto-promotion
	// (explicit Promote only).
	PromoteAfter time.Duration
	// Backoff paces catch-up retries after primary failures.
	Backoff resilience.Backoff
	// WAL is the promoted Durable's sync policy (the mirror itself syncs at
	// rotation boundaries; a follower crash re-fetches its unsynced tail).
	WAL wal.Options
	// SnapshotEvery is the promoted Durable's rotation cadence; ≤ 0
	// defaults as core.DurableOptions does.
	SnapshotEvery int
	// Logf receives replication diagnostics; nil uses the standard logger.
	Logf func(format string, args ...any)
	// OnPromote, when non-nil, is invoked with the new Durable after an
	// automatic (grace-window) promotion. Explicit Promote callers get the
	// Durable as the return value instead.
	OnPromote func(*core.Durable)
}

func (o Options) withDefaults() Options {
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = wal.DefaultTailChunk
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Status is a point-in-time view of the replication state, served on
// /readyz and used by orchestrators to route around stale replicas.
type Status struct {
	// Role is "follower", "promoting" or "primary" (after promotion).
	Role string
	// Bootstrapped reports whether a model is available to serve reads.
	Bootstrapped bool
	// Bootstraps counts snapshot bootstraps (> 1 means re-bootstraps:
	// primary restarts, GCed cursors, or divergence).
	Bootstraps int
	// Steps is the follower model's training-step count.
	Steps int
	// PrimarySteps is the primary's step count as of the last contact.
	PrimarySteps int
	// Lag is max(0, PrimarySteps - Steps) — the replication lag in records.
	Lag int
	// LastContact is the time of the last successful primary response.
	LastContact time.Time
	// Diverged is non-nil when the follower's state hash mismatched the
	// primary's at a boundary; it clears when a re-bootstrap completes.
	Diverged error
	// Cursor is the replication cursor into the primary's log.
	Cursor wal.Cursor
}

// errRebootstrap tags failures that invalidate the local mirror: the
// cursor's generation is gone, the primary restarted, or the mirrored
// state failed verification. Run reacts by wiping and re-bootstrapping.
var errRebootstrap = errors.New("replica: local mirror is invalid")

// errDiverged tags a failed boundary hash comparison; it implies
// errRebootstrap handling plus the sticky refuse-promotion flag.
var errDiverged = errors.New("replica: state diverged from primary")

// Replica mirrors one primary. Create with Open, drive with Run (one
// goroutine), inspect with Status/Model, and promote with Promote.
type Replica struct {
	opts Options
	base string // Primary, normalized

	ready     chan struct{} // closed once a model is first available
	readyOnce sync.Once
	stopped   chan struct{} // closed when Run returns

	mu           sync.Mutex
	runStarted   bool
	cancelRun    context.CancelFunc
	model        *core.Model
	applier      *core.ReplayApplier
	cur          wal.Cursor
	seg          *os.File // open local tail segment (generation cur.Gen)
	sinceSnap    int      // records in the local tail segment
	bootID       string   // primary boot ID pinned at bootstrap ("" = unpinned)
	needBoot     bool     // wipe + re-bootstrap before the next fetch
	diverged     error
	promoting    bool
	durable      *core.Durable
	bootstraps   int
	lastContact  time.Time
	primarySteps int
}

// Open validates the options and returns a Replica. No I/O happens until
// Run.
func Open(opts Options) (*Replica, error) {
	if opts.Dir == "" {
		return nil, errors.New("replica: Dir is required")
	}
	if opts.Primary == "" {
		return nil, errors.New("replica: Primary is required")
	}
	opts = opts.withDefaults()
	base := opts.Primary
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Replica{
		opts:    opts,
		base:    base,
		ready:   make(chan struct{}),
		stopped: make(chan struct{}),
	}, nil
}

// Run drives replication until ctx is cancelled or the replica is
// promoted: local-state recovery or snapshot bootstrap, then the streaming
// catch-up loop, re-bootstrapping and retrying with backoff as the primary
// comes and goes. Call it once, from its own goroutine.
func (r *Replica) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.mu.Lock()
	if r.runStarted {
		r.mu.Unlock()
		return errors.New("replica: Run called twice")
	}
	r.runStarted = true
	r.cancelRun = cancel
	r.mu.Unlock()
	defer close(r.stopped)

	failures := 0
	for ctx.Err() == nil && !r.isPromoting() {
		err := r.step(ctx)
		if err == nil {
			failures = 0
			continue
		}
		if ctx.Err() != nil || r.isPromoting() {
			break
		}
		if errors.Is(err, errDiverged) {
			// The loud part of "refuses promotion loudly": divergence is an
			// invariant violation, not an operational hiccup.
			r.opts.Logf("replica: DIVERGED from primary %s: %v — refusing promotion and re-bootstrapping", r.base, err)
		} else {
			r.opts.Logf("replica: %v", err)
		}
		if errors.Is(err, errRebootstrap) {
			r.mu.Lock()
			r.needBoot = true
			r.mu.Unlock()
		}
		failures++
		if r.shouldAutoPromote() {
			d, perr := r.autoPromote()
			if perr != nil {
				r.opts.Logf("replica: auto-promotion failed: %v", perr)
				return perr
			}
			r.opts.Logf("replica: auto-promoted to primary after %v without contact with %s", r.opts.PromoteAfter, r.base)
			if r.opts.OnPromote != nil {
				r.opts.OnPromote(d)
			}
			return nil
		}
		attempt := failures - 1
		if attempt > 6 {
			attempt = 6
		}
		if serr := sleepCtx(ctx, r.opts.Backoff.Delay(attempt)); serr != nil {
			break
		}
	}
	return ctx.Err()
}

// step performs one unit of replication work: recover local state, or
// bootstrap, or fetch-and-apply one WAL chunk.
func (r *Replica) step(ctx context.Context) error {
	r.mu.Lock()
	model, needBoot := r.model, r.needBoot
	r.mu.Unlock()
	if model == nil && !needBoot {
		// First run over this directory: a previous incarnation's mirror
		// resumes without re-shipping the snapshot.
		switch err := r.openLocal(); {
		case err == nil:
			r.markReady()
			return nil
		case errors.Is(err, errNoLocalState):
			r.mu.Lock()
			r.needBoot = true
			r.mu.Unlock()
		default:
			r.opts.Logf("replica: local mirror unusable (%v); re-bootstrapping", err)
			r.mu.Lock()
			r.needBoot = true
			r.mu.Unlock()
		}
		return nil
	}
	if needBoot {
		if err := r.bootstrap(ctx); err != nil {
			return fmt.Errorf("bootstrap from %s: %w", r.base, err)
		}
		r.markReady()
		return nil
	}
	return r.fetchChunk(ctx)
}

func (r *Replica) markReady() {
	r.readyOnce.Do(func() { close(r.ready) })
}

// WaitReady blocks until the replica has a model to serve (bootstrap or
// local recovery finished) or ctx is done.
func (r *Replica) WaitReady(ctx context.Context) error {
	select {
	case <-r.ready:
		return nil
	case <-r.stopped:
		return errors.New("replica: stopped before a model was available")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Model returns the follower's live model, or nil before the first
// bootstrap completes. The pointer changes on re-bootstrap — callers
// serving requests should call this per request, not cache it.
func (r *Replica) Model() *core.Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.model
}

// Primary returns the primary's base URL this replica follows.
func (r *Replica) Primary() string { return r.base }

// Durable returns the promoted Durable, or nil while still a follower.
func (r *Replica) Durable() *core.Durable {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.durable
}

// Status returns the current replication status.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Role:         "follower",
		Bootstrapped: r.model != nil,
		Bootstraps:   r.bootstraps,
		PrimarySteps: r.primarySteps,
		LastContact:  r.lastContact,
		Diverged:     r.diverged,
		Cursor:       r.cur,
	}
	if r.model != nil {
		st.Steps = r.model.Steps()
	}
	if st.Lag = st.PrimarySteps - st.Steps; st.Lag < 0 {
		st.Lag = 0
	}
	switch {
	case r.durable != nil:
		st.Role = "primary"
	case r.promoting:
		st.Role = "promoting"
	}
	return st
}

func (r *Replica) isPromoting() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoting
}

func (r *Replica) shouldAutoPromote() bool {
	if r.opts.PromoteAfter <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.model != nil && r.diverged == nil && !r.lastContact.IsZero() &&
		time.Since(r.lastContact) > r.opts.PromoteAfter
}

// autoPromote is the grace-window promotion, called from inside Run (no
// concurrent applier, so no need to wait for the loop to stop).
func (r *Replica) autoPromote() (*core.Durable, error) {
	r.mu.Lock()
	r.promoting = true
	r.mu.Unlock()
	return r.finalizePromotion()
}

// Promote seals the follower's log and turns its model into a writable
// primary over the mirrored directory, returning the core.Durable to train
// through. A diverged follower refuses, descriptively; so does one that
// has not bootstrapped. Promote stops the replication loop first, so no
// shipped record can interleave with the hand-off.
func (r *Replica) Promote() (*core.Durable, error) {
	r.mu.Lock()
	if r.durable != nil {
		d := r.durable
		r.mu.Unlock()
		return d, nil
	}
	if err := r.promotableLocked(); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.promoting = true
	cancel := r.cancelRun
	started := r.runStarted
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if started {
		<-r.stopped
	}
	return r.finalizePromotion()
}

// promotableLocked is the promotion gate. Caller holds r.mu.
func (r *Replica) promotableLocked() error {
	if r.diverged != nil {
		return fmt.Errorf("replica: refusing promotion: %w (a re-bootstrap must complete first)", r.diverged)
	}
	if r.model == nil {
		return errors.New("replica: refusing promotion: no model yet (bootstrap has not completed)")
	}
	return nil
}

// finalizePromotion seals the mirror and resumes it as a Durable. The
// replication loop must be stopped (or be the caller).
func (r *Replica) finalizePromotion() (*core.Durable, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.durable != nil {
		return r.durable, nil
	}
	if err := r.promotableLocked(); err != nil {
		r.promoting = false
		return nil, err
	}
	if r.seg != nil {
		if err := r.seg.Sync(); err != nil {
			return nil, fmt.Errorf("replica: seal mirror segment: %w", err)
		}
		if err := r.seg.Close(); err != nil {
			return nil, fmt.Errorf("replica: seal mirror segment: %w", err)
		}
		r.seg = nil
	}
	d, err := core.Resume(r.model, r.opts.Dir, r.sinceSnap, core.DurableOptions{
		WAL:           r.opts.WAL,
		SnapshotEvery: r.opts.SnapshotEvery,
		Logf:          r.opts.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("replica: resume mirrored log: %w", err)
	}
	r.durable = d
	return d, nil
}

// Close shuts a non-promoted replica down: the loop is stopped and the
// local segment synced and closed, so a restart resumes from the mirror.
// After promotion, close the Durable instead.
func (r *Replica) Close() error {
	r.mu.Lock()
	cancel := r.cancelRun
	started := r.runStarted
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if started {
		<-r.stopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seg == nil {
		return nil
	}
	err := r.seg.Sync()
	if cerr := r.seg.Close(); err == nil {
		err = cerr
	}
	r.seg = nil
	return err
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
