package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"llmq/internal/core"
	"llmq/internal/resilience"
	"llmq/internal/wal"
)

// errNoLocalState means the local directory holds no usable mirror (fresh
// follower) — bootstrap from a snapshot instead. Not an error condition.
var errNoLocalState = errors.New("replica: no local mirror")

// openLocal resumes replication from a mirror a previous incarnation left
// behind: load the newest local snapshot, replay the contiguous segments
// above it (truncating a torn tail on the newest — the chunk the follower
// crashed in the middle of will be re-fetched), and park the cursor at the
// end of the valid bytes. Any inconsistency is reported; the caller falls
// back to a fresh bootstrap.
func (r *Replica) openLocal() error {
	dir := r.opts.Dir
	man, err := wal.List(dir)
	if err != nil {
		return err
	}
	// This boot path owns the directory exclusively, so litter from a
	// checkpoint write the previous incarnation crashed in is safe to clear.
	if err := wal.RemoveTemp(dir); err != nil {
		return err
	}
	if len(man.Snapshots) == 0 {
		return errNoLocalState
	}
	// Newest snapshot only: unlike primary recovery there is no reason to
	// limp along on a fallback generation when a fresh snapshot is one
	// request away.
	base := man.Snapshots[len(man.Snapshots)-1]
	f, err := os.Open(wal.SnapshotPath(dir, base))
	if err != nil {
		return err
	}
	m, err := core.Load(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("local snapshot %d: %w", base, err)
	}
	applier := core.NewReplayApplier(m)
	cur := wal.Cursor{Gen: base}
	sinceSnap := 0
	var segs []uint64
	for _, g := range man.Segments {
		if g >= base {
			segs = append(segs, g)
		}
	}
	for i, g := range segs {
		if g != base+uint64(i) {
			return fmt.Errorf("segment gap: generation %d missing", base+uint64(i))
		}
		path := wal.SegmentPath(dir, g)
		n, corrupt, err := wal.Replay(path, applier.Apply)
		if err != nil {
			return fmt.Errorf("replay local segment %d: %w", g, err)
		}
		last := i == len(segs)-1
		if corrupt != nil {
			if !last {
				// A sealed mirror segment can only be torn by storage loss;
				// the primary still has the bytes, so re-bootstrap.
				return fmt.Errorf("sealed local segment %d: %s", g, corrupt)
			}
			if err := wal.TruncateTorn(path, corrupt.Offset); err != nil {
				return err
			}
		}
		if last {
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			cur = wal.Cursor{Gen: g, Off: fi.Size()}
			sinceSnap = n
		}
	}
	if err := applier.Flush(); err != nil {
		return fmt.Errorf("replay local mirror: %w", err)
	}
	seg, err := openSegment(dir, cur.Gen)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.model = m
	r.applier = applier
	r.cur = cur
	r.seg = seg
	r.sinceSnap = sinceSnap
	r.bootID = "" // pinned from the next primary response
	r.mu.Unlock()
	r.opts.Logf("replica: resumed local mirror of %s at %v (%d steps)", r.base, cur, m.Steps())
	return nil
}

// bootstrap wipes the local mirror and rebuilds it from the primary's
// newest checkpoint snapshot. The in-memory model (if any) keeps serving
// stale reads until the new one is ready — only the swap at the end is
// visible to readers.
func (r *Replica) bootstrap(ctx context.Context) error {
	r.closeSeg()
	if err := r.wipe(); err != nil {
		return err
	}
	resp, err := resilience.Do(ctx, r.opts.Client, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, r.base+PathSnapshot, nil)
	}, r.opts.Backoff)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: %s", httpError(resp))
	}
	gen, err := strconv.ParseUint(resp.Header.Get(HeaderGen), 10, 64)
	if err != nil {
		return fmt.Errorf("snapshot: bad %s header %q", HeaderGen, resp.Header.Get(HeaderGen))
	}
	boot := resp.Header.Get(HeaderBoot)
	// Mirror first, load second: the local file must hold exactly the bytes
	// the primary served, and a model that loads from it proves the
	// directory will recover after a follower crash.
	path := wal.SnapshotPath(r.opts.Dir, gen)
	if err := wal.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	}); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	m, err := core.Load(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("shipped snapshot %d does not load: %w", gen, err)
	}
	seg, err := openSegment(r.opts.Dir, gen)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.model = m
	r.applier = core.NewReplayApplier(m)
	r.cur = wal.Cursor{Gen: gen}
	r.seg = seg
	r.sinceSnap = 0
	r.bootID = boot
	r.needBoot = false
	r.diverged = nil
	r.bootstraps++
	r.mu.Unlock()
	r.touch(resp)
	r.opts.Logf("replica: bootstrapped from %s at generation %d (%d steps)", r.base, gen, m.Steps())
	// Opportunistic divergence check right at the boundary the snapshot
	// defines; a mismatch here means the snapshot itself is suspect.
	return r.verifyBoundary(ctx, gen)
}

// fetchChunk long-polls the primary for bytes past the cursor and applies
// whatever arrives. A bare generation bump (data-less cursor move) is the
// rotation signal.
func (r *Replica) fetchChunk(ctx context.Context) error {
	r.mu.Lock()
	cur := r.cur
	r.mu.Unlock()
	url := fmt.Sprintf("%s%s?gen=%d&off=%d&wait=%d&max=%d",
		r.base, PathWAL, cur.Gen, cur.Off, r.opts.PollWait.Milliseconds(), r.opts.ChunkBytes)
	resp, err := resilience.Do(ctx, r.opts.Client, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}, r.opts.Backoff)
	if err != nil {
		return fmt.Errorf("fetch %v: %w", cur, err)
	}
	defer resp.Body.Close()
	if boot := resp.Header.Get(HeaderBoot); boot != "" {
		r.mu.Lock()
		pinned := r.bootID
		if pinned == "" {
			r.bootID = boot
			pinned = boot
		}
		r.mu.Unlock()
		if boot != pinned {
			// A restarted primary may have truncated an unsynced tail we
			// already mirrored; cursors into the old log are meaningless.
			return fmt.Errorf("%w: primary restarted (boot id %s, was %s)", errRebootstrap, boot, pinned)
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent: // poll window expired with nothing new
		r.touch(resp)
		return nil
	case http.StatusGone:
		return fmt.Errorf("%w: cursor %v is gone from the primary", errRebootstrap, cur)
	default:
		return fmt.Errorf("fetch %v: %s", cur, httpError(resp))
	}
	r.touch(resp)
	next, err := parseNextCursor(resp)
	if err != nil {
		return fmt.Errorf("fetch %v: %w", cur, err)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, int64(r.opts.ChunkBytes)+int64(wal.DefaultTailChunk)))
	if err != nil {
		return fmt.Errorf("fetch %v: read chunk: %w", cur, err)
	}
	if len(data) == 0 {
		switch {
		case next.Gen == cur.Gen+1 && next.Off == 0:
			return r.rotateLocal(ctx, next.Gen)
		case next == cur:
			return nil
		default:
			return fmt.Errorf("fetch %v: cursor moved to %v without data", cur, next)
		}
	}
	if next.Gen != cur.Gen || next.Off != cur.Off+int64(len(data)) {
		return fmt.Errorf("fetch %v: %d bytes do not land on advertised cursor %v", cur, len(data), next)
	}
	return r.applyChunk(data, next)
}

// applyChunk validates, mirrors and applies one shipped chunk, in that
// order: no byte reaches the local segment before the whole chunk scans as
// complete CRC-clean records (a mid-chunk disconnect therefore leaves no
// trace), and no record trains the model before it is in the mirror (a
// crash between the two replays it from disk).
func (r *Replica) applyChunk(data []byte, next wal.Cursor) error {
	sc := wal.NewScanner(bytes.NewReader(data))
	var recs []wal.Record
	for sc.Next() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("shipped chunk does not scan: %w", err)
	}
	if sc.ValidSize() != int64(len(data)) {
		return fmt.Errorf("shipped chunk is torn: %d of %d bytes scan", sc.ValidSize(), len(data))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seg == nil {
		return errors.New("replica: no open mirror segment")
	}
	if _, err := r.seg.Write(data); err != nil {
		return fmt.Errorf("mirror chunk: %w", err)
	}
	for _, rec := range recs {
		if err := r.applier.Apply(rec); err != nil {
			return fmt.Errorf("apply shipped record: %w", err)
		}
	}
	if err := r.applier.Flush(); err != nil {
		return fmt.Errorf("apply shipped chunk: %w", err)
	}
	r.cur = next
	r.sinceSnap += len(recs)
	return nil
}

// rotateLocal mirrors the primary's rotation: seal the local tail segment
// (fsync + close — the mirror's durability point), verify the state hash
// against the boundary hash the primary recorded, publish the follower's
// own checkpoint snapshot, open the next segment, and GC old generations.
func (r *Replica) rotateLocal(ctx context.Context, newGen uint64) error {
	r.mu.Lock()
	if err := r.applier.Flush(); err != nil {
		r.mu.Unlock()
		return err
	}
	if r.seg != nil {
		if err := r.seg.Sync(); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("seal mirror segment: %w", err)
		}
		if err := r.seg.Close(); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("seal mirror segment: %w", err)
		}
		r.seg = nil
	}
	m := r.model
	r.mu.Unlock()
	// Verify before checkpointing: a diverged state must not become the
	// snapshot a restart would silently resume from.
	if err := r.verifyBoundary(ctx, newGen); err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(wal.SnapshotPath(r.opts.Dir, newGen), m.Checkpoint); err != nil {
		return fmt.Errorf("mirror snapshot %d: %w", newGen, err)
	}
	seg, err := openSegment(r.opts.Dir, newGen)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.seg = seg
	r.cur = wal.Cursor{Gen: newGen}
	r.sinceSnap = 0
	r.mu.Unlock()
	r.gc(newGen)
	return nil
}

// verifyBoundary compares the follower's canonical state hash against the
// hash the primary recorded when it crossed the same snapshot boundary. A
// primary that cannot answer (down, or the boundary aged out of its
// history) skips the check — it is opportunistic; the rotation cadence
// guarantees the next comparable boundary is near. A mismatch is the one
// non-skippable outcome: it marks the replica diverged.
func (r *Replica) verifyBoundary(ctx context.Context, gen uint64) error {
	url := fmt.Sprintf("%s%s?gen=%d", r.base, PathHash, gen)
	resp, err := resilience.Do(ctx, r.opts.Client, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}, r.opts.Backoff)
	if err != nil {
		r.opts.Logf("replica: boundary %d hash check skipped: %v", gen, err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil // primary has no hash for this boundary
	}
	if resp.StatusCode != http.StatusOK {
		r.opts.Logf("replica: boundary %d hash check skipped: %s", gen, httpError(resp))
		return nil
	}
	var hr HashResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hr); err != nil {
		r.opts.Logf("replica: boundary %d hash check skipped: bad response: %v", gen, err)
		return nil
	}
	r.mu.Lock()
	m := r.model
	r.mu.Unlock()
	steps := m.Steps()
	hash, err := m.StateHash()
	if err != nil {
		return fmt.Errorf("state hash: %w", err)
	}
	var div error
	switch {
	case hr.Steps != steps:
		div = fmt.Errorf("%w: %d steps vs primary's %d at generation %d", errDiverged, steps, hr.Steps, gen)
	case hr.Hash != hash:
		div = fmt.Errorf("%w: state hash %s vs primary's %s at generation %d (%d steps)", errDiverged, hash, hr.Hash, gen, steps)
	default:
		return nil
	}
	r.mu.Lock()
	r.diverged = div
	r.mu.Unlock()
	return fmt.Errorf("%w: %w", errRebootstrap, div)
}

// gc removes mirror generations at least two behind, matching the
// primary's retention.
func (r *Replica) gc(newGen uint64) {
	if newGen < 2 {
		return
	}
	man, err := wal.List(r.opts.Dir)
	if err != nil {
		return
	}
	for _, g := range man.Snapshots {
		if g <= newGen-2 {
			_ = os.Remove(wal.SnapshotPath(r.opts.Dir, g))
		}
	}
	for _, g := range man.Segments {
		if g <= newGen-2 {
			_ = os.Remove(wal.SegmentPath(r.opts.Dir, g))
		}
	}
}

// wipe clears the mirror's files (and stale temp files) ahead of a fresh
// bootstrap. Only WAL-owned names are touched.
func (r *Replica) wipe() error {
	ents, err := os.ReadDir(r.opts.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(r.opts.Dir, 0o755)
		}
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-") || strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(r.opts.Dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Replica) closeSeg() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seg != nil {
		_ = r.seg.Close()
		r.seg = nil
	}
}

// touch records a successful primary contact and its step count.
func (r *Replica) touch(resp *http.Response) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastContact = time.Now()
	if s := resp.Header.Get(HeaderSteps); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			r.primarySteps = n
		}
	}
}

func openSegment(dir string, gen uint64) (*os.File, error) {
	f, err := os.OpenFile(wal.SegmentPath(dir, gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open mirror segment: %w", err)
	}
	return f, nil
}

func parseNextCursor(resp *http.Response) (wal.Cursor, error) {
	gen, err := strconv.ParseUint(resp.Header.Get(HeaderNextGen), 10, 64)
	if err != nil {
		return wal.Cursor{}, fmt.Errorf("bad %s header %q", HeaderNextGen, resp.Header.Get(HeaderNextGen))
	}
	off, err := strconv.ParseInt(resp.Header.Get(HeaderNextOff), 10, 64)
	if err != nil || off < 0 {
		return wal.Cursor{}, fmt.Errorf("bad %s header %q", HeaderNextOff, resp.Header.Get(HeaderNextOff))
	}
	return wal.Cursor{Gen: gen, Off: off}, nil
}

// httpError summarizes a non-2xx replication response.
func httpError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		return fmt.Sprintf("HTTP %d", resp.StatusCode)
	}
	return fmt.Sprintf("HTTP %d: %s", resp.StatusCode, msg)
}
