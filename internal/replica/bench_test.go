package replica_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"llmq/internal/replica"
)

// benchOpts is fastOpts with the replica's logger silenced: go test merges
// the binary's stderr into stdout, and a log line landing between a
// benchmark's name and its result breaks the one-line format bench.sh parses.
func benchOpts(dir, url string) replica.Options {
	opts := fastOpts(dir, url)
	opts.Logf = func(string, ...any) {}
	return opts
}

// BenchmarkReplicationLag measures the end-to-end per-pair replication cost:
// a pair enters the primary through the durable train path, ships over the
// WAL long-poll, lands in the follower's mirror, and is applied to its live
// model. ns/op is per pair with the shipping pipelined behind training, so
// it answers "how fast can a follower drain a burst" — the pairs/s metric is
// the same number inverted. scripts/bench.sh records it in BENCH_8.json and
// CI gates it against the committed baseline.
func BenchmarkReplicationLag(b *testing.B) {
	const warmup = 64
	p := newPrimary(b, b.TempDir(), 4096)
	pairs := genPairs(17, warmup+b.N)
	if _, err := p.d.TrainBatch(pairs[:warmup]); err != nil {
		b.Fatal(err)
	}
	rep, _ := startReplica(b, benchOpts(b.TempDir(), p.ts.URL))
	waitSteps(b, rep, warmup)

	b.ResetTimer()
	if _, err := p.d.TrainBatch(pairs[warmup:]); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for rep.Status().Steps < warmup+b.N {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at %d steps, want %d", rep.Status().Steps, warmup+b.N)
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkReplicationBootstrap measures cold follower start against a
// primary of a given size: snapshot fetch, local load, and WAL catch-up to
// the primary's step count. ns/op is the full bootstrap, the time a fresh
// replica needs before it can serve; it grows with the snapshot (prototype
// count is capacity-bounded, so in practice with the WAL tail length).
func BenchmarkReplicationBootstrap(b *testing.B) {
	for _, steps := range []int{1_000, 8_000} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			p := newPrimary(b, b.TempDir(), 4096)
			if _, err := p.d.TrainBatch(genPairs(29, steps)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := replica.Open(benchOpts(b.TempDir(), p.ts.URL))
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				go func() { defer close(done); _ = rep.Run(ctx) }()
				if err := rep.WaitReady(ctx); err != nil {
					b.Fatal(err)
				}
				deadline := time.Now().Add(time.Minute)
				for rep.Status().Steps < steps {
					if time.Now().After(deadline) {
						b.Fatalf("bootstrap stuck at %d steps, want %d", rep.Status().Steps, steps)
					}
					time.Sleep(time.Millisecond)
				}
				cancel()
				<-done
				if err := rep.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
