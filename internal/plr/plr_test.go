package plr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func grid1D(n int, lo, hi float64, f func(float64) float64) ([][]float64, []float64) {
	xs := make([][]float64, n)
	us := make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = []float64{x}
		us[i] = f(x)
	}
	return xs, us
}

func TestBasisFunctionEval(t *testing.T) {
	pos := BasisFunction{Var: 0, Knot: 0.5, Positive: true}
	neg := BasisFunction{Var: 0, Knot: 0.5, Positive: false}
	if pos.Eval([]float64{0.7}) != 0.2 && math.Abs(pos.Eval([]float64{0.7})-0.2) > 1e-12 {
		t.Errorf("pos hinge = %v", pos.Eval([]float64{0.7}))
	}
	if pos.Eval([]float64{0.3}) != 0 {
		t.Errorf("pos hinge below knot = %v", pos.Eval([]float64{0.3}))
	}
	if math.Abs(neg.Eval([]float64{0.3})-0.2) > 1e-12 {
		t.Errorf("neg hinge = %v", neg.Eval([]float64{0.3}))
	}
	if neg.Eval([]float64{0.7}) != 0 {
		t.Errorf("neg hinge above knot = %v", neg.Eval([]float64{0.7}))
	}
	two := BasisFunction{Var: 1, Knot: 0, Positive: true}
	if two.Eval([]float64{9, 2}) != 2 {
		t.Error("Var index not honoured")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, Options{}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("too few err = %v", err)
	}
	if _, err := Fit([][]float64{{1}, {2}, {3, 4}, {5}}, []float64{1, 2, 3, 4}, Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestFitLinearFunctionIsExact(t *testing.T) {
	xs, us := grid1D(60, 0, 1, func(x float64) float64 { return 2 + 3*x })
	m, err := Fit(xs, us, Options{MaxBasis: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.FVU() > 1e-6 || m.R2() < 1-1e-6 {
		t.Errorf("linear fit: FVU=%v R2=%v", m.FVU(), m.R2())
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if math.Abs(m.Predict([]float64{x})-(2+3*x)) > 1e-4 {
			t.Errorf("Predict(%v) = %v", x, m.Predict([]float64{x}))
		}
	}
	if m.N != 60 {
		t.Errorf("N = %d", m.N)
	}
}

func TestFitPiecewiseLinearFunction(t *testing.T) {
	// A genuine piecewise-linear target with a kink at 0.5: PLR should nail
	// it while a single global line cannot.
	target := func(x float64) float64 {
		if x < 0.5 {
			return x
		}
		return 0.5 + 4*(x-0.5)
	}
	xs, us := grid1D(120, 0, 1, target)
	m, err := Fit(xs, us, Options{MaxBasis: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.FVU() > 1e-3 {
		t.Errorf("piecewise-linear target: FVU = %v", m.FVU())
	}
	if m.NumBasis() == 0 {
		t.Error("expected at least one hinge to be retained")
	}
	// Check accuracy on both sides of the kink.
	for _, x := range []float64{0.2, 0.8} {
		if math.Abs(m.Predict([]float64{x})-target(x)) > 0.05 {
			t.Errorf("Predict(%v) = %v, want %v", x, m.Predict([]float64{x}), target(x))
		}
	}
}

func TestFitNonLinearBeatsGlobalLinear(t *testing.T) {
	// Smooth non-linear target: PLR's FVU must be far below the single
	// global line's FVU (the property Figure 9 relies on).
	xs, us := grid1D(200, 0, 1, func(x float64) float64 { return math.Sin(2 * math.Pi * x) })
	m, err := Fit(xs, us, Options{MaxBasis: 12})
	if err != nil {
		t.Fatal(err)
	}
	// A single global line on a full sine period explains almost nothing
	// (FVU near 1); PLR should be below 0.1.
	if m.FVU() > 0.1 {
		t.Errorf("sine target: FVU = %v, want < 0.1", m.FVU())
	}
}

func TestFitMultivariate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	xs := make([][]float64, n)
	us := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		xs[i] = []float64{x1, x2}
		us[i] = x1*(x2+1) + 0.01*rng.NormFloat64() // the paper's Example 2 surface
	}
	m, err := Fit(xs, us, Options{MaxBasis: 14})
	if err != nil {
		t.Fatal(err)
	}
	if m.FVU() > 0.2 {
		t.Errorf("saddle target: FVU = %v", m.FVU())
	}
	if m.GCV <= 0 {
		t.Errorf("GCV = %v", m.GCV)
	}
}

func TestMaxBasisCapRespected(t *testing.T) {
	xs, us := grid1D(150, 0, 1, func(x float64) float64 { return math.Sin(4 * math.Pi * x) })
	m, err := Fit(xs, us, Options{MaxBasis: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBasis() > 4 {
		t.Errorf("NumBasis = %d, cap was 4", m.NumBasis())
	}
	// With a higher cap the fit must not get worse.
	big, err := Fit(xs, us, Options{MaxBasis: 16})
	if err != nil {
		t.Fatal(err)
	}
	if big.FVU() > m.FVU()+1e-9 {
		t.Errorf("larger basis fit got worse: %v vs %v", big.FVU(), m.FVU())
	}
}

func TestConstantResponse(t *testing.T) {
	xs, us := grid1D(30, 0, 1, func(x float64) float64 { return 7 })
	m, err := Fit(xs, us, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{0.3})-7) > 1e-9 {
		t.Errorf("constant prediction = %v", m.Predict([]float64{0.3}))
	}
	if m.FVU() != 0 || m.R2() != 1 {
		t.Errorf("constant response: FVU=%v R2=%v", m.FVU(), m.R2())
	}
	if m.NumBasis() != 0 {
		t.Errorf("constant response should not retain hinges, got %d", m.NumBasis())
	}
}

func TestDuplicateInputs(t *testing.T) {
	// All x identical: no valid knots; the model degenerates to the mean.
	xs := make([][]float64, 10)
	us := make([]float64, 10)
	for i := range xs {
		xs[i] = []float64{0.5}
		us[i] = float64(i)
	}
	m, err := Fit(xs, us, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{0.5})-4.5) > 1e-9 {
		t.Errorf("degenerate prediction = %v", m.Predict([]float64{0.5}))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxBasis != 20 || o.GCVPenalty != 3 || o.MaxCandidateKnots != 16 || o.MinImprovement != 1e-4 {
		t.Errorf("defaults = %+v", o)
	}
	custom := Options{MaxBasis: 5, GCVPenalty: 2, MaxCandidateKnots: 8, MinImprovement: 0.01}.withDefaults()
	if custom.MaxBasis != 5 || custom.GCVPenalty != 2 || custom.MaxCandidateKnots != 8 || custom.MinImprovement != 0.01 {
		t.Errorf("custom options overridden: %+v", custom)
	}
}

func TestCandidateKnots(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}, {5}, {5}}
	knots := candidateKnots(xs, 0, 10)
	// Interior unique values are 2, 3, 4.
	if len(knots) != 3 || knots[0] != 2 || knots[2] != 4 {
		t.Errorf("knots = %v", knots)
	}
	// Capped.
	var many [][]float64
	for i := 0; i < 100; i++ {
		many = append(many, []float64{float64(i)})
	}
	capped := candidateKnots(many, 0, 8)
	if len(capped) != 8 {
		t.Errorf("capped knots = %d", len(capped))
	}
	// Too few distinct values.
	if got := candidateKnots([][]float64{{1}, {1}, {2}}, 0, 4); got != nil {
		t.Errorf("degenerate knots = %v", got)
	}
}

func TestGCVMonotonicInRSS(t *testing.T) {
	if gcv(1, 100, 4, 3) >= gcv(2, 100, 4, 3) {
		t.Error("GCV must increase with RSS")
	}
	if !math.IsInf(gcv(1, 5, 10, 3), 1) {
		t.Error("GCV must be +Inf when effective parameters exceed n")
	}
}

func BenchmarkFitPLR200x2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	xs := make([][]float64, n)
	us := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		xs[i] = []float64{x1, x2}
		us[i] = math.Sin(3*x1) * (x2 + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, us, Options{MaxBasis: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
