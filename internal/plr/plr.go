// Package plr implements the Piecewise Linear Regression (PLR) baseline the
// paper compares against: a multivariate adaptive regression splines style
// model (Friedman 1991, the method behind the ARESLab toolbox the paper
// uses). The model is built with full access to the data in a selected
// subspace by
//
//  1. a forward pass that greedily adds pairs of hinge basis functions
//     max(0, x_j - t) / max(0, t - x_j) at data-driven knots until a maximum
//     number of basis functions is reached, and
//  2. a backward pruning pass that removes basis functions while the
//     generalized cross-validation (GCV) score improves, using the paper's
//     penalty of 3 per knot.
//
// Like the paper's PLR it is deliberately expensive: every fit requires the
// subspace's data and repeated least-squares solves. Its role is to provide
// the goodness-of-fit upper bound that the LLM model approaches without
// touching the data.
package plr

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"llmq/internal/linalg"
)

// Errors returned by Fit.
var (
	ErrTooFewPoints = errors.New("plr: too few points to fit")
	ErrDimension    = errors.New("plr: dimension mismatch")
)

// Options configure a PLR fit.
type Options struct {
	// MaxBasis caps the number of basis functions (excluding the intercept)
	// produced by the forward pass. The paper caps PLR's models at K, the
	// number of LLM prototypes. Values <= 0 default to 20.
	MaxBasis int
	// GCVPenalty is the per-knot penalty in the GCV denominator; the paper
	// uses 3. Values <= 0 default to 3.
	GCVPenalty float64
	// MaxCandidateKnots bounds the number of candidate knots examined per
	// variable in the forward pass (quantile-spaced). Values <= 0 default
	// to 16.
	MaxCandidateKnots int
	// MinImprovement stops the forward pass early when the relative RSS
	// improvement of the best candidate falls below it. Values <= 0 default
	// to 1e-4.
	MinImprovement float64
}

func (o Options) withDefaults() Options {
	if o.MaxBasis <= 0 {
		o.MaxBasis = 20
	}
	if o.GCVPenalty <= 0 {
		o.GCVPenalty = 3
	}
	if o.MaxCandidateKnots <= 0 {
		o.MaxCandidateKnots = 16
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 1e-4
	}
	return o
}

// BasisFunction is one hinge basis function h(x) = max(0, sign*(x_j - knot)).
type BasisFunction struct {
	// Var is the input variable index j.
	Var int
	// Knot is the hinge location t.
	Knot float64
	// Positive selects max(0, x_j - t) when true and max(0, t - x_j) when
	// false.
	Positive bool
}

// Eval evaluates the hinge at x.
func (b BasisFunction) Eval(x []float64) float64 {
	v := x[b.Var] - b.Knot
	if !b.Positive {
		v = -v
	}
	if v < 0 {
		return 0
	}
	return v
}

// Model is a fitted piecewise linear regression model
// u ≈ c0 + Σ_m c_m · h_m(x).
type Model struct {
	// Intercept is c0.
	Intercept float64
	// Coefficients holds c_m, aligned with Basis.
	Coefficients []float64
	// Basis holds the retained hinge functions.
	Basis []BasisFunction
	// GCV is the generalized cross-validation score of the final model.
	GCV float64
	// RSS and TSS are the residual and total sum of squares on the training
	// data.
	RSS float64
	TSS float64
	// N is the number of training observations.
	N int
}

// NumBasis returns the number of retained basis functions (excluding the
// intercept).
func (m *Model) NumBasis() int { return len(m.Basis) }

// Predict evaluates the model at x.
func (m *Model) Predict(x []float64) float64 {
	s := m.Intercept
	for i, b := range m.Basis {
		s += m.Coefficients[i] * b.Eval(x)
	}
	return s
}

// FVU returns the fraction of variance unexplained on the training data.
func (m *Model) FVU() float64 {
	if m.TSS == 0 {
		if m.RSS == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return m.RSS / m.TSS
}

// R2 returns the coefficient of determination on the training data.
func (m *Model) R2() float64 {
	if m.TSS == 0 {
		if m.RSS == 0 {
			return 1
		}
		return 0
	}
	return 1 - m.RSS/m.TSS
}

// Fit builds a PLR model of us on xs.
func Fit(xs [][]float64, us []float64, opts Options) (*Model, error) {
	if len(xs) != len(us) {
		return nil, fmt.Errorf("%w: %d inputs vs %d responses", ErrDimension, len(xs), len(us))
	}
	n := len(xs)
	if n < 4 {
		return nil, fmt.Errorf("%w: n=%d", ErrTooFewPoints, n)
	}
	d := len(xs[0])
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("%w: observation %d has dim %d, want %d", ErrDimension, i, len(x), d)
		}
	}
	o := opts.withDefaults()

	// Forward pass.
	basis := forwardPass(xs, us, o)
	// Backward pruning by GCV.
	basis = backwardPrune(xs, us, basis, o)
	// Final coefficients.
	coef, rss, err := fitCoefficients(xs, us, basis)
	if err != nil {
		return nil, err
	}
	tss := totalSS(us)
	m := &Model{
		Intercept:    coef[0],
		Coefficients: coef[1:],
		Basis:        basis,
		RSS:          rss,
		TSS:          tss,
		N:            n,
		GCV:          gcv(rss, n, len(basis), o.GCVPenalty),
	}
	return m, nil
}

// forwardPass greedily adds hinge pairs that most reduce the RSS.
func forwardPass(xs [][]float64, us []float64, o Options) []BasisFunction {
	d := len(xs[0])
	var basis []BasisFunction
	_, bestRSS, err := fitCoefficients(xs, us, basis)
	if err != nil {
		return basis
	}
	for len(basis) < o.MaxBasis {
		if bestRSS <= 1e-12 {
			break // already an (essentially) exact fit
		}
		type candidate struct {
			pair []BasisFunction
			rss  float64
		}
		best := candidate{rss: math.Inf(1)}
		for j := 0; j < d; j++ {
			for _, knot := range candidateKnots(xs, j, o.MaxCandidateKnots) {
				pair := []BasisFunction{
					{Var: j, Knot: knot, Positive: true},
					{Var: j, Knot: knot, Positive: false},
				}
				trial := append(append([]BasisFunction(nil), basis...), pair...)
				if _, rss, err := fitCoefficients(xs, us, trial); err == nil && rss < best.rss {
					best = candidate{pair: pair, rss: rss}
				}
			}
		}
		if best.pair == nil {
			break
		}
		if bestRSS > 0 && (bestRSS-best.rss)/bestRSS < o.MinImprovement {
			break
		}
		basis = append(basis, best.pair...)
		bestRSS = best.rss
		if bestRSS <= 1e-12 {
			break
		}
	}
	return basis
}

// backwardPrune removes basis functions while the GCV score improves.
func backwardPrune(xs [][]float64, us []float64, basis []BasisFunction, o Options) []BasisFunction {
	n := len(xs)
	_, rss, err := fitCoefficients(xs, us, basis)
	if err != nil {
		return basis
	}
	bestBasis := basis
	bestGCV := gcv(rss, n, len(basis), o.GCVPenalty)
	current := basis
	for len(current) > 0 {
		// Try removing each basis function; keep the removal with the best GCV.
		bestLocalGCV := math.Inf(1)
		var bestLocal []BasisFunction
		for i := range current {
			trial := make([]BasisFunction, 0, len(current)-1)
			trial = append(trial, current[:i]...)
			trial = append(trial, current[i+1:]...)
			if _, rss, err := fitCoefficients(xs, us, trial); err == nil {
				if g := gcv(rss, n, len(trial), o.GCVPenalty); g < bestLocalGCV {
					bestLocalGCV = g
					bestLocal = trial
				}
			}
		}
		if bestLocal == nil {
			break
		}
		current = bestLocal
		// Ties favour the smaller model, so pruning never keeps redundant
		// hinges that do not improve the fit.
		if bestLocalGCV <= bestGCV {
			bestGCV = bestLocalGCV
			bestBasis = current
		}
	}
	return bestBasis
}

// fitCoefficients solves least squares for the intercept plus the given
// basis functions and returns (coefficients, RSS).
func fitCoefficients(xs [][]float64, us []float64, basis []BasisFunction) ([]float64, float64, error) {
	n := len(xs)
	cols := 1 + len(basis)
	if n < cols {
		return nil, 0, fmt.Errorf("%w: %d observations for %d coefficients", ErrTooFewPoints, n, cols)
	}
	a := linalg.NewMatrix(n, cols)
	for i, x := range xs {
		a.Set(i, 0, 1)
		for j, b := range basis {
			a.Set(i, j+1, b.Eval(x))
		}
	}
	coef, err := linalg.SolveLeastSquares(a, us)
	if err != nil {
		return nil, 0, err
	}
	var rss float64
	for i, x := range xs {
		pred := coef[0]
		for j, b := range basis {
			pred += coef[j+1] * b.Eval(x)
		}
		r := us[i] - pred
		rss += r * r
	}
	return coef, rss, nil
}

// candidateKnots returns up to maxKnots quantile-spaced candidate knot
// locations for variable j, excluding the extremes (a hinge at the minimum or
// maximum is degenerate).
func candidateKnots(xs [][]float64, j, maxKnots int) []float64 {
	vals := make([]float64, len(xs))
	for i, x := range xs {
		vals[i] = x[j]
	}
	sort.Float64s(vals)
	// Deduplicate.
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) <= 2 {
		return nil
	}
	interior := uniq[1 : len(uniq)-1]
	if len(interior) <= maxKnots {
		return append([]float64(nil), interior...)
	}
	out := make([]float64, 0, maxKnots)
	step := float64(len(interior)-1) / float64(maxKnots-1)
	for k := 0; k < maxKnots; k++ {
		out = append(out, interior[int(math.Round(float64(k)*step))])
	}
	return out
}

// gcv computes the generalized cross-validation score
// RSS/n / (1 - C(m)/n)² with effective parameters C(m) = (m+1) + penalty·m/2
// (m basis functions ⇒ m/2 knots).
func gcv(rss float64, n, numBasis int, penalty float64) float64 {
	c := float64(numBasis+1) + penalty*float64(numBasis)/2
	denom := 1 - c/float64(n)
	if denom <= 0 {
		return math.Inf(1)
	}
	return (rss / float64(n)) / (denom * denom)
}

func totalSS(us []float64) float64 {
	var mean float64
	for _, u := range us {
		mean += u
	}
	mean /= float64(len(us))
	var tss float64
	for _, u := range us {
		d := u - mean
		tss += d * d
	}
	return tss
}
