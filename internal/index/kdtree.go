package index

import (
	"fmt"
	"math"

	"llmq/internal/vector"
)

// BulkKDTree is a bulk-built k-d tree over a frozen copy of a point set —
// the wide-query-space read epoch of the prototype store, where the 1-D
// projection spine used to live. It is built once over the stale row copy at
// epoch-rebuild time and never mutated, so the store and every published
// snapshot share it without synchronization, exactly like the dynamic grid
// on narrow spaces.
//
// Layout is implicit and flat: the tree is a perfect binary tree of
// kdLeaves leaves, nodes stored in one array in heap order (node i's
// children are 2i+1 and 2i+2 — no per-node pointers), each node covering a
// contiguous row span of the reordered point matrix. Leaves hold
// ~kdLeafRowsMax/2..kdLeafRowsMax rows stored contiguously in build order,
// so a leaf scan is one pass of the unrolled vector kernels with the
// partial-distance cutoff over flat memory. Every node carries its exact
// bounding box (computed bottom-up at build time); the traversal lower-
// bounds a subtree by the squared distance from the query to that box,
// which prunes far tighter in wide spaces than any single split plane.
//
// Build is a median split: at each internal node the rows are partitioned
// around their median along the axis of maximum spread (quickselect — no
// full sort), giving an O(n log n) bulk build and leaves balanced to ±1 row.
//
// Both epoch operations mirror DynamicGrid's: NearestStale (winner seeding,
// Eq. 5) and Range (overlap radius query, Eq. 10). The tree's rows are a
// stale snapshot; callers that let the live rows drift pass a slack bound
// and the traversal widens every pruning bound by it, verifying each
// surviving candidate against the live row — exactness is never a function
// of staleness. Traversal state is an explicit stack owned by the caller
// (the prediction scratch pool), so the hot path performs no allocation.
type BulkKDTree struct {
	dim   int
	n     int
	leaf1 int      // index of the first leaf node (= kdLeaves-1)
	nodes []kdSpan // implicit heap, len = 2*kdLeaves-1
	boxes []float64
	flat  []float64 // n rows × dim, reordered leaf-contiguously
	ids   []int32   // flat row → original point id

	// bailRows is the traversal's scan budget: once NearestStale has
	// verified this many leaf rows the tree is evidently not pruning (a
	// workload without locality — e.g. near-equidistant points in a wide
	// space), and the search finishes with one seeded flat scan over the
	// live rows instead. The answer is identical either way; the budget only
	// bounds the worst case at ~1.5× the scan it falls back to. Tests force
	// the bail by shrinking it.
	bailRows int
}

// kdSpan is one node's row range [start, end) in the reordered matrix.
type kdSpan struct{ start, end int32 }

const (
	// kdLeafRowsMax bounds the rows per leaf; the leaf count is the smallest
	// power of two that respects it, which (with balanced median splits)
	// keeps every leaf in the 32..64 band for trees of more than one leaf —
	// large enough that the unrolled kernels amortize the per-node box
	// arithmetic, small enough that a leaf stays within a few cache lines.
	kdLeafRowsMax = 64
)

// NewBulkKDTreeIDs is NewBulkKDTree for a matrix whose rows live in a
// caller-defined id space: searches report row i of flat under ids[i]
// instead of i, and NearestStale's live-row verification reads
// live.Row(ids[i]). The bounded prototype store uses this to index only the
// live slots of a tombstoned row space — the stale copy is compact, the ids
// point back at the true chunk-table slots. ids is read, not retained.
func NewBulkKDTreeIDs(flat []float64, dim int, ids []int32) (*BulkKDTree, error) {
	t, err := NewBulkKDTree(flat, dim)
	if err != nil {
		return nil, err
	}
	if len(ids) != t.n {
		return nil, fmt.Errorf("%w: %d ids for %d rows", ErrDimension, len(ids), t.n)
	}
	for i, id := range t.ids {
		t.ids[i] = ids[int(id)]
	}
	return t, nil
}

// NewBulkKDTree bulk-builds a tree over the rows of the flat row-major
// matrix (len(flat)/dim points). The input is read, not retained: the tree
// gathers the rows into its own leaf-contiguous buffer.
func NewBulkKDTree(flat []float64, dim int) (*BulkKDTree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dimension %d", ErrDimension, dim)
	}
	if len(flat)%dim != 0 {
		return nil, fmt.Errorf("%w: flat length %d not a multiple of dim %d", ErrDimension, len(flat), dim)
	}
	n := len(flat) / dim
	if n == 0 {
		return nil, ErrEmpty
	}
	leaves := 1
	for n > leaves*kdLeafRowsMax {
		leaves <<= 1
	}
	t := &BulkKDTree{
		dim:      dim,
		n:        n,
		leaf1:    leaves - 1,
		nodes:    make([]kdSpan, 2*leaves-1),
		boxes:    make([]float64, (2*leaves-1)*2*dim),
		ids:      make([]int32, n),
		bailRows: n/2 + 32,
	}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	t.buildNode(flat, 0, 0, n)
	// Gather the rows into build order: each leaf's rows end up contiguous,
	// in the order the median splits left them.
	t.flat = make([]float64, n*dim)
	for i, id := range t.ids {
		copy(t.flat[i*dim:(i+1)*dim], flat[int(id)*dim:(int(id)+1)*dim])
	}
	t.computeBoxes()
	return t, nil
}

// Len returns the number of indexed points.
func (t *BulkKDTree) Len() int { return t.n }

// Dim returns the dimensionality of the indexed points.
func (t *BulkKDTree) Dim() int { return t.dim }

// buildNode assigns node's row span and recursively median-splits it. The
// recursion depth is the tree height (≤ ~20 for any realistic point count).
func (t *BulkKDTree) buildNode(src []float64, node, lo, hi int) {
	t.nodes[node] = kdSpan{start: int32(lo), end: int32(hi)}
	if node >= t.leaf1 {
		return
	}
	mid := (lo + hi) / 2
	axis := t.maxSpreadAxis(src, lo, hi)
	kdSelect(src, t.dim, axis, t.ids, lo, hi, mid)
	t.buildNode(src, 2*node+1, lo, mid)
	t.buildNode(src, 2*node+2, mid, hi)
}

// maxSpreadAxis returns the axis with the widest value range over rows
// [lo, hi) — the classic bulk-build split heuristic, which adapts the tree
// to clustered prototype sets instead of cycling axes blindly.
func (t *BulkKDTree) maxSpreadAxis(src []float64, lo, hi int) int {
	axis, spread := 0, -1.0
	for j := 0; j < t.dim; j++ {
		mn, mx := math.Inf(1), math.Inf(-1)
		for i := lo; i < hi; i++ {
			v := src[int(t.ids[i])*t.dim+j]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if s := mx - mn; s > spread {
			axis, spread = j, s
		}
	}
	return axis
}

// kdSelect partially sorts ids[lo:hi] so that rows [lo, mid) are ≤ rows
// [mid, hi) along the axis — quickselect with Hoare partitioning, O(n)
// expected, no allocation.
func kdSelect(src []float64, dim, axis int, ids []int32, lo, hi, mid int) {
	key := func(i int) float64 { return src[int(ids[i])*dim+axis] }
	for hi-lo > 1 {
		pivot := key((lo + hi) / 2)
		i, j := lo, hi-1
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		// rows [lo, j] ≤ pivot, rows [i, hi) ≥ pivot, rows (j, i) == pivot.
		switch {
		case mid <= j:
			hi = j + 1
		case mid >= i:
			lo = i
		default:
			return
		}
	}
}

// computeBoxes fills every node's bounding box: leaves from their rows,
// internal nodes as the union of their children, walking the heap array
// backwards (children always have larger indices than their parent).
func (t *BulkKDTree) computeBoxes() {
	d := t.dim
	for node := len(t.nodes) - 1; node >= 0; node-- {
		b := t.boxes[node*2*d : (node+1)*2*d]
		lo, hi := b[:d], b[d:]
		if node >= t.leaf1 {
			sp := t.nodes[node]
			for j := 0; j < d; j++ {
				lo[j], hi[j] = math.Inf(1), math.Inf(-1)
			}
			for r := int(sp.start); r < int(sp.end); r++ {
				row := t.flat[r*d : (r+1)*d]
				for j, v := range row {
					if v < lo[j] {
						lo[j] = v
					}
					if v > hi[j] {
						hi[j] = v
					}
				}
			}
			continue
		}
		l := t.boxes[(2*node+1)*2*d : (2*node+2)*2*d]
		r := t.boxes[(2*node+2)*2*d : (2*node+3)*2*d]
		for j := 0; j < d; j++ {
			lo[j] = math.Min(l[j], r[j])
			hi[j] = math.Max(l[d+j], r[d+j])
		}
	}
}

// boxSqDist returns the squared distance from q to node's bounding box.
func (t *BulkKDTree) boxSqDist(node int, q []float64) float64 {
	b := t.boxes[node*2*t.dim:]
	return vector.SqDistanceToBox(q, b[:t.dim], b[t.dim:2*t.dim])
}

// NearestStale returns the exact nearest point over the live rows when the
// tree's stored rows are a stale snapshot of them, mirroring
// DynamicGrid.NearestStale. live is the current point matrix as a chunked
// view indexed by the same ids as the tree (extra tail rows are the
// caller's to seed); the zero Chunked means the stored rows ARE the live
// rows. slack bounds how far any point has moved since the build: a subtree
// is pruned only when even its stale box minus the slack cannot beat the
// best live candidate, and every surviving stale candidate is verified
// against its live row, so drift widens the search but never hides the true
// winner. seed (id at squared live distance seedSq; seed < 0 for none)
// initializes the running best — the caller typically seeds with the argmin
// of the un-indexed tail.
//
// stack is the traversal's scratch (reused across calls via the caller's
// scratch pool; pass nil to let it allocate once); the possibly-grown stack
// is returned for the caller to retain. When the traversal's scan budget
// trips (no locality to prune on) the search finishes with one seeded flat
// scan — see bailRows.
func (t *BulkKDTree) NearestStale(q []float64, slack float64, live vector.Chunked, seed int, seedSq float64, stack []int32) (int, float64, []int32) {
	if len(q) != t.dim {
		panic(fmt.Sprintf("index: NearestStale query dim %d, index dim %d", len(q), t.dim))
	}
	staleIsLive := live.IsZero()
	best, bestSq := seed, seedSq
	if seed < 0 {
		best, bestSq = -1, math.Inf(1)
	}
	// cutoffSq is the stale-distance bound a candidate must meet to possibly
	// win: (bestDist + slack)². It shrinks whenever the best improves.
	cutoff := math.Sqrt(bestSq) + slack
	cutoffSq := cutoff * cutoff
	budget := t.bailRows
	d := t.dim
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		node := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		// Re-check at pop: the cutoff may have shrunk since the push.
		if t.boxSqDist(node, q) > cutoffSq {
			continue
		}
		if node < t.leaf1 {
			c1, c2 := 2*node+1, 2*node+2
			d1, d2 := t.boxSqDist(c1, q), t.boxSqDist(c2, q)
			// Push the farther child first so the nearer is explored first —
			// the sooner the best tightens, the more the far side prunes.
			if d1 > d2 {
				c1, c2, d1, d2 = c2, c1, d2, d1
			}
			if d2 <= cutoffSq {
				stack = append(stack, int32(c2))
			}
			if d1 <= cutoffSq {
				stack = append(stack, int32(c1))
			}
			continue
		}
		sp := t.nodes[node]
		span := t.flat[int(sp.start)*d : int(sp.end)*d]
		budget -= int(sp.end - sp.start)
		if staleIsLive {
			// The stored rows are the live rows: the leaf scan is the whole
			// verification, one unrolled argmin pass over the span.
			if li, lsq := vector.ArgminSqDistanceSeeded(span, d, q, -1, bestSq); li >= 0 {
				best, bestSq = int(t.ids[int(sp.start)+li]), lsq
				cutoff = math.Sqrt(bestSq) + slack
				cutoffSq = cutoff * cutoff
			}
		} else {
			for r := int(sp.start); r < int(sp.end); r++ {
				if _, within := vector.SqDistanceWithin(t.flat[r*d:(r+1)*d], q, cutoffSq); !within {
					continue
				}
				id := int(t.ids[r])
				if sq := vector.SqDistanceFlat(live.Row(id), q); sq < bestSq || (sq == bestSq && id < best) {
					best, bestSq = id, sq
					cutoff = math.Sqrt(bestSq) + slack
					cutoffSq = cutoff * cutoff
				}
			}
		}
		if budget < 0 {
			// The boxes are not pruning (near-equidistant points): finish
			// with one exact seeded scan instead of walking every leaf.
			if staleIsLive {
				if li, lsq := vector.ArgminSqDistanceSeeded(t.flat, d, q, -1, bestSq); li >= 0 {
					best, bestSq = int(t.ids[li]), lsq
				}
				return best, bestSq, stack
			}
			best, bestSq = vector.ArgminSqDistanceChunkedSeeded(live, q, best, bestSq)
			return best, bestSq, stack
		}
	}
	return best, bestSq, stack
}

// Range appends to out the ids of every indexed point whose stored (stale)
// position lies within L2 distance r of q, mirroring DynamicGrid.Range: the
// cutoff is widened one-sidedly by rangeBoxEps so boundary rounding can
// only ever add candidates, and callers searching a drifted snapshot widen
// r by their slack and re-verify candidates against live rows. Unlike the
// grid, the tree never reports an id twice. stack follows the NearestStale
// contract.
//
// maxOut (> 0) caps the enumeration: the traversal stops early once out has
// grown to maxOut entries, so the result may be incomplete — for callers
// that abandon the candidate list past a size threshold anyway (the overlap
// router falls back to a straight scan once candidates cover half the
// prototype set), the cap keeps a space-covering query from paying a full
// distance-verified traversal whose output is then discarded. maxOut <= 0
// enumerates everything.
func (t *BulkKDTree) Range(q []float64, r float64, out []int, stack []int32, maxOut int) ([]int, []int32) {
	if len(q) != t.dim {
		panic(fmt.Sprintf("index: Range query dim %d, index dim %d", len(q), t.dim))
	}
	if r < 0 || math.IsNaN(r) {
		return out, stack
	}
	cutoffSq := r * r
	cutoffSq += cutoffSq * rangeBoxEps
	d := t.dim
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		node := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		if t.boxSqDist(node, q) > cutoffSq {
			continue
		}
		if node < t.leaf1 {
			stack = append(stack, int32(2*node+1), int32(2*node+2))
			continue
		}
		sp := t.nodes[node]
		out = vector.AppendWithinIDs(t.flat[int(sp.start)*d:int(sp.end)*d], d, q, cutoffSq, t.ids[sp.start:sp.end], out)
		if maxOut > 0 && len(out) >= maxOut {
			return out, stack
		}
	}
	return out, stack
}
