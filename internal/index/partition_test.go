package index

import (
	"encoding/json"
	"math"
	"math/rand"
	"slices"
	"testing"
)

func samplePoints(t *testing.T, rng *rand.Rand, dim, n int) []float64 {
	t.Helper()
	pts := make([]float64, dim*n)
	for i := range pts {
		pts[i] = rng.Float64()
	}
	return pts
}

// locateByRegion resolves the leaf containing x from the region boxes alone,
// as the ground truth Locate must match.
func locateByRegion(t *testing.T, p *Partition, x []float64) int {
	t.Helper()
	found := -1
	for leaf := 0; leaf < p.Leaves(); leaf++ {
		lo, hi, err := p.Region(leaf)
		if err != nil {
			t.Fatalf("Region(%d): %v", leaf, err)
		}
		in := true
		for a := range x {
			if x[a] < lo[a] || x[a] >= hi[a] {
				in = false
				break
			}
		}
		if in {
			if found >= 0 {
				t.Fatalf("point %v inside two regions (%d and %d)", x, found, leaf)
			}
			found = leaf
		}
	}
	if found < 0 {
		t.Fatalf("point %v inside no region", x)
	}
	return found
}

// boxDist returns the L2 distance from x to the leaf's region box.
func boxDist(t *testing.T, p *Partition, leaf int, x []float64) float64 {
	t.Helper()
	lo, hi, err := p.Region(leaf)
	if err != nil {
		t.Fatalf("Region(%d): %v", leaf, err)
	}
	var sq float64
	for a := range x {
		if d := lo[a] - x[a]; d > 0 {
			sq += d * d
		} else if d := x[a] - hi[a]; d > 0 {
			sq += d * d
		}
	}
	return math.Sqrt(sq)
}

func TestPartitionLocateMatchesRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for _, leaves := range []int{1, 2, 3, 4, 7, 8} {
			pts := samplePoints(t, rng, dim, 500)
			cell := 0.0
			if dim <= 3 {
				cell = 0.05
			}
			p, err := NewPartition(dim, leaves, pts, cell)
			if err != nil {
				t.Fatalf("dim=%d leaves=%d: %v", dim, leaves, err)
			}
			if p.Leaves() != leaves {
				t.Fatalf("dim=%d: got %d leaves, want %d", dim, p.Leaves(), leaves)
			}
			counts := make([]int, leaves)
			for i := 0; i < 200; i++ {
				x := make([]float64, dim)
				for a := range x {
					x[a] = rng.Float64()*2 - 0.5 // include points outside the sample hull
				}
				got := p.Locate(x)
				want := locateByRegion(t, p, x)
				if got != want {
					t.Fatalf("dim=%d leaves=%d: Locate(%v)=%d, regions say %d", dim, leaves, x, got, want)
				}
				counts[got]++
			}
			// Count balance on the sample itself: every leaf should hold a
			// non-trivial share (the build cuts at count quantiles).
			sampleCounts := make([]int, leaves)
			for i := 0; i < 500; i++ {
				sampleCounts[p.Locate(pts[i*dim:(i+1)*dim])]++
			}
			for leaf, c := range sampleCounts {
				if c == 0 {
					t.Errorf("dim=%d leaves=%d: leaf %d got no sample points (%v)", dim, leaves, leaf, sampleCounts)
				}
			}
		}
	}
}

func TestPartitionTouchingExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range []int{2, 4} {
		pts := samplePoints(t, rng, dim, 400)
		p, err := NewPartition(dim, 6, pts, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		extra := make([]float64, 6)
		for i := range extra {
			extra[i] = rng.Float64() * 0.05
		}
		for i := 0; i < 300; i++ {
			x := make([]float64, dim)
			for a := range x {
				x[a] = rng.Float64()*1.4 - 0.2
			}
			theta := rng.Float64() * 0.3
			got := p.Touching(x, theta, extra, nil)
			slices.Sort(got)
			var want []int
			for leaf := 0; leaf < p.Leaves(); leaf++ {
				if boxDist(t, p, leaf, x) <= theta+extra[leaf] {
					want = append(want, leaf)
				}
			}
			if !slices.Equal(got, want) {
				t.Fatalf("dim=%d: Touching(%v, %v) = %v, want %v", dim, x, theta, got, want)
			}
		}
		// A point well inside one region with a tiny radius touches only it.
		q := pts[:dim]
		if leaves := p.Touching(q, 0, nil, nil); len(leaves) != 1 || leaves[0] != p.Locate(q) {
			t.Fatalf("zero-radius Touching(%v) = %v, want exactly [%d]", q, leaves, p.Locate(q))
		}
	}
}

func TestPartitionGridSnapping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := samplePoints(t, rng, 2, 300)
	const cell = 0.125
	p, err := NewPartition(2, 4, pts, cell)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range p.nodes {
		if nd.axis < 0 {
			continue
		}
		snapped := math.Round(nd.cut/cell) * cell
		if nd.cut != snapped {
			t.Errorf("node %d cut %v not on the %v lattice", i, nd.cut, cell)
		}
	}
}

func TestPartitionJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := samplePoints(t, rng, 3, 200)
	p, err := NewPartition(3, 5, pts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Partition
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if q.Dim() != p.Dim() || q.Leaves() != p.Leaves() {
		t.Fatalf("round trip changed shape: dim %d→%d leaves %d→%d", p.Dim(), q.Dim(), p.Leaves(), q.Leaves())
	}
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if p.Locate(x) != q.Locate(x) {
			t.Fatalf("round trip changed Locate(%v): %d vs %d", x, p.Locate(x), q.Locate(x))
		}
	}
	if err := json.Unmarshal([]byte(`{"dim":2,"leaves":2,"nodes":[{"axis":-1,"leaf":0}]}`), &q); err == nil {
		t.Fatal("missing leaf id accepted")
	}
	if err := json.Unmarshal([]byte(`{"dim":2,"leaves":1,"nodes":[{"axis":0,"cut":0.5,"left":0,"right":0}]}`), &q); err == nil {
		t.Fatal("cyclic node graph accepted")
	}
}

func TestPartitionSplitAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := samplePoints(t, rng, 2, 300)
	p, err := NewPartition(2, 3, pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Split leaf 1 at the midpoint of its box's widest finite axis.
	lo, hi, err := p.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	axis, cut := -1, 0.0
	for a := 0; a < 2; a++ {
		if !math.IsInf(lo[a], 0) && !math.IsInf(hi[a], 0) {
			axis, cut = a, (lo[a]+hi[a])/2
			break
		}
	}
	if axis < 0 {
		axis, cut = 0, clampMid(lo[0], hi[0])
	}
	sp, err := p.SplitLeaf(1, axis, cut)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Leaves() != 4 {
		t.Fatalf("split produced %d leaves, want 4", sp.Leaves())
	}
	// Ids 0 and 2 are untouched: every point that located there still does.
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		old := p.Locate(x)
		now := sp.Locate(x)
		if old != 1 && now != old {
			t.Fatalf("split moved point %v from leaf %d to %d", x, old, now)
		}
		if old == 1 && now != 1 && now != 3 {
			t.Fatalf("split sent point %v of old leaf 1 to %d", x, now)
		}
	}
	// Merge the halves back: Locate must match the original partition.
	mp, moved, err := sp.MergeLeaves(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if moved != -1 {
		t.Fatalf("merging the last leaf id should move nothing, moved=%d", moved)
	}
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if mp.Locate(x) != p.Locate(x) {
			t.Fatalf("merge did not restore leaf of %v", x)
		}
	}
	// Merging non-siblings must fail.
	if _, _, err := sp.MergeLeaves(0, 3); err == nil {
		t.Fatal("non-sibling merge accepted")
	}
	// A merge that frees a non-last id renumbers the last leaf into it.
	sp2, err := p.SplitLeaf(0, 1, clampMid(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	mp2, moved2, err := sp2.MergeLeaves(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = mp2
	if moved2 != -1 && moved2 != sp2.Leaves()-1 {
		t.Fatalf("moved=%d, want the old last id %d", moved2, sp2.Leaves()-1)
	}
	// Out-of-region cut must fail.
	if _, err := p.SplitLeaf(1, axis, math.Inf(1)); err == nil {
		t.Fatal("non-finite cut accepted")
	}
}

func clampMid(lo, hi float64) float64 {
	if math.IsInf(lo, 0) {
		lo = 0
	}
	if math.IsInf(hi, 0) {
		hi = 1
	}
	return (lo + hi) / 2
}

func TestPartitionDegenerateSample(t *testing.T) {
	// An all-duplicate sample cannot balance, but must not panic and must
	// still produce the requested leaf count with disjoint covering regions.
	pts := make([]float64, 2*10)
	for i := range pts {
		pts[i] = 0.5
	}
	p, err := NewPartition(2, 4, pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Leaves() != 4 {
		t.Fatalf("got %d leaves, want 4", p.Leaves())
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if got, want := p.Locate(x), locateByRegion(t, p, x); got != want {
			t.Fatalf("Locate(%v)=%d, regions say %d", x, got, want)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	pts := []float64{0, 0, 1, 1}
	if _, err := NewPartition(0, 1, pts, 0); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := NewPartition(2, 0, pts, 0); err == nil {
		t.Fatal("0 leaves accepted")
	}
	if _, err := NewPartition(2, 3, pts, 0); err == nil {
		t.Fatal("more leaves than sample points accepted")
	}
	if _, err := NewPartition(2, 1, []float64{0, 0, 1}, 0); err == nil {
		t.Fatal("ragged sample accepted")
	}
	if _, err := NewPartition(2, 1, []float64{0, math.NaN()}, 0); err == nil {
		t.Fatal("NaN sample accepted")
	}
}
