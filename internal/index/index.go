// Package index provides the spatial access methods of both sides of the
// system.
//
// For the exact query executor it evaluates the dNN (radius) selection
// operator — given a centre x and radius θ, return every indexed point
// within Lp distance θ — with three implementations: a linear scan (the
// baseline the others are validated against), a uniform grid, and a
// kd-tree, mirroring the indexed selection the paper's PostgreSQL
// substrate performs with a B-tree.
//
// For the model's serving path it provides the read-epoch structures the
// prototype store builds over frozen row copies: DynamicGrid (incremental
// uniform grid, low-dimensional query spaces) and BulkKDTree (bulk-built
// implicit-layout k-d tree, wide query spaces). Both answer NearestStale
// and Range queries that stay exact while the live rows drift from the
// indexed copy — every pruning bound is widened by the caller's drift
// slack and surviving candidates are verified against live rows — and both
// can index a sparse slot space through external ids (InsertWithID /
// NewBulkKDTreeIDs), which is how the bounded prototype store indexes only
// the live slots of a tombstoned row space. See docs/ARCHITECTURE.md for
// where each structure sits in the read path.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"llmq/internal/vector"
)

// Errors returned by index construction and search.
var (
	ErrEmpty     = errors.New("index: no points")
	ErrDimension = errors.New("index: dimension mismatch")
	ErrRadius    = errors.New("index: radius must be non-negative")
)

// SpatialIndex answers radius queries over a fixed set of points.
type SpatialIndex interface {
	// Len returns the number of indexed points.
	Len() int
	// Dim returns the dimensionality of the indexed points.
	Dim() int
	// Radius returns the ids of all points p with ||p - center||_p <= radius.
	// The order of the returned ids is unspecified.
	Radius(center []float64, radius float64, p float64) ([]int, error)
}

func checkQuery(dim int, center []float64, radius float64) error {
	if len(center) != dim {
		return fmt.Errorf("%w: query dim %d, index dim %d", ErrDimension, len(center), dim)
	}
	if radius < 0 || math.IsNaN(radius) {
		return fmt.Errorf("%w: %v", ErrRadius, radius)
	}
	return nil
}

// Linear is the brute-force scan index: O(n·d) per radius query. It is the
// reference implementation that the grid and kd-tree are tested against.
type Linear struct {
	pts [][]float64
	dim int
}

// NewLinear builds a linear index over the given points (not copied).
func NewLinear(pts [][]float64) (*Linear, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	dim := len(pts[0])
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimension, i, len(p), dim)
		}
	}
	return &Linear{pts: pts, dim: dim}, nil
}

// Len implements SpatialIndex.
func (l *Linear) Len() int { return len(l.pts) }

// Dim implements SpatialIndex.
func (l *Linear) Dim() int { return l.dim }

// Radius implements SpatialIndex.
func (l *Linear) Radius(center []float64, radius float64, p float64) ([]int, error) {
	if err := checkQuery(l.dim, center, radius); err != nil {
		return nil, err
	}
	var ids []int
	for i, pt := range l.pts {
		if vector.DistanceLp(pt, center, p) <= radius {
			ids = append(ids, i)
		}
	}
	return ids, nil
}

// Grid is a uniform grid (cell) index. Points are hashed into cells of side
// cellSize; a radius query only inspects the cells overlapping the query
// ball's bounding box. It is most effective when the query radius is of the
// same order as the cell size, which is the regime of the paper's workloads
// (θ covers ~20% of each attribute range).
type Grid struct {
	pts      [][]float64
	dim      int
	cellSize float64
	origin   []float64
	cells    map[string][]int
}

// NewGrid builds a grid index with the given cell size (> 0).
func NewGrid(pts [][]float64, cellSize float64) (*Grid, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("index: invalid cell size %v", cellSize)
	}
	dim := len(pts[0])
	origin := append([]float64(nil), pts[0]...)
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimension, i, len(p), dim)
		}
		for j, v := range p {
			if v < origin[j] {
				origin[j] = v
			}
		}
	}
	g := &Grid{pts: pts, dim: dim, cellSize: cellSize, origin: origin, cells: make(map[string][]int)}
	coord := make([]int, dim)
	for i, p := range pts {
		g.cellCoord(p, coord)
		key := cellKey(coord)
		g.cells[key] = append(g.cells[key], i)
	}
	return g, nil
}

// Len implements SpatialIndex.
func (g *Grid) Len() int { return len(g.pts) }

// Dim implements SpatialIndex.
func (g *Grid) Dim() int { return g.dim }

func (g *Grid) cellCoord(p []float64, out []int) {
	for j, v := range p {
		out[j] = int(math.Floor((v - g.origin[j]) / g.cellSize))
	}
}

func cellKey(coord []int) string {
	// Compact textual key; dimensionality is small (<= a few tens).
	b := make([]byte, 0, len(coord)*4)
	for _, c := range coord {
		b = appendInt(b, c)
		b = append(b, ';')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// Radius implements SpatialIndex.
func (g *Grid) Radius(center []float64, radius float64, p float64) ([]int, error) {
	if err := checkQuery(g.dim, center, radius); err != nil {
		return nil, err
	}
	// The L2/L1 ball of radius r is contained in the L∞ box of radius r, so
	// scanning the cells overlapping that box is always sufficient.
	lo := make([]int, g.dim)
	hi := make([]int, g.dim)
	boxCells := 1.0
	for j := 0; j < g.dim; j++ {
		lo[j] = int(math.Floor((center[j] - radius - g.origin[j]) / g.cellSize))
		hi[j] = int(math.Floor((center[j] + radius - g.origin[j]) / g.cellSize))
		boxCells *= float64(hi[j] - lo[j] + 1)
	}
	var ids []int
	// When the query ball covers more candidate cells than there are points
	// (e.g. a radius spanning the whole space) a plain scan is cheaper than
	// enumerating empty cells.
	if boxCells > float64(len(g.pts)) {
		for i, pt := range g.pts {
			if vector.DistanceLp(pt, center, p) <= radius {
				ids = append(ids, i)
			}
		}
		return ids, nil
	}
	coord := make([]int, g.dim)
	copy(coord, lo)
	for {
		key := cellKey(coord)
		for _, i := range g.cells[key] {
			if vector.DistanceLp(g.pts[i], center, p) <= radius {
				ids = append(ids, i)
			}
		}
		// Advance the multi-dimensional counter.
		j := 0
		for ; j < g.dim; j++ {
			coord[j]++
			if coord[j] <= hi[j] {
				break
			}
			coord[j] = lo[j]
		}
		if j == g.dim {
			break
		}
	}
	return ids, nil
}

// KDTree is a k-d tree over the indexed points supporting radius search.
// Construction is O(n log n); radius queries prune subtrees whose bounding
// splits cannot contain any point within the query ball.
type KDTree struct {
	pts   [][]float64
	dim   int
	nodes []kdNode
	root  int
}

type kdNode struct {
	pointID     int
	axis        int
	left, right int // -1 when absent
}

// NewKDTree builds a kd-tree over the given points (not copied).
func NewKDTree(pts [][]float64) (*KDTree, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	dim := len(pts[0])
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimension, i, len(p), dim)
		}
	}
	t := &KDTree{pts: pts, dim: dim, nodes: make([]kdNode, 0, len(pts))}
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	t.root = t.build(ids, 0)
	return t, nil
}

func (t *KDTree) build(ids []int, depth int) int {
	if len(ids) == 0 {
		return -1
	}
	axis := depth % t.dim
	sort.Slice(ids, func(a, b int) bool { return t.pts[ids[a]][axis] < t.pts[ids[b]][axis] })
	mid := len(ids) / 2
	nodeID := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{pointID: ids[mid], axis: axis})
	left := t.build(append([]int(nil), ids[:mid]...), depth+1)
	right := t.build(append([]int(nil), ids[mid+1:]...), depth+1)
	t.nodes[nodeID].left = left
	t.nodes[nodeID].right = right
	return nodeID
}

// Len implements SpatialIndex.
func (t *KDTree) Len() int { return len(t.pts) }

// Dim implements SpatialIndex.
func (t *KDTree) Dim() int { return t.dim }

// Radius implements SpatialIndex.
func (t *KDTree) Radius(center []float64, radius float64, p float64) ([]int, error) {
	if err := checkQuery(t.dim, center, radius); err != nil {
		return nil, err
	}
	var ids []int
	t.radius(t.root, center, radius, p, &ids)
	return ids, nil
}

func (t *KDTree) radius(nodeID int, center []float64, radius, p float64, out *[]int) {
	if nodeID < 0 {
		return
	}
	node := t.nodes[nodeID]
	pt := t.pts[node.pointID]
	if vector.DistanceLp(pt, center, p) <= radius {
		*out = append(*out, node.pointID)
	}
	// Split-plane distance along the node axis. For any Lp (p >= 1) the
	// per-axis distance lower-bounds the Lp distance, so pruning with it is
	// safe for every supported norm.
	diff := center[node.axis] - pt[node.axis]
	if diff <= radius {
		t.radius(node.left, center, radius, p, out)
	}
	if -diff <= radius {
		t.radius(node.right, center, radius, p, out)
	}
}

// CountInRadius is a convenience helper returning only the cardinality
// n_θ(x) of the selection, used by Q1's denominator.
func CountInRadius(idx SpatialIndex, center []float64, radius float64, p float64) (int, error) {
	ids, err := idx.Radius(center, radius, p)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}
