package index

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"
)

// Partition is a static decomposition of R^dim into a small number of
// axis-aligned half-open box regions ("leaves"), built once from a sample of
// points and then shared read-only. It is the sharding layer's space
// partitioner: every point belongs to exactly one leaf (Locate), and a ball
// query can be routed to exactly the leaves whose region it can reach
// (Touching). The decomposition is the same family of spatial splits the
// read epochs use — recursive k-d cuts, count-balanced on the sample, with
// the cut coordinates snapped to the grid-cell lattice in the narrow spaces
// (dim ≤ 3) the epoch grid serves — so shard boundaries line up with the
// index machinery's own geometry.
//
// Leaves are numbered 0..Leaves()-1 and the numbering is stable under
// SplitLeaf (the split leaf keeps its id, the new half gets the next free
// id), which is what lets a sharded serving tier split a region without
// renumbering the shards that did not move. A Partition is immutable; the
// split/merge operations return a modified copy. The zero value is not
// valid — build one with NewPartition or decode one from JSON.
type Partition struct {
	dim    int
	nodes  []partNode // nodes[0] is the root; internal nodes reference children by index
	leaves int
}

// partNode is one node of the cut tree. An internal node splits on
// axis/cut: points with x[axis] < cut descend left, the rest right. A leaf
// node has axis == -1 and carries its leaf id in left.
type partNode struct {
	axis        int // split axis, or -1 for a leaf
	cut         float64
	left, right int // child node indexes; for a leaf, left is the leaf id
}

// gridSnapMaxDim is the input dimensionality up to which NewPartition snaps
// its cuts to the cell lattice — the same width band the store's read epochs
// serve with the uniform grid (storeGridMaxWidth bounds the query-space
// width d+1 at 4, i.e. d ≤ 3).
const gridSnapMaxDim = 3

// NewPartition builds a partition of R^dim into n leaves from a sample of
// points (row-major, len(points) = count×dim): the space is cut recursively
// on the axis of maximum spread, at the sample quantile that balances the
// leaf counts, until exactly n leaves exist. Any n ≥ 1 is supported, not
// just powers of two — an uneven split targets ⌈n/2⌉ leaves on one side and
// the matching share of the sample with them. For dim ≤ 3 and cell > 0 each
// cut is snapped to the nearest multiple of cell (the grid lattice the read
// epoch uses, cell side 2ρ) unless snapping would push every sample point
// to one side. The sample needs at least n points so every leaf is born
// non-empty.
func NewPartition(dim, n int, points []float64, cell float64) (*Partition, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("index: partition dim must be positive, got %d", dim)
	}
	if n <= 0 {
		return nil, fmt.Errorf("index: partition needs at least one leaf, got %d", n)
	}
	if len(points)%dim != 0 {
		return nil, fmt.Errorf("index: %d point values do not tile dim %d", len(points), dim)
	}
	count := len(points) / dim
	if n > 1 && count < n {
		return nil, fmt.Errorf("index: %d sample points cannot seed %d leaves", count, n)
	}
	for _, v := range points {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("index: partition sample contains non-finite values")
		}
	}
	if dim > gridSnapMaxDim {
		cell = 0
	}
	p := &Partition{dim: dim}
	pts := append([]float64(nil), points...) // reordered in place by the build
	p.build(n, pts, cell)
	return p, nil
}

// build appends the subtree partitioning pts into n leaves and returns its
// root node index.
func (p *Partition) build(n int, pts []float64, cell float64) int {
	node := len(p.nodes)
	p.nodes = append(p.nodes, partNode{})
	if n == 1 {
		p.nodes[node] = partNode{axis: -1, left: p.leaves}
		p.leaves++
		return node
	}
	nl := (n + 1) / 2
	axis, cut, split := p.chooseCut(pts, nl, n, cell)
	// Reorder pts so rows [0, split) are the left side. chooseCut picked cut
	// and split consistently (split rows strictly below cut).
	p.partitionRows(pts, axis, cut)
	left := p.build(nl, pts[:split*p.dim], cell)
	right := p.build(n-nl, pts[split*p.dim:], cell)
	p.nodes[node] = partNode{axis: axis, cut: cut, left: left, right: right}
	return node
}

// chooseCut picks the split for a node that must divide pts between nl of n
// target leaves: the axis of maximum sample spread and the count-balancing
// quantile on it, snapped to the cell lattice when that keeps both sides
// non-empty. It returns the axis, the cut and the number of sample rows
// strictly below the cut. If every axis is degenerate (all points equal) the
// cut falls at the common coordinate, leaving one side empty — the region
// algebra stays correct, the empty leaf just starts with no sample mass.
func (p *Partition) chooseCut(pts []float64, nl, n int, cell float64) (axis int, cut float64, split int) {
	count := len(pts) / p.dim
	if count == 0 {
		// A fully degenerate ancestor (all-duplicate sample) starved this
		// side; cut anywhere — the leaves exist, they just start empty.
		return 0, 0, 0
	}
	axis = p.spreadAxis(pts)
	vals := make([]float64, count)
	for i := 0; i < count; i++ {
		vals[i] = pts[i*p.dim+axis]
	}
	slices.Sort(vals)
	target := count * nl / n
	if target < 1 {
		target = 1
	}
	if target > count-1 {
		target = count - 1
	}
	cut = vals[target]
	if cut == vals[0] {
		// The quantile landed on the minimum (heavy duplicates): move up to
		// the first strictly larger value so the left side is non-empty.
		for _, v := range vals {
			if v > cut {
				cut = v
				break
			}
		}
	}
	if cell > 0 {
		if snapped := math.Round(cut/cell) * cell; snapped > vals[0] && snapped <= vals[count-1] {
			cut = snapped
		}
	}
	split, _ = slices.BinarySearch(vals, cut)
	return axis, cut, split
}

// spreadAxis returns the axis with the widest sample value range.
func (p *Partition) spreadAxis(pts []float64) int {
	best, bestSpread := 0, -1.0
	for a := 0; a < p.dim; a++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := a; i < len(pts); i += p.dim {
			if pts[i] < lo {
				lo = pts[i]
			}
			if pts[i] > hi {
				hi = pts[i]
			}
		}
		if s := hi - lo; s > bestSpread {
			best, bestSpread = a, s
		}
	}
	return best
}

// partitionRows reorders pts in place so every row with row[axis] < cut
// precedes every row with row[axis] >= cut.
func (p *Partition) partitionRows(pts []float64, axis int, cut float64) {
	d := p.dim
	i, j := 0, len(pts)/d-1
	for i <= j {
		for i <= j && pts[i*d+axis] < cut {
			i++
		}
		for i <= j && pts[j*d+axis] >= cut {
			j--
		}
		if i < j {
			ri, rj := pts[i*d:(i+1)*d], pts[j*d:(j+1)*d]
			for k := 0; k < d; k++ {
				ri[k], rj[k] = rj[k], ri[k]
			}
			i++
			j--
		}
	}
}

// Dim returns the input dimensionality the partition covers.
func (p *Partition) Dim() int { return p.dim }

// Leaves returns the number of leaf regions.
func (p *Partition) Leaves() int { return p.leaves }

// Locate returns the leaf id whose region contains x. Regions are half-open
// (left side is x[axis] < cut), so every point maps to exactly one leaf.
func (p *Partition) Locate(x []float64) int {
	n := 0
	for p.nodes[n].axis >= 0 {
		nd := p.nodes[n]
		if x[nd.axis] < nd.cut {
			n = nd.left
		} else {
			n = nd.right
		}
	}
	return p.nodes[n].left
}

// Touching appends to out the ids of every leaf whose region lies within
// L2 distance theta + extra[leaf] of center, and returns the extended
// slice. extra, when non-nil, widens the reach per leaf (the sharding layer
// passes each shard's max prototype radius θ_k, making the test exactly the
// overlap routing bound ‖x − x_k‖ ≤ θ + θ_k: a prototype of leaf L can
// overlap the query only if the leaf's region — which contains the
// prototype's centre — is within θ + θ_max(L) of the query centre). A nil
// extra reaches theta everywhere. The traversal prunes with the exact
// squared box distance, so a query deep inside one region returns exactly
// that leaf.
func (p *Partition) Touching(center []float64, theta float64, extra []float64, out []int) []int {
	maxExtra := 0.0
	if extra != nil {
		for _, e := range extra {
			if e > maxExtra {
				maxExtra = e
			}
		}
	}
	var deltas [16]float64
	var dbuf []float64
	if p.dim <= len(deltas) {
		dbuf = deltas[:p.dim]
	} else {
		dbuf = make([]float64, p.dim)
	}
	prune := theta + maxExtra
	return p.touch(0, center, theta, extra, prune*prune, 0, dbuf, out)
}

// touch is Touching's recursion: sq is the exact squared L2 distance from
// center to the current subtree's box, maintained incrementally through the
// per-axis deficits in deltas (restored on unwind).
func (p *Partition) touch(node int, center []float64, theta float64, extra []float64, pruneSq, sq float64, deltas []float64, out []int) []int {
	nd := p.nodes[node]
	if nd.axis < 0 {
		leaf := nd.left
		r := theta
		if extra != nil {
			r += extra[leaf]
		}
		if sq <= r*r {
			out = append(out, leaf)
		}
		return out
	}
	c := center[nd.axis]
	old := deltas[nd.axis]
	// Left child: the box gains the bound x[axis] < cut. The deficit on this
	// axis grows only when the centre sits at or beyond the cut.
	if d := c - nd.cut; d > old {
		if nsq := sq - old*old + d*d; nsq <= pruneSq {
			deltas[nd.axis] = d
			out = p.touch(nd.left, center, theta, extra, pruneSq, nsq, deltas, out)
			deltas[nd.axis] = old
		}
	} else {
		out = p.touch(nd.left, center, theta, extra, pruneSq, sq, deltas, out)
	}
	// Right child: the box gains x[axis] >= cut.
	if d := nd.cut - c; d > old {
		if nsq := sq - old*old + d*d; nsq <= pruneSq {
			deltas[nd.axis] = d
			out = p.touch(nd.right, center, theta, extra, pruneSq, nsq, deltas, out)
			deltas[nd.axis] = old
		}
	} else {
		out = p.touch(nd.right, center, theta, extra, pruneSq, sq, deltas, out)
	}
	return out
}

// Region returns the leaf's axis-aligned box as lower and upper bounds
// (half-open: lo ≤ x < hi componentwise), with ±Inf on unbounded sides.
func (p *Partition) Region(leaf int) (lo, hi []float64, err error) {
	if leaf < 0 || leaf >= p.leaves {
		return nil, nil, fmt.Errorf("index: leaf %d out of range [0, %d)", leaf, p.leaves)
	}
	lo = make([]float64, p.dim)
	hi = make([]float64, p.dim)
	for a := 0; a < p.dim; a++ {
		lo[a], hi[a] = math.Inf(-1), math.Inf(1)
	}
	n := 0
	for p.nodes[n].axis >= 0 {
		nd := p.nodes[n]
		if p.leafUnder(nd.left, leaf) {
			if nd.cut < hi[nd.axis] {
				hi[nd.axis] = nd.cut
			}
			n = nd.left
		} else {
			if nd.cut > lo[nd.axis] {
				lo[nd.axis] = nd.cut
			}
			n = nd.right
		}
	}
	return lo, hi, nil
}

// leafUnder reports whether leaf id `leaf` lives in the subtree at node.
func (p *Partition) leafUnder(node, leaf int) bool {
	nd := p.nodes[node]
	if nd.axis < 0 {
		return nd.left == leaf
	}
	return p.leafUnder(nd.left, leaf) || p.leafUnder(nd.right, leaf)
}

// findLeafNode returns the node index of the given leaf and its parent node
// index (-1 for the root).
func (p *Partition) findLeafNode(leaf int) (node, parent int) {
	node, parent = -1, -1
	for i, nd := range p.nodes {
		if nd.axis < 0 && nd.left == leaf {
			node = i
			break
		}
	}
	for i, nd := range p.nodes {
		if nd.axis >= 0 && (nd.left == node || nd.right == node) {
			parent = i
			break
		}
	}
	return node, parent
}

// SplitLeaf returns a copy of the partition with the given leaf cut in two
// on axis at cut: the half below the cut keeps the leaf's id, the other
// half becomes leaf Leaves() (so existing ids are untouched — a sharded
// tier can install the new partition without renumbering unmoved shards).
// The cut must fall strictly inside the leaf's region.
func (p *Partition) SplitLeaf(leaf, axis int, cut float64) (*Partition, error) {
	if axis < 0 || axis >= p.dim {
		return nil, fmt.Errorf("index: split axis %d out of range [0, %d)", axis, p.dim)
	}
	if math.IsNaN(cut) || math.IsInf(cut, 0) {
		return nil, fmt.Errorf("index: split cut must be finite, got %v", cut)
	}
	lo, hi, err := p.Region(leaf)
	if err != nil {
		return nil, err
	}
	if !(cut > lo[axis] && cut < hi[axis]) {
		return nil, fmt.Errorf("index: cut %v on axis %d outside leaf %d's open region (%v, %v)", cut, axis, leaf, lo[axis], hi[axis])
	}
	node, _ := p.findLeafNode(leaf)
	np := &Partition{dim: p.dim, leaves: p.leaves + 1, nodes: append([]partNode(nil), p.nodes...)}
	l, r := len(np.nodes), len(np.nodes)+1
	np.nodes = append(np.nodes,
		partNode{axis: -1, left: leaf},
		partNode{axis: -1, left: p.leaves})
	np.nodes[node] = partNode{axis: axis, cut: cut, left: l, right: r}
	return np, nil
}

// MergeLeaves returns a copy of the partition with sibling leaves a and b
// fused back into one region, which keeps the smaller of the two ids. The
// freed id is filled by renumbering the partition's last leaf (Leaves()-1)
// into it; moved reports that renumbered old id, or -1 when no leaf moved —
// the caller relocates its per-leaf state the same way. Only siblings (two
// leaves sharing a parent cut) can merge; anything else would not form a
// box.
func (p *Partition) MergeLeaves(a, b int) (np *Partition, moved int, err error) {
	if a == b || a < 0 || b < 0 || a >= p.leaves || b >= p.leaves {
		return nil, -1, fmt.Errorf("index: cannot merge leaves %d and %d of %d", a, b, p.leaves)
	}
	na, _ := p.findLeafNode(a)
	nb, parent := p.findLeafNode(b)
	if parent == -1 || !(p.nodes[parent].left == na && p.nodes[parent].right == nb ||
		p.nodes[parent].left == nb && p.nodes[parent].right == na) {
		return nil, -1, fmt.Errorf("index: leaves %d and %d are not siblings", a, b)
	}
	keep, freed := a, b
	if b < a {
		keep, freed = b, a
	}
	np = &Partition{dim: p.dim, leaves: p.leaves - 1, nodes: append([]partNode(nil), p.nodes...)}
	np.nodes[parent] = partNode{axis: -1, left: keep}
	// The two merged leaf nodes are now unreachable; compact them away so
	// repeated split/merge cycles do not grow the node array forever.
	np.compact()
	moved = -1
	last := p.leaves - 1
	if freed != last {
		for i := range np.nodes {
			if np.nodes[i].axis < 0 && np.nodes[i].left == last {
				np.nodes[i].left = freed
				moved = last
				break
			}
		}
	}
	return np, moved, nil
}

// compact drops unreachable nodes and renumbers child references.
func (p *Partition) compact() {
	reach := make([]bool, len(p.nodes))
	var mark func(int)
	mark = func(n int) {
		reach[n] = true
		if p.nodes[n].axis >= 0 {
			mark(p.nodes[n].left)
			mark(p.nodes[n].right)
		}
	}
	mark(0)
	remap := make([]int, len(p.nodes))
	out := p.nodes[:0]
	for i, nd := range p.nodes {
		if !reach[i] {
			continue
		}
		remap[i] = len(out)
		out = append(out, nd)
	}
	for i := range out {
		if out[i].axis >= 0 {
			out[i].left = remap[out[i].left]
			out[i].right = remap[out[i].right]
		}
	}
	p.nodes = out
}

// partitionJSON is the wire form of a Partition: the node array with
// explicit leaf ids, so a router and its shards can agree on one partition
// across processes.
type partitionJSON struct {
	Dim    int           `json:"dim"`
	Leaves int           `json:"leaves"`
	Nodes  []partNodeDoc `json:"nodes"`
}

type partNodeDoc struct {
	Axis  int     `json:"axis"`
	Cut   float64 `json:"cut,omitempty"`
	Left  int     `json:"left,omitempty"`
	Right int     `json:"right,omitempty"`
	Leaf  *int    `json:"leaf,omitempty"`
}

// MarshalJSON encodes the partition's cut tree.
func (p *Partition) MarshalJSON() ([]byte, error) {
	doc := partitionJSON{Dim: p.dim, Leaves: p.leaves, Nodes: make([]partNodeDoc, len(p.nodes))}
	for i, nd := range p.nodes {
		if nd.axis < 0 {
			leaf := nd.left
			doc.Nodes[i] = partNodeDoc{Axis: -1, Leaf: &leaf}
		} else {
			doc.Nodes[i] = partNodeDoc{Axis: nd.axis, Cut: nd.cut, Left: nd.left, Right: nd.right}
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes and validates a partition: the node array must form
// a single well-formed binary tree rooted at node 0 whose leaf ids are a
// permutation of 0..leaves-1.
func (p *Partition) UnmarshalJSON(data []byte) error {
	var doc partitionJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Dim <= 0 || doc.Leaves <= 0 || len(doc.Nodes) == 0 {
		return fmt.Errorf("index: invalid partition document (dim %d, %d leaves, %d nodes)", doc.Dim, doc.Leaves, len(doc.Nodes))
	}
	nodes := make([]partNode, len(doc.Nodes))
	for i, nd := range doc.Nodes {
		if nd.Axis < 0 {
			if nd.Leaf == nil {
				return fmt.Errorf("index: partition node %d is a leaf without a leaf id", i)
			}
			nodes[i] = partNode{axis: -1, left: *nd.Leaf}
			continue
		}
		if nd.Axis >= doc.Dim {
			return fmt.Errorf("index: partition node %d splits axis %d of dim %d", i, nd.Axis, doc.Dim)
		}
		if math.IsNaN(nd.Cut) || math.IsInf(nd.Cut, 0) {
			return fmt.Errorf("index: partition node %d has a non-finite cut", i)
		}
		if nd.Left <= 0 || nd.Left >= len(doc.Nodes) || nd.Right <= 0 || nd.Right >= len(doc.Nodes) {
			return fmt.Errorf("index: partition node %d has out-of-range children", i)
		}
		nodes[i] = partNode{axis: nd.Axis, cut: nd.Cut, left: nd.Left, right: nd.Right}
	}
	// Walk from the root: every node must be visited exactly once and the
	// leaf ids must cover 0..leaves-1 exactly.
	seen := make([]bool, len(nodes))
	leafSeen := make([]bool, doc.Leaves)
	var walk func(int) error
	walk = func(n int) error {
		if seen[n] {
			return fmt.Errorf("index: partition node %d is referenced twice", n)
		}
		seen[n] = true
		nd := nodes[n]
		if nd.axis < 0 {
			if nd.left < 0 || nd.left >= doc.Leaves || leafSeen[nd.left] {
				return fmt.Errorf("index: partition leaf id %d invalid or duplicated", nd.left)
			}
			leafSeen[nd.left] = true
			return nil
		}
		if err := walk(nd.left); err != nil {
			return err
		}
		return walk(nd.right)
	}
	if err := walk(0); err != nil {
		return err
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("index: partition node %d is unreachable", i)
		}
	}
	for id, ok := range leafSeen {
		if !ok {
			return fmt.Errorf("index: partition leaf id %d is missing", id)
		}
	}
	p.dim, p.leaves, p.nodes = doc.Dim, doc.Leaves, nodes
	return nil
}
