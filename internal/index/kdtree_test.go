package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"llmq/internal/vector"
)

// randRows produces n random rows of the given dimensionality in [0,1)^dim.
func randRows(rng *rand.Rand, n, dim int) []float64 {
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = rng.Float64()
	}
	return flat
}

// clusteredRows produces rows concentrated on a handful of Gaussian blobs —
// the workload shape the tree's bounding boxes prune on.
func clusteredRows(rng *rand.Rand, n, dim, clusters int, sigma float64) []float64 {
	centers := randRows(rng, clusters, dim)
	flat := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		ci := rng.Intn(clusters)
		for j := 0; j < dim; j++ {
			flat[i*dim+j] = centers[ci*dim+j] + sigma*rng.NormFloat64()
		}
	}
	return flat
}

// checkTreeInvariants asserts the structural invariants of a built tree:
// ids is a permutation of [0,n), node spans tile correctly (each internal
// node's children partition its span, leaves partition [0,n)), and every
// node's bounding box contains its rows (hence, transitively, its
// children's boxes).
func checkTreeInvariants(t *testing.T, tree *BulkKDTree, src []float64) {
	t.Helper()
	d := tree.dim
	n := tree.n
	seen := make([]bool, n)
	for _, id := range tree.ids {
		if id < 0 || int(id) >= n || seen[id] {
			t.Fatalf("ids is not a permutation: id %d", id)
		}
		seen[id] = true
	}
	for i, id := range tree.ids {
		for j := 0; j < d; j++ {
			if tree.flat[i*d+j] != src[int(id)*d+j] {
				t.Fatalf("row %d is not source row %d", i, id)
			}
		}
	}
	if sp := tree.nodes[0]; sp.start != 0 || int(sp.end) != n {
		t.Fatalf("root span [%d,%d), want [0,%d)", sp.start, sp.end, n)
	}
	for node := range tree.nodes {
		sp := tree.nodes[node]
		if sp.start > sp.end {
			t.Fatalf("node %d span inverted: [%d,%d)", node, sp.start, sp.end)
		}
		if node < tree.leaf1 {
			l, r := tree.nodes[2*node+1], tree.nodes[2*node+2]
			if l.start != sp.start || l.end != r.start || r.end != sp.end {
				t.Fatalf("node %d children do not partition its span: [%d,%d) vs [%d,%d)+[%d,%d)",
					node, sp.start, sp.end, l.start, l.end, r.start, r.end)
			}
		} else if n > kdLeafRowsMax && int(sp.end-sp.start) > kdLeafRowsMax {
			t.Fatalf("leaf %d holds %d rows, max %d", node, sp.end-sp.start, kdLeafRowsMax)
		}
		box := tree.boxes[node*2*d : (node+1)*2*d]
		for rr := int(sp.start); rr < int(sp.end); rr++ {
			for j := 0; j < d; j++ {
				v := tree.flat[rr*d+j]
				if v < box[j] || v > box[d+j] {
					t.Fatalf("node %d box excludes its row %d axis %d: %v outside [%v,%v]",
						node, rr, j, v, box[j], box[d+j])
				}
			}
		}
	}
}

func TestBulkKDTreeBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 63, 64, 65, 200, 1000} {
		for _, dim := range []int{1, 5, 9} {
			src := randRows(rng, n, dim)
			tree, err := NewBulkKDTree(src, dim)
			if err != nil {
				t.Fatal(err)
			}
			checkTreeInvariants(t, tree, src)
		}
	}
}

// bruteRange returns the sorted ids within r of q over the flat rows.
func bruteRange(flat []float64, dim int, q []float64, r float64) []int {
	var ids []int
	for i := 0; i*dim < len(flat); i++ {
		if vector.SqDistanceFlat(flat[i*dim:(i+1)*dim], q) <= r*r {
			ids = append(ids, i)
		}
	}
	return ids
}

// TestBulkKDTreeRangeMatchesLinear is the Range exactness property test:
// every id within r must be reported, and nothing farther than the
// documented one-sided rounding widening.
func TestBulkKDTreeRangeMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct {
		n, dim int
		rows   []float64
	}{
		{500, 9, randRows(rng, 500, 9)},
		{1000, 9, clusteredRows(rng, 1000, 9, 20, 0.05)},
		{300, 5, randRows(rng, 300, 5)},
	} {
		tree, err := NewBulkKDTree(tc.rows, tc.dim)
		if err != nil {
			t.Fatal(err)
		}
		var stack []int32
		var got []int
		for trial := 0; trial < 200; trial++ {
			q := randRows(rng, 1, tc.dim)
			r := 0.4 * rng.Float64()
			got, stack = tree.Range(q, r, got[:0], stack, 0)
			// The capped variant may stop early but must report a prefix-
			// complete set: at least min(cap, full) ids, never more than full.
			var capped []int
			capped, stack = tree.Range(q, r, nil, stack, 5)
			if wantLen := min(5, len(got)); len(capped) < wantLen || len(capped) > len(got) {
				t.Fatalf("n=%d trial %d: capped Range returned %d ids, full %d", tc.n, trial, len(capped), len(got))
			}
			sort.Ints(got)
			want := bruteRange(tc.rows, tc.dim, q, r)
			i := 0
			for _, id := range want {
				for i < len(got) && got[i] < id {
					// An extra candidate is permitted only within the eps
					// widening of the boundary.
					sq := vector.SqDistanceFlat(tc.rows[got[i]*tc.dim:(got[i]+1)*tc.dim], q)
					if sq > r*r*(1+2*rangeBoxEps) {
						t.Fatalf("n=%d trial %d: Range reported id %d at sq %v, r²=%v", tc.n, trial, got[i], sq, r*r)
					}
					i++
				}
				if i >= len(got) || got[i] != id {
					t.Fatalf("n=%d trial %d: Range missed id %d within r=%v", tc.n, trial, id, r)
				}
				i++
			}
		}
	}
}

// sqClose reports whether two squared distances agree to within kernel
// reassociation rounding — the repo-wide winner tolerance: the unrolled
// argmin specializations and SqDistanceFlat group their partial sums
// differently, so equidistant (or duplicated) rows can differ in the final
// ulps between the two paths.
func sqClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

// bruteNearest returns the linear-scan argmin (lowest id on ties) and the
// squared distance, over the flat rows.
func bruteNearest(flat []float64, dim int, q []float64) (int, float64) {
	best, bestSq := -1, math.Inf(1)
	for i := 0; i*dim < len(flat); i++ {
		if sq := vector.SqDistanceFlat(flat[i*dim:(i+1)*dim], q); sq < bestSq {
			best, bestSq = i, sq
		}
	}
	return best, bestSq
}

// TestBulkKDTreeNearestStaleMatchesLinear covers all three staleness
// regimes of NearestStale: stored rows are the live rows (zero Chunked, no
// slack), live rows drifted within a slack budget, and a seeded search
// (the caller's un-indexed tail candidate). In every case the returned
// distance must equal the brute-force scan's over the live rows.
func TestBulkKDTreeNearestStaleMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{5, 9} {
		const n = 800
		src := clusteredRows(rng, n, dim, 25, 0.04)
		tree, err := NewBulkKDTree(src, dim)
		if err != nil {
			t.Fatal(err)
		}
		// Drift every live row by at most slack from its stale position.
		const slack = 0.03
		drifted := append([]float64(nil), src...)
		for i := 0; i < n; i++ {
			norm := 0.0
			delta := make([]float64, dim)
			for j := range delta {
				delta[j] = rng.NormFloat64()
				norm += delta[j] * delta[j]
			}
			scale := slack * rng.Float64() / math.Sqrt(norm)
			for j := range delta {
				drifted[i*dim+j] += scale * delta[j]
			}
		}
		live := vector.ChunkedFromFlat(drifted, dim)
		var stack []int32
		for trial := 0; trial < 300; trial++ {
			q := randRows(rng, 1, dim)
			// Stale == live.
			var gotSq float64
			var got int
			got, gotSq, stack = tree.NearestStale(q, 0, vector.Chunked{}, -1, 0, stack)
			want, wantSq := bruteNearest(src, dim, q)
			if got != want && !sqClose(gotSq, wantSq) {
				t.Fatalf("dim %d trial %d stale==live: got (%d, %v), want (%d, %v)", dim, trial, got, gotSq, want, wantSq)
			}
			// Drifted live rows under the slack budget.
			got, gotSq, stack = tree.NearestStale(q, slack, live, -1, 0, stack)
			want, wantSq = bruteNearest(drifted, dim, q)
			if got != want && !sqClose(gotSq, wantSq) {
				t.Fatalf("dim %d trial %d drifted: got (%d, %v), want (%d, %v)", dim, trial, got, gotSq, want, wantSq)
			}
			// Seeded with a random live candidate (the tail-scan contract).
			seed := rng.Intn(n)
			seedSq := vector.SqDistanceFlat(live.Row(seed), q)
			got, gotSq, stack = tree.NearestStale(q, slack, live, seed, seedSq, stack)
			if got != want && !sqClose(gotSq, wantSq) {
				t.Fatalf("dim %d trial %d seeded: got (%d, %v), want (%d, %v)", dim, trial, got, gotSq, want, wantSq)
			}
		}
	}
}

// TestBulkKDTreeBailMatchesLinear forces the traversal's scan-budget bail —
// the "no locality" fallback — both artificially (budget shrunk to zero, so
// the first leaf trips it) and naturally (points near-equidistant from the
// query, which no box can prune), and asserts the answer still matches the
// linear scan exactly.
func TestBulkKDTreeBailMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, dim = 600, 9
	src := randRows(rng, n, dim)
	live := vector.ChunkedFromFlat(src, dim)

	forced, err := NewBulkKDTree(src, dim)
	if err != nil {
		t.Fatal(err)
	}
	forced.bailRows = 0 // any leaf visit exceeds the budget
	var stack []int32
	for trial := 0; trial < 200; trial++ {
		q := randRows(rng, 1, dim)
		want, wantSq := bruteNearest(src, dim, q)
		var got int
		var gotSq float64
		got, gotSq, stack = forced.NearestStale(q, 0, vector.Chunked{}, -1, 0, stack)
		if got != want && !sqClose(gotSq, wantSq) {
			t.Fatalf("trial %d forced bail (stale==live): got (%d, %v), want (%d, %v)", trial, got, gotSq, want, wantSq)
		}
		got, gotSq, stack = forced.NearestStale(q, 0.01, live, -1, 0, stack)
		if got != want && !sqClose(gotSq, wantSq) {
			t.Fatalf("trial %d forced bail (live): got (%d, %v), want (%d, %v)", trial, got, gotSq, want, wantSq)
		}
	}

	// Natural trip: points on a sphere around the query are equidistant, so
	// every box lower bound ties the best and nothing prunes.
	sphere := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		norm := 0.0
		for j := 0; j < dim; j++ {
			sphere[i*dim+j] = rng.NormFloat64()
			norm += sphere[i*dim+j] * sphere[i*dim+j]
		}
		scale := (0.5 + 1e-6*rng.Float64()) / math.Sqrt(norm)
		for j := 0; j < dim; j++ {
			sphere[i*dim+j] = 0.5 + scale*sphere[i*dim+j]
		}
	}
	natural, err := NewBulkKDTree(sphere, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	for j := range q {
		q[j] = 0.5
	}
	want, wantSq := bruteNearest(sphere, dim, q)
	got, gotSq, _ := natural.NearestStale(q, 0, vector.Chunked{}, -1, 0, stack)
	if got != want && !sqClose(gotSq, wantSq) {
		t.Fatalf("natural bail: got (%d, %v), want (%d, %v)", got, gotSq, want, wantSq)
	}
}

// FuzzBulkKDTree fuzzes the build/traverse invariants: arbitrary point
// sets (derived from the fuzz bytes) must build a structurally sound tree
// whose Range and NearestStale agree with the linear scan.
func FuzzBulkKDTree(f *testing.F) {
	f.Add(int64(1), 10, 3, 0.2)
	f.Add(int64(2), 200, 9, 0.05)
	f.Add(int64(3), 65, 5, 1.5)
	f.Add(int64(4), 1, 1, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, n, dim int, r float64) {
		if n <= 0 || n > 2000 || dim <= 0 || dim > 12 {
			t.Skip()
		}
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > 1e6 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		// Mix uniform coordinates with duplicated rows and constant axes —
		// the degenerate shapes a median split must survive.
		src := randRows(rng, n, dim)
		for i := 0; i < n/4; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			copy(src[a*dim:(a+1)*dim], src[b*dim:(b+1)*dim])
		}
		if dim > 1 {
			ax := rng.Intn(dim)
			for i := 0; i < n; i++ {
				src[i*dim+ax] = 0.25
			}
		}
		tree, err := NewBulkKDTree(src, dim)
		if err != nil {
			t.Fatal(err)
		}
		checkTreeInvariants(t, tree, src)
		q := randRows(rng, 1, dim)
		var stack []int32
		var got []int
		got, stack = tree.Range(q, r, got, stack, 0)
		want := bruteRange(src, dim, q, r)
		if len(got) < len(want) {
			t.Fatalf("Range returned %d ids, linear scan %d", len(got), len(want))
		}
		member := make(map[int]bool, len(got))
		for _, id := range got {
			member[id] = true
		}
		for _, id := range want {
			if !member[id] {
				t.Fatalf("Range missed id %d", id)
			}
		}
		wantIdx, wantSq := bruteNearest(src, dim, q)
		gotIdx, gotSq, _ := tree.NearestStale(q, 0, vector.Chunked{}, -1, 0, stack)
		if gotIdx != wantIdx && !sqClose(gotSq, wantSq) {
			t.Fatalf("NearestStale (%d, %v), linear scan (%d, %v)", gotIdx, gotSq, wantIdx, wantSq)
		}
	})
}
