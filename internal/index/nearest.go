package index

import (
	"math"

	"llmq/internal/vector"
)

// Nearest-neighbour search (L2) for the static indexes. The dynamic grid has
// its own incremental implementation; these are the reference (Linear) and
// tree-accelerated (KDTree) counterparts, validated against each other.

// Nearest returns the id of the indexed point closest to center under the L2
// norm and the squared distance to it. Ties break toward the lowest id. It
// returns (-1, 0) when the index is empty (impossible for a constructed
// Linear, which rejects empty point sets).
func (l *Linear) Nearest(center []float64) (int, float64) {
	best, bestSq := -1, math.Inf(1)
	for i, pt := range l.pts {
		if sq := vector.SqDistanceFlat(pt, center); sq < bestSq {
			best, bestSq = i, sq
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSq
}

// Nearest returns the id of the indexed point closest to center under the L2
// norm and the squared distance to it, pruning subtrees whose splitting
// plane is farther than the best candidate. Ties break toward the lowest id.
func (t *KDTree) Nearest(center []float64) (int, float64) {
	best, bestSq := -1, math.Inf(1)
	t.nearest(t.root, center, &best, &bestSq)
	if best < 0 {
		return -1, 0
	}
	return best, bestSq
}

func (t *KDTree) nearest(nodeID int, center []float64, best *int, bestSq *float64) {
	if nodeID < 0 {
		return
	}
	node := t.nodes[nodeID]
	pt := t.pts[node.pointID]
	sq := vector.SqDistanceFlat(pt, center)
	if sq < *bestSq || (sq == *bestSq && node.pointID < *best) {
		*best, *bestSq = node.pointID, sq
	}
	diff := center[node.axis] - pt[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.nearest(near, center, best, bestSq)
	// The far subtree can only contain a closer point when the splitting
	// plane itself is closer than the current best.
	if diff*diff <= *bestSq {
		t.nearest(far, center, best, bestSq)
	}
}
